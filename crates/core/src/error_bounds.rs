//! Worst-case error-propagation bounds for every collective workflow.
//!
//! The C-Coll paper [13] proves that error-bounded-lossy-accelerated
//! collectives keep point-wise error under analytic control; hZCCL inherits
//! and *tightens* those bounds because the homomorphic path never
//! re-quantizes (Sec. III-B.4: "our hZ-dynamic does not introduce additional
//! errors beyond those inherent to the original compression"). This module
//! states the bounds as code so tests (and users) can assert measured errors
//! against them.
//!
//! Derivations (absolute bound `eb`, `N` ranks, sum reduction):
//!
//! * **hZCCL Allreduce / Reduce_scatter** — each rank's contribution is
//!   quantized exactly once (`<= eb` each); homomorphic sums are exact on
//!   the quantization integers, and the final decompression adds no further
//!   quantization: total `<= N*eb`.
//! * **C-Coll Reduce_scatter** — the accumulated chunk is *recompressed*
//!   every round: after round `j` the error is `e_j <= e_{j-1} + 2*eb`
//!   (fresh quantization of the incoming term plus re-quantization of the
//!   accumulated value), giving `<= (2N-1)*eb` after `N-1` rounds.
//! * **C-Coll Allreduce** — one more compression/decompression pair in the
//!   Allgather stage: `<= 2N*eb`.
//! * **CPR-P2P Allreduce** — additionally re-quantizes on every Allgather
//!   forwarding hop: `<= (3N-2)*eb` (the Reduce_scatter bound plus up to
//!   `N-1` further re-quantizations of the final value).
//!
//! All bounds are *worst case*; measured errors are typically far smaller
//! because quantization errors do not align.

/// Worst-case point-wise error of the hZCCL Allreduce/Reduce_scatter
/// (`N*eb`: one quantization per contributing rank, exact homomorphic sums).
pub fn hzccl_allreduce(nranks: usize, eb: f64) -> f64 {
    nranks as f64 * eb
}

/// Worst-case point-wise error of the hZCCL Reduce_scatter (same as the
/// Allreduce: the Allgather stage moves data without re-quantizing).
pub fn hzccl_reduce_scatter(nranks: usize, eb: f64) -> f64 {
    hzccl_allreduce(nranks, eb)
}

/// Worst-case point-wise error of the C-Coll (DOC) Reduce_scatter
/// (`(2N-1)*eb`: per-round recompression of the accumulated chunk).
pub fn ccoll_reduce_scatter(nranks: usize, eb: f64) -> f64 {
    (2 * nranks - 1) as f64 * eb
}

/// Worst-case point-wise error of the C-Coll Allreduce (`2N*eb`: the
/// Reduce_scatter bound plus the Allgather's compression round trip).
pub fn ccoll_allreduce(nranks: usize, eb: f64) -> f64 {
    2.0 * nranks as f64 * eb
}

/// Worst-case point-wise error of the CPR-P2P Allreduce (`(3N-2)*eb`:
/// per-hop recompression in the Allgather as well).
pub fn p2p_allreduce(nranks: usize, eb: f64) -> f64 {
    (3 * nranks - 2) as f64 * eb
}

/// Worst-case point-wise error of a homomorphic accumulation of `k` streams
/// (`k*eb` — quantization only, sums exact).
pub fn homomorphic_accumulation(k: usize, eb: f64) -> f64 {
    k as f64 * eb
}

/// Worst-case point-wise error of a Shrink-policy recoverable collective
/// that committed with `survivors` members, for the compressed flavours
/// (`(2m+2)*eb`). The survivable schedule's wire codec quantizes each of
/// the `m` survivor contributions once on encode and may re-quantize the
/// accumulated value once per fold under the ccoll flavour (`2m`), plus the
/// owner's own-group roundtrip through the codec and the final store
/// (`+2`). The hz flavour is tighter in practice (homomorphic sums are
/// exact), but shares this conservative envelope so both compressed
/// flavours gate identically in `tests/recovery.rs` and
/// `hzc chaos --crash-rate`.
pub fn shrink_allreduce(survivors: usize, eb: f64) -> f64 {
    (2 * survivors + 2) as f64 * eb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CollectiveConfig, Mode};
    use datasets::App;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    #[test]
    fn bound_ordering_matches_workflow_quality() {
        // hZCCL's bound is the tightest, CPR-P2P's the loosest
        for n in [2usize, 8, 64] {
            let eb = 1e-4;
            assert!(hzccl_allreduce(n, eb) < ccoll_allreduce(n, eb));
            // the bounds coincide at N=2 (a single forwarding hop)
            assert!(ccoll_allreduce(n, eb) <= p2p_allreduce(n, eb));
            if n > 2 {
                assert!(ccoll_allreduce(n, eb) < p2p_allreduce(n, eb));
            }
            assert!(ccoll_reduce_scatter(n, eb) < ccoll_allreduce(n, eb));
            // the survivable codec's extra roundtrip sits just above the
            // classic ccoll envelope at the same membership
            assert!(shrink_allreduce(n, eb) > ccoll_allreduce(n, eb));
        }
    }

    /// The empirical backbone: run every workflow on real data and assert the
    /// measured worst-case error respects the analytic bound (with the f32
    /// ULP slack of the final store).
    #[test]
    fn measured_errors_respect_the_bounds() {
        let n = 2048;
        let nranks = 6;
        let eb = 1e-3;
        let timing = ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0));
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let base = App::Hurricane.generate(n, 1);
        let fields: Vec<Vec<f32>> = (0..nranks)
            .map(|r| base.iter().map(|&v| v * (1.0 + 0.05 * r as f32)).collect())
            .collect();
        let exact: Vec<f64> = (0..n).map(|i| fields.iter().map(|f| f[i] as f64).sum()).collect();
        let ulp = exact.iter().fold(0f64, |m, v| m.max(v.abs())) * f32::EPSILON as f64;

        let cluster = SimBuilder::new(nranks).timing(timing);
        let max_err = |which: usize| -> f64 {
            let outcomes = cluster
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    match which {
                        0 => crate::hz::allreduce_impl(comm, data, &cfg, 1).expect("hz"),
                        1 => crate::ccoll::allreduce_impl(comm, data, &cfg, 1).expect("ccoll"),
                        _ => crate::p2p::allreduce(comm, data, &cfg).expect("p2p"),
                    }
                })
                .expect_clean()
                .outcomes;
            outcomes[0]
                .value
                .iter()
                .zip(&exact)
                .map(|(a, b)| (*a as f64 - b).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_err(0) <= hzccl_allreduce(nranks, eb) + ulp);
        assert!(max_err(1) <= ccoll_allreduce(nranks, eb) + ulp);
        assert!(max_err(2) <= p2p_allreduce(nranks, eb) + ulp);
    }
}
