//! The auto-selecting front-end ([`Variant::Auto`](crate::Variant)): one
//! rank consults the [`tuner::Engine`], every rank executes the agreed plan.
//!
//! A collective only works if *all* ranks run the same algorithm — a rank
//! doing a compressed ring while its neighbour does recursive doubling
//! deadlocks on mismatched tags. But the inputs that drive the decision
//! (most importantly the probed compression ratio) are rank-local. The
//! protocol here is the standard one:
//!
//! 1. a fixed **decider** rank (rank 0, or the root for rooted ops) probes
//!    its own data, asks the engine for a [`Decision`], and
//! 2. broadcasts the winning [`Plan`] in its fixed 13-byte wire encoding
//!    ([`Plan::encode`]) on the reserved [`TAG_PLAN`] tag, then
//! 3. every rank dispatches to the chosen static implementation
//!    ([`crate::mpi`] / [`crate::ccoll`] / [`crate::hz`] / [`crate::rd`] /
//!    [`crate::hierarchy`]).
//!
//! The probe compression is charged to the virtual clock as
//! [`OpKind::Other`] (label `auto:probe`) and the plan broadcast is a real
//! simulated message, so auto's overhead is visible in breakdowns and
//! timelines instead of being smuggled in for free.

use crate::config::{CollectiveConfig, Mode};
use crate::{ccoll, hierarchy, hz, mpi, rd};
use fzlight::{Config as FzConfig, ErrorBound, Result};
use netsim::{Comm, OpKind, Topology};
use tuner::{Algo, Decision, Engine, Flavor, Op, Plan, ScenarioSpec, ThreadMode};

/// Reserved tag namespace for the plan broadcast (ring uses `0/1<<32`,
/// gather/scatter `2..=4 <<32`, rd `5/6<<32`).
pub const TAG_PLAN: u64 = 7 << 32;

/// Elements probe-compressed to estimate the scenario's compression ratio.
/// 16 Ki `f32` (64 KiB) keeps the probe ~1% of a megabyte-class message
/// while spanning thousands of compressor blocks.
pub const PROBE_ELEMS: usize = 1 << 14;

/// What an auto collective returns: the reduced/broadcast value plus the
/// plan every rank agreed on — and, on the decider rank only, the scenario
/// it saw and the engine's full ranked decision (for `hzc sim`'s "why"
/// output and for feeding measurements back via
/// [`tuner::Engine::observe_measurement`]).
#[derive(Debug, Clone)]
pub struct AutoOutcome<T> {
    /// The collective's result (same shape as the static flavour returns).
    pub value: T,
    /// The plan all ranks executed.
    pub plan: Plan,
    /// Decider-rank extras: `(scenario, decision)`; `None` elsewhere.
    pub detail: Option<(ScenarioSpec, Decision)>,
}

/// The [`Mode`] a plan's thread mode maps to.
fn mode_of(plan: &Plan) -> Mode {
    match plan.mode {
        ThreadMode::St => Mode::SingleThread,
        ThreadMode::Mt(k) => Mode::MultiThread(k),
    }
}

/// The per-call config the plan implies: caller's error bound and resilient
/// transport, plan's block length and thread mode. The tuner's cost model
/// does not price retry/backoff time, but that only skews the *choice* on
/// lossy fabrics — silently stripping `res` would change the *transport*
/// behind the caller's back and leave frames unprotected on the very
/// networks resilience was requested for.
fn cfg_for(plan: &Plan, base: &CollectiveConfig) -> CollectiveConfig {
    CollectiveConfig { eb: base.eb, block_len: plan.block_len, mode: mode_of(plan), res: base.res }
}

/// The segment count a plan actually runs at: the resilient transport only
/// covers the phase-serial schedules, so resilience forces `segments == 1`
/// (the same rule as `CollectiveOpts::eff_segments`).
fn eff_segments(plan: &Plan, cfg: &CollectiveConfig) -> usize {
    if cfg.res.is_some() {
        1
    } else {
        plan.segments
    }
}

/// Probe-compress a sample of `data` at each candidate block length and
/// return `(block_len, ratio)` estimates. Empty data (non-root ranks of a
/// bcast never call this) or failing compression degrade to ratio 1.0 —
/// "incompressible" is the safe direction, it can only steer the engine
/// toward plain MPI.
fn probe_ratios(
    comm: &mut Comm,
    data: &[f32],
    eb: f64,
    blocks: &[usize],
    threads: usize,
) -> Vec<(usize, f64)> {
    if data.is_empty() {
        return blocks.iter().map(|&b| (b, 1.0)).collect();
    }
    let sample = &data[..data.len().min(PROBE_ELEMS)];
    let logical = sample.len() * 4;
    blocks
        .iter()
        .map(|&b| {
            let fz = FzConfig::new(ErrorBound::Abs(eb)).with_block_len(b).with_threads(threads);
            let ratio = comm.compute_labeled(OpKind::Other, logical, "auto:probe", || {
                fzlight::compress(sample, &fz)
                    .map(|s| logical as f64 / s.compressed_size().max(1) as f64)
                    .unwrap_or(1.0)
            });
            (b, ratio.max(1.0))
        })
        .collect()
}

/// Build the scenario the engine is asked about, probing `data` for its
/// compressibility at every candidate block length. A `topology` puts the
/// scenario in its own cache bucket and lets the engine offer hierarchical
/// candidates.
pub fn scenario(
    comm: &mut Comm,
    engine: &Engine,
    op: Op,
    elems: usize,
    data: &[f32],
    cfg: &CollectiveConfig,
    topology: Option<&Topology>,
) -> ScenarioSpec {
    let ratios = probe_ratios(comm, data, cfg.eb, &engine.block_candidates, cfg.mode.threads());
    ScenarioSpec { op, elems, nranks: comm.size(), eb: cfg.eb, ratios, topology: topology.copied() }
}

/// Decide on `decider`, broadcast the encoded plan (12 bytes, 13 for
/// hierarchical plans) down a binomial tree (`ceil(log2 N)` latency rounds
/// instead of the linear `N-1` a naive send-to-all would cost — at 64 ranks
/// that is 6 alpha charges, not 63), decode everywhere. Returns the agreed
/// plan plus the decider's `(scenario, decision)`.
#[allow(clippy::too_many_arguments)] // the scenario probe's inputs plus decider + topology
pub fn agree_on_plan(
    comm: &mut Comm,
    engine: &Engine,
    op: Op,
    elems: usize,
    data: &[f32],
    cfg: &CollectiveConfig,
    decider: usize,
    topology: Option<&Topology>,
) -> (Plan, Option<(ScenarioSpec, Decision)>) {
    let n = comm.size();
    let r = comm.rank();
    // Position in the tree, relative to the decider (which sits at 0).
    let rel = (r + n - decider) % n;
    let (wire, detail) = if rel == 0 {
        let spec = scenario(comm, engine, op, elems, data, cfg, topology);
        let decision = engine.decide(&spec);
        (decision.plan.encode(), Some((spec, decision)))
    } else {
        // parent strips the highest set bit of our relative id
        let parent_rel = rel - (1 << rel.ilog2());
        let parent = (parent_rel + decider) % n;
        (comm.recv(parent, TAG_PLAN), None)
    };
    // forward to children: rel + 2^k for every k above our own highest bit
    let mut k = if rel == 0 { 0 } else { rel.ilog2() + 1 };
    loop {
        let child_rel = rel + (1usize << k);
        if child_rel >= n {
            break;
        }
        comm.send((child_rel + decider) % n, TAG_PLAN, wire.clone());
        k += 1;
    }
    let plan = Plan::decode(&wire).expect("auto: malformed plan broadcast");
    (plan, detail)
}

/// Execute an already-agreed `Allreduce` plan (the zero-overhead path for
/// iterative workloads that decided once and reuse the plan; see
/// [`Session`]). Every rank must pass the *same* plan. A hierarchical plan
/// needs the `topology` it was decided for; without one it falls back to
/// the flat schedule of the same flavour (correct, just not
/// topology-shaped).
pub fn allreduce_planned(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    plan: &Plan,
    topology: Option<&Topology>,
) -> Result<Vec<f32>> {
    let pcfg = cfg_for(plan, cfg);
    if plan.hierarchical {
        if let Some(topo) = topology.filter(|t| t.nranks() == comm.size()) {
            return hierarchy::allreduce_hier(comm, data, plan.flavor, topo, &pcfg);
        }
    }
    let segs = eff_segments(plan, &pcfg);
    // recursive-doubling schedules have no resilient framing: under a
    // resilience policy an rd plan degrades to the ring schedule of the
    // same flavour rather than running unprotected
    let rd_ok = pcfg.res.is_none();
    Ok(match (plan.flavor, plan.algo) {
        (Flavor::Mpi, Algo::Rd) if rd_ok => rd::allreduce_rd(comm, data, pcfg.mode.threads()),
        (Flavor::Mpi, _) => {
            mpi::allreduce_impl(comm, data, pcfg.mode.threads(), segs, pcfg.res.as_ref())
        }
        (Flavor::CColl, _) => ccoll::allreduce_impl(comm, data, &pcfg, segs)?,
        (Flavor::Hzccl, Algo::Rd) if rd_ok => rd::allreduce_rd_hz(comm, data, &pcfg)?,
        (Flavor::Hzccl, _) => hz::allreduce_impl(comm, data, &pcfg, segs)?,
    })
}

/// Execute an already-agreed `Reduce_scatter` plan. Returns the own chunk.
pub fn reduce_scatter_planned(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    plan: &Plan,
) -> Result<Vec<f32>> {
    let pcfg = cfg_for(plan, cfg);
    let segs = eff_segments(plan, &pcfg);
    Ok(match plan.flavor {
        Flavor::Mpi => {
            mpi::reduce_scatter_impl(comm, data, pcfg.mode.threads(), segs, pcfg.res.as_ref())
        }
        Flavor::CColl => ccoll::reduce_scatter_impl(comm, data, &pcfg, segs)?,
        Flavor::Hzccl => hz::reduce_scatter_impl(comm, data, &pcfg, segs)?,
    })
}

/// Execute an already-agreed `Reduce` plan.
pub fn reduce_planned(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
    plan: &Plan,
) -> Result<Option<Vec<f32>>> {
    let pcfg = cfg_for(plan, cfg);
    let segs = eff_segments(plan, &pcfg);
    Ok(match plan.flavor {
        Flavor::Mpi => {
            mpi::reduce_impl(comm, data, root, pcfg.mode.threads(), segs, pcfg.res.as_ref())
        }
        Flavor::CColl => ccoll::reduce_impl(comm, data, root, &pcfg, segs)?,
        Flavor::Hzccl => hz::reduce_impl(comm, data, root, &pcfg, segs)?,
    })
}

/// Execute an already-agreed `Bcast` plan.
pub fn bcast_planned(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
    plan: &Plan,
) -> Result<Vec<f32>> {
    let pcfg = cfg_for(plan, cfg);
    let segs = eff_segments(plan, &pcfg);
    Ok(match plan.flavor {
        Flavor::Mpi => mpi::bcast_impl(comm, data, root, total_len, segs, pcfg.res.as_ref()),
        Flavor::CColl => ccoll::bcast_impl(comm, data, root, total_len, &pcfg, segs)?,
        Flavor::Hzccl => hz::bcast_impl(comm, data, root, total_len, &pcfg, segs)?,
    })
}

/// Auto ring/rd `Allreduce(sum)`: rank 0 decides. On a two-tier `topology`
/// the candidate pool additionally holds the hierarchical schedules, so the
/// agreed plan may come back with [`Plan::hierarchical`] set.
pub fn allreduce(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    engine: &Engine,
    topology: Option<&Topology>,
) -> Result<AutoOutcome<Vec<f32>>> {
    let (plan, detail) =
        agree_on_plan(comm, engine, Op::Allreduce, data.len(), data, cfg, 0, topology);
    let value = allreduce_planned(comm, data, cfg, &plan, topology)?;
    Ok(AutoOutcome { value, plan, detail })
}

/// Auto ring `Reduce_scatter(sum)`: rank 0 decides. Returns the own chunk.
pub fn reduce_scatter(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    engine: &Engine,
) -> Result<AutoOutcome<Vec<f32>>> {
    let (plan, detail) =
        agree_on_plan(comm, engine, Op::ReduceScatter, data.len(), data, cfg, 0, None);
    let value = reduce_scatter_planned(comm, data, cfg, &plan)?;
    Ok(AutoOutcome { value, plan, detail })
}

/// Auto `Reduce(sum)` to `root`: the root decides (it holds the result, and
/// with it the strongest interest in the plan). Returns `Some(sum)` on the
/// root, `None` elsewhere.
pub fn reduce(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
    engine: &Engine,
) -> Result<AutoOutcome<Option<Vec<f32>>>> {
    let (plan, detail) = agree_on_plan(comm, engine, Op::Reduce, data.len(), data, cfg, root, None);
    let value = reduce_planned(comm, data, root, cfg, &plan)?;
    Ok(AutoOutcome { value, plan, detail })
}

/// Auto long-message `Bcast` from `root`: the root decides (only it holds
/// the data to probe). `data` is the root's full vector (ignored elsewhere);
/// every rank receives the whole `total_len` vector back.
pub fn bcast(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
    engine: &Engine,
) -> Result<AutoOutcome<Vec<f32>>> {
    let (plan, detail) = agree_on_plan(comm, engine, Op::Bcast, total_len, data, cfg, root, None);
    let value = bcast_planned(comm, data, root, total_len, cfg, &plan)?;
    Ok(AutoOutcome { value, plan, detail })
}

/// Per-rank plan memo for iterative workloads: the first call for a scenario
/// bucket pays the probe + agreement; repeats hit the memo and dispatch with
/// **zero** extra traffic. Correct because [`ScenarioSpec::bucket_key`]
/// depends only on rank-identical quantities (op, size, rank count, error
/// bound) — every rank hits or misses the memo in lockstep, so no rank
/// blocks in an agreement round its peers skipped.
#[derive(Debug, Clone, Default)]
pub struct Session {
    plans: std::collections::BTreeMap<String, Plan>,
}

impl Session {
    /// An empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Bucket key for a call shape (rank-identical by construction).
    fn key(op: Op, elems: usize, nranks: usize, eb: f64) -> String {
        ScenarioSpec::new(op, elems, nranks, eb, 1, 1.0).bucket_key()
    }

    /// Memoized auto `Allreduce`: agreement on first use per bucket only.
    pub fn allreduce(
        &mut self,
        comm: &mut Comm,
        data: &[f32],
        cfg: &CollectiveConfig,
        engine: &Engine,
    ) -> Result<AutoOutcome<Vec<f32>>> {
        let key = Session::key(Op::Allreduce, data.len(), comm.size(), cfg.eb);
        if let Some(&plan) = self.plans.get(&key) {
            let value = allreduce_planned(comm, data, cfg, &plan, None)?;
            return Ok(AutoOutcome { value, plan, detail: None });
        }
        let out = allreduce(comm, data, cfg, engine, None)?;
        self.plans.insert(key, out.plan);
        Ok(out)
    }

    /// Memoized auto `Reduce_scatter`.
    pub fn reduce_scatter(
        &mut self,
        comm: &mut Comm,
        data: &[f32],
        cfg: &CollectiveConfig,
        engine: &Engine,
    ) -> Result<AutoOutcome<Vec<f32>>> {
        let key = Session::key(Op::ReduceScatter, data.len(), comm.size(), cfg.eb);
        if let Some(&plan) = self.plans.get(&key) {
            let value = reduce_scatter_planned(comm, data, cfg, &plan)?;
            return Ok(AutoOutcome { value, plan, detail: None });
        }
        let out = reduce_scatter(comm, data, cfg, engine)?;
        self.plans.insert(key, out.plan);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ComputeTiming, SimBuilder};
    use tuner::DecisionSource;

    fn engine() -> Engine {
        Engine::paper()
    }

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(tuner::paper_prior(Flavor::Hzccl, false))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.003).sin() * (1.0 + rank as f32 * 0.01)).collect()
    }

    fn exact_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn auto_allreduce_agrees_and_is_correct() {
        let nranks = 4;
        let n = 1 << 14;
        let eb = 1e-3;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let eng = engine();
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce(comm, &data, &cfg, &eng, None).expect("auto allreduce")
            })
            .expect_clean()
            .outcomes;
        // every rank executed the same plan …
        let plan = outcomes[0].value.plan;
        assert!(outcomes.iter().all(|o| o.value.plan == plan), "plan mismatch across ranks");
        // … only the decider carries the explanation …
        assert!(outcomes[0].value.detail.is_some());
        assert!(outcomes[1..].iter().all(|o| o.value.detail.is_none()));
        // … and the result is the error-bounded sum on every rank.
        let exact = exact_sum(nranks, n);
        for o in &outcomes {
            let max_err = o
                .value
                .value
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            assert!(max_err <= nranks as f64 * eb + 1e-9, "err {max_err}");
        }
    }

    #[test]
    fn small_allreduce_takes_the_rd_shortcut() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let eng = engine();
        let cluster = SimBuilder::new(4).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), 256); // 1 KiB << small_message_bytes
                allreduce(comm, &data, &cfg, &eng, None).expect("auto allreduce")
            })
            .expect_clean()
            .outcomes;
        assert_eq!(outcomes[0].value.plan.algo, Algo::Rd);
        let (_, d) = outcomes[0].value.detail.as_ref().unwrap();
        assert_eq!(d.source, DecisionSource::SmallMessage);
    }

    #[test]
    fn auto_agrees_on_the_hierarchical_plan_on_a_two_tier_fabric() {
        // paper 8x8 topology at 1 MiB: the engine's two-tier forms must win,
        // every rank must execute the same hierarchical plan, and the result
        // stays the error-bounded sum
        let topo = Topology::paper(8, 8);
        let n = 1 << 18;
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let eng = engine();
        let cluster = SimBuilder::new(topo.nranks()).timing(modeled()).topology(topo);
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce(comm, &data, &cfg, &eng, Some(&topo)).expect("auto allreduce")
            })
            .expect_clean()
            .outcomes;
        let plan = outcomes[0].value.plan;
        // the model is free to pick whichever flavour's hierarchy prices
        // cheapest (at single-thread paper calibration the raw-summation
        // table makes mpi's intra phases nearly free), but the schedule
        // itself must be two-tier
        assert!(plan.hierarchical, "expected a hierarchical plan, got {}", plan.label());
        assert!(outcomes.iter().all(|o| o.value.plan == plan), "plan mismatch across ranks");
        let exact = exact_sum(topo.nranks(), n);
        for o in &outcomes {
            let max_err = o
                .value
                .value
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            assert!(max_err <= topo.nranks() as f64 * eb + 1e-3, "err {max_err}");
        }
    }

    #[test]
    fn auto_reduce_and_bcast_use_the_root_as_decider() {
        let nranks = 4;
        let n = 4096;
        let root = 2;
        let eb = 1e-3;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let eng = engine();

        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                reduce(comm, &data, root, &cfg, &eng).expect("auto reduce")
            })
            .expect_clean()
            .outcomes;
        let exact = exact_sum(nranks, n);
        for (r, o) in outcomes.iter().enumerate() {
            assert_eq!(o.value.detail.is_some(), r == root, "only the root explains");
            match (&o.value.value, r == root) {
                (Some(sum), true) => {
                    let max_err = sum
                        .iter()
                        .zip(&exact)
                        .map(|(a, b)| (a - b).abs() as f64)
                        .fold(0.0, f64::max);
                    assert!(max_err <= nranks as f64 * eb + 1e-9, "err {max_err}");
                }
                (None, false) => {}
                other => panic!("reduce value/root mismatch at rank {r}: {:?}", other.1),
            }
        }

        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = if comm.rank() == root { field(root, n) } else { Vec::new() };
                bcast(comm, &data, root, n, &cfg, &eng).expect("auto bcast")
            })
            .expect_clean()
            .outcomes;
        let want = field(root, n);
        for o in &outcomes {
            let max_err = o
                .value
                .value
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            assert!(max_err <= eb + 1e-9, "bcast err {max_err}");
        }
    }

    #[test]
    fn session_amortizes_the_agreement() {
        let nranks = 8;
        let n = 1 << 14;
        let cfg = CollectiveConfig::new(1e-3, Mode::SingleThread);
        let eng = engine();
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                let mut session = Session::new();
                let cold = session.allreduce(comm, &data, &cfg, &eng).expect("cold");
                let cold_elapsed = comm.elapsed();
                comm.reset_clock();
                let warm = session.allreduce(comm, &data, &cfg, &eng).expect("warm");
                (cold, cold_elapsed, warm, comm.elapsed())
            })
            .expect_clean()
            .outcomes;
        for o in &outcomes {
            let (cold, cold_elapsed, warm, warm_elapsed) = &o.value;
            assert_eq!(cold.plan, warm.plan, "memo must replay the agreed plan");
            assert!(warm.detail.is_none(), "warm calls never re-decide");
            assert!(
                warm_elapsed < cold_elapsed,
                "warm {warm_elapsed} must undercut cold {cold_elapsed} (no probe, no broadcast)"
            );
        }
        // decider's detail only on the cold call of rank 0
        assert!(outcomes[0].value.0.detail.is_some());
    }

    #[test]
    fn resilience_composes_with_auto_instead_of_being_stripped() {
        // regression: Auto used to silently strip the resilience policy, so
        // a resilient call was bit- and time-identical to a plain one. Now
        // the agreed plan runs over the resilient transport — same values
        // on a clean fabric, but the framing (CRC frames + ACK round trips)
        // visibly reaches the wire.
        let nranks = 4;
        let n = 1 << 12;
        let eb = 1e-3;
        let eng = engine();
        let run = |res: Option<crate::resilient::Resilience>| {
            let mut cfg = CollectiveConfig::new(eb, Mode::SingleThread);
            if let Some(r) = res {
                cfg = cfg.with_resilience(r);
            }
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let report = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce(comm, &data, &cfg, &eng, None).expect("auto allreduce").value
                })
                .expect_clean();
            (report.stats.makespan, report.outcomes[0].value.clone())
        };
        let (t_plain, v_plain) = run(None);
        let (t_res, v_res) = run(Some(crate::resilient::Resilience::default()));
        assert!(
            t_res > t_plain,
            "resilient framing must reach the wire under Auto: {t_res} vs {t_plain}"
        );
        for (a, b) in v_res.iter().zip(&v_plain) {
            assert!((a - b).abs() as f64 <= 2.0 * nranks as f64 * eb, "{a} vs {b}");
        }
    }

    #[test]
    fn auto_reduce_scatter_matches_static_result_shape() {
        let nranks = 4;
        let n = 4096;
        let cfg = CollectiveConfig::new(1e-3, Mode::SingleThread);
        let eng = engine();
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                reduce_scatter(comm, &data, &cfg, &eng).expect("auto reduce_scatter")
            })
            .expect_clean()
            .outcomes;
        let total: usize = outcomes.iter().map(|o| o.value.value.len()).sum();
        assert_eq!(total, n, "chunks tile the vector");
    }
}
