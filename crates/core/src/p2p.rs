//! CPR-P2P: compression-enabled point-to-point collectives (Zhou et al.
//! [25]) — the baseline *C-Coll itself* improves upon, included to complete
//! the paper's comparison chain (CPR-P2P → C-Coll → hZCCL).
//!
//! In CPR-P2P every hop is an independent compressed point-to-point
//! transfer: the sender compresses, the receiver decompresses — even when a
//! chunk is merely *forwarded*. The Allgather therefore pays a fresh
//! `CPR + DPR` per forwarding hop (`O(N)` DOC round trips per chunk),
//! whereas C-Coll compresses once and forwards compressed bytes
//! (Sec. III-C.2's `CPR + (N-1)·DPR`), and hZCCL eliminates the reduction
//! DOC altogether.

use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::config::CollectiveConfig;
use crate::mpi::{TAG_AG, TAG_RS};
use crate::pipeline::seg_tag;
use crate::resilient::{sendrecv_resilient, PayloadKind};
use fzlight::Result;
use hzdyn::{doc::reduce_in_place, ReduceOp};
use netsim::{Comm, OpKind};
use ompszp::OszpStream;

fn oszp_config(cfg: &CollectiveConfig) -> ompszp::Config {
    ompszp::Config::new(ompszp::ErrorBound::Abs(cfg.eb))
        .with_block_len(cfg.block_len)
        .with_threads(cfg.mode.threads())
}

/// CPR-P2P ring `Reduce_scatter(sum)`. Identical hop structure to C-Coll's
/// (the reduction inherently needs the DOC round trip per hop); kept
/// separate so the Allgather difference is the only variable in comparisons.
pub fn reduce_scatter(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    if n == 1 {
        return Ok(data.to_vec());
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let threads = cfg.mode.threads();
    let ocfg = oszp_config(cfg);

    let mut acc: Vec<f32> = data[chunks[(r + n - 1) % n].clone()].to_vec();
    for s in 0..n - 1 {
        let stream = comm.compute_labeled(OpKind::Cpr, acc.len() * 4, "p2p:compress", || {
            ompszp::compress(&acc, &ocfg)
        })?;
        let logical = acc.len() * 4;
        let acc_ref = &acc;
        let (got, kind) = sendrecv_resilient(
            comm,
            cfg.res.as_ref(),
            right,
            seg_tag(TAG_RS, s, 0),
            stream.as_bytes().to_vec(),
            PayloadKind::Opaque,
            logical,
            left,
            // degrade: the raw accumulator is the last good state
            |_| f32_to_bytes(acc_ref),
        );
        let mut tmp = match kind {
            PayloadKind::Opaque => {
                let received = OszpStream::from_bytes(got)?;
                comm.compute_labeled(OpKind::Dpr, received.n() * 4, "p2p:decompress", || {
                    ompszp::decompress(&received)
                })?
            }
            PayloadKind::RawF32 => bytes_to_f32(&got),
        };
        let local_idx = (r + 2 * n - s - 2) % n;
        let local = &data[chunks[local_idx].clone()];
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "p2p:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
        });
        acc = tmp;
    }
    Ok(acc)
}

/// CPR-P2P ring `Allgather`: every forwarding hop decompresses the received
/// chunk and recompresses it before sending on — the per-hop DOC cost that
/// C-Coll's compress-once/forward-bytes design eliminates.
pub fn allgather(
    comm: &mut Comm,
    own: &[f32],
    total_len: usize,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(total_len, n);
    assert_eq!(own.len(), chunks[r].len(), "own chunk has the wrong length");
    let ocfg = oszp_config(cfg);
    let mut out = vec![0f32; total_len];
    out[chunks[r].clone()].copy_from_slice(own);
    if n == 1 {
        return Ok(out);
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    for s in 0..n - 1 {
        let send_idx = (r + n - s) % n;
        let recv_idx = (r + 2 * n - s - 1) % n;
        // compress the chunk we forward — afresh on every hop
        let chunk = &out[chunks[send_idx].clone()];
        let stream = comm.compute_labeled(OpKind::Cpr, chunk.len() * 4, "p2p:compress", || {
            ompszp::compress(chunk, &ocfg)
        })?;
        let logical = chunk.len() * 4;
        let (got, kind) = sendrecv_resilient(
            comm,
            cfg.res.as_ref(),
            right,
            seg_tag(TAG_AG, s, 0),
            stream.as_bytes().to_vec(),
            PayloadKind::Opaque,
            logical,
            left,
            // degrade: re-serialize the raw chunk we were forwarding
            |_| f32_to_bytes(chunk),
        );
        let dst = &mut out[chunks[recv_idx].clone()];
        match kind {
            PayloadKind::Opaque => {
                let received = OszpStream::from_bytes(got)?;
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "p2p:decompress", || {
                    ompszp::decompress_into(&received, dst)
                })?;
            }
            PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&got)),
        }
    }
    Ok(out)
}

/// CPR-P2P ring `Allreduce(sum)`.
pub fn allreduce(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let own = reduce_scatter(comm, data, cfg)?;
    allgather(comm, &own, data.len(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.015).sin() * (rank + 1) as f32).collect()
    }

    #[test]
    fn p2p_allreduce_is_error_bounded() {
        let n = 1200;
        let nranks = 4;
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce(comm, &data, &cfg).expect("p2p allreduce")
            })
            .expect_clean()
            .outcomes;
        let mut expect = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in expect.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        // per-hop recompression accumulates error: every one of the
        // 2(N-1) hops can re-quantize
        let tol = (2.0 * (nranks as f64) + 2.0) * eb;
        for o in outcomes {
            for (a, b) in o.value.iter().zip(&expect) {
                assert!(((a - b).abs() as f64) <= tol, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn p2p_allgather_pays_cpr_every_hop() {
        // CPR-P2P charges ~(N-1) compressions in the Allgather; C-Coll
        // charges one
        let n = 64 * 40;
        let nranks = 8;
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let base: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        let p2p_cpr = {
            let outcomes = cluster
                .run(|comm| {
                    let chunks = node_chunks(n, comm.size());
                    let own = base[chunks[comm.rank()].clone()].to_vec();
                    allgather(comm, &own, n, &cfg).expect("p2p ag");
                    comm.breakdown().cpr
                })
                .expect_clean()
                .outcomes;
            outcomes.iter().map(|o| o.value).sum::<f64>()
        };
        let ccoll_cpr = {
            let outcomes = cluster
                .run(|comm| {
                    let chunks = node_chunks(n, comm.size());
                    let own = base[chunks[comm.rank()].clone()].to_vec();
                    crate::ccoll::allgather(comm, &own, n, &cfg).expect("ccoll ag");
                    comm.breakdown().cpr
                })
                .expect_clean()
                .outcomes;
            outcomes.iter().map(|o| o.value).sum::<f64>()
        };
        assert!(p2p_cpr > 5.0 * ccoll_cpr, "p2p CPR {p2p_cpr} should dwarf C-Coll's {ccoll_cpr}");
    }

    #[test]
    fn comparison_chain_p2p_ccoll_hzccl() {
        // the paper's lineage: hZCCL < C-Coll < CPR-P2P in virtual time
        let n = 1 << 16;
        let nranks = 8;
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let base: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.004).sin()).collect();
        let fields: Vec<Vec<f32>> = (0..nranks)
            .map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect())
            .collect();
        let run = |which: usize| -> f64 {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let stats = cluster
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    match which {
                        0 => {
                            allreduce(comm, data, &cfg).expect("p2p");
                        }
                        1 => {
                            crate::ccoll::allreduce_impl(comm, data, &cfg, 1).expect("ccoll");
                        }
                        _ => {
                            crate::hz::allreduce_impl(comm, data, &cfg, 1).expect("hz");
                        }
                    }
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let (t_p2p, t_ccoll, t_hz) = (run(0), run(1), run(2));
        assert!(t_hz < t_ccoll, "hz {t_hz} vs ccoll {t_ccoll}");
        assert!(t_ccoll < t_p2p, "ccoll {t_ccoll} vs p2p {t_p2p}");
    }
}
