//! Topology-aware hierarchical Allreduce (two-tier schedules).
//!
//! On a two-tier fabric ([`netsim::Topology`]) the flat ring wastes the
//! fast node-local links: all `N-1` ring steps are paced by the slowest
//! (inter-node, possibly oversubscribed) edge on the cycle. The
//! hierarchical schedule splits the collective along the tier boundary:
//!
//! 1. **Intra-node Reduce_scatter** (tag base `h-rs`): a raw ring over the
//!    node's `ppn` ranks. The node-local wire is fast enough that
//!    compression would only add CPR/DPR cost, so this tier moves raw f32
//!    bytes; after `ppn-1` steps local rank `li` owns node chunk `li`,
//!    reduced across the node. Node-local transport is shared-memory: the
//!    f32↔bytes views are pointer reinterpretations, so (unlike the
//!    inter-node MPI phase, which models NIC staging copies like the flat
//!    [`crate::mpi`] ring) they carry no modeled compute cost — the only
//!    node-local charges are the 120 Gb/s wire serialization and the raw
//!    summation itself.
//! 2. **Inter-node ring Allreduce** (tag base `h-ring`): the `nodes` ranks
//!    sharing a local index form a ring across nodes and allreduce their
//!    `E/ppn` slice. Only this tier compresses — hZCCL's homomorphic
//!    streams, C-Coll's DOC triple, or raw for the MPI baseline — because
//!    only this tier pays the slow, oversubscribed links the compression
//!    is meant to shrink.
//! 3. **Intra-node Allgather** (tag base `h-ag`): a raw ring redistributes
//!    the fully reduced slices inside each node.
//!
//! Each phase owns a disjoint tag base (8/9/10 `<< 32`, decoded by
//! [`crate::pipeline::decode_tag`]), so intra- and inter-node traffic can
//! never be confused on the wire — and the flight recorder's per-tier
//! critical-path attribution ([`netsim::TierTime`]) can reconcile every
//! message against the tier its phase was scheduled on.
//!
//! The wire volume per rank drops from `2(N-1)/N · E` flat-ring bytes on
//! the slow tier to `2(nodes-1)/nodes · E/ppn` (compressed), at the cost
//! of `2(ppn-1)/ppn · E` raw bytes on the fast tier — the trade
//! [`costmodel::allreduce_hier_hzccl`] prices and the tuner's
//! `hierarchical` plan dimension exploits. Only Allreduce has a
//! hierarchical schedule; the other verbs fall back to their flat rings
//! when a topology is attached.
//!
//! Results are error-bounded exactly like the flat flavours (one
//! quantization per compressed hop), but not bit-identical to the flat
//! schedule: the reduction tree associates sums differently.

use crate::ccoll::oszp_config;
use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::config::CollectiveConfig;
use crate::pipeline::seg_tag;
use fzlight::{compress_resolved, CompressedStream, Result};
use hzdyn::{doc::reduce_in_place, homomorphic_sum, ReduceOp};
use netsim::{Comm, OpKind, Topology};
use ompszp::OszpStream;
use tuner::Flavor;

/// Tag base of the intra-node Reduce_scatter phase.
pub(crate) const TAG_HRS: u64 = 8 << 32;
/// Tag base of the inter-node ring Allreduce phase (both its
/// reduce-scatter steps and its allgather steps, at disjoint step ids).
pub(crate) const TAG_HRING: u64 = 9 << 32;
/// Tag base of the intra-node Allgather phase.
pub(crate) const TAG_HAG: u64 = 10 << 32;

/// Hierarchical `Allreduce(sum)`: intra-node reduce-scatter, inter-node
/// ring allreduce (compressed per `flavor`), intra-node allgather.
/// `topo.nranks()` must equal the communicator size (the callers in
/// [`crate::collectives`] and [`crate::auto`] enforce it).
pub(crate) fn allreduce_hier(
    comm: &mut Comm,
    data: &[f32],
    flavor: Flavor,
    topo: &Topology,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    debug_assert_eq!(topo.nranks(), comm.size(), "topology and communicator disagree");
    let threads = cfg.mode.threads();
    let own = intra_reduce_scatter(comm, data, topo, threads);
    let reduced = match flavor {
        Flavor::Mpi => inter_allreduce_raw(comm, &own, topo, threads),
        Flavor::CColl => inter_allreduce_doc(comm, &own, topo, cfg)?,
        Flavor::Hzccl => inter_allreduce_hz(comm, &own, topo, cfg)?,
    };
    Ok(intra_allgather(comm, &reduced, data.len(), topo))
}

/// Ring neighbours inside the rank's node: `(right, left)` global ranks at
/// local index `li ± 1` (mod `ppn`).
fn intra_neighbours(topo: &Topology, rank: usize) -> (usize, usize) {
    let ppn = topo.ppn;
    let base = topo.node_of(rank) * ppn;
    let li = topo.local_index(rank);
    (base + (li + 1) % ppn, base + (li + ppn - 1) % ppn)
}

/// Ring neighbours across nodes at the rank's local index: `(right, left)`
/// global ranks on node `node ± 1` (mod `nodes`).
fn inter_neighbours(topo: &Topology, rank: usize) -> (usize, usize) {
    let nodes = topo.nodes;
    let node = topo.node_of(rank);
    let li = topo.local_index(rank);
    (((node + 1) % nodes) * topo.ppn + li, ((node + nodes - 1) % nodes) * topo.ppn + li)
}

/// Phase 1: raw ring Reduce_scatter over the node's `ppn` ranks. Returns
/// node chunk `local_index(rank)` of `data`, summed across the node.
///
/// The f32↔bytes conversions are *not* charged as modeled compute:
/// node-local exchange is shared-memory, where the byte view of an f32
/// buffer is a reinterpretation, not a staging copy. The summation is the
/// phase's only compute charge.
fn intra_reduce_scatter(
    comm: &mut Comm,
    data: &[f32],
    topo: &Topology,
    threads: usize,
) -> Vec<f32> {
    let ppn = topo.ppn;
    let li = topo.local_index(comm.rank());
    let chunks = node_chunks(data.len(), ppn);
    if ppn == 1 {
        return data.to_vec();
    }
    let (right, left) = intra_neighbours(topo, comm.rank());
    let mut acc: Vec<f32> = data[chunks[(li + ppn - 1) % ppn].clone()].to_vec();
    for s in 0..ppn - 1 {
        let payload = f32_to_bytes(&acc);
        let got = comm.sendrecv(right, seg_tag(TAG_HRS, s, 0), payload, left);
        let mut tmp = bytes_to_f32(&got);
        let local_idx = (li + 2 * ppn - s - 2) % ppn;
        let local = &data[chunks[local_idx].clone()];
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "hier:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
        });
        acc = tmp;
    }
    acc
}

/// Phase 3: raw ring Allgather over the node's `ppn` ranks. `own` is node
/// chunk `local_index(rank)`; returns the full `total_len` vector. Like
/// [`intra_reduce_scatter`], the byte views are shared-memory
/// reinterpretations with no modeled compute cost.
fn intra_allgather(comm: &mut Comm, own: &[f32], total_len: usize, topo: &Topology) -> Vec<f32> {
    let ppn = topo.ppn;
    let li = topo.local_index(comm.rank());
    let chunks = node_chunks(total_len, ppn);
    assert_eq!(own.len(), chunks[li].len(), "own chunk has the wrong length");
    let mut out = vec![0f32; total_len];
    out[chunks[li].clone()].copy_from_slice(own);
    if ppn == 1 {
        return out;
    }
    let (right, left) = intra_neighbours(topo, comm.rank());
    for s in 0..ppn - 1 {
        let send_idx = (li + ppn - s) % ppn;
        let recv_idx = (li + 2 * ppn - s - 1) % ppn;
        let payload = f32_to_bytes(&out[chunks[send_idx].clone()]);
        let got = comm.sendrecv(right, seg_tag(TAG_HAG, s, 0), payload, left);
        let vals = bytes_to_f32(&got);
        out[chunks[recv_idx].clone()].copy_from_slice(&vals);
    }
    out
}

/// Phase 2, MPI flavour: raw ring Allreduce of `slice` across the `nodes`
/// ranks sharing this rank's local index. Reduce-scatter steps use ring
/// step ids `0..nodes-1`, allgather steps `nodes-1..2(nodes-1)` — one tag
/// base, disjoint sub-spaces.
fn inter_allreduce_raw(
    comm: &mut Comm,
    slice: &[f32],
    topo: &Topology,
    threads: usize,
) -> Vec<f32> {
    let nodes = topo.nodes;
    if nodes == 1 {
        return slice.to_vec();
    }
    let g = topo.node_of(comm.rank());
    let (right, left) = inter_neighbours(topo, comm.rank());
    let chunks = node_chunks(slice.len(), nodes);
    let mut acc: Vec<f32> = slice[chunks[(g + nodes - 1) % nodes].clone()].to_vec();
    for s in 0..nodes - 1 {
        let payload =
            comm.compute_labeled(OpKind::Other, acc.len() * 4, "mpi:pack", || f32_to_bytes(&acc));
        let got = comm.sendrecv(right, seg_tag(TAG_HRING, s, 0), payload, left);
        let mut tmp =
            comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
        let local_idx = (g + 2 * nodes - s - 2) % nodes;
        let local = &slice[chunks[local_idx].clone()];
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "mpi:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
        });
        acc = tmp;
    }
    let mut out = vec![0f32; slice.len()];
    out[chunks[g].clone()].copy_from_slice(&acc);
    for s in 0..nodes - 1 {
        let send_idx = (g + nodes - s) % nodes;
        let recv_idx = (g + 2 * nodes - s - 1) % nodes;
        let payload =
            comm.compute_labeled(OpKind::Other, chunks[send_idx].len() * 4, "mpi:pack", || {
                f32_to_bytes(&out[chunks[send_idx].clone()])
            });
        let got = comm.sendrecv(right, seg_tag(TAG_HRING, nodes - 1 + s, 0), payload, left);
        let vals =
            comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
        out[chunks[recv_idx].clone()].copy_from_slice(&vals);
    }
    out
}

/// Phase 2, hZCCL flavour: the homomorphic ring Allreduce of `slice`
/// across nodes — compress the slice's node-chunks once, homomorphic-sum
/// compressed blocks every reduce-scatter step, forward streams verbatim
/// through the allgather steps, decompress once at the end (the flat
/// fused workflow of [`crate::hz`], confined to the slow tier).
fn inter_allreduce_hz(
    comm: &mut Comm,
    slice: &[f32],
    topo: &Topology,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let nodes = topo.nodes;
    if nodes == 1 {
        return Ok(slice.to_vec());
    }
    let threads = cfg.mode.threads();
    let g = topo.node_of(comm.rank());
    let (right, left) = inter_neighbours(topo, comm.rank());
    let chunks = node_chunks(slice.len(), nodes);

    let comp: Vec<CompressedStream> =
        comm.compute_labeled(OpKind::Cpr, slice.len() * 4, "hz:compress-all", || {
            chunks
                .iter()
                .map(|c| compress_resolved(&slice[c.clone()], cfg.eb, cfg.block_len, threads))
                .collect::<Result<Vec<_>>>()
        })?;

    let mut send = comp[(g + nodes - 1) % nodes].clone();
    for s in 0..nodes - 1 {
        let send_idx = (g + 2 * nodes - s - 1) % nodes;
        let got = comm.sendrecv_compressed(
            right,
            seg_tag(TAG_HRING, s, 0),
            send.as_bytes().to_vec(),
            chunks[send_idx].len() * 4,
            left,
        );
        let received = CompressedStream::from_bytes(got)?;
        let idx = (g + 2 * nodes - s - 2) % nodes;
        send =
            comm.compute_labeled(OpKind::Hpr, chunks[idx].len() * 4, "hz:homomorphic-sum", || {
                homomorphic_sum(&received, &comp[idx])
            })?;
    }

    // Allgather steps: forward the reduced streams verbatim, no
    // recompression (the fused-workflow property, kept on the slow tier).
    let mut slots: Vec<Option<Vec<u8>>> = vec![None; nodes];
    slots[g] = Some(send.into_bytes());
    for s in 0..nodes - 1 {
        let send_idx = (g + nodes - s) % nodes;
        let recv_idx = (g + 2 * nodes - s - 1) % nodes;
        let payload = slots[send_idx].clone().expect("chunk to forward not yet received");
        let got = comm.sendrecv_compressed(
            right,
            seg_tag(TAG_HRING, nodes - 1 + s, 0),
            payload,
            chunks[send_idx].len() * 4,
            left,
        );
        slots[recv_idx] = Some(got);
    }
    let mut out = vec![0f32; slice.len()];
    for (idx, bytes) in slots.into_iter().enumerate() {
        let stream = CompressedStream::from_bytes(bytes.expect("ring left a hole"))?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

/// Phase 2, C-Coll flavour: DOC ring Allreduce of `slice` across nodes —
/// compress/decompress/reduce every reduce-scatter step, compress once and
/// decompress per hop through the allgather steps.
fn inter_allreduce_doc(
    comm: &mut Comm,
    slice: &[f32],
    topo: &Topology,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let nodes = topo.nodes;
    if nodes == 1 {
        return Ok(slice.to_vec());
    }
    let threads = cfg.mode.threads();
    let ocfg = oszp_config(cfg);
    let g = topo.node_of(comm.rank());
    let (right, left) = inter_neighbours(topo, comm.rank());
    let chunks = node_chunks(slice.len(), nodes);

    let mut acc: Vec<f32> = slice[chunks[(g + nodes - 1) % nodes].clone()].to_vec();
    for s in 0..nodes - 1 {
        let stream = comm.compute_labeled(OpKind::Cpr, acc.len() * 4, "ccoll:compress", || {
            ompszp::compress(&acc, &ocfg)
        })?;
        let got = comm.sendrecv_compressed(
            right,
            seg_tag(TAG_HRING, s, 0),
            stream.as_bytes().to_vec(),
            acc.len() * 4,
            left,
        );
        let received = OszpStream::from_bytes(got)?;
        let mut tmp =
            comm.compute_labeled(OpKind::Dpr, received.n() * 4, "ccoll:decompress", || {
                ompszp::decompress(&received)
            })?;
        let local_idx = (g + 2 * nodes - s - 2) % nodes;
        let local = &slice[chunks[local_idx].clone()];
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "ccoll:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
        });
        acc = tmp;
    }

    let mut out = vec![0f32; slice.len()];
    out[chunks[g].clone()].copy_from_slice(&acc);
    let own_stream = comm.compute_labeled(OpKind::Cpr, acc.len() * 4, "ccoll:compress", || {
        ompszp::compress(&acc, &ocfg)
    })?;
    let mut slots: Vec<Option<Vec<u8>>> = vec![None; nodes];
    slots[g] = Some(own_stream.as_bytes().to_vec());
    for s in 0..nodes - 1 {
        let send_idx = (g + nodes - s) % nodes;
        let recv_idx = (g + 2 * nodes - s - 1) % nodes;
        let payload = slots[send_idx].clone().expect("chunk to forward not yet received");
        let got = comm.sendrecv_compressed(
            right,
            seg_tag(TAG_HRING, nodes - 1 + s, 0),
            payload,
            chunks[send_idx].len() * 4,
            left,
        );
        slots[recv_idx] = Some(got);
    }
    for (idx, bytes) in slots.into_iter().enumerate() {
        if idx == g {
            continue; // own chunk stays raw, as in the flat C-Coll allgather
        }
        let stream = OszpStream::from_bytes(bytes.expect("ring left a hole"))?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::pipeline::decode_tag;
    use netsim::{ComputeTiming, Event, LinkTier, SimBuilder, ThroughputModel, TraceConfig};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.013).sin() * (rank + 1) as f32 * 1.7).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn hierarchical_allreduce_matches_direct_sum_for_every_flavour() {
        let n = 1200;
        let eb = 1e-4;
        for (nodes, ppn) in [(2usize, 2usize), (2, 3), (3, 2), (1, 4), (4, 1)] {
            let nranks = nodes * ppn;
            let topo = Topology::two_tier(
                nodes,
                ppn,
                netsim::NetConfig { latency_s: 5e-7, bandwidth_gbps: 120.0, congestion: 0.0 },
                netsim::NetConfig::default(),
            );
            let expect = direct_sum(nranks, n);
            for flavor in [Flavor::Mpi, Flavor::CColl, Flavor::Hzccl] {
                let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
                let cluster = SimBuilder::new(nranks).timing(modeled()).topology(topo);
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        allreduce_hier(comm, &data, flavor, &topo, &cfg).expect("hier allreduce")
                    })
                    .expect_clean()
                    .outcomes;
                // one quantization per compressed hop on the inter tier;
                // f32 association differences add a small float slack
                let tol = match flavor {
                    Flavor::Mpi => 1e-3,
                    Flavor::Hzccl => nranks as f64 * eb + 1e-3,
                    Flavor::CColl => 2.0 * nranks as f64 * eb + 1e-3,
                };
                for o in &outcomes {
                    assert_eq!(o.value.len(), n);
                    for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                        assert!(
                            ((a - b).abs() as f64) <= tol,
                            "{nodes}x{ppn} {flavor:?} at {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn intra_and_inter_phases_never_share_a_tag_or_a_tier() {
        let topo = Topology::paper(2, 3);
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster =
            SimBuilder::new(6).timing(modeled()).topology(topo).trace(TraceConfig::default());
        let report = cluster
            .run(|comm| {
                let data = field(comm.rank(), 600);
                allreduce_hier(comm, &data, Flavor::Hzccl, &topo, &cfg).expect("hier allreduce")
            })
            .expect_clean();
        let mut intra_tags = std::collections::BTreeSet::new();
        let mut inter_tags = std::collections::BTreeSet::new();
        let mut sends = 0usize;
        for t in &report.traces {
            for ev in &t.events {
                let &Event::Send { tag, tier, .. } = ev else { continue };
                sends += 1;
                let info = decode_tag(tag).expect("hierarchical sends use collective tags");
                // the phase a tag encodes must match the tier the fabric
                // routed it through — reconciliation of schedule vs. wire
                match info.phase {
                    "h-rs" | "h-ag" => {
                        assert_eq!(tier, LinkTier::Intra, "intra phase crossed tier {tier:?}");
                        intra_tags.insert(tag);
                    }
                    "h-ring" => {
                        assert_eq!(tier, LinkTier::Inter, "inter phase crossed tier {tier:?}");
                        inter_tags.insert(tag);
                    }
                    other => panic!("unexpected phase {other} in a hierarchical run"),
                }
            }
        }
        assert!(sends > 0, "traced run must record sends");
        assert!(!intra_tags.is_empty() && !inter_tags.is_empty());
        assert!(intra_tags.is_disjoint(&inter_tags), "tiers must not share tags");
    }

    /// The ISSUE's golden acceptance criterion: at the paper calibration on
    /// 8 nodes x 8 ranks/node (10x slower inter-node links), the
    /// hierarchical hz Allreduce beats the flat hz ring by >= 30% of
    /// simulated time at 1 MiB per rank.
    #[test]
    fn hierarchical_hz_beats_flat_hz_by_30_percent_on_the_paper_topology() {
        let topo = Topology::paper(8, 8);
        let n = (1usize << 20) / 4; // 1 MiB of f32
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let timing = ComputeTiming::Modeled(tuner::paper_prior(Flavor::Hzccl, false));
        let flat = {
            let cluster = SimBuilder::new(topo.nranks()).timing(timing).topology(topo);
            let stats = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    crate::hz::allreduce_impl(comm, &data, &cfg, 1).expect("flat hz");
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let hier = {
            let cluster = SimBuilder::new(topo.nranks()).timing(timing).topology(topo);
            let stats = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_hier(comm, &data, Flavor::Hzccl, &topo, &cfg).expect("hier hz");
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        assert!(
            hier <= 0.7 * flat,
            "hierarchical must win by >= 30%: hier {hier:.6}s vs flat {flat:.6}s"
        );
    }
}
