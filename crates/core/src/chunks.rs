//! Node-level data chunking for ring collectives, plus raw `f32 <-> bytes`
//! framing for the uncompressed baseline.

use std::ops::Range;

/// Split `n` elements into `nranks` contiguous node chunks (chunk `i` is the
/// block that Reduce_scatter delivers to rank `i`); the last chunk absorbs
/// the remainder.
///
/// Panics if `n < nranks` — ring collectives need at least one element per
/// rank.
pub fn node_chunks(n: usize, nranks: usize) -> Vec<Range<usize>> {
    assert!(nranks > 0, "need at least one rank");
    assert!(n >= nranks, "ring collectives need n >= nranks (n={n}, nranks={nranks})");
    let base = n / nranks;
    (0..nranks)
        .map(|i| {
            let start = i * base;
            let end = if i == nranks - 1 { n } else { start + base };
            start..end
        })
        .collect()
}

/// Serialize an `f32` slice to little-endian bytes (wire format of the
/// uncompressed baseline).
pub fn f32_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes back to `f32`s. Panics on non-multiple-of-
/// four input (framing bug, not data corruption).
pub fn bytes_to_f32(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(4), "payload is not a whole number of f32s");
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_and_last_absorbs() {
        let c = node_chunks(10, 3);
        assert_eq!(c, vec![0..3, 3..6, 6..10]);
        let c = node_chunks(8, 8);
        assert!(c.iter().all(|r| r.len() == 1));
    }

    #[test]
    #[should_panic(expected = "n >= nranks")]
    fn too_few_elements_panics() {
        node_chunks(3, 4);
    }

    #[test]
    fn f32_bytes_roundtrip() {
        let data = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 3.4e38];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&data)), data);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_bytes_panic() {
        bytes_to_f32(&[1, 2, 3]);
    }
}
