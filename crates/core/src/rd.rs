//! Recursive-doubling `Allreduce` — the small-message algorithm MPICH pairs
//! with the ring [8]. Extension beyond the paper's evaluation: the
//! homomorphic variant shows the co-design also composes with
//! latency-optimal algorithms (log2(N) rounds of full-vector exchange, each
//! reduced directly on compressed data).
//!
//! Non-power-of-two rank counts use the standard fold/unfold: the first
//! `2*r` ranks (where `r = N - 2^floor(log2 N)`) pre-combine pairwise so a
//! power-of-two core runs the doubling, then results are forwarded back.

use crate::config::CollectiveConfig;
use fzlight::{compress_resolved, decompress, CompressedStream, Result};
use hzdyn::{doc::reduce_in_place, homomorphic_sum, ReduceOp};
use netsim::{Comm, OpKind};

const TAG_RD: u64 = 5 << 32;
const TAG_FOLD: u64 = 6 << 32;

/// Largest power of two `<= n`.
fn pow2_floor(n: usize) -> usize {
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Plan of the fold/unfold for non-power-of-two counts.
///
/// With `rem = n - pow2`, ranks `0..2*rem` pair up (`even` sends to `odd`),
/// the odd ranks plus `2*rem..n` form the power-of-two core, and after the
/// doubling each odd rank sends the result back to its even partner.
struct RdPlan {
    pow2: usize,
    rem: usize,
}

impl RdPlan {
    fn new(n: usize) -> RdPlan {
        let pow2 = pow2_floor(n);
        RdPlan { pow2, rem: n - pow2 }
    }

    /// This rank's id within the power-of-two core, or `None` if it folds
    /// out after the pre-combine.
    fn core_id(&self, rank: usize) -> Option<usize> {
        if rank < 2 * self.rem {
            if rank % 2 == 1 {
                Some(rank / 2)
            } else {
                None
            }
        } else {
            Some(rank - self.rem)
        }
    }

    /// Inverse of [`RdPlan::core_id`].
    fn core_to_rank(&self, core: usize) -> usize {
        if core < self.rem {
            2 * core + 1
        } else {
            core + self.rem
        }
    }
}

/// Recursive-doubling `Allreduce(sum)` on raw values (MPI baseline).
pub fn allreduce_rd(comm: &mut Comm, data: &[f32], cpt_threads: usize) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    let mut acc = data.to_vec();
    if n == 1 {
        return acc;
    }
    let plan = RdPlan::new(n);

    // fold: even partners send their vector to the odd ones
    if r < 2 * plan.rem {
        if r.is_multiple_of(2) {
            let payload = comm.compute_labeled(OpKind::Other, acc.len() * 4, "rd:pack", || {
                crate::chunks::f32_to_bytes(&acc)
            });
            comm.send(r + 1, TAG_FOLD, payload);
            let got = comm.recv(r + 1, TAG_FOLD + 1);
            return comm.compute_labeled(OpKind::Other, got.len(), "rd:unpack", || {
                crate::chunks::bytes_to_f32(&got)
            });
        }
        let got = comm.recv(r - 1, TAG_FOLD);
        let vals = comm.compute_labeled(OpKind::Other, got.len(), "rd:unpack", || {
            crate::chunks::bytes_to_f32(&got)
        });
        comm.compute_labeled(OpKind::Cpt, acc.len() * 4, "rd:reduce", || {
            reduce_in_place(&mut acc, &vals, ReduceOp::Sum, cpt_threads)
        });
    }
    let core = plan.core_id(r).expect("folded ranks returned above");

    // doubling over the power-of-two core
    let mut mask = 1usize;
    while mask < plan.pow2 {
        let peer = plan.core_to_rank(core ^ mask);
        let payload = comm.compute_labeled(OpKind::Other, acc.len() * 4, "rd:pack", || {
            crate::chunks::f32_to_bytes(&acc)
        });
        let got = comm.sendrecv(peer, TAG_RD + mask as u64, payload, peer);
        let vals = comm.compute_labeled(OpKind::Other, got.len(), "rd:unpack", || {
            crate::chunks::bytes_to_f32(&got)
        });
        comm.compute_labeled(OpKind::Cpt, acc.len() * 4, "rd:reduce", || {
            reduce_in_place(&mut acc, &vals, ReduceOp::Sum, cpt_threads)
        });
        mask <<= 1;
    }

    // unfold: odd partners return the result to the even ones
    if r < 2 * plan.rem {
        let payload = comm.compute_labeled(OpKind::Other, acc.len() * 4, "rd:pack", || {
            crate::chunks::f32_to_bytes(&acc)
        });
        comm.send(r - 1, TAG_FOLD + 1, payload);
    }
    acc
}

/// Recursive-doubling `Allreduce(sum)` with homomorphic reduction: each rank
/// compresses once, every doubling round exchanges compressed vectors and
/// reduces them with `hZ-dynamic`, and each rank decompresses once at the
/// end — `1·CPR + log2(N)·HPR + 1·DPR` per rank.
pub fn allreduce_rd_hz(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let threads = cfg.mode.threads();
    let bytes = data.len() * 4;
    let mut acc = comm.compute_labeled(OpKind::Cpr, bytes, "rd:compress", || {
        compress_resolved(data, cfg.eb, cfg.block_len, threads)
    })?;
    if n == 1 {
        return comm.compute_labeled(OpKind::Dpr, bytes, "rd:decompress", || decompress(&acc));
    }
    let plan = RdPlan::new(n);

    if r < 2 * plan.rem {
        if r.is_multiple_of(2) {
            comm.send_compressed(r + 1, TAG_FOLD, acc.into_bytes(), bytes);
            let got = comm.recv(r + 1, TAG_FOLD + 1);
            let stream = CompressedStream::from_bytes(got)?;
            return comm
                .compute_labeled(OpKind::Dpr, bytes, "rd:decompress", || decompress(&stream));
        }
        let got = comm.recv(r - 1, TAG_FOLD);
        let stream = CompressedStream::from_bytes(got)?;
        acc = comm.compute_labeled(OpKind::Hpr, bytes, "rd:homomorphic-sum", || {
            homomorphic_sum(&acc, &stream)
        })?;
    }
    let core = plan.core_id(r).expect("folded ranks returned above");

    let mut mask = 1usize;
    while mask < plan.pow2 {
        let peer = plan.core_to_rank(core ^ mask);
        let got = comm.sendrecv_compressed(
            peer,
            TAG_RD + mask as u64,
            acc.as_bytes().to_vec(),
            bytes,
            peer,
        );
        let stream = CompressedStream::from_bytes(got)?;
        acc = comm.compute_labeled(OpKind::Hpr, bytes, "rd:homomorphic-sum", || {
            homomorphic_sum(&acc, &stream)
        })?;
        mask <<= 1;
    }

    if r < 2 * plan.rem {
        comm.send_compressed(r - 1, TAG_FOLD + 1, acc.as_bytes().to_vec(), bytes);
    }
    comm.compute_labeled(OpKind::Dpr, bytes, "rd:decompress", || decompress(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.02).sin() * (rank + 1) as f32).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn plan_covers_power_of_two_and_odd_counts() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16, 31] {
            let plan = RdPlan::new(n);
            assert_eq!(plan.pow2 + plan.rem, n);
            // every core id maps back to a unique rank
            let mut seen = vec![false; n];
            for c in 0..plan.pow2 {
                let r = plan.core_to_rank(c);
                assert!(!seen[r], "n={n}: rank {r} mapped twice");
                seen[r] = true;
                assert_eq!(plan.core_id(r), Some(c), "n={n} core {c}");
            }
        }
    }

    #[test]
    fn rd_matches_direct_sum_for_all_counts() {
        for nranks in [1usize, 2, 3, 4, 5, 7, 8, 11, 16] {
            let n = 300;
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_rd(comm, &data, 1)
                })
                .expect_clean()
                .outcomes;
            let expect = direct_sum(nranks, n);
            for (r, o) in outcomes.iter().enumerate() {
                for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                    assert!((a - b).abs() <= 1e-3, "nranks={nranks} rank={r} at {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rd_hz_is_error_bounded_for_all_counts() {
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        for nranks in [1usize, 2, 3, 5, 8, 13] {
            let n = 400;
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_rd_hz(comm, &data, &cfg).expect("rd hz")
                })
                .expect_clean()
                .outcomes;
            let expect = direct_sum(nranks, n);
            let tol = nranks as f64 * eb + 1e-6;
            for o in &outcomes {
                for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                    assert!(((a - b).abs() as f64) <= tol, "nranks={nranks} at {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rd_hz_agrees_with_ring_hz_on_integers() {
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let nranks = 6;
        let n = 600;
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let ring = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                crate::hz::allreduce_impl(comm, &data, &cfg, 1).expect("ring")
            })
            .expect_clean()
            .outcomes;
        let rd = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce_rd_hz(comm, &data, &cfg).expect("rd")
            })
            .expect_clean()
            .outcomes;
        // both sum the same quantization integers (in different orders, but
        // integer addition is associative) => identical reconstructions
        assert_eq!(ring[0].value, rd[0].value);
    }

    #[test]
    fn rd_beats_ring_for_tiny_messages_in_virtual_time() {
        // latency-bound regime: log2(N) rounds beat 2(N-1) rounds
        let nranks = 16;
        let n = 64; // 256 B per rank
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let t_ring = {
            let s = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    crate::hz::allreduce_impl(comm, &data, &cfg, 1).expect("ring");
                })
                .expect_clean()
                .stats;
            s.makespan
        };
        let t_rd = {
            let s = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_rd_hz(comm, &data, &cfg).expect("rd");
                })
                .expect_clean()
                .stats;
            s.makespan
        };
        assert!(t_rd < t_ring, "rd {t_rd} vs ring {t_ring}");
    }
}
