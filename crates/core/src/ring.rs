//! Shared ring-Allgather byte forwarding, used by both C-Coll's compressed
//! Allgather (ompSZp streams) and hZCCL's fused Allgather (fZ-light
//! streams): the wire layer is payload-agnostic.

use crate::mpi::TAG_AG;
use netsim::Comm;

/// Ring-forward opaque per-chunk payloads: rank `r` contributes
/// `own_payload` as chunk `r`; after `N-1` rounds every rank holds every
/// chunk's payload. Returns the payloads indexed by chunk.
///
/// `logical_sizes[idx]` is the
/// uncompressed-equivalent byte count of chunk `idx`, attached to each
/// forwarded message so the flight recorder can observe per-step achieved
/// compression ratios. An empty slice means "wire bytes == logical bytes"
/// (uncompressed traffic).
pub(crate) fn ring_forward_logical(
    comm: &mut Comm,
    own_payload: Vec<u8>,
    logical_sizes: &[usize],
) -> Vec<Vec<u8>> {
    let n = comm.size();
    let r = comm.rank();
    assert!(
        logical_sizes.is_empty() || logical_sizes.len() == n,
        "logical_sizes must be empty or one entry per chunk"
    );
    let mut slots: Vec<Option<Vec<u8>>> = vec![None; n];
    slots[r] = Some(own_payload);
    if n == 1 {
        return slots.into_iter().map(|s| s.unwrap()).collect();
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    for s in 0..n - 1 {
        let send_idx = (r + n - s) % n;
        let recv_idx = (r + 2 * n - s - 1) % n;
        let payload = slots[send_idx].clone().expect("chunk to forward not yet received");
        let logical = logical_sizes.get(send_idx).copied().unwrap_or(payload.len());
        let got = comm.sendrecv_compressed(right, TAG_AG + s as u64, payload, logical, left);
        slots[recv_idx] = Some(got);
    }
    slots.into_iter().map(|s| s.expect("ring left a hole")).collect()
}

#[cfg(test)]
mod tests {
    use netsim::{Cluster, ComputeTiming, ThroughputModel};

    #[test]
    fn every_rank_collects_every_chunk() {
        let timing = ComputeTiming::Modeled(ThroughputModel::new(1.0, 1.0, 1.0, 1.0, 1.0));
        for nranks in [1usize, 2, 3, 7] {
            let cluster = Cluster::new(nranks).with_timing(timing);
            let outcomes = cluster.run(|comm| {
                let own = vec![comm.rank() as u8; comm.rank() + 1]; // ragged sizes
                super::ring_forward_logical(comm, own, &[])
            });
            for o in outcomes {
                for (idx, payload) in o.value.iter().enumerate() {
                    assert_eq!(payload, &vec![idx as u8; idx + 1], "nranks={nranks}");
                }
            }
        }
    }
}
