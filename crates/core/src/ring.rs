//! Shared ring-Allgather byte forwarding, used by both C-Coll's compressed
//! Allgather (ompSZp streams) and hZCCL's fused Allgather (fZ-light
//! streams): the wire layer is payload-agnostic.

use crate::mpi::TAG_AG;
use crate::pipeline::seg_tag;
use crate::resilient::{sendrecv_resilient, PayloadKind, Resilience};
use netsim::Comm;
use std::ops::Range;

/// Ring-forward opaque per-chunk payloads: rank `r` contributes
/// `own_payload` as chunk `r`; after `N-1` rounds every rank holds every
/// chunk's payload. Returns the payloads indexed by chunk, each tagged with
/// the [`PayloadKind`] it arrived as.
///
/// `logical_sizes[idx]` is the uncompressed-equivalent byte count of chunk
/// `idx`, attached to each forwarded message so the flight recorder can
/// observe per-step achieved compression ratios. An empty slice means
/// "wire bytes == logical bytes" (uncompressed traffic).
///
/// With `res == Some(..)` each hop travels as a checksummed frame with
/// NACK/retransmit, and a hop that exhausts its retries degrades to raw f32
/// bytes produced by `raw_of(comm, chunk_idx, payload)` (e.g. "decompress
/// this stream I am forwarding"). A degraded chunk stays raw for the rest
/// of its trip around the ring. With `res == None` the wire schedule (and
/// the recorded event stream) is exactly the historical unframed one.
pub(crate) fn ring_forward_resilient(
    comm: &mut Comm,
    res: Option<&Resilience>,
    own_payload: Vec<u8>,
    own_kind: PayloadKind,
    logical_sizes: &[usize],
    mut raw_of: impl FnMut(&mut Comm, usize, &[u8]) -> Vec<u8>,
) -> Vec<(Vec<u8>, PayloadKind)> {
    let n = comm.size();
    let r = comm.rank();
    assert!(
        logical_sizes.is_empty() || logical_sizes.len() == n,
        "logical_sizes must be empty or one entry per chunk"
    );
    let mut slots: Vec<Option<(Vec<u8>, PayloadKind)>> = vec![None; n];
    slots[r] = Some((own_payload, own_kind));
    if n == 1 {
        return slots.into_iter().map(|s| s.unwrap()).collect();
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    for s in 0..n - 1 {
        let send_idx = (r + n - s) % n;
        let recv_idx = (r + 2 * n - s - 1) % n;
        let (payload, kind) = slots[send_idx].clone().expect("chunk to forward not yet received");
        let logical = logical_sizes.get(send_idx).copied().unwrap_or(payload.len());
        let slots_ref = &slots;
        let got = sendrecv_resilient(
            comm,
            res,
            right,
            seg_tag(TAG_AG, s, 0),
            payload,
            kind,
            logical,
            left,
            |c| {
                let (bytes, _) = slots_ref[send_idx].as_ref().expect("degrading a chunk we hold");
                raw_of(c, send_idx, bytes)
            },
        );
        slots[recv_idx] = Some(got);
    }
    slots.into_iter().map(|s| s.expect("ring left a hole")).collect()
}

/// Segmented, pipelined ring-Allgather forwarding: rank `r` contributes its
/// own chunk as per-segment payloads `own_segs` (segment layout
/// `seg_plan[r]`); after `N-1` rounds every *received* segment has been
/// handed to `on_seg(comm, chunk_idx, seg_idx, payload)` exactly once —
/// the own chunk is never called back (the caller already holds it).
///
/// The schedule overlaps `on_seg`'s compute with the wire: within a step,
/// segment `k`'s send is posted, then segment `k-1`'s callback runs (its
/// cost hides behind segment `k`'s in-flight serialization), then segment
/// `k` is received. Received payloads are retained verbatim so step `s+1`
/// can forward what step `s` delivered. With one segment per chunk this
/// degenerates to [`ring_forward_logical`]'s phase-serial schedule plus a
/// per-chunk callback.
///
/// `seg_plan[idx]` holds the absolute element ranges of chunk `idx`'s
/// segments; all ranks must derive the identical plan
/// (see [`crate::pipeline::seg_ranges`]).
pub(crate) fn ring_forward_segmented<E>(
    comm: &mut Comm,
    own_segs: Vec<Vec<u8>>,
    seg_plan: &[Vec<Range<usize>>],
    mut on_seg: impl FnMut(&mut Comm, usize, usize, &[u8]) -> Result<(), E>,
) -> Result<(), E> {
    let n = comm.size();
    let r = comm.rank();
    assert_eq!(seg_plan.len(), n, "seg_plan must cover every chunk");
    assert_eq!(own_segs.len(), seg_plan[r].len(), "own chunk segmented differently from the plan");
    if n == 1 {
        return Ok(());
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let mut slots: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    slots[r] = own_segs;
    for s in 0..n - 1 {
        let send_idx = (r + n - s) % n;
        let recv_idx = (r + 2 * n - s - 1) % n;
        // each chunk is forwarded exactly once, so sending consumes the slot
        let mut outgoing = std::mem::take(&mut slots[send_idx]);
        let s_send = outgoing.len();
        let s_recv = seg_plan[recv_idx].len();
        let mut got: Vec<Vec<u8>> = Vec::with_capacity(s_recv);
        for k in 0..s_send.max(s_recv) {
            if k < s_send {
                let payload = std::mem::take(&mut outgoing[k]);
                let logical = seg_plan[send_idx][k].len() * 4;
                comm.send_compressed(right, seg_tag(TAG_AG, s, k), payload, logical);
            }
            if k < s_recv {
                // deferred callback: segment k-1's compute hides behind
                // segment k's wire time
                if k > 0 {
                    on_seg(comm, recv_idx, k - 1, &got[k - 1])?;
                }
                got.push(comm.recv(left, seg_tag(TAG_AG, s, k)));
            }
        }
        on_seg(comm, recv_idx, s_recv - 1, &got[s_recv - 1])?;
        slots[recv_idx] = got;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    #[test]
    fn every_rank_collects_every_chunk() {
        let timing = ComputeTiming::Modeled(ThroughputModel::new(1.0, 1.0, 1.0, 1.0, 1.0));
        for nranks in [1usize, 2, 3, 7] {
            let cluster = SimBuilder::new(nranks).timing(timing);
            let outcomes = cluster
                .run(|comm| {
                    let own = vec![comm.rank() as u8; comm.rank() + 1]; // ragged sizes
                    super::ring_forward_resilient(
                        comm,
                        None,
                        own,
                        crate::resilient::PayloadKind::Opaque,
                        &[],
                        |_, _, _| unreachable!("the unresilient ring never degrades"),
                    )
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                for (idx, (payload, kind)) in o.value.iter().enumerate() {
                    assert_eq!(payload, &vec![idx as u8; idx + 1], "nranks={nranks}");
                    assert_eq!(*kind, crate::resilient::PayloadKind::Opaque);
                }
            }
        }
    }

    #[test]
    fn segmented_forward_delivers_every_foreign_segment_once() {
        let timing = ComputeTiming::Modeled(ThroughputModel::new(1.0, 1.0, 1.0, 1.0, 1.0));
        for nranks in [2usize, 3, 5] {
            for segments in [1usize, 2, 4] {
                let elems_per_chunk = 96;
                let seg_plan: Vec<Vec<std::ops::Range<usize>>> = (0..nranks)
                    .map(|c| {
                        crate::pipeline::seg_ranges(
                            c * elems_per_chunk..(c + 1) * elems_per_chunk,
                            segments,
                            32,
                        )
                    })
                    .collect();
                let plan = seg_plan.clone();
                let cluster = SimBuilder::new(nranks).timing(timing);
                let outcomes = cluster
                    .run(move |comm| {
                        let r = comm.rank();
                        let own: Vec<Vec<u8>> = plan[r]
                            .iter()
                            .enumerate()
                            .map(|(k, _)| vec![r as u8, k as u8])
                            .collect();
                        let mut seen: Vec<(usize, usize, Vec<u8>)> = Vec::new();
                        super::ring_forward_segmented::<()>(comm, own, &plan, |_c, idx, k, p| {
                            seen.push((idx, k, p.to_vec()));
                            Ok(())
                        })
                        .unwrap();
                        seen
                    })
                    .expect_clean()
                    .outcomes;
                for (r, o) in outcomes.iter().enumerate() {
                    let mut want: Vec<(usize, usize, Vec<u8>)> = Vec::new();
                    for (idx, segs) in seg_plan.iter().enumerate() {
                        if idx == r {
                            continue;
                        }
                        for k in 0..segs.len() {
                            want.push((idx, k, vec![idx as u8, k as u8]));
                        }
                    }
                    let mut got = o.value.clone();
                    got.sort();
                    want.sort();
                    assert_eq!(got, want, "nranks={nranks} segments={segments}");
                }
            }
        }
    }
}
