//! The self-healing ring schedules: survivable Reduce_scatter + Allreduce
//! over an epoch-numbered membership [`View`].
//!
//! ## Segment-grouped repair
//!
//! The element partition is anchored to the *launch* size forever: the
//! vector is split into `n0 = ` launch-rank-count segments
//! ([`crate::chunks::node_chunks`]) and never re-split. An epoch with `m`
//! survivors groups those segments contiguously ([`View::segment_groups`])
//! and runs the classic ring algebra over *groups*: `m-1` reduce-scatter
//! steps (virtual rank `v` sends group `(v-s-1) mod m`, folds its own
//! contribution into group `(v-s-2) mod m`, ending as owner of group `v`)
//! followed by `m-1` store-and-forward allgather steps (send `(v-s) mod m`,
//! receive `(v-s-1) mod m`). At epoch 0 every group is a singleton and the
//! schedule degenerates to the exact one-chunk-per-rank layout of
//! [`crate::mpi`]. A repair therefore only moves whole segments between
//! owners — and on the hZCCL path the per-segment compressed input streams
//! are cached across epochs, so a re-attempt decompresses/recompresses
//! nothing: only ownership changes hands.
//!
//! ## Tear-down: the in-band abort ripple
//!
//! A rank that observes an interrupt — its peer's crash notice, or an
//! [`SV_ABORT`] byte where data was due — first *completes its live
//! obligations* ([`crate::resilient::sv_exchange`] finishes the surviving
//! half of the step), then forwards one abort to its ring successor on the
//! tag of its own next scheduled send, and walks to the agreement barrier.
//! Because the abort travels on exactly the tag the successor will next
//! await from this rank, it is consumed at a deterministic point of the
//! successor's schedule: no survivor ever hangs on a rank that tore down,
//! and traces stay engine-independent. Every attempt — completed or torn
//! down — ends in [`crate::membership::agree`]; an empty agreed suspect
//! set commits the attempt, anything else advances the view (new epoch,
//! dead ranks spliced out, epoch-salted tags) and re-runs it.
//!
//! Wire payloads are per-group section containers
//! (`[u32 LE len][bytes]` per segment, ascending segment id), so group
//! sizes may differ across epochs without ambiguity.

use std::collections::BTreeSet;
use std::ops::Range;

use fzlight::{compress_resolved, CompressedStream};
use hzdyn::{doc::reduce_in_place, homomorphic_sum, ReduceOp};
use netsim::{Comm, OpKind};
use ompszp::OszpStream;

use crate::ccoll::oszp_config;
use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::collectives::{Error, Result};
use crate::config::CollectiveConfig;
use crate::membership::{agree, View};
use crate::mpi::{TAG_AG, TAG_RS};
use crate::pipeline::epoch_tag;
use crate::resilient::{sv_abort, sv_exchange};

/// Which wire format the survivable ring speaks (the non-adaptive
/// flavours; the tuner cannot plan across unknown future memberships).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SvFlavor {
    /// Raw little-endian f32 groups, bit-exact reduction order.
    Mpi,
    /// DOC per step: compress to send, decompress to fold (ompSZp).
    Ccoll,
    /// Homomorphic: cached compressed inputs, HPR folds, one final DPR.
    Hz,
}

/// A committed survivable collective: the value plus the membership it was
/// computed over.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SvOutcome {
    /// The reduced values (full vector for allreduce, the owned contiguous
    /// region for reduce-scatter).
    pub value: Vec<f32>,
    /// Launch ranks whose contributions are in `value`.
    pub members: Vec<usize>,
    /// The epoch that committed (0 on the fault-free path).
    pub epoch: u32,
}

/// Per-segment accumulator: raw values for the DOC-style flavours, a
/// compressed stream for the homomorphic one.
enum SegAcc {
    Raw(Vec<f32>),
    Stream(CompressedStream),
}

/// The flavour-specific encode/fold/install kernels, plus the hZCCL
/// cross-epoch stream cache.
struct Codec<'a> {
    flavor: SvFlavor,
    data: &'a [f32],
    cfg: &'a CollectiveConfig,
    /// The `n0` launch segments of the element space — immutable across
    /// epochs by construction.
    ranges: Vec<Range<usize>>,
    /// hZCCL only: per-segment compressed own input, filled on first use
    /// and reused by every later epoch (a repair recompresses nothing).
    streams: Vec<Option<CompressedStream>>,
}

impl<'a> Codec<'a> {
    fn new(flavor: SvFlavor, data: &'a [f32], cfg: &'a CollectiveConfig, n0: usize) -> Codec<'a> {
        let ranges = node_chunks(data.len(), n0);
        let streams = (0..n0).map(|_| None).collect();
        Codec { flavor, data, cfg, ranges, streams }
    }

    /// The compressed own input of `seg`, compressed once and cached for
    /// every subsequent epoch.
    fn own_stream(&mut self, comm: &mut Comm, seg: usize) -> Result<CompressedStream> {
        if let Some(s) = &self.streams[seg] {
            comm.mark("rec:stream-cache-hit");
            return Ok(s.clone());
        }
        let rng = self.ranges[seg].clone();
        let threads = self.cfg.mode.threads();
        let stream =
            comm.compute_labeled(OpKind::Cpr, rng.len() * 4, "hz:compress-segment", || {
                compress_resolved(&self.data[rng.clone()], self.cfg.eb, self.cfg.block_len, threads)
            })?;
        self.streams[seg] = Some(stream.clone());
        Ok(stream)
    }

    /// This rank's own contribution to `seg`, in accumulator form.
    fn own_acc(&mut self, comm: &mut Comm, seg: usize) -> Result<SegAcc> {
        match self.flavor {
            SvFlavor::Mpi | SvFlavor::Ccoll => {
                Ok(SegAcc::Raw(self.data[self.ranges[seg].clone()].to_vec()))
            }
            SvFlavor::Hz => Ok(SegAcc::Stream(self.own_stream(comm, seg)?)),
        }
    }

    /// Wire bytes of `acc` — used both for reduce-scatter sends and for the
    /// owner's allgather injection (so every rank, owner included, installs
    /// from the same bytes and the compressed flavours agree bitwise).
    fn encode(&mut self, comm: &mut Comm, _seg: usize, acc: &SegAcc) -> Result<Vec<u8>> {
        match (self.flavor, acc) {
            (SvFlavor::Mpi, SegAcc::Raw(vals)) => {
                Ok(comm.compute_labeled(OpKind::Other, vals.len() * 4, "mpi:pack", || {
                    f32_to_bytes(vals)
                }))
            }
            (SvFlavor::Ccoll, SegAcc::Raw(vals)) => {
                let ocfg = oszp_config(self.cfg);
                let stream =
                    comm.compute_labeled(OpKind::Cpr, vals.len() * 4, "ccoll:compress", || {
                        ompszp::compress(vals, &ocfg)
                    })?;
                Ok(stream.as_bytes().to_vec())
            }
            (SvFlavor::Hz, SegAcc::Stream(stream)) => Ok(stream.as_bytes().to_vec()),
            _ => unreachable!("accumulator form always matches the flavour"),
        }
    }

    /// Fold received wire bytes with this rank's own contribution to `seg`.
    fn merge(&mut self, comm: &mut Comm, seg: usize, wire: &[u8]) -> Result<SegAcc> {
        let rng = self.ranges[seg].clone();
        let threads = self.cfg.mode.threads();
        match self.flavor {
            SvFlavor::Mpi => {
                let mut tmp = comm.compute_labeled(OpKind::Other, wire.len(), "mpi:unpack", || {
                    bytes_to_f32(wire)
                });
                let local = &self.data[rng];
                comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "mpi:reduce", || {
                    reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
                });
                Ok(SegAcc::Raw(tmp))
            }
            SvFlavor::Ccoll => {
                let received = OszpStream::from_bytes(wire.to_vec())?;
                let mut tmp = comm.compute_labeled(
                    OpKind::Dpr,
                    received.n() * 4,
                    "ccoll:decompress",
                    || ompszp::decompress(&received),
                )?;
                let local = &self.data[rng];
                comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "ccoll:reduce", || {
                    reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
                });
                Ok(SegAcc::Raw(tmp))
            }
            SvFlavor::Hz => {
                let received = CompressedStream::from_bytes(wire.to_vec())?;
                let own = self.own_stream(comm, seg)?;
                let sum =
                    comm.compute_labeled(OpKind::Hpr, rng.len() * 4, "hz:homomorphic-sum", || {
                        homomorphic_sum(&received, &own)
                    })?;
                Ok(SegAcc::Stream(sum))
            }
        }
    }

    /// Decode final wire bytes of `seg` into the output slice.
    fn install(&mut self, comm: &mut Comm, seg: usize, wire: &[u8], out: &mut [f32]) -> Result<()> {
        let rng = self.ranges[seg].clone();
        let dst = &mut out[rng];
        match self.flavor {
            SvFlavor::Mpi => {
                let vals = comm.compute_labeled(OpKind::Other, wire.len(), "mpi:unpack", || {
                    bytes_to_f32(wire)
                });
                dst.copy_from_slice(&vals);
            }
            SvFlavor::Ccoll => {
                let stream = OszpStream::from_bytes(wire.to_vec())?;
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
                    ompszp::decompress_into(&stream, dst)
                })?;
            }
            SvFlavor::Hz => {
                let stream = CompressedStream::from_bytes(wire.to_vec())?;
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
                    fzlight::decompress_into(&stream, dst)
                })?;
            }
        }
        Ok(())
    }
}

/// Pack per-segment wire bytes into one group payload.
fn pack_sections(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for p in parts {
        buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
        buf.extend_from_slice(p);
    }
    buf
}

/// Split a group payload back into its `count` per-segment sections.
fn split_sections(buf: &[u8], count: usize) -> Vec<&[u8]> {
    let mut out = Vec::with_capacity(count);
    let mut off = 0;
    for _ in 0..count {
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        out.push(&buf[off..off + len]);
        off += len;
    }
    debug_assert_eq!(off, buf.len(), "sections must tile the group payload");
    out
}

/// How one attempt over a view ended.
enum AttemptEnd {
    /// All steps ran; the output holds this attempt's values.
    Done,
    /// An interrupt tore the attempt down; the abort ripple went out.
    TornDown,
}

/// One attempt of the survivable ring over `view`. `ag` selects the fused
/// allreduce (reduce-scatter + allgather) or reduce-scatter alone.
fn attempt(
    comm: &mut Comm,
    view: &View,
    codec: &mut Codec<'_>,
    ag: bool,
    out: &mut [f32],
) -> Result<AttemptEnd> {
    let me = comm.rank();
    let m = view.len();
    let v = view.vrank(me).expect("only members run attempts");
    let groups = view.segment_groups();
    let res = codec.cfg.res;
    if m == 1 {
        // sole survivor: the survivor sum is the own vector (roundtripped
        // through the flavour's wire format, like any other owner)
        for seg in groups[0].clone() {
            let acc = codec.own_acc(comm, seg)?;
            let bytes = codec.encode(comm, seg, &acc)?;
            codec.install(comm, seg, &bytes, out)?;
        }
        return Ok(AttemptEnd::Done);
    }
    let right = view.right_of(v);
    let left = view.left_of(v);
    let rs_steps = m - 1;
    let total = if ag { 2 * (m - 1) } else { m - 1 };
    let tag_of = |k: usize| {
        if k < rs_steps {
            epoch_tag(TAG_RS, k, 0, view.epoch)
        } else {
            epoch_tag(TAG_AG, k - rs_steps, 0, view.epoch)
        }
    };

    // Reduce-scatter over segment groups: the accumulator travels the ring
    // exactly as in the classic schedule, one group per step.
    let first = (v + m - 1) % m;
    let mut acc: Vec<SegAcc> = {
        let mut init = Vec::with_capacity(groups[first].len());
        for seg in groups[first].clone() {
            init.push(codec.own_acc(comm, seg)?);
        }
        init
    };
    for s in 0..rs_steps {
        let send_g = (v + 2 * m - s - 1) % m;
        let recv_g = (v + 2 * m - s - 2) % m;
        let mut parts = Vec::with_capacity(acc.len());
        for (a, seg) in acc.iter().zip(groups[send_g].clone()) {
            parts.push(codec.encode(comm, seg, a)?);
        }
        let payload = pack_sections(&parts);
        let logical: usize = groups[send_g].clone().map(|seg| codec.ranges[seg].len() * 4).sum();
        match sv_exchange(comm, res.as_ref(), right, left, tag_of(s), &payload, logical) {
            Ok(bytes) => {
                let sections = split_sections(&bytes, groups[recv_g].len());
                let mut next = Vec::with_capacity(sections.len());
                for (seg, sec) in groups[recv_g].clone().zip(sections) {
                    next.push(codec.merge(comm, seg, sec)?);
                }
                acc = next;
            }
            Err(_) => {
                if s + 1 < total {
                    sv_abort(comm, right, tag_of(s + 1));
                }
                return Ok(AttemptEnd::TornDown);
            }
        }
    }

    // The own group is finished: install it locally from its own wire bytes
    // (so all flavours agree bitwise across ranks)...
    let own_parts: Vec<Vec<u8>> = {
        let mut parts = Vec::with_capacity(acc.len());
        for (a, seg) in acc.iter().zip(groups[v].clone()) {
            let bytes = codec.encode(comm, seg, a)?;
            codec.install(comm, seg, &bytes, out)?;
            parts.push(bytes);
        }
        parts
    };
    if !ag {
        return Ok(AttemptEnd::Done);
    }

    // ...and the allgather forwards finished groups verbatim around the
    // survivor ring, installing each on arrival.
    let mut carry = pack_sections(&own_parts);
    let mut carry_g = v;
    for s in 0..m - 1 {
        let k = rs_steps + s;
        let recv_g = (v + 2 * m - s - 1) % m;
        let logical: usize = groups[carry_g].clone().map(|seg| codec.ranges[seg].len() * 4).sum();
        match sv_exchange(comm, res.as_ref(), right, left, tag_of(k), &carry, logical) {
            Ok(bytes) => {
                let sections = split_sections(&bytes, groups[recv_g].len());
                for (seg, sec) in groups[recv_g].clone().zip(sections) {
                    codec.install(comm, seg, sec, out)?;
                }
                carry = bytes;
                carry_g = recv_g;
            }
            Err(_) => {
                if k + 1 < total {
                    sv_abort(comm, right, tag_of(k + 1));
                }
                return Ok(AttemptEnd::TornDown);
            }
        }
    }
    Ok(AttemptEnd::Done)
}

/// The recovery loop: run an attempt, meet at the agreement barrier, commit
/// on an empty suspect set or splice the dead out and retry under the next
/// epoch. Returns the committed value (full vector when `ag`, the owned
/// contiguous region otherwise) plus the membership that produced it.
pub(crate) fn run_survivable(
    comm: &mut Comm,
    data: &[f32],
    flavor: SvFlavor,
    cfg: &CollectiveConfig,
    ag: bool,
) -> Result<SvOutcome> {
    let n0 = comm.size();
    let was = comm.survivable();
    comm.set_survivable(true);
    let result = recovery_loop(comm, data, flavor, cfg, ag, n0);
    comm.set_survivable(was);
    result
}

fn recovery_loop(
    comm: &mut Comm,
    data: &[f32],
    flavor: SvFlavor,
    cfg: &CollectiveConfig,
    ag: bool,
    n0: usize,
) -> Result<SvOutcome> {
    let me = comm.rank();
    let mut view = View::initial(n0);
    let mut codec = Codec::new(flavor, data, cfg, n0);
    let mut out = vec![0f32; data.len()];
    loop {
        let end = attempt(comm, &view, &mut codec, ag, &mut out)?;
        let agreement = agree(comm, &view, BTreeSet::new());
        if agreement.suspects.is_empty() {
            // uniform quiet with nothing suspected: every member completed,
            // the attempt commits
            debug_assert!(matches!(end, AttemptEnd::Done));
            comm.mark_value("rec:epoch", u64::from(view.epoch));
            comm.mark_value("rec:survivors", view.len() as u64);
            let value = if ag {
                out.clone()
            } else {
                let segs = view.segment_groups()[view.vrank(me).expect("member")].clone();
                out[codec.ranges[segs.start].start..codec.ranges[segs.end - 1].end].to_vec()
            };
            return Ok(SvOutcome { value, members: view.members.clone(), epoch: view.epoch });
        }
        view = view
            .advance(&agreement.suspects)
            .ok_or(Error::TooManyEpochs { epochs: crate::pipeline::MAX_EPOCH })?;
        debug_assert!(view.vrank(me).is_some(), "a live rank never leaves the view");
        comm.mark("rec:recovery");
    }
}
