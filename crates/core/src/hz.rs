//! The hZCCL collectives (Sec. III-C): the homomorphic
//! compression-accelerated Reduce_scatter and Allreduce.
//!
//! Reduce_scatter compresses all `N` local chunks once up front, then every
//! ring round reduces *compressed* blocks directly with `hZ-dynamic` (HPR) —
//! no per-round decompression/recompression — and decompresses only the
//! final owned chunk: `N·CPR + (N-1)·HPR + 1·DPR` versus C-Coll's
//! `(N-1)(CPR + DPR + CPT)`.
//!
//! Allreduce fuses the stages (Sec. III-C.2): the Reduce_scatter stage skips
//! its final decompression and hands the compressed chunk straight to the
//! Allgather stage, which in turn skips its compression; chunks travel
//! compressed and are decompressed once at the end. (We charge `N` DPRs —
//! the paper's accounting lists `N-1`, eliding the own-chunk decompression.)
//!
//! Every collective also has a **segmented pipelined** schedule
//! (`segments > 1` through [`crate::collectives`]): each ring step's chunk
//! is split into block-aligned segments ([`crate::pipeline::seg_ranges`])
//! and the per-segment compute — just-in-time compression plus the
//! homomorphic sum — is interleaved with the next segment's wire time.
//! Compression turns lazy: instead of the serial `N·CPR` sweep before round
//! 0, only the first send chunk is compressed up front and each later chunk
//! is compressed inside the step that consumes it, where its cost hides
//! behind the in-flight segment. Totals are unchanged (same `N·CPR`,
//! `(N-1)·HPR`, `N·DPR` volumes) and the result is **bit-identical** to the
//! phase-serial path: quantization is per-element (`round(v/2eb)`), all
//! integer sums are exact, so segment boundaries cannot change a single
//! output bit.

use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::config::CollectiveConfig;
use crate::mpi::{TAG_GATHER, TAG_RS, TAG_SCATTER};
use crate::pipeline::{chunk_seg_plan, seg_tag};
use crate::resilient::{recv_resilient, send_resilient, sendrecv_resilient, PayloadKind};
use crate::ring::{ring_forward_resilient, ring_forward_segmented};
use fzlight::{compress_resolved, decompress, CompressedStream, Result};
use hzdyn::homomorphic_sum;
use netsim::{Comm, OpKind};
use std::ops::Range;

/// Compress one segment of `data` just in time, charging CPR for exactly the
/// bytes it covers.
fn compress_seg(
    comm: &mut Comm,
    data: &[f32],
    rng: &Range<usize>,
    cfg: &CollectiveConfig,
) -> Result<CompressedStream> {
    let threads = cfg.mode.threads();
    comm.compute_labeled(OpKind::Cpr, rng.len() * 4, "hz:compress-segment", || {
        compress_resolved(&data[rng.clone()], cfg.eb, cfg.block_len, threads)
    })
}

/// Ring degradation hook: when forwarding a compressed chunk exhausts its
/// retries, decompress the stream we hold (DPR) and ship the raw f32 bytes
/// instead — the hZCCL allgather forwards streams verbatim, so the stream
/// in hand *is* the last good state.
fn degrade_stream_to_raw(comm: &mut Comm, _idx: usize, bytes: &[u8]) -> Vec<u8> {
    let stream = CompressedStream::from_bytes(bytes.to_vec()).expect("forwarded stream must parse");
    let vals = comm
        .compute_labeled(OpKind::Dpr, stream.n() * 4, "res:degrade-decompress", || {
            decompress(&stream)
        })
        .expect("forwarded stream must decompress");
    f32_to_bytes(&vals)
}

/// The homomorphic Reduce_scatter core, returning the reduced chunk still in
/// compressed form (the handle the fused Allreduce consumes).
pub(crate) fn reduce_scatter_compressed(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
) -> Result<CompressedStream> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    let threads = cfg.mode.threads();
    if n == 1 {
        return comm.compute_labeled(OpKind::Cpr, data.len() * 4, "hz:compress-all", || {
            compress_resolved(data, cfg.eb, cfg.block_len, threads)
        });
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;

    // Round 1: compress all N local chunks once (N·CPR, charged as one
    // sweep over the full vector).
    let comp: Vec<CompressedStream> =
        comm.compute_labeled(OpKind::Cpr, data.len() * 4, "hz:compress-all", || {
            chunks
                .iter()
                .map(|c| compress_resolved(&data[c.clone()], cfg.eb, cfg.block_len, threads))
                .collect::<Result<Vec<_>>>()
        })?;

    let mut send = comp[(r + n - 1) % n].clone();
    for s in 0..n - 1 {
        // the chunk being forwarded at step s (its uncompressed size is the
        // logical volume this compressed message represents)
        let send_idx = (r + 2 * n - s - 1) % n;
        let send_ref = &send;
        let (got, kind) = sendrecv_resilient(
            comm,
            cfg.res.as_ref(),
            right,
            seg_tag(TAG_RS, s, 0),
            send.as_bytes().to_vec(),
            PayloadKind::Opaque,
            chunks[send_idx].len() * 4,
            left,
            |c| {
                // degrade: recompute raw values from the last good state —
                // the partial sum we were trying to forward
                let vals = c
                    .compute_labeled(
                        OpKind::Dpr,
                        send_ref.n() * 4,
                        "res:degrade-decompress",
                        || decompress(send_ref),
                    )
                    .expect("own partial-sum stream must decompress");
                f32_to_bytes(&vals)
            },
        );
        let idx = (r + 2 * n - s - 2) % n;
        let received = match kind {
            PayloadKind::Opaque => CompressedStream::from_bytes(got)?,
            // a degraded hop delivered raw f32s: recompress (at most one
            // extra quantization of error) so the homomorphic sum proceeds
            PayloadKind::RawF32 => {
                let vals = bytes_to_f32(&got);
                comm.compute_labeled(OpKind::Cpr, vals.len() * 4, "res:recompress", || {
                    compress_resolved(&vals, cfg.eb, cfg.block_len, threads)
                })?
            }
        };
        // HPR: reduce two compressed chunks directly, no decompression
        send =
            comm.compute_labeled(OpKind::Hpr, chunks[idx].len() * 4, "hz:homomorphic-sum", || {
                homomorphic_sum(&received, &comp[idx])
            })?;
    }
    Ok(send)
}

/// The segmented pipelined Reduce_scatter core: returns the own chunk's
/// reduced segments, still compressed (layout `seg_plan(...)[rank]`).
///
/// Schedule per ring step, per segment `k`:
///
/// 1. send segment `k` of the outgoing chunk (all ready at step start —
///    they are step `s-1`'s homomorphic sums);
/// 2. **JIT-compress** segment `k` of the local operand chunk;
/// 3. homomorphic-sum segment `k-1` (deferred by one slot, so it too hides
///    behind segment `k`'s wire time);
/// 4. receive segment `k` — by now steps 2–3 have advanced the virtual
///    clock, so the blocking wait shrinks by exactly the overlapped compute.
///
/// Steady-state step cost is `S·α + max(W, CPR+HPR)` against the serial
/// `α + W + HPR` (plus its share of the upfront `N·CPR` sweep) — the
/// closed form [`costmodel::reduce_scatter_hzccl_pipelined`] models.
pub(crate) fn reduce_scatter_segments(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<CompressedStream>> {
    let n = comm.size();
    let r = comm.rank();
    let plan = chunk_seg_plan(data.len(), n, segments, cfg.block_len);
    if n == 1 {
        return plan[0].iter().map(|rng| compress_seg(comm, data, rng, cfg)).collect();
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;

    // JIT compression: only the round-0 send chunk is compressed up front.
    let first = (r + n - 1) % n;
    let mut send_segs: Vec<CompressedStream> =
        plan[first].iter().map(|rng| compress_seg(comm, data, rng, cfg)).collect::<Result<_>>()?;

    for s in 0..n - 1 {
        let send_idx = (r + 2 * n - s - 1) % n;
        // received chunk == local operand chunk at this step
        let idx = (r + 2 * n - s - 2) % n;
        debug_assert_eq!(send_segs.len(), plan[send_idx].len());
        let mut outgoing: Vec<Option<CompressedStream>> = send_segs.into_iter().map(Some).collect();
        let s_send = outgoing.len();
        let o_ranges = &plan[idx];
        let s_recv = o_ranges.len();
        let mut local: Vec<Option<CompressedStream>> = (0..s_recv).map(|_| None).collect();
        let mut got: Vec<Option<CompressedStream>> = (0..s_recv).map(|_| None).collect();
        let mut acc: Vec<Option<CompressedStream>> = (0..s_recv).map(|_| None).collect();
        let hpr = |comm: &mut Comm,
                   k: usize,
                   got: &mut Vec<Option<CompressedStream>>,
                   local: &mut Vec<Option<CompressedStream>>|
         -> Result<CompressedStream> {
            let a = got[k].take().expect("segment not yet received");
            let b = local[k].take().expect("segment not yet compressed");
            comm.compute_labeled(OpKind::Hpr, o_ranges[k].len() * 4, "hz:homomorphic-sum", || {
                homomorphic_sum(&a, &b)
            })
        };
        for k in 0..s_send.max(s_recv) {
            if k < s_send {
                let stream = outgoing[k].take().expect("segment already sent");
                comm.send_compressed(
                    right,
                    seg_tag(TAG_RS, s, k),
                    stream.into_bytes(),
                    plan[send_idx][k].len() * 4,
                );
            }
            if k < s_recv {
                // JIT CPR + the deferred HPR both overlap segment k's wire
                local[k] = Some(compress_seg(comm, data, &o_ranges[k], cfg)?);
                if k > 0 {
                    acc[k - 1] = Some(hpr(comm, k - 1, &mut got, &mut local)?);
                }
                let bytes = comm.recv(left, seg_tag(TAG_RS, s, k));
                got[k] = Some(CompressedStream::from_bytes(bytes)?);
            }
        }
        // drain: the last segment's homomorphic sum is exposed
        acc[s_recv - 1] = Some(hpr(comm, s_recv - 1, &mut got, &mut local)?);
        send_segs = acc.into_iter().map(|x| x.expect("segment left unreduced")).collect();
    }
    Ok(send_segs)
}

/// `Reduce_scatter` dispatcher: `segments <= 1` runs the phase-serial path,
/// larger counts the pipelined schedule. Results are bit-identical.
pub(crate) fn reduce_scatter_impl(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    if segments <= 1 {
        let stream = reduce_scatter_compressed(comm, data, cfg)?;
        // the single final decompression of the workflow
        return comm.compute_labeled(OpKind::Dpr, stream.n() * 4, "hz:final-decompress", || {
            decompress(&stream)
        });
    }
    let segs = reduce_scatter_segments(comm, data, cfg, segments)?;
    let total: usize = segs.iter().map(|s| s.n()).sum();
    let mut out = vec![0f32; total];
    let mut off = 0;
    for stream in &segs {
        let len = stream.n();
        let dst = &mut out[off..off + len];
        comm.compute_labeled(OpKind::Dpr, len * 4, "hz:final-decompress", || {
            fzlight::decompress_into(stream, dst)
        })?;
        off += len;
    }
    Ok(out)
}

/// Fused `Allreduce` dispatcher (see [`reduce_scatter_impl`] for the
/// serial/pipelined split).
pub(crate) fn allreduce_impl(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    if segments <= 1 {
        let own_stream = reduce_scatter_compressed(comm, data, cfg)?;
        let chunks = node_chunks(data.len(), n);
        let mut out = vec![0f32; data.len()];
        // Allgather stage: no compression — the already-compressed chunks are
        // forwarded verbatim around the ring...
        let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
        let slots = ring_forward_resilient(
            comm,
            cfg.res.as_ref(),
            own_stream.into_bytes(),
            PayloadKind::Opaque,
            &logical,
            degrade_stream_to_raw,
        );
        // ...and everything is decompressed once at the very end.
        for (idx, (payload, kind)) in slots.into_iter().enumerate() {
            let dst = &mut out[chunks[idx].clone()];
            match kind {
                PayloadKind::Opaque => {
                    let stream = CompressedStream::from_bytes(payload)?;
                    comm.compute_labeled(
                        OpKind::Dpr,
                        dst.len() * 4,
                        "hz:final-decompress",
                        || fzlight::decompress_into(&stream, dst),
                    )?;
                }
                // the chunk arrived degraded — already raw, copy it in
                PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&payload)),
            }
        }
        return Ok(out);
    }
    let own_segs = reduce_scatter_segments(comm, data, cfg, segments)?;
    let plan = chunk_seg_plan(data.len(), n, segments, cfg.block_len);
    let mut out = vec![0f32; data.len()];
    // Own chunk first (its DPR cannot overlap anything anyway), which frees
    // the streams' bytes for forwarding without a copy.
    let mut own_bytes = Vec::with_capacity(own_segs.len());
    for (k, stream) in own_segs.into_iter().enumerate() {
        let rng = plan[r][k].clone();
        let dst = &mut out[rng];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })?;
        own_bytes.push(stream.into_bytes());
    }
    // Segmented fused Allgather: still no recompression; each received
    // segment is decompressed *early*, while the next one is on the wire.
    ring_forward_segmented(comm, own_bytes, &plan, |comm, idx, k, payload| {
        let stream = CompressedStream::from_bytes(payload.to_vec())?;
        let rng = plan[idx][k].clone();
        let dst = &mut out[rng];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })
    })?;
    Ok(out)
}

/// `Reduce`-to-root dispatcher: the homomorphic Reduce_scatter keeps every
/// rank's reduced chunk compressed, so the gather forwards compressed bytes
/// verbatim and **only the root decompresses** — `N·CPR + (N-1)·HPR` per
/// rank plus `N·DPR` on the root.
pub(crate) fn reduce_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Option<Vec<f32>>> {
    let n = comm.size();
    let r = comm.rank();
    if segments <= 1 {
        let own_stream = reduce_scatter_compressed(comm, data, cfg)?;
        if n == 1 {
            return Ok(Some(comm.compute_labeled(
                OpKind::Dpr,
                data.len() * 4,
                "hz:final-decompress",
                || decompress(&own_stream),
            )?));
        }
        let chunks = node_chunks(data.len(), n);
        if r == root {
            let mut out = vec![0f32; data.len()];
            {
                let dst = &mut out[chunks[r].clone()];
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:root-decompress", || {
                    fzlight::decompress_into(&own_stream, dst)
                })?;
            }
            for src in 0..n {
                if src == root {
                    continue;
                }
                let (got, kind) =
                    recv_resilient(comm, cfg.res.as_ref(), src, seg_tag(TAG_GATHER, src, 0));
                let dst = &mut out[chunks[src].clone()];
                match kind {
                    PayloadKind::Opaque => {
                        let stream = CompressedStream::from_bytes(got)?;
                        comm.compute_labeled(
                            OpKind::Dpr,
                            dst.len() * 4,
                            "hz:root-decompress",
                            || fzlight::decompress_into(&stream, dst),
                        )?;
                    }
                    PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&got)),
                }
            }
            return Ok(Some(out));
        }
        // no recompression: the chunk is already compressed
        let own_ref = &own_stream;
        send_resilient(
            comm,
            cfg.res.as_ref(),
            root,
            seg_tag(TAG_GATHER, r, 0),
            own_stream.as_bytes().to_vec(),
            PayloadKind::Opaque,
            chunks[r].len() * 4,
            |c| {
                let vals = c
                    .compute_labeled(OpKind::Dpr, own_ref.n() * 4, "res:degrade-decompress", || {
                        decompress(own_ref)
                    })
                    .expect("own reduced stream must decompress");
                f32_to_bytes(&vals)
            },
        );
        return Ok(None);
    }
    let own_segs = reduce_scatter_segments(comm, data, cfg, segments)?;
    let plan = chunk_seg_plan(data.len(), n, segments, cfg.block_len);
    if n == 1 {
        let mut out = vec![0f32; data.len()];
        for (k, stream) in own_segs.iter().enumerate() {
            let dst = &mut out[plan[0][k].clone()];
            comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
                fzlight::decompress_into(stream, dst)
            })?;
        }
        return Ok(Some(out));
    }
    if r == root {
        let mut out = vec![0f32; data.len()];
        for (k, stream) in own_segs.iter().enumerate() {
            let dst = &mut out[plan[r][k].clone()];
            comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:root-decompress", || {
                fzlight::decompress_into(stream, dst)
            })?;
        }
        for src in 0..n {
            if src == root {
                continue;
            }
            for k in 0..plan[src].len() {
                let got = comm.recv(src, seg_tag(TAG_GATHER, src, k));
                let stream = CompressedStream::from_bytes(got)?;
                let dst = &mut out[plan[src][k].clone()];
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:root-decompress", || {
                    fzlight::decompress_into(&stream, dst)
                })?;
            }
        }
        Ok(Some(out))
    } else {
        for (k, stream) in own_segs.into_iter().enumerate() {
            let logical = plan[r][k].len() * 4;
            comm.send_compressed(root, seg_tag(TAG_GATHER, r, k), stream.into_bytes(), logical);
        }
        Ok(None)
    }
}

/// Long-message `Bcast` dispatcher. Broadcast moves data without reducing,
/// so no homomorphic operation applies; the gain over MPI is the compressed
/// wire (the root compresses each chunk once with fZ-light, everyone
/// decompresses at the end — early, per segment, in the pipelined schedule).
pub(crate) fn bcast_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let threads = cfg.mode.threads();
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return Ok(data.to_vec());
    }
    if segments <= 1 {
        let chunks = node_chunks(total_len, n);
        let (own_bytes, own_kind) = if r == root {
            assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
            let mut mine = Vec::new();
            for dst in 0..n {
                let chunk = &data[chunks[dst].clone()];
                let stream = comm.compute_labeled(
                    OpKind::Cpr,
                    chunk.len() * 4,
                    "hz:bcast-compress",
                    || compress_resolved(chunk, cfg.eb, cfg.block_len, threads),
                )?;
                if dst == root {
                    mine = stream.into_bytes();
                } else {
                    send_resilient(
                        comm,
                        cfg.res.as_ref(),
                        dst,
                        seg_tag(TAG_SCATTER, dst, 0),
                        stream.into_bytes(),
                        PayloadKind::Opaque,
                        chunk.len() * 4,
                        // the root still holds the raw chunk — no DPR needed
                        |_| f32_to_bytes(chunk),
                    );
                }
            }
            (mine, PayloadKind::Opaque)
        } else {
            recv_resilient(comm, cfg.res.as_ref(), root, seg_tag(TAG_SCATTER, r, 0))
        };
        let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
        let slots = ring_forward_resilient(
            comm,
            cfg.res.as_ref(),
            own_bytes,
            own_kind,
            &logical,
            degrade_stream_to_raw,
        );
        let mut out = vec![0f32; total_len];
        for (idx, (payload, kind)) in slots.into_iter().enumerate() {
            let dst = &mut out[chunks[idx].clone()];
            match kind {
                PayloadKind::Opaque => {
                    let stream = CompressedStream::from_bytes(payload)?;
                    comm.compute_labeled(
                        OpKind::Dpr,
                        dst.len() * 4,
                        "hz:bcast-decompress",
                        || fzlight::decompress_into(&stream, dst),
                    )?;
                }
                PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&payload)),
            }
        }
        return Ok(out);
    }
    let plan = chunk_seg_plan(total_len, n, segments, cfg.block_len);
    let own_bytes: Vec<Vec<u8>> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        let mut mine = Vec::new();
        for (dst, segs) in plan.iter().enumerate() {
            for (k, rng) in segs.iter().enumerate() {
                let seg = &data[rng.clone()];
                let stream =
                    comm.compute_labeled(OpKind::Cpr, seg.len() * 4, "hz:bcast-compress", || {
                        compress_resolved(seg, cfg.eb, cfg.block_len, threads)
                    })?;
                if dst == root {
                    mine.push(stream.into_bytes());
                } else {
                    comm.send_compressed(
                        dst,
                        seg_tag(TAG_SCATTER, dst, k),
                        stream.into_bytes(),
                        seg.len() * 4,
                    );
                }
            }
        }
        mine
    } else {
        (0..plan[r].len()).map(|k| comm.recv(root, seg_tag(TAG_SCATTER, r, k))).collect()
    };
    let mut out = vec![0f32; total_len];
    // own chunk: parse, decompress, and recover the bytes for forwarding
    let mut own_forward = Vec::with_capacity(own_bytes.len());
    for (k, bytes) in own_bytes.into_iter().enumerate() {
        let stream = CompressedStream::from_bytes(bytes)?;
        let dst = &mut out[plan[r][k].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:bcast-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })?;
        own_forward.push(stream.into_bytes());
    }
    ring_forward_segmented(comm, own_forward, &plan, |comm, idx, k, payload| {
        let stream = CompressedStream::from_bytes(payload.to_vec())?;
        let dst = &mut out[plan[idx][k].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:bcast-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })
    })?;
    Ok(out)
}

/// Ablation: hZCCL Reduce_scatter followed by the *unfused* C-Coll-style
/// Allgather (decompress at the stage boundary, recompress for gathering).
/// Quantifies the fusion saving of Sec. III-C.2.
pub fn allreduce_unfused(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let own = reduce_scatter_impl(comm, data, cfg, 1)?;
    crate::ccoll::allgather(comm, &own, data.len(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.013).sin() * (rank + 1) as f32 * 1.7).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn hzccl_allreduce_is_error_bounded_by_n_eb() {
        let n = 2048;
        let eb = 1e-4;
        for nranks in [2usize, 4, 6] {
            for mode in [Mode::SingleThread, Mode::MultiThread(2)] {
                let cfg = CollectiveConfig::new(eb, mode);
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        allreduce_impl(comm, &data, &cfg, 1).expect("hzccl allreduce")
                    })
                    .expect_clean()
                    .outcomes;
                let expect = direct_sum(nranks, n);
                // each rank's single quantization contributes <= eb; the
                // homomorphic sums are exact on the integers
                let tol = nranks as f64 * eb + 1e-6;
                for o in outcomes {
                    for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                        assert!(
                            ((a - b).abs() as f64) <= tol,
                            "nranks={nranks} {mode:?} at {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_ranks_agree_bitwise() {
        let cfg = CollectiveConfig::new(1e-4, Mode::MultiThread(2));
        for segments in [1usize, 4] {
            let cluster = SimBuilder::new(5).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), 1000);
                    allreduce_impl(comm, &data, &cfg, segments).expect("allreduce")
                })
                .expect_clean()
                .outcomes;
            for o in &outcomes[1..] {
                assert_eq!(o.value, outcomes[0].value);
            }
        }
    }

    #[test]
    fn reduce_scatter_matches_mpi_chunk_within_bound() {
        let n = 1200;
        let nranks = 4;
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                reduce_scatter_impl(comm, &data, &cfg, 1).expect("rs")
            })
            .expect_clean()
            .outcomes;
        let expect = direct_sum(nranks, n);
        let chunks = node_chunks(n, nranks);
        for (r, o) in outcomes.iter().enumerate() {
            for (a, b) in o.value.iter().zip(&expect[chunks[r].clone()]) {
                assert!(((a - b).abs() as f64) <= nranks as f64 * eb + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn hzccl_charges_hpr_not_per_round_doc() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        for segments in [1usize, 4] {
            let cluster = SimBuilder::new(4).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), 4096);
                    reduce_scatter_impl(comm, &data, &cfg, segments).expect("rs");
                    comm.breakdown()
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                let b = o.value;
                assert!(b.hpr > 0.0, "{b:?}");
                assert_eq!(b.cpt, 0.0, "hZCCL never reduces on raw values");
                // exactly one chunk's decompression (the final chunk)
                assert!(b.dpr > 0.0);
                assert!(b.dpr < b.cpr, "single DPR must be far below N×CPR: {b:?}");
            }
        }
    }

    #[test]
    fn pipelined_reduce_scatter_is_bit_identical_and_same_compute_totals() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let run = |segments: usize| {
            let cluster = SimBuilder::new(4).timing(modeled());
            cluster
                .run(|comm| {
                    let data = field(comm.rank(), 4096);
                    let v = reduce_scatter_impl(comm, &data, &cfg, segments).expect("rs");
                    (v, comm.breakdown())
                })
                .expect_clean()
                .outcomes
        };
        let serial = run(1);
        let piped = run(4);
        for (a, b) in serial.iter().zip(&piped) {
            assert_eq!(a.value.0, b.value.0, "bit-identical results");
            // same CPR/HPR/DPR volumes -> same modeled compute seconds
            assert!((a.value.1.cpr - b.value.1.cpr).abs() < 1e-12, "CPR totals differ");
            assert!((a.value.1.hpr - b.value.1.hpr).abs() < 1e-12, "HPR totals differ");
            assert!((a.value.1.dpr - b.value.1.dpr).abs() < 1e-12, "DPR totals differ");
        }
    }

    #[test]
    fn fused_allreduce_beats_unfused_in_virtual_time() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let run = |fused: bool| {
            let cluster = SimBuilder::new(6).timing(modeled());
            let stats = cluster
                .run(|comm| {
                    let data = field(comm.rank(), 60_000);
                    if fused {
                        allreduce_impl(comm, &data, &cfg, 1).expect("fused")
                    } else {
                        allreduce_unfused(comm, &data, &cfg).expect("unfused")
                    };
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn unfused_matches_fused_within_bound() {
        let n = 900;
        let nranks = 3;
        let eb = 1e-3;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let fused = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce_impl(comm, &data, &cfg, 1).expect("fused")
            })
            .expect_clean()
            .outcomes;
        let unfused = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce_unfused(comm, &data, &cfg).expect("unfused")
            })
            .expect_clean()
            .outcomes;
        for (a, b) in fused[0].value.iter().zip(&unfused[0].value) {
            // unfused re-quantizes once more at the stage boundary
            assert!(((a - b).abs() as f64) <= 2.0 * eb + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn reduce_to_root_is_error_bounded_and_root_only() {
        let n = 1500;
        let nranks = 5;
        let eb = 1e-4;
        let root = 2;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        for segments in [1usize, 3] {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    reduce_impl(comm, &data, root, &cfg, segments).expect("reduce")
                })
                .expect_clean()
                .outcomes;
            let expect = direct_sum(nranks, n);
            for (r, o) in outcomes.iter().enumerate() {
                if r == root {
                    let got = o.value.as_ref().expect("root must hold the result");
                    for (a, b) in got.iter().zip(&expect) {
                        assert!(((a - b).abs() as f64) <= nranks as f64 * eb + 1e-6, "{a} vs {b}");
                    }
                } else {
                    assert!(o.value.is_none());
                }
            }
        }
    }

    #[test]
    fn reduce_leaves_non_roots_without_decompression_cost() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        for segments in [1usize, 4] {
            let cluster = SimBuilder::new(4).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), 2048);
                    reduce_impl(comm, &data, 0, &cfg, segments).expect("reduce");
                    comm.breakdown()
                })
                .expect_clean()
                .outcomes;
            assert!(outcomes[0].value.dpr > 0.0, "root decompresses");
            for o in &outcomes[1..] {
                assert_eq!(o.value.dpr, 0.0, "non-roots never decompress: {:?}", o.value);
            }
        }
    }

    #[test]
    fn bcast_is_error_bounded_everywhere() {
        let n = 1200;
        let nranks = 6;
        let eb = 1e-3;
        let root = 1;
        let base = field(7, n);
        let cfg = CollectiveConfig::new(eb, Mode::MultiThread(2));
        for segments in [1usize, 2] {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = if comm.rank() == root { base.clone() } else { Vec::new() };
                    bcast_impl(comm, &data, root, n, &cfg, segments).expect("bcast")
                })
                .expect_clean()
                .outcomes;
            for o in &outcomes {
                assert_eq!(o.value, outcomes[0].value, "all ranks identical");
                for (a, b) in o.value.iter().zip(&base) {
                    assert!((a - b).abs() as f64 <= eb + 1e-9, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn single_rank_allreduce_is_quantized_identity() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        for segments in [1usize, 4] {
            let cluster = SimBuilder::new(1).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(0, 256);
                    allreduce_impl(comm, &data, &cfg, segments).expect("allreduce")
                })
                .expect_clean()
                .outcomes;
            for (a, b) in outcomes[0].value.iter().zip(field(0, 256)) {
                assert!((a - b).abs() <= 1e-4 + 1e-9);
            }
        }
    }
}
