//! The hZCCL collectives (Sec. III-C): the homomorphic
//! compression-accelerated Reduce_scatter and Allreduce.
//!
//! Reduce_scatter compresses all `N` local chunks once up front, then every
//! ring round reduces *compressed* blocks directly with `hZ-dynamic` (HPR) —
//! no per-round decompression/recompression — and decompresses only the
//! final owned chunk: `N·CPR + (N-1)·HPR + 1·DPR` versus C-Coll's
//! `(N-1)(CPR + DPR + CPT)`.
//!
//! Allreduce fuses the stages (Sec. III-C.2): the Reduce_scatter stage skips
//! its final decompression and hands the compressed chunk straight to the
//! Allgather stage, which in turn skips its compression; chunks travel
//! compressed and are decompressed once at the end. (We charge `N` DPRs —
//! the paper's accounting lists `N-1`, eliding the own-chunk decompression.)

use crate::chunks::node_chunks;
use crate::config::CollectiveConfig;
use crate::mpi::TAG_RS;
use crate::ring::ring_forward_logical;
use fzlight::{compress_resolved, decompress, CompressedStream, Result};
use hzdyn::homomorphic_sum;
use netsim::{Comm, OpKind};

/// hZCCL ring `Reduce_scatter(sum)`: returns the reduced node-chunk `rank`.
pub fn reduce_scatter(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let stream = reduce_scatter_compressed(comm, data, cfg)?;
    // the single final decompression of the workflow
    comm.compute_labeled(OpKind::Dpr, stream.n() * 4, "hz:final-decompress", || decompress(&stream))
}

/// The homomorphic Reduce_scatter core, returning the reduced chunk still in
/// compressed form (the handle the fused Allreduce consumes).
pub(crate) fn reduce_scatter_compressed(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
) -> Result<CompressedStream> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    let threads = cfg.mode.threads();
    if n == 1 {
        return comm.compute_labeled(OpKind::Cpr, data.len() * 4, "hz:compress-all", || {
            compress_resolved(data, cfg.eb, cfg.block_len, threads)
        });
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;

    // Round 1: compress all N local chunks once (N·CPR, charged as one
    // sweep over the full vector).
    let comp: Vec<CompressedStream> =
        comm.compute_labeled(OpKind::Cpr, data.len() * 4, "hz:compress-all", || {
            chunks
                .iter()
                .map(|c| compress_resolved(&data[c.clone()], cfg.eb, cfg.block_len, threads))
                .collect::<Result<Vec<_>>>()
        })?;

    let mut send = comp[(r + n - 1) % n].clone();
    for s in 0..n - 1 {
        // the chunk being forwarded at step s (its uncompressed size is the
        // logical volume this compressed message represents)
        let send_idx = (r + 2 * n - s - 1) % n;
        let got = comm.sendrecv_compressed(
            right,
            TAG_RS + s as u64,
            send.as_bytes().to_vec(),
            chunks[send_idx].len() * 4,
            left,
        );
        let received = CompressedStream::from_bytes(got)?;
        let idx = (r + 2 * n - s - 2) % n;
        // HPR: reduce two compressed chunks directly, no decompression
        send =
            comm.compute_labeled(OpKind::Hpr, chunks[idx].len() * 4, "hz:homomorphic-sum", || {
                homomorphic_sum(&received, &comp[idx])
            })?;
    }
    Ok(send)
}

/// hZCCL ring `Allreduce(sum)` with the fused Reduce_scatter/Allgather
/// optimization.
pub fn allreduce(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let n = comm.size();
    let own_stream = reduce_scatter_compressed(comm, data, cfg)?;
    let chunks = node_chunks(data.len(), n);
    let mut out = vec![0f32; data.len()];
    // Allgather stage: no compression — the already-compressed chunks are
    // forwarded verbatim around the ring...
    let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
    let slots = ring_forward_logical(comm, own_stream.into_bytes(), &logical);
    // ...and everything is decompressed once at the very end.
    for (idx, payload) in slots.into_iter().enumerate() {
        let stream = CompressedStream::from_bytes(payload)?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:final-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

/// hZCCL `Reduce(sum)` to `root`: the homomorphic Reduce_scatter keeps every
/// rank's reduced chunk compressed, so the gather forwards compressed bytes
/// verbatim and **only the root decompresses** — `N·CPR + (N-1)·HPR` per
/// rank plus `N·DPR` on the root, versus C-Coll's extra per-rank
/// recompression. Returns `Some(full sum)` on the root, `None` elsewhere.
pub fn reduce(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
) -> Result<Option<Vec<f32>>> {
    let n = comm.size();
    let r = comm.rank();
    let own_stream = reduce_scatter_compressed(comm, data, cfg)?;
    if n == 1 {
        return Ok(Some(comm.compute_labeled(
            OpKind::Dpr,
            data.len() * 4,
            "hz:final-decompress",
            || decompress(&own_stream),
        )?));
    }
    let chunks = node_chunks(data.len(), n);
    if r == root {
        let mut out = vec![0f32; data.len()];
        {
            let dst = &mut out[chunks[r].clone()];
            comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:root-decompress", || {
                fzlight::decompress_into(&own_stream, dst)
            })?;
        }
        for src in 0..n {
            if src == root {
                continue;
            }
            let got = comm.recv(src, crate::mpi::TAG_GATHER + src as u64);
            let stream = CompressedStream::from_bytes(got)?;
            let dst = &mut out[chunks[src].clone()];
            comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:root-decompress", || {
                fzlight::decompress_into(&stream, dst)
            })?;
        }
        Ok(Some(out))
    } else {
        // no recompression: the chunk is already compressed
        comm.send_compressed(
            root,
            crate::mpi::TAG_GATHER + r as u64,
            own_stream.into_bytes(),
            chunks[r].len() * 4,
        );
        Ok(None)
    }
}

/// hZCCL long-message `Bcast`. Broadcast moves data without reducing, so no
/// homomorphic operation applies; the gain over MPI is the compressed wire
/// (the root compresses each chunk once with fZ-light, everyone decompresses
/// at the end).
pub fn bcast(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let threads = cfg.mode.threads();
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return Ok(data.to_vec());
    }
    let chunks = node_chunks(total_len, n);
    let own_bytes: Vec<u8> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        let mut mine = Vec::new();
        for dst in 0..n {
            let chunk = &data[chunks[dst].clone()];
            let stream =
                comm.compute_labeled(OpKind::Cpr, chunk.len() * 4, "hz:bcast-compress", || {
                    compress_resolved(chunk, cfg.eb, cfg.block_len, threads)
                })?;
            if dst == root {
                mine = stream.into_bytes();
            } else {
                comm.send_compressed(
                    dst,
                    crate::mpi::TAG_SCATTER + dst as u64,
                    stream.into_bytes(),
                    chunk.len() * 4,
                );
            }
        }
        mine
    } else {
        comm.recv(root, crate::mpi::TAG_SCATTER + r as u64)
    };
    let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
    let slots = ring_forward_logical(comm, own_bytes, &logical);
    let mut out = vec![0f32; total_len];
    for (idx, payload) in slots.into_iter().enumerate() {
        let stream = CompressedStream::from_bytes(payload)?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "hz:bcast-decompress", || {
            fzlight::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

/// Ablation: hZCCL Reduce_scatter followed by the *unfused* C-Coll-style
/// Allgather (decompress at the stage boundary, recompress for gathering).
/// Quantifies the fusion saving of Sec. III-C.2.
pub fn allreduce_unfused(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let own = reduce_scatter(comm, data, cfg)?;
    crate::ccoll::allgather(comm, &own, data.len(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{Cluster, ComputeTiming, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.013).sin() * (rank + 1) as f32 * 1.7).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn hzccl_allreduce_is_error_bounded_by_n_eb() {
        let n = 2048;
        let eb = 1e-4;
        for nranks in [2usize, 4, 6] {
            for mode in [Mode::SingleThread, Mode::MultiThread(2)] {
                let cfg = CollectiveConfig::new(eb, mode);
                let cluster = Cluster::new(nranks).with_timing(modeled());
                let outcomes = cluster.run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce(comm, &data, &cfg).expect("hzccl allreduce")
                });
                let expect = direct_sum(nranks, n);
                // each rank's single quantization contributes <= eb; the
                // homomorphic sums are exact on the integers
                let tol = nranks as f64 * eb + 1e-6;
                for o in outcomes {
                    for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                        assert!(
                            ((a - b).abs() as f64) <= tol,
                            "nranks={nranks} {mode:?} at {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_ranks_agree_bitwise() {
        let cfg = CollectiveConfig::new(1e-4, Mode::MultiThread(2));
        let cluster = Cluster::new(5).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), 1000);
            allreduce(comm, &data, &cfg).expect("allreduce")
        });
        for o in &outcomes[1..] {
            assert_eq!(o.value, outcomes[0].value);
        }
    }

    #[test]
    fn reduce_scatter_matches_mpi_chunk_within_bound() {
        let n = 1200;
        let nranks = 4;
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            reduce_scatter(comm, &data, &cfg).expect("rs")
        });
        let expect = direct_sum(nranks, n);
        let chunks = node_chunks(n, nranks);
        for (r, o) in outcomes.iter().enumerate() {
            for (a, b) in o.value.iter().zip(&expect[chunks[r].clone()]) {
                assert!(((a - b).abs() as f64) <= nranks as f64 * eb + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn hzccl_charges_hpr_not_per_round_doc() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = Cluster::new(4).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), 4096);
            reduce_scatter(comm, &data, &cfg).expect("rs");
            comm.breakdown()
        });
        for o in outcomes {
            let b = o.value;
            assert!(b.hpr > 0.0, "{b:?}");
            assert_eq!(b.cpt, 0.0, "hZCCL never reduces on raw values");
            // exactly one decompression (the final chunk)
            assert!(b.dpr > 0.0);
            assert!(b.dpr < b.cpr, "single DPR must be far below N×CPR: {b:?}");
        }
    }

    #[test]
    fn fused_allreduce_beats_unfused_in_virtual_time() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let run = |fused: bool| {
            let cluster = Cluster::new(6).with_timing(modeled());
            let (_, stats) = cluster.run_stats(|comm| {
                let data = field(comm.rank(), 60_000);
                if fused {
                    allreduce(comm, &data, &cfg).expect("fused")
                } else {
                    allreduce_unfused(comm, &data, &cfg).expect("unfused")
                };
            });
            stats.makespan
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn unfused_matches_fused_within_bound() {
        let n = 900;
        let nranks = 3;
        let eb = 1e-3;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let fused = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            allreduce(comm, &data, &cfg).expect("fused")
        });
        let unfused = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            allreduce_unfused(comm, &data, &cfg).expect("unfused")
        });
        for (a, b) in fused[0].value.iter().zip(&unfused[0].value) {
            // unfused re-quantizes once more at the stage boundary
            assert!(((a - b).abs() as f64) <= 2.0 * eb + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn reduce_to_root_is_error_bounded_and_root_only() {
        let n = 1500;
        let nranks = 5;
        let eb = 1e-4;
        let root = 2;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            reduce(comm, &data, root, &cfg).expect("reduce")
        });
        let expect = direct_sum(nranks, n);
        for (r, o) in outcomes.iter().enumerate() {
            if r == root {
                let got = o.value.as_ref().expect("root must hold the result");
                for (a, b) in got.iter().zip(&expect) {
                    assert!(((a - b).abs() as f64) <= nranks as f64 * eb + 1e-6, "{a} vs {b}");
                }
            } else {
                assert!(o.value.is_none());
            }
        }
    }

    #[test]
    fn reduce_leaves_non_roots_without_decompression_cost() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = Cluster::new(4).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), 2048);
            reduce(comm, &data, 0, &cfg).expect("reduce");
            comm.breakdown()
        });
        assert!(outcomes[0].value.dpr > 0.0, "root decompresses");
        for o in &outcomes[1..] {
            assert_eq!(o.value.dpr, 0.0, "non-roots never decompress: {:?}", o.value);
        }
    }

    #[test]
    fn bcast_is_error_bounded_everywhere() {
        let n = 1200;
        let nranks = 6;
        let eb = 1e-3;
        let root = 1;
        let base = field(7, n);
        let cfg = CollectiveConfig::new(eb, Mode::MultiThread(2));
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = if comm.rank() == root { base.clone() } else { Vec::new() };
            bcast(comm, &data, root, n, &cfg).expect("bcast")
        });
        for o in &outcomes {
            assert_eq!(o.value, outcomes[0].value, "all ranks identical");
            for (a, b) in o.value.iter().zip(&base) {
                assert!((a - b).abs() as f64 <= eb + 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn single_rank_allreduce_is_quantized_identity() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = Cluster::new(1).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(0, 256);
            allreduce(comm, &data, &cfg).expect("allreduce")
        });
        for (a, b) in outcomes[0].value.iter().zip(field(0, 256)) {
            assert!((a - b).abs() <= 1e-4 + 1e-9);
        }
    }
}
