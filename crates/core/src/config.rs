//! Collective configuration: compression parameters, single/multi-thread
//! modes, and per-variant throughput calibration for modeled runs.

use fzlight::{Config as FzConfig, ErrorBound};
use netsim::ThroughputModel;

/// Compression mode of a compression-accelerated collective
/// (paper Table II: C-Coll / hZCCL each come in both modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Single compression thread per rank.
    SingleThread,
    /// `k` compression threads per rank (the paper uses one 18-core socket).
    MultiThread(usize),
}

impl Mode {
    /// Compression thread count of this mode.
    pub fn threads(&self) -> usize {
        match *self {
            Mode::SingleThread => 1,
            Mode::MultiThread(k) => k.max(2),
        }
    }
}

/// Which collective framework a timing model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Original MPI (no compression; only CPT/Other buckets are exercised).
    Mpi,
    /// C-Coll with its conventional (ompSZp-class) compressor.
    CColl,
    /// hZCCL with fZ-light + hZ-dynamic.
    Hzccl,
    /// Let the tuner pick per call (see [`crate::auto`]): one rank ranks the
    /// static flavours with `tuner::Engine` and broadcasts the winning plan.
    Auto,
}

impl Variant {
    /// Stable lowercase name (CLI, cache keys).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Mpi => "mpi",
            Variant::CColl => "ccoll",
            Variant::Hzccl => "hz",
            Variant::Auto => "auto",
        }
    }

    /// Parse the stable name back.
    pub fn parse(name: &str) -> Option<Variant> {
        Some(match name {
            "mpi" => Variant::Mpi,
            "ccoll" => Variant::CColl,
            "hz" => Variant::Hzccl,
            "auto" => Variant::Auto,
            _ => return None,
        })
    }

    /// The `tuner` flavour this variant corresponds to ([`Variant::Auto`]
    /// maps to hZCCL, its prior before any evidence arrives).
    pub fn flavor(self) -> tuner::Flavor {
        match self {
            Variant::Mpi => tuner::Flavor::Mpi,
            Variant::CColl => tuner::Flavor::CColl,
            Variant::Hzccl | Variant::Auto => tuner::Flavor::Hzccl,
        }
    }
}

/// Parameters shared by every rank of a compression-accelerated collective.
///
/// The error bound is *absolute*: all ranks must bake the identical bound
/// into their streams for homomorphic compatibility, so range-relative
/// bounds must be resolved before the collective starts.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveConfig {
    /// Absolute error bound (paper default: 1e-4).
    pub eb: f64,
    /// Small-block length (paper default: 32).
    pub block_len: usize,
    /// Single- or multi-thread compression mode.
    pub mode: Mode,
    /// Resilient-transport policy. `None` (the default) keeps every
    /// schedule on the exact unframed fast path — bit-identical behaviour
    /// to a build without the resilience layer. `Some` routes the serial
    /// schedules' hops through the framed ARQ transport
    /// ([`crate::resilient`]).
    pub res: Option<crate::resilient::Resilience>,
}

impl CollectiveConfig {
    /// Config with the paper's defaults and the given mode.
    pub fn new(eb: f64, mode: Mode) -> Self {
        CollectiveConfig { eb, block_len: fzlight::DEFAULT_BLOCK_LEN, mode, res: None }
    }

    /// Enable the resilient transport with the given retry policy.
    pub fn with_resilience(mut self, res: crate::resilient::Resilience) -> Self {
        self.res = Some(res);
        self
    }

    /// The fzlight compressor config this collective config implies.
    pub fn fz(&self) -> FzConfig {
        FzConfig::new(ErrorBound::Abs(self.eb))
            .with_block_len(self.block_len)
            .with_threads(self.mode.threads())
    }
}

fn best_of<const K: usize>(mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    let mut best = f64::INFINITY;
    for _ in 0..K {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measure hZCCL-side throughputs (GB/s of uncompressed bytes) on this host
/// by timing the real fZ-light / hZ-dynamic kernels on a sample field —
/// feeds [`netsim::ComputeTiming::Modeled`] for runs whose rank count
/// oversubscribes the host.
pub fn calibrate_hz(sample: &[f32], cfg: &CollectiveConfig) -> ThroughputModel {
    let fz = cfg.fz();
    let bytes = sample.len() * 4;
    let mut stream = None;
    let t_cpr = best_of::<3>(|| {
        stream = Some(fzlight::compress(sample, &fz).expect("calibrate compress"));
    });
    let stream = stream.unwrap();
    let mut out = vec![0f32; sample.len()];
    let t_dpr = best_of::<3>(|| {
        fzlight::decompress_into(&stream, &mut out).expect("calibrate decompress");
    });
    let t_hpr = best_of::<3>(|| {
        std::hint::black_box(hzdyn::homomorphic_sum(&stream, &stream).expect("calibrate hz"));
    });
    let (t_cpt, t_other) = calibrate_common(sample, fz.threads, &mut out);
    let gbps = |t: f64| (bytes as f64 / t / 1e9).max(1e-3);
    ThroughputModel::new(gbps(t_cpr), gbps(t_dpr), gbps(t_hpr), gbps(t_cpt), gbps(t_other))
}

/// Measure C-Coll-side throughputs using the ompSZp kernels its DOC workflow
/// runs on (HPR is unused by C-Coll; it inherits the hZ value scale via a
/// placeholder equal to DPR).
pub fn calibrate_doc(sample: &[f32], cfg: &CollectiveConfig) -> ThroughputModel {
    let ocfg = ompszp::Config::new(ompszp::ErrorBound::Abs(cfg.eb))
        .with_block_len(cfg.block_len)
        .with_threads(cfg.mode.threads());
    let bytes = sample.len() * 4;
    let mut stream = None;
    let t_cpr = best_of::<3>(|| {
        stream = Some(ompszp::compress(sample, &ocfg).expect("calibrate ompszp compress"));
    });
    let stream = stream.unwrap();
    let mut out = vec![0f32; sample.len()];
    let t_dpr = best_of::<3>(|| {
        ompszp::decompress_into(&stream, &mut out).expect("calibrate ompszp decompress");
    });
    let (t_cpt, t_other) = calibrate_common(sample, cfg.mode.threads(), &mut out);
    let gbps = |t: f64| (bytes as f64 / t / 1e9).max(1e-3);
    ThroughputModel::new(gbps(t_cpr), gbps(t_dpr), gbps(t_dpr), gbps(t_cpt), gbps(t_other))
}

fn calibrate_common(sample: &[f32], threads: usize, out: &mut [f32]) -> (f64, f64) {
    let mut acc = out.to_vec();
    let t_cpt = best_of::<3>(|| {
        hzdyn::doc::reduce_in_place(&mut acc, out, hzdyn::ReduceOp::Sum, threads);
    });
    let mut copy = vec![0u8; sample.len() * 4];
    let t_other = best_of::<3>(|| {
        copy.copy_from_slice(&crate::chunks::f32_to_bytes(sample));
    });
    (t_cpt, t_other)
}

/// Throughputs calibrated to the paper's 36-thread Broadwell socket,
/// per framework and mode. The hZCCL values come from the paper's Fig. 6 /
/// Tables V-VI (fZ-light ≈ 30/60 GB/s compress/decompress MT, hZ-dynamic
/// ≈ 175 GB/s on mixed data); the C-Coll values reflect its SZx-class
/// compressor, which matches fZ-light single-threaded but scales far worse
/// (Fig. 2's 52% MT DOC share). `HZ_PAPER_MODEL=1` selects these in the
/// benches, reproducing the paper's operating regime on any host.
///
/// The constants themselves live in [`tuner::paper_prior`] — the tuner's
/// calibration tables seed from the same source of truth — and this function
/// merely translates [`Variant`]/[`Mode`] into the tuner's vocabulary.
/// [`Variant::Auto`] reports the hZCCL table (its prior before evidence).
pub fn paper_model(variant: Variant, mode: Mode) -> ThroughputModel {
    tuner::paper_prior(variant.flavor(), matches!(mode, Mode::MultiThread(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_threads() {
        assert_eq!(Mode::SingleThread.threads(), 1);
        assert_eq!(Mode::MultiThread(8).threads(), 8);
        assert_eq!(Mode::MultiThread(1).threads(), 2, "MT means at least 2");
    }

    #[test]
    fn fz_config_reflects_collective_config() {
        let c = CollectiveConfig::new(1e-4, Mode::MultiThread(4));
        let fz = c.fz();
        assert_eq!(fz.threads, 4);
        assert_eq!(fz.block_len, 32);
    }

    #[test]
    fn calibration_yields_positive_throughputs() {
        let sample: Vec<f32> = (0..1 << 16).map(|i| (i as f32 * 0.01).sin()).collect();
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let hz = calibrate_hz(&sample, &cfg);
        let doc = calibrate_doc(&sample, &cfg);
        assert!(hz.gbps.iter().all(|&g| g > 0.0), "{hz:?}");
        assert!(doc.gbps.iter().all(|&g| g > 0.0), "{doc:?}");
        // the co-designed homomorphic path must beat the DOC pipeline
        assert!(hz.gbps[2] > 1.0 / (1.0 / doc.gbps[0] + 1.0 / doc.gbps[1]));
    }

    #[test]
    fn variant_names_roundtrip_and_auto_maps_to_hz_prior() {
        for v in [Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto] {
            assert_eq!(Variant::parse(v.name()), Some(v));
        }
        assert_eq!(Variant::parse("warp"), None);
        // Auto's prior is the hZCCL table in both modes.
        for mode in [Mode::SingleThread, Mode::MultiThread(18)] {
            assert_eq!(paper_model(Variant::Auto, mode), paper_model(Variant::Hzccl, mode));
        }
        // and the delegation preserves the paper's literal ST constants
        assert_eq!(
            paper_model(Variant::Hzccl, Mode::SingleThread),
            ThroughputModel::new(1.7, 3.3, 9.7, 2.8, 6.0)
        );
        assert_eq!(
            paper_model(Variant::Mpi, Mode::SingleThread),
            ThroughputModel::new(1.0, 1.0, 1.0, 50.0, 108.0)
        );
    }

    #[test]
    fn paper_model_orders_match_paper() {
        for mode in [Mode::SingleThread, Mode::MultiThread(18)] {
            let hz = paper_model(Variant::Hzccl, mode);
            let cc = paper_model(Variant::CColl, mode);
            // homomorphic processing far faster than the DOC pipeline
            assert!(hz.gbps[2] > cc.gbps[0]);
            assert!(hz.gbps[2] > cc.gbps[1]);
            // hZCCL's compressor is never slower than C-Coll's
            assert!(hz.gbps[0] >= cc.gbps[0]);
        }
        // MT beats ST within each framework
        for v in [Variant::CColl, Variant::Hzccl] {
            let st = paper_model(v, Mode::SingleThread);
            let mt = paper_model(v, Mode::MultiThread(18));
            assert!(mt.gbps[0] > st.gbps[0]);
        }
    }
}
