//! The artifact's five collective kernels (Appendix, "Artifact Execution"):
//! a single dispatcher so benches sweep kernels exactly like the paper's
//! `different_sizes.sh` / `different_nodes.sh` scripts.

use crate::collectives::{self, CollectiveOpts, Result};
use crate::config::{Mode, Variant};
use netsim::Comm;

/// Kernel ids as used by the paper's artifact outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Kernel 0: the original `MPI_Allreduce` / `MPI_Reduce_scatter`.
    MpiOriginal,
    /// Kernel 1: multi-thread mode of C-Coll.
    CCollMultiThread,
    /// Kernel 2: multi-thread mode of hZCCL.
    HzcclMultiThread,
    /// Kernel 3: single-thread mode of C-Coll.
    CCollSingleThread,
    /// Kernel 4: single-thread mode of hZCCL.
    HzcclSingleThread,
}

impl Kernel {
    /// All kernels in artifact order (0..=4).
    pub const ALL: [Kernel; 5] = [
        Kernel::MpiOriginal,
        Kernel::CCollMultiThread,
        Kernel::HzcclMultiThread,
        Kernel::CCollSingleThread,
        Kernel::HzcclSingleThread,
    ];

    /// Artifact kernel number.
    pub fn id(&self) -> usize {
        match self {
            Kernel::MpiOriginal => 0,
            Kernel::CCollMultiThread => 1,
            Kernel::HzcclMultiThread => 2,
            Kernel::CCollSingleThread => 3,
            Kernel::HzcclSingleThread => 4,
        }
    }

    /// Human-readable label matching Table II.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::MpiOriginal => "Original MPI",
            Kernel::CCollMultiThread => "C-Coll (multi-thread)",
            Kernel::HzcclMultiThread => "hZCCL (multi-thread)",
            Kernel::CCollSingleThread => "C-Coll (single-thread)",
            Kernel::HzcclSingleThread => "hZCCL (single-thread)",
        }
    }

    /// Which framework this kernel belongs to (for model selection).
    pub fn variant(&self) -> Variant {
        match self {
            Kernel::MpiOriginal => Variant::Mpi,
            Kernel::CCollMultiThread | Kernel::CCollSingleThread => Variant::CColl,
            Kernel::HzcclMultiThread | Kernel::HzcclSingleThread => Variant::Hzccl,
        }
    }

    /// The compression mode this kernel runs in (`None` for plain MPI).
    pub fn mode(&self, mt_threads: usize) -> Option<Mode> {
        match self {
            Kernel::MpiOriginal => None,
            Kernel::CCollMultiThread | Kernel::HzcclMultiThread => {
                Some(Mode::MultiThread(mt_threads))
            }
            Kernel::CCollSingleThread | Kernel::HzcclSingleThread => Some(Mode::SingleThread),
        }
    }

    /// The [`CollectiveOpts`] this kernel dispatches with (plain MPI runs
    /// single-threaded CPT, matching the artifact's `MPI_Allreduce`).
    pub fn opts(&self, eb: f64, mt_threads: usize) -> CollectiveOpts {
        match self.mode(mt_threads) {
            None => CollectiveOpts::mpi(),
            Some(mode) => CollectiveOpts::for_variant(self.variant(), eb).with_mode(mode),
        }
    }

    /// Run this kernel's `Allreduce` on one rank.
    pub fn allreduce(
        &self,
        comm: &mut Comm,
        data: &[f32],
        eb: f64,
        mt_threads: usize,
    ) -> Result<Vec<f32>> {
        collectives::allreduce(comm, data, &self.opts(eb, mt_threads))
    }

    /// Run this kernel's `Reduce_scatter` on one rank.
    pub fn reduce_scatter(
        &self,
        comm: &mut Comm,
        data: &[f32],
        eb: f64,
        mt_threads: usize,
    ) -> Result<Vec<f32>> {
        collectives::reduce_scatter(comm, data, &self.opts(eb, mt_threads))
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    #[test]
    fn kernel_ids_match_artifact_numbering() {
        for (i, k) in Kernel::ALL.iter().enumerate() {
            assert_eq!(k.id(), i);
        }
    }

    #[test]
    fn all_kernels_produce_bounded_allreduce() {
        let timing = ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0));
        let n = 640;
        let nranks = 4;
        let eb = 1e-4;
        let field = |rank: usize| -> Vec<f32> {
            (0..n).map(|i| ((i as f32) * 0.05).cos() * (rank + 1) as f32).collect()
        };
        let mut expect = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in expect.iter_mut().zip(field(r)) {
                *a += b;
            }
        }
        for kernel in Kernel::ALL {
            let cluster = SimBuilder::new(nranks).timing(timing);
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank());
                    kernel.allreduce(comm, &data, eb, 2).expect("kernel allreduce")
                })
                .expect_clean()
                .outcomes;
            let tol = if kernel == Kernel::MpiOriginal { 1e-5 } else { 2.0 * nranks as f64 * eb };
            for o in outcomes {
                for (a, b) in o.value.iter().zip(&expect) {
                    assert!(((a - b).abs() as f64) <= tol + 1e-9, "{kernel}: {a} vs {b}");
                }
            }
        }
    }
}
