//! The C-Coll baseline [13]: compression-accelerated collectives with the
//! traditional **decompression-operation-compression (DOC)** workflow.
//!
//! Per Reduce_scatter round every rank compresses the chunk it forwards
//! (CPR), decompresses the chunk it receives (DPR), and reduces on raw
//! values (CPT) — the `(N-1)(CPR + DPR + CPT)` cost of Sec. III-C.1. The
//! Allgather stage compresses once and decompresses every received chunk.
//!
//! C-Coll uses its own conventional compressor, which this reproduction maps
//! to [`ompszp`] (the cuSZp-strategy CPU baseline): slower than `fZ-light`,
//! especially in multi-thread mode, exactly as the published C-Coll's
//! SZx-class compressor trails `hZCCL`'s co-designed stack. This keeps the
//! framework comparison faithful to what the paper measured.

use crate::chunks::node_chunks;
use crate::config::CollectiveConfig;
use crate::ring::ring_forward_logical;
use fzlight::Result;
use hzdyn::{doc::reduce_in_place, ReduceOp};
use netsim::{Comm, OpKind};
use ompszp::OszpStream;

use crate::mpi::TAG_RS;

fn oszp_config(cfg: &CollectiveConfig) -> ompszp::Config {
    ompszp::Config::new(ompszp::ErrorBound::Abs(cfg.eb))
        .with_block_len(cfg.block_len)
        .with_threads(cfg.mode.threads())
}

/// C-Coll ring `Reduce_scatter(sum)`: returns the reduced node-chunk `rank`.
pub fn reduce_scatter(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    if n == 1 {
        return Ok(data.to_vec());
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let threads = cfg.mode.threads();
    let ocfg = oszp_config(cfg);

    let mut acc: Vec<f32> = data[chunks[(r + n - 1) % n].clone()].to_vec();
    for s in 0..n - 1 {
        // CPR: compress the chunk we are about to forward
        let stream = comm.compute_labeled(OpKind::Cpr, acc.len() * 4, "ccoll:compress", || {
            ompszp::compress(&acc, &ocfg)
        })?;
        let logical = acc.len() * 4;
        let got = comm.sendrecv_compressed(
            right,
            TAG_RS + s as u64,
            stream.as_bytes().to_vec(),
            logical,
            left,
        );
        let received = OszpStream::from_bytes(got)?;
        // DPR: fully decompress before any arithmetic (the DOC bottleneck)
        let mut tmp =
            comm.compute_labeled(OpKind::Dpr, received.n() * 4, "ccoll:decompress", || {
                ompszp::decompress(&received)
            })?;
        let local_idx = (r + 2 * n - s - 2) % n;
        let local = &data[chunks[local_idx].clone()];
        // CPT: reduce on raw values
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "ccoll:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
        });
        acc = tmp;
    }
    Ok(acc)
}

/// C-Coll ring `Allgather`: compress the owned chunk once, forward
/// compressed chunks around the ring, decompress everything at the end
/// (`CPR + (N-1)·DPR`, Sec. III-C.2).
pub fn allgather(
    comm: &mut Comm,
    own: &[f32],
    total_len: usize,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(total_len, n);
    assert_eq!(own.len(), chunks[r].len(), "own chunk has the wrong length");
    let ocfg = oszp_config(cfg);
    let mut out = vec![0f32; total_len];
    out[chunks[r].clone()].copy_from_slice(own);
    if n == 1 {
        return Ok(out);
    }

    // CPR (once): compress our own chunk
    let own_stream = comm.compute_labeled(OpKind::Cpr, own.len() * 4, "ccoll:compress", || {
        ompszp::compress(own, &ocfg)
    })?;
    let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
    let slots = ring_forward_logical(comm, own_stream.as_bytes().to_vec(), &logical);
    for (idx, payload) in slots.into_iter().enumerate() {
        if idx == r {
            continue;
        }
        let stream = OszpStream::from_bytes(payload)?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

/// C-Coll ring `Allreduce(sum)` = DOC Reduce_scatter + compressed Allgather.
pub fn allreduce(comm: &mut Comm, data: &[f32], cfg: &CollectiveConfig) -> Result<Vec<f32>> {
    let own = reduce_scatter(comm, data, cfg)?;
    allgather(comm, &own, data.len(), cfg)
}

/// C-Coll `Reduce(sum)` to `root`: DOC Reduce_scatter, then every rank
/// compresses its reduced chunk and the root decompresses the gathered
/// chunks. Returns `Some(full sum)` on the root, `None` elsewhere.
pub fn reduce(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
) -> Result<Option<Vec<f32>>> {
    let n = comm.size();
    let r = comm.rank();
    let own = reduce_scatter(comm, data, cfg)?;
    if n == 1 {
        return Ok(Some(own));
    }
    let chunks = node_chunks(data.len(), n);
    let ocfg = oszp_config(cfg);
    if r == root {
        let mut out = vec![0f32; data.len()];
        out[chunks[r].clone()].copy_from_slice(&own);
        for src in 0..n {
            if src == root {
                continue;
            }
            let got = comm.recv(src, crate::mpi::TAG_GATHER + src as u64);
            let stream = OszpStream::from_bytes(got)?;
            let dst = &mut out[chunks[src].clone()];
            comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
                ompszp::decompress_into(&stream, dst)
            })?;
        }
        Ok(Some(out))
    } else {
        let stream = comm.compute_labeled(OpKind::Cpr, own.len() * 4, "ccoll:compress", || {
            ompszp::compress(&own, &ocfg)
        })?;
        comm.send_compressed(
            root,
            crate::mpi::TAG_GATHER + r as u64,
            stream.as_bytes().to_vec(),
            own.len() * 4,
        );
        Ok(None)
    }
}

/// C-Coll long-message `Bcast`: the root compresses its chunks once and
/// scatters them compressed; a compressed ring-Allgather distributes the
/// rest; every rank decompresses at the end.
pub fn bcast(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let ocfg = oszp_config(cfg);
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return Ok(data.to_vec());
    }
    let chunks = node_chunks(total_len, n);
    // the compressed bytes of this rank's chunk
    let own_bytes: Vec<u8> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        let mut mine = Vec::new();
        for dst in 0..n {
            let chunk = &data[chunks[dst].clone()];
            let stream =
                comm.compute_labeled(OpKind::Cpr, chunk.len() * 4, "ccoll:compress", || {
                    ompszp::compress(chunk, &ocfg)
                })?;
            if dst == root {
                mine = stream.as_bytes().to_vec();
            } else {
                comm.send_compressed(
                    dst,
                    crate::mpi::TAG_SCATTER + dst as u64,
                    stream.as_bytes().to_vec(),
                    chunk.len() * 4,
                );
            }
        }
        mine
    } else {
        comm.recv(root, crate::mpi::TAG_SCATTER + r as u64)
    };
    let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
    let slots = ring_forward_logical(comm, own_bytes, &logical);
    let mut out = vec![0f32; total_len];
    for (idx, payload) in slots.into_iter().enumerate() {
        let stream = OszpStream::from_bytes(payload)?;
        let dst = &mut out[chunks[idx].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{Cluster, ComputeTiming, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.01).sin() * (rank + 1) as f32).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn ccoll_allreduce_is_error_bounded() {
        let n = 2048;
        let eb = 1e-4;
        for nranks in [2usize, 4, 6] {
            let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
            let cluster = Cluster::new(nranks).with_timing(modeled());
            let outcomes = cluster.run(|comm| {
                let data = field(comm.rank(), n);
                allreduce(comm, &data, &cfg).expect("ccoll allreduce")
            });
            let expect = direct_sum(nranks, n);
            // DOC error: each round re-quantizes, so worst case grows with N
            let tol = (2.0 * nranks as f64) * eb + 1e-6;
            for o in outcomes {
                for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                    assert!(((a - b).abs() as f64) <= tol, "nranks={nranks} at {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ccoll_reduce_scatter_chunk_matches_direct_sum() {
        let n = 999;
        let nranks = 3;
        let cfg = CollectiveConfig::new(1e-4, Mode::MultiThread(2));
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            reduce_scatter(comm, &data, &cfg).expect("rs")
        });
        let expect = direct_sum(nranks, n);
        let chunks = node_chunks(n, nranks);
        for (r, o) in outcomes.iter().enumerate() {
            let want = &expect[chunks[r].clone()];
            assert_eq!(o.value.len(), want.len());
            for (a, b) in o.value.iter().zip(want) {
                assert!((a - b).abs() <= 8.0 * 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ccoll_charges_doc_costs_every_round() {
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = Cluster::new(4).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), 4096);
            reduce_scatter(comm, &data, &cfg).expect("rs");
            comm.breakdown()
        });
        for o in outcomes {
            let b = o.value;
            assert!(b.cpr > 0.0 && b.dpr > 0.0 && b.cpt > 0.0, "{b:?}");
            assert_eq!(b.hpr, 0.0, "C-Coll never uses homomorphic processing");
        }
    }

    #[test]
    fn ccoll_reduce_to_root_is_error_bounded() {
        let n = 900;
        let nranks = 4;
        let eb = 1e-4;
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), n);
            reduce(comm, &data, 0, &cfg).expect("reduce")
        });
        let expect = direct_sum(nranks, n);
        let got = outcomes[0].value.as_ref().expect("root result");
        for (a, b) in got.iter().zip(&expect) {
            assert!(((a - b).abs() as f64) <= (2.0 * nranks as f64 + 1.0) * eb, "{a} vs {b}");
        }
        assert!(outcomes[1..].iter().all(|o| o.value.is_none()));
    }

    #[test]
    fn ccoll_bcast_is_error_bounded_everywhere() {
        let n = 800;
        let nranks = 5;
        let eb = 1e-3;
        let base = field(3, n);
        let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = if comm.rank() == 0 { base.clone() } else { Vec::new() };
            bcast(comm, &data, 0, n, &cfg).expect("bcast")
        });
        for o in &outcomes {
            for (a, b) in o.value.iter().zip(&base) {
                assert!((a - b).abs() as f64 <= eb + 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ccoll_allgather_reassembles() {
        let n = 500;
        let nranks = 5;
        let base: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let chunks = node_chunks(n, comm.size());
            let own = base[chunks[comm.rank()].clone()].to_vec();
            allgather(comm, &own, n, &cfg).expect("ag")
        });
        for o in outcomes {
            for (a, b) in o.value.iter().zip(&base) {
                assert!((a - b).abs() <= 1e-4 + 1e-7, "{a} vs {b}");
            }
        }
    }
}
