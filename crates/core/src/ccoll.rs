//! The C-Coll baseline [13]: compression-accelerated collectives with the
//! traditional **decompression-operation-compression (DOC)** workflow.
//!
//! Per Reduce_scatter round every rank compresses the chunk it forwards
//! (CPR), decompresses the chunk it receives (DPR), and reduces on raw
//! values (CPT) — the `(N-1)(CPR + DPR + CPT)` cost of Sec. III-C.1. The
//! Allgather stage compresses once and decompresses every received chunk.
//!
//! C-Coll uses its own conventional compressor, which this reproduction maps
//! to [`ompszp`] (the cuSZp-strategy CPU baseline): slower than `fZ-light`,
//! especially in multi-thread mode, exactly as the published C-Coll's
//! SZx-class compressor trails `hZCCL`'s co-designed stack. This keeps the
//! framework comparison faithful to what the paper measured.
//!
//! With `segments > 1` every ring step is *pipelined*: the forwarded chunk
//! is split at compressor-block boundaries and within a step segment `k`'s
//! send is posted before segment `k-1`'s DOC triple (DPR + CPT; the CPR of
//! segment `k` rides just after its own send post) runs, so the DOC compute
//! hides behind the wire. Because `ompszp` blocks are independent and the
//! segment boundaries are block-aligned, the pipelined result is
//! bit-identical to the phase-serial one.

use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::config::CollectiveConfig;
use crate::mpi::{TAG_GATHER, TAG_RS, TAG_SCATTER};
use crate::pipeline::{chunk_seg_plan, seg_tag};
use crate::resilient::{recv_resilient, send_resilient, sendrecv_resilient, PayloadKind};
use crate::ring::{ring_forward_resilient, ring_forward_segmented};
use fzlight::Result;
use hzdyn::{doc::reduce_in_place, ReduceOp};
use netsim::{Comm, OpKind};
use ompszp::OszpStream;

pub(crate) fn oszp_config(cfg: &CollectiveConfig) -> ompszp::Config {
    ompszp::Config::new(ompszp::ErrorBound::Abs(cfg.eb))
        .with_block_len(cfg.block_len)
        .with_threads(cfg.mode.threads())
}

/// Ring degradation hook (see [`crate::hz`]'s twin): decompress the ompSZp
/// stream we were forwarding and ship raw f32 bytes instead.
fn degrade_oszp_to_raw(comm: &mut Comm, _idx: usize, bytes: &[u8]) -> Vec<u8> {
    let stream = OszpStream::from_bytes(bytes.to_vec()).expect("forwarded stream must parse");
    let vals = comm
        .compute_labeled(OpKind::Dpr, stream.n() * 4, "res:degrade-decompress", || {
            ompszp::decompress(&stream)
        })
        .expect("forwarded stream must decompress");
    f32_to_bytes(&vals)
}

/// C-Coll ring `Allgather`: compress the owned chunk once, forward
/// compressed chunks around the ring, decompress everything at the end
/// (`CPR + (N-1)·DPR`, Sec. III-C.2).
pub fn allgather(
    comm: &mut Comm,
    own: &[f32],
    total_len: usize,
    cfg: &CollectiveConfig,
) -> Result<Vec<f32>> {
    allgather_impl(comm, own, total_len, cfg, 1)
}

/// DOC Reduce_scatter, phase-serial (`segments <= 1`) or segment-pipelined.
pub(crate) fn reduce_scatter_impl(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    if n == 1 {
        return Ok(data.to_vec());
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    let threads = cfg.mode.threads();
    let ocfg = oszp_config(cfg);

    if segments <= 1 {
        let chunks = node_chunks(data.len(), n);
        let mut acc: Vec<f32> = data[chunks[(r + n - 1) % n].clone()].to_vec();
        for s in 0..n - 1 {
            // CPR: compress the chunk we are about to forward
            let stream =
                comm.compute_labeled(OpKind::Cpr, acc.len() * 4, "ccoll:compress", || {
                    ompszp::compress(&acc, &ocfg)
                })?;
            let logical = acc.len() * 4;
            let acc_ref = &acc;
            let (got, kind) = sendrecv_resilient(
                comm,
                cfg.res.as_ref(),
                right,
                seg_tag(TAG_RS, s, 0),
                stream.as_bytes().to_vec(),
                PayloadKind::Opaque,
                logical,
                left,
                // degrade: the raw accumulator is the last good state
                |_| f32_to_bytes(acc_ref),
            );
            let mut tmp = match kind {
                PayloadKind::Opaque => {
                    let received = OszpStream::from_bytes(got)?;
                    // DPR: fully decompress before any arithmetic (the DOC
                    // bottleneck)
                    comm.compute_labeled(OpKind::Dpr, received.n() * 4, "ccoll:decompress", || {
                        ompszp::decompress(&received)
                    })?
                }
                // a degraded hop delivered raw f32s — no DPR needed
                PayloadKind::RawF32 => bytes_to_f32(&got),
            };
            let local_idx = (r + 2 * n - s - 2) % n;
            let local = &data[chunks[local_idx].clone()];
            // CPT: reduce on raw values
            comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "ccoll:reduce", || {
                reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
            });
            acc = tmp;
        }
        return Ok(acc);
    }

    // Pipelined: segment every chunk at compressor-block boundaries; within
    // a step, segment k's CPR+send is posted before segment k-1's DPR+CPT
    // runs, so the DOC triple of one segment hides behind the wire time of
    // the next.
    let plan = chunk_seg_plan(data.len(), n, segments, cfg.block_len);
    let first = (r + n - 1) % n;
    let mut acc_segs: Vec<Vec<f32>> =
        plan[first].iter().map(|rng| data[rng.clone()].to_vec()).collect();
    for s in 0..n - 1 {
        let fwd_idx = (r + 2 * n - 1 - s) % n; // chunk acc_segs currently holds
        let recv_idx = (r + 2 * n - 2 - s) % n;
        let s_send = acc_segs.len();
        let s_recv = plan[recv_idx].len();
        debug_assert_eq!(s_send, plan[fwd_idx].len());
        let mut got: Vec<Vec<u8>> = Vec::with_capacity(s_recv);
        let mut next: Vec<Vec<f32>> = Vec::with_capacity(s_recv);
        // the DOC triple's DPR + CPT half, deferred by one segment
        let consume = |comm: &mut Comm, k: usize, payload: &[u8]| -> Result<Vec<f32>> {
            let received = OszpStream::from_bytes(payload.to_vec())?;
            let mut tmp =
                comm.compute_labeled(OpKind::Dpr, received.n() * 4, "ccoll:decompress", || {
                    ompszp::decompress(&received)
                })?;
            let local = &data[plan[recv_idx][k].clone()];
            comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "ccoll:reduce", || {
                reduce_in_place(&mut tmp, local, ReduceOp::Sum, threads)
            });
            Ok(tmp)
        };
        for k in 0..s_send.max(s_recv) {
            if k < s_send {
                let seg = std::mem::take(&mut acc_segs[k]);
                let stream =
                    comm.compute_labeled(OpKind::Cpr, seg.len() * 4, "ccoll:compress", || {
                        ompszp::compress(&seg, &ocfg)
                    })?;
                comm.send_compressed(
                    right,
                    seg_tag(TAG_RS, s, k),
                    stream.as_bytes().to_vec(),
                    seg.len() * 4,
                );
            }
            if k < s_recv {
                if k > 0 {
                    next.push(consume(comm, k - 1, &got[k - 1])?);
                }
                got.push(comm.recv(left, seg_tag(TAG_RS, s, k)));
            }
        }
        next.push(consume(comm, s_recv - 1, &got[s_recv - 1])?);
        acc_segs = next;
    }
    Ok(acc_segs.concat())
}

/// Compressed ring Allgather, phase-serial or segment-pipelined (received
/// segments decompress while the next segment is on the wire).
pub(crate) fn allgather_impl(
    comm: &mut Comm,
    own: &[f32],
    total_len: usize,
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(total_len, n);
    assert_eq!(own.len(), chunks[r].len(), "own chunk has the wrong length");
    let ocfg = oszp_config(cfg);
    let mut out = vec![0f32; total_len];
    out[chunks[r].clone()].copy_from_slice(own);
    if n == 1 {
        return Ok(out);
    }

    if segments <= 1 {
        // CPR (once): compress our own chunk
        let own_stream =
            comm.compute_labeled(OpKind::Cpr, own.len() * 4, "ccoll:compress", || {
                ompszp::compress(own, &ocfg)
            })?;
        let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
        let slots = ring_forward_resilient(
            comm,
            cfg.res.as_ref(),
            own_stream.as_bytes().to_vec(),
            PayloadKind::Opaque,
            &logical,
            degrade_oszp_to_raw,
        );
        for (idx, (payload, kind)) in slots.into_iter().enumerate() {
            if idx == r {
                continue;
            }
            let dst = &mut out[chunks[idx].clone()];
            match kind {
                PayloadKind::Opaque => {
                    let stream = OszpStream::from_bytes(payload)?;
                    comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
                        ompszp::decompress_into(&stream, dst)
                    })?;
                }
                PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&payload)),
            }
        }
        return Ok(out);
    }

    let plan = chunk_seg_plan(total_len, n, segments, cfg.block_len);
    let base = chunks[r].start;
    let mut own_bytes: Vec<Vec<u8>> = Vec::with_capacity(plan[r].len());
    for rng in &plan[r] {
        let seg = &own[rng.start - base..rng.end - base];
        let stream = comm.compute_labeled(OpKind::Cpr, seg.len() * 4, "ccoll:compress", || {
            ompszp::compress(seg, &ocfg)
        })?;
        own_bytes.push(stream.as_bytes().to_vec());
    }
    ring_forward_segmented(comm, own_bytes, &plan, |comm, idx, k, payload| {
        let stream = OszpStream::from_bytes(payload.to_vec())?;
        let dst = &mut out[plan[idx][k].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })
    })?;
    Ok(out)
}

/// DOC Allreduce = Reduce_scatter + compressed Allgather, both phase-serial
/// or both pipelined.
pub(crate) fn allreduce_impl(
    comm: &mut Comm,
    data: &[f32],
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let own = reduce_scatter_impl(comm, data, cfg, segments)?;
    allgather_impl(comm, &own, data.len(), cfg, segments)
}

/// DOC Reduce-to-root: Reduce_scatter, then every rank compresses its
/// reduced chunk (per segment when pipelined) and the root decompresses the
/// gathered chunks.
pub(crate) fn reduce_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Option<Vec<f32>>> {
    let n = comm.size();
    let r = comm.rank();
    let own = reduce_scatter_impl(comm, data, cfg, segments)?;
    if n == 1 {
        return Ok(Some(own));
    }
    let chunks = node_chunks(data.len(), n);
    let ocfg = oszp_config(cfg);
    if segments <= 1 {
        if r == root {
            let mut out = vec![0f32; data.len()];
            out[chunks[r].clone()].copy_from_slice(&own);
            for src in 0..n {
                if src == root {
                    continue;
                }
                let (got, kind) =
                    recv_resilient(comm, cfg.res.as_ref(), src, seg_tag(TAG_GATHER, src, 0));
                let dst = &mut out[chunks[src].clone()];
                match kind {
                    PayloadKind::Opaque => {
                        let stream = OszpStream::from_bytes(got)?;
                        comm.compute_labeled(
                            OpKind::Dpr,
                            dst.len() * 4,
                            "ccoll:decompress",
                            || ompszp::decompress_into(&stream, dst),
                        )?;
                    }
                    PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&got)),
                }
            }
            return Ok(Some(out));
        }
        let stream = comm.compute_labeled(OpKind::Cpr, own.len() * 4, "ccoll:compress", || {
            ompszp::compress(&own, &ocfg)
        })?;
        let own_ref = &own;
        send_resilient(
            comm,
            cfg.res.as_ref(),
            root,
            seg_tag(TAG_GATHER, r, 0),
            stream.as_bytes().to_vec(),
            PayloadKind::Opaque,
            own.len() * 4,
            // degrade: the raw reduced chunk is still in hand
            |_| f32_to_bytes(own_ref),
        );
        return Ok(None);
    }

    let plan = chunk_seg_plan(data.len(), n, segments, cfg.block_len);
    if r == root {
        let mut out = vec![0f32; data.len()];
        out[chunks[r].clone()].copy_from_slice(&own);
        for (src, segs) in plan.iter().enumerate() {
            if src == root {
                continue;
            }
            for (k, rng) in segs.iter().enumerate() {
                let got = comm.recv(src, seg_tag(TAG_GATHER, src, k));
                let stream = OszpStream::from_bytes(got)?;
                let dst = &mut out[rng.clone()];
                comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
                    ompszp::decompress_into(&stream, dst)
                })?;
            }
        }
        Ok(Some(out))
    } else {
        let base = chunks[r].start;
        for (k, rng) in plan[r].iter().enumerate() {
            let seg = &own[rng.start - base..rng.end - base];
            let stream =
                comm.compute_labeled(OpKind::Cpr, seg.len() * 4, "ccoll:compress", || {
                    ompszp::compress(seg, &ocfg)
                })?;
            comm.send_compressed(
                root,
                seg_tag(TAG_GATHER, r, k),
                stream.as_bytes().to_vec(),
                seg.len() * 4,
            );
        }
        Ok(None)
    }
}

/// DOC long-message Bcast: the root compresses its chunks once and scatters
/// them compressed; a compressed ring-Allgather distributes the rest; every
/// rank decompresses at the end (per segment, overlapped, when pipelined).
pub(crate) fn bcast_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    cfg: &CollectiveConfig,
    segments: usize,
) -> Result<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let ocfg = oszp_config(cfg);
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return Ok(data.to_vec());
    }
    let chunks = node_chunks(total_len, n);
    if segments <= 1 {
        // the compressed bytes of this rank's chunk
        let (own_bytes, own_kind) = if r == root {
            assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
            let mut mine = Vec::new();
            for dst in 0..n {
                let chunk = &data[chunks[dst].clone()];
                let stream =
                    comm.compute_labeled(OpKind::Cpr, chunk.len() * 4, "ccoll:compress", || {
                        ompszp::compress(chunk, &ocfg)
                    })?;
                if dst == root {
                    mine = stream.as_bytes().to_vec();
                } else {
                    send_resilient(
                        comm,
                        cfg.res.as_ref(),
                        dst,
                        seg_tag(TAG_SCATTER, dst, 0),
                        stream.as_bytes().to_vec(),
                        PayloadKind::Opaque,
                        chunk.len() * 4,
                        // the root still holds the raw chunk
                        |_| f32_to_bytes(chunk),
                    );
                }
            }
            (mine, PayloadKind::Opaque)
        } else {
            recv_resilient(comm, cfg.res.as_ref(), root, seg_tag(TAG_SCATTER, r, 0))
        };
        let logical: Vec<usize> = chunks.iter().map(|c| c.len() * 4).collect();
        let slots = ring_forward_resilient(
            comm,
            cfg.res.as_ref(),
            own_bytes,
            own_kind,
            &logical,
            degrade_oszp_to_raw,
        );
        let mut out = vec![0f32; total_len];
        for (idx, (payload, kind)) in slots.into_iter().enumerate() {
            let dst = &mut out[chunks[idx].clone()];
            match kind {
                PayloadKind::Opaque => {
                    let stream = OszpStream::from_bytes(payload)?;
                    comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
                        ompszp::decompress_into(&stream, dst)
                    })?;
                }
                PayloadKind::RawF32 => dst.copy_from_slice(&bytes_to_f32(&payload)),
            }
        }
        return Ok(out);
    }

    let plan = chunk_seg_plan(total_len, n, segments, cfg.block_len);
    let own_bytes: Vec<Vec<u8>> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        let mut mine = Vec::new();
        for (dst, segs) in plan.iter().enumerate() {
            for (k, rng) in segs.iter().enumerate() {
                let seg = &data[rng.clone()];
                let stream =
                    comm.compute_labeled(OpKind::Cpr, seg.len() * 4, "ccoll:compress", || {
                        ompszp::compress(seg, &ocfg)
                    })?;
                if dst == root {
                    mine.push(stream.as_bytes().to_vec());
                } else {
                    comm.send_compressed(
                        dst,
                        seg_tag(TAG_SCATTER, dst, k),
                        stream.as_bytes().to_vec(),
                        seg.len() * 4,
                    );
                }
            }
        }
        mine
    } else {
        (0..plan[r].len()).map(|k| comm.recv(root, seg_tag(TAG_SCATTER, r, k))).collect()
    };
    let mut out = vec![0f32; total_len];
    // decompress the own chunk up front; the ring callback fills the rest
    for (k, rng) in plan[r].iter().enumerate() {
        let stream = OszpStream::from_bytes(own_bytes[k].clone())?;
        let dst = &mut out[rng.clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })?;
    }
    ring_forward_segmented(comm, own_bytes, &plan, |comm, idx, k, payload| {
        let stream = OszpStream::from_bytes(payload.to_vec())?;
        let dst = &mut out[plan[idx][k].clone()];
        comm.compute_labeled(OpKind::Dpr, dst.len() * 4, "ccoll:decompress", || {
            ompszp::decompress_into(&stream, dst)
        })
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.01).sin() * (rank + 1) as f32).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn ccoll_allreduce_is_error_bounded() {
        let n = 2048;
        let eb = 1e-4;
        for nranks in [2usize, 4, 6] {
            for segments in [1usize, 4] {
                let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        allreduce_impl(comm, &data, &cfg, segments).expect("ccoll allreduce")
                    })
                    .expect_clean()
                    .outcomes;
                let expect = direct_sum(nranks, n);
                // DOC error: each round re-quantizes, so worst case grows with N
                let tol = (2.0 * nranks as f64) * eb + 1e-6;
                for o in outcomes {
                    for (i, (a, b)) in o.value.iter().zip(&expect).enumerate() {
                        assert!(
                            ((a - b).abs() as f64) <= tol,
                            "nranks={nranks} segments={segments} at {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_allreduce_is_bit_identical_to_serial() {
        let n = 4096;
        let nranks = 4;
        let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
        let run = |segments: usize| {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_impl(comm, &data, &cfg, segments).expect("ccoll allreduce")
                })
                .expect_clean()
                .outcomes
        };
        let serial = run(1);
        for segments in [2usize, 4, 64] {
            let piped = run(segments);
            for (a, b) in serial.iter().zip(&piped) {
                assert_eq!(a.value, b.value, "segments={segments}");
            }
        }
    }

    #[test]
    fn ccoll_reduce_scatter_chunk_matches_direct_sum() {
        let n = 999;
        let nranks = 3;
        for segments in [1usize, 3] {
            let cfg = CollectiveConfig::new(1e-4, Mode::MultiThread(2));
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    reduce_scatter_impl(comm, &data, &cfg, segments).expect("rs")
                })
                .expect_clean()
                .outcomes;
            let expect = direct_sum(nranks, n);
            let chunks = node_chunks(n, nranks);
            for (r, o) in outcomes.iter().enumerate() {
                let want = &expect[chunks[r].clone()];
                assert_eq!(o.value.len(), want.len());
                for (a, b) in o.value.iter().zip(want) {
                    assert!((a - b).abs() <= 8.0 * 1e-4, "segments={segments}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ccoll_charges_doc_costs_every_round() {
        for segments in [1usize, 4] {
            let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
            let cluster = SimBuilder::new(4).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), 4096);
                    reduce_scatter_impl(comm, &data, &cfg, segments).expect("rs");
                    comm.breakdown()
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                let b = o.value;
                assert!(b.cpr > 0.0 && b.dpr > 0.0 && b.cpt > 0.0, "{b:?}");
                assert_eq!(b.hpr, 0.0, "C-Coll never uses homomorphic processing");
            }
        }
    }

    #[test]
    fn ccoll_reduce_to_root_is_error_bounded() {
        let n = 900;
        let nranks = 4;
        let eb = 1e-4;
        for segments in [1usize, 2] {
            let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    reduce_impl(comm, &data, 0, &cfg, segments).expect("reduce")
                })
                .expect_clean()
                .outcomes;
            let expect = direct_sum(nranks, n);
            let got = outcomes[0].value.as_ref().expect("root result");
            for (a, b) in got.iter().zip(&expect) {
                assert!(((a - b).abs() as f64) <= (2.0 * nranks as f64 + 1.0) * eb, "{a} vs {b}");
            }
            assert!(outcomes[1..].iter().all(|o| o.value.is_none()));
        }
    }

    #[test]
    fn ccoll_bcast_is_error_bounded_everywhere() {
        let n = 800;
        let nranks = 5;
        let eb = 1e-3;
        let base = field(3, n);
        for segments in [1usize, 2] {
            let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = if comm.rank() == 0 { base.clone() } else { Vec::new() };
                    bcast_impl(comm, &data, 0, n, &cfg, segments).expect("bcast")
                })
                .expect_clean()
                .outcomes;
            for o in &outcomes {
                for (a, b) in o.value.iter().zip(&base) {
                    assert!((a - b).abs() as f64 <= eb + 1e-9, "segments={segments}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ccoll_allgather_reassembles() {
        let n = 500;
        let nranks = 5;
        let base: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        for segments in [1usize, 4] {
            let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let chunks = node_chunks(n, comm.size());
                    let own = base[chunks[comm.rank()].clone()].to_vec();
                    allgather_impl(comm, &own, n, &cfg, segments).expect("ag")
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                for (a, b) in o.value.iter().zip(&base) {
                    assert!((a - b).abs() <= 1e-4 + 1e-7, "segments={segments}: {a} vs {b}");
                }
            }
        }
    }
}
