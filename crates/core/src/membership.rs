//! Membership views and survivor agreement for the self-healing
//! collectives (`crate::survivable`).
//!
//! ULFM-style recovery needs two facts every survivor derives identically:
//! *who is still alive* and *which attempt are we on*. Both live in a
//! [`View`] — an epoch-numbered survivor set. Epoch 0 is the launch
//! membership; every repair shrinks the member list and bumps the epoch,
//! and all wire tags of an attempt are salted with its epoch
//! ([`crate::pipeline::decode_tag`] exposes the field), so traffic from a
//! torn-down attempt can never match a repaired one.
//!
//! ## The agreement round
//!
//! After every attempt — completed or aborted — all believed-live ranks
//! meet at [`agree`], a full-exchange gossip over the reliable channel
//! (tag base [`TAG_AGREE`], one step per round, epoch-salted). Each round
//! a rank broadcasts its suspect set plus a *changed* flag saying whether
//! that set grew last round; it stops as soon as a round is fully quiet
//! (its own flag false, every received flag false, and nothing learned
//! this round). Quietness is a sound uniform-stop rule:
//!
//! * all flags false ⟹ no set changed last round ⟹ every pair of ranks
//!   has already absorbed each other's set ⟹ all sets are equal;
//! * crashes only fire on data-plane sends ([`netsim::FaultPlan`] exempts
//!   reliable traffic), so no rank dies *during* agreement — a death is
//!   observable to every rank in round 0 at the latest, when its
//!   `recv_checked` from the dead member yields the crash notice instead
//!   of a payload. Equal sets therefore stay equal, and every rank leaves
//!   on the same round with the same verdict.
//!
//! Fault-free recoverable runs commit in a single quiet round; a crash
//! costs at most two more rounds (spread, then confirm-quiet).

use std::collections::BTreeSet;

use netsim::Comm;

use crate::chunks::node_chunks;
use crate::pipeline::{epoch_tag, MAX_EPOCH};

/// Tag base of the agreement plane (`decode_tag` phase `"agree"`), one
/// above the hierarchical collective bases.
pub(crate) const TAG_AGREE: u64 = 11 << 32;

/// An epoch-numbered survivor set: the membership a recovery attempt runs
/// under. Every rank derives its view deterministically from the same
/// agreed suspect sets, so all survivors of an epoch hold identical views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Attempt number: 0 at launch, +1 per repair. Salted into every wire
    /// tag of the attempt (8-bit field, see [`crate::pipeline::MAX_EPOCH`]).
    pub epoch: u32,
    /// Sorted launch ranks believed alive in this epoch.
    pub members: Vec<usize>,
    /// The launch size. The element partition is anchored to `n0` forever:
    /// an epoch with `m` survivors regroups the *original* `n0` segments
    /// ([`View::segment_groups`]) instead of re-splitting elements, so a
    /// repair only moves whole segments between owners.
    pub n0: usize,
}

impl View {
    /// The launch membership: epoch 0, every rank alive.
    pub fn initial(nranks: usize) -> View {
        View { epoch: 0, members: (0..nranks).collect(), n0: nranks }
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when only one rank survives (the ring degenerates to a no-op).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// This rank's virtual position in the survivor ring, if it is a
    /// member.
    pub fn vrank(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// The launch rank of the ring successor of virtual rank `v`.
    pub fn right_of(&self, v: usize) -> usize {
        self.members[(v + 1) % self.members.len()]
    }

    /// The launch rank of the ring predecessor of virtual rank `v`.
    pub fn left_of(&self, v: usize) -> usize {
        let m = self.members.len();
        self.members[(v + m - 1) % m]
    }

    /// Contiguous groups of original-segment indices, one group per
    /// virtual rank: group `g` is `node_chunks(n0, m)[g]` over segment
    /// ids. At epoch 0 (`m == n0`) every group is the singleton `{g}`, so
    /// the survivable schedule degenerates to the classic one-chunk-per-
    /// rank ring layout.
    pub fn segment_groups(&self) -> Vec<std::ops::Range<usize>> {
        node_chunks(self.n0, self.members.len())
    }

    /// The next view after `suspects` were agreed dead: same `n0`, epoch
    /// +1, suspects spliced out of the ring. Returns `None` past the
    /// 8-bit epoch cap of the tag encoding (255 repairs).
    pub fn advance(&self, suspects: &BTreeSet<usize>) -> Option<View> {
        if self.epoch >= MAX_EPOCH {
            return None;
        }
        let members: Vec<usize> =
            self.members.iter().copied().filter(|r| !suspects.contains(r)).collect();
        Some(View { epoch: self.epoch + 1, members, n0: self.n0 })
    }
}

/// What [`agree`] decided: the uniform suspect set (empty ⟺ the attempt
/// stands) and how many gossip rounds it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Agreement {
    /// Ranks every survivor agrees are dead. Empty means the attempt
    /// completed on all members and its result commits.
    pub suspects: BTreeSet<usize>,
    /// Gossip rounds until uniform quiet (1 on the fault-free path).
    pub rounds: u32,
}

fn encode_round(suspects: &BTreeSet<usize>, changed: bool) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + 4 * suspects.len());
    buf.push(u8::from(changed));
    buf.extend_from_slice(&(suspects.len() as u32).to_le_bytes());
    for &r in suspects {
        buf.extend_from_slice(&(r as u32).to_le_bytes());
    }
    buf
}

fn decode_round(bytes: &[u8]) -> (BTreeSet<usize>, bool) {
    let changed = bytes[0] != 0;
    let count = u32::from_le_bytes(bytes[1..5].try_into().unwrap()) as usize;
    let mut suspects = BTreeSet::new();
    for i in 0..count {
        let off = 5 + 4 * i;
        suspects.insert(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize);
    }
    (suspects, changed)
}

/// The commit barrier: full-exchange gossip among `view.members` until the
/// suspect set is uniformly quiet (see the module docs for the protocol
/// and its uniform-stop proof). `suspects` seeds the set with deaths this
/// rank observed during the data phase; deaths already recorded by the
/// transport ([`Comm::known_dead`]) are folded in automatically.
pub(crate) fn agree(comm: &mut Comm, view: &View, mut suspects: BTreeSet<usize>) -> Agreement {
    let me = comm.rank();
    for d in comm.known_dead() {
        if view.members.contains(&d) {
            suspects.insert(d);
        }
    }
    let peers: Vec<usize> = view.members.iter().copied().filter(|&q| q != me).collect();
    let mut changed = !suspects.is_empty();
    let mut round: usize = 0;
    loop {
        let tag = epoch_tag(TAG_AGREE, round, 0, view.epoch);
        let msg = encode_round(&suspects, changed);
        for &q in &peers {
            // sends to already-dead members vanish harmlessly: the
            // survivable endpoint delivers leniently
            comm.send_reliable(q, tag, msg.clone(), 0);
        }
        let mut all_quiet = !changed;
        let before = suspects.len();
        for &q in &peers {
            match comm.recv_checked(q, tag) {
                Err(crash) => {
                    debug_assert_eq!(crash.rank, q);
                    suspects.insert(q);
                }
                Ok(got) => {
                    assert!(!got.dropped, "agreement travels the reliable channel");
                    let (theirs, their_changed) = decode_round(&got.payload);
                    suspects.extend(theirs);
                    if their_changed {
                        all_quiet = false;
                    }
                }
            }
        }
        changed = suspects.len() != before;
        round += 1;
        if all_quiet && !changed {
            return Agreement { suspects, rounds: round as u32 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FaultPlan, SimBuilder};

    #[test]
    fn initial_view_is_identity_layout() {
        let v = View::initial(6);
        assert_eq!(v.epoch, 0);
        assert_eq!(v.len(), 6);
        assert_eq!(v.vrank(3), Some(3));
        assert_eq!(v.right_of(5), 0);
        assert_eq!(v.left_of(0), 5);
        let groups = v.segment_groups();
        assert_eq!(groups.len(), 6);
        assert!(groups.iter().enumerate().all(|(g, r)| *r == (g..g + 1)), "singleton groups");
    }

    #[test]
    fn advance_splices_suspects_and_groups_stay_anchored_to_n0() {
        let v = View::initial(8);
        let dead: BTreeSet<usize> = [2, 5].into_iter().collect();
        let next = v.advance(&dead).expect("below the epoch cap");
        assert_eq!(next.epoch, 1);
        assert_eq!(next.members, vec![0, 1, 3, 4, 6, 7]);
        assert_eq!(next.n0, 8, "the segment partition never re-anchors");
        assert_eq!(next.vrank(2), None);
        assert_eq!(next.vrank(3), Some(2));
        assert_eq!(next.right_of(2), 4);
        assert_eq!(next.left_of(0), 7);
        let groups = next.segment_groups();
        assert_eq!(groups.len(), 6);
        assert_eq!(groups.iter().map(|r| r.len()).sum::<usize>(), 8, "groups tile all 8 segments");
        assert_eq!(groups[5], 5..8, "the last survivor absorbs the extra segments");
    }

    #[test]
    fn advance_refuses_past_the_epoch_cap() {
        let mut v = View::initial(4);
        v.epoch = MAX_EPOCH;
        assert_eq!(v.advance(&BTreeSet::new()), None);
    }

    #[test]
    fn round_codec_roundtrips() {
        for (set, changed) in [
            (BTreeSet::new(), false),
            ([7usize].into_iter().collect(), true),
            ([0usize, 3, 63, 1000].into_iter().collect(), false),
        ] {
            let buf = encode_round(&set, changed);
            assert_eq!(decode_round(&buf), (set, changed));
        }
    }

    #[test]
    fn fault_free_agreement_is_quiet_in_one_round() {
        let report = SimBuilder::new(5)
            .run(|comm| {
                comm.set_survivable(true);
                let view = View::initial(5);
                let a = agree(comm, &view, BTreeSet::new());
                assert!(a.suspects.is_empty());
                assert_eq!(a.rounds, 1, "nothing to spread: one quiet round");
            })
            .expect_clean();
        assert!(report.is_clean());
    }

    #[test]
    fn agreement_converges_on_the_dead_rank_uniformly() {
        // rank 2 crashes on its first data-plane send; the others meet at
        // the barrier and must all leave with {2}
        let report = SimBuilder::new(4).faults(FaultPlan::new(9).with_crash(2, 0)).run(|comm| {
            comm.set_survivable(true);
            if comm.rank() == 2 {
                comm.send(0, 999, vec![1, 2, 3]); // fires the crash
                unreachable!("rank 2 dies on the send above");
            }
            let view = View::initial(4);
            let a = agree(comm, &view, BTreeSet::new());
            assert_eq!(a.suspects.iter().copied().collect::<Vec<_>>(), vec![2]);
            a.rounds as usize
        });
        let survivors = [0usize, 1, 3];
        let rounds: Vec<usize> = survivors.iter().map(|&r| *report.value(r)).collect();
        assert!(rounds.iter().all(|&x| x == rounds[0]), "uniform stop round: {rounds:?}");
    }
}
