//! Self-healing transport: checksummed message frames with
//! NACK/retransmit and graceful degradation, layered over `netsim`'s
//! fault-injectable point-to-point primitives.
//!
//! ## Frame format (25-byte header + payload)
//!
//! ```text
//! offset  size  field
//!      0     4  magic "HZFR"
//!      4     1  kind: 0 = data/opaque, 1 = data/raw-f32, 2 = ACK, 3 = NACK
//!      5     4  seq  (u32 LE; the sender's attempt number, 1-based)
//!      9     8  tag  (u64 LE; must match the channel tag)
//!     17     4  payload_len (u32 LE)
//!     21     4  CRC32 (IEEE, over header-sans-crc + payload)
//!     25     …  payload
//! ```
//!
//! ## Protocol: stop-and-wait ARQ with bounded backoff
//!
//! Each logical transfer is one data frame per attempt, answered by exactly
//! one control frame (ACK or NACK) — strict alternation, so a control frame
//! is never ambiguous about which attempt it answers. The receiver NACKs a
//! frame that the fault plan dropped (detected by the receive timeout) or
//! that fails CRC/shape validation; the sender backs off exponentially
//! (`backoff_base_s · 2^(retry-1)`, capped at `backoff_max_s`) and
//! retransmits. Control frames travel on `ctrl_tag(tag)` (bit 63 set — the
//! collective tag bases stay far below it) via [`Comm::send_reliable`],
//! modelling link-level-protected control traffic; this sidesteps the
//! lost-ACK ambiguity a full end-to-end protocol would need sequence-window
//! state to resolve.
//!
//! ## Graceful degradation
//!
//! After `max_retries` failed retransmissions the sender stops insisting on
//! the compressed representation: for an [`PayloadKind::Opaque`] payload it
//! invokes the schedule-supplied fallback (e.g. "decompress my own stream"
//! or "re-serialize the raw accumulator"), sends the raw f32 bytes as a
//! [`PayloadKind::RawF32`] frame on the reliable channel, and marks the
//! segment degraded (`hz_degraded_segments_total`). A payload that is
//! already raw is simply resent reliably. Either way the collective
//! completes instead of aborting — at worst one extra quantization step of
//! error on the degraded segment (see DESIGN.md "Fault model and
//! resilience").
//!
//! With `res == None` every wrapper below compiles down to exactly the
//! pre-existing unframed `Comm` call, so fault-free runs are bit-identical
//! to the unresilient build.

use netsim::{Comm, NetConfig, OpKind};

/// Retry/timeout policy of the resilient transport. `Copy` so it can ride
/// inside [`crate::CollectiveConfig`] without breaking its `Copy`-ness.
///
/// Every duration here is **virtual time** — simulated seconds on the
/// cluster's α–β clock, not wall-clock seconds of the host running the
/// simulation. The defaults are sized for the paper fabric's 3 µs
/// injection latency; on a different network derive a matching policy
/// with [`Resilience::for_net`] instead of reusing the absolute numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resilience {
    /// Retransmissions before degrading to an uncompressed reliable resend.
    pub max_retries: u32,
    /// Loss-detection timeout charged (virtual seconds) when a frame never
    /// arrives.
    pub timeout_s: f64,
    /// First-retry backoff (virtual seconds); doubles per retry.
    pub backoff_base_s: f64,
    /// Backoff ceiling (virtual seconds).
    pub backoff_max_s: f64,
    /// Fractional jitter applied to every backoff wait: each retry's wait
    /// is scaled by a deterministic factor in
    /// `[1 - jitter/2, 1 + jitter/2)` hashed from
    /// `(jitter_seed, tag, retry)`, decorrelating the synchronized retry
    /// storms a lossy fabric otherwise produces. `0.0` (the default)
    /// reproduces the historical constant schedule bit-for-bit.
    pub backoff_jitter: f64,
    /// Seed of the jitter hash; runs with equal seeds replay identical
    /// backoff sequences.
    pub jitter_seed: u64,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            max_retries: 4,
            timeout_s: 50e-6,
            backoff_base_s: 5e-6,
            backoff_max_s: 80e-6,
            backoff_jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl Resilience {
    /// A policy whose virtual-time constants are scaled to `net`'s
    /// per-message latency α: the loss-detection timeout and the backoff
    /// window keep the same ratio to α that the defaults have to the paper
    /// fabric's 3 µs. A 30 µs-latency WAN therefore waits 10× longer before
    /// declaring a frame lost, instead of timing out on every in-flight
    /// message; `Resilience::for_net(&NetConfig::default())` is exactly
    /// [`Resilience::default`].
    pub fn for_net(net: &NetConfig) -> Self {
        let scale = (net.latency_s / NetConfig::default().latency_s).max(f64::MIN_POSITIVE);
        let d = Resilience::default();
        Resilience {
            max_retries: d.max_retries,
            timeout_s: d.timeout_s * scale,
            backoff_base_s: d.backoff_base_s * scale,
            backoff_max_s: d.backoff_max_s * scale,
            backoff_jitter: d.backoff_jitter,
            jitter_seed: d.jitter_seed,
        }
    }
    /// Override the retransmission budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Override the loss-detection timeout (seconds).
    pub fn with_timeout(mut self, secs: f64) -> Self {
        self.timeout_s = secs.max(0.0);
        self
    }

    /// Override the backoff base and ceiling (seconds).
    pub fn with_backoff(mut self, base_s: f64, max_s: f64) -> Self {
        self.backoff_base_s = base_s.max(0.0);
        self.backoff_max_s = max_s.max(base_s.max(0.0));
        self
    }

    /// Enable seeded backoff jitter: `frac` is the total spread (clamped to
    /// `[0, 1]`, so the wait stays within ±50% of the deterministic
    /// schedule), `seed` makes it reproducible. `frac = 0.0` restores the
    /// exact constant backoffs.
    pub fn with_backoff_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.backoff_jitter = frac.clamp(0.0, 1.0);
        self.jitter_seed = seed;
        self
    }

    fn backoff(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(30);
        (self.backoff_base_s * f64::from(1u32 << exp)).min(self.backoff_max_s)
    }

    /// [`Self::backoff`] scaled by the seeded jitter factor for this
    /// `(tag, retry)`: a pure hash, so every replay of the same seed waits
    /// the same virtual time, yet distinct tags (and thus distinct
    /// contending transfers) desynchronize. Returns [`Self::backoff`]
    /// exactly when jitter is off — the transport tests pin that equality.
    fn backoff_jittered(&self, retry: u32, salt: u64) -> f64 {
        let base = self.backoff(retry);
        if self.backoff_jitter <= 0.0 {
            return base;
        }
        let h = splitmix64(splitmix64(splitmix64(self.jitter_seed) ^ salt) ^ u64::from(retry));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0, 1)
        base * (1.0 + self.backoff_jitter * (unit - 0.5))
    }
}

/// SplitMix64 finalizer — the same mixer `netsim::faults` uses for its
/// per-message drop decisions, kept local so the transport owns its own
/// determinism story.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What a data frame's payload contains, so a receiver knows how to
/// interpret a degraded (fallback) delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Schedule-native bytes (a compressed stream, packed floats, …).
    Opaque,
    /// Raw little-endian `f32`s — the degradation format.
    RawF32,
}

const KIND_DATA_OPAQUE: u8 = 0;
const KIND_DATA_RAW_F32: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_NACK: u8 = 3;

const FRAME_MAGIC: [u8; 4] = *b"HZFR";
/// Frame header length in bytes (see the module docs for the layout).
pub(crate) const HEADER_LEN: usize = 25;

/// Control frames travel on the data tag with bit 63 set; the collective
/// tag bases (`TAG_RS`…`TAG_SCATTER`, segment stride 4096) never reach it.
pub(crate) fn ctrl_tag(tag: u64) -> u64 {
    tag | 1 << 63
}

/// Why a frame failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header.
    TooShort { len: usize },
    /// Magic bytes do not match.
    BadMagic,
    /// Unknown kind byte.
    BadKind(u8),
    /// Header payload length disagrees with the buffer.
    LengthMismatch { header: usize, actual: usize },
    /// CRC32 over header+payload failed.
    Checksum { expect: u32, got: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FrameError::TooShort { len } => write!(f, "frame too short ({len} < {HEADER_LEN})"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::LengthMismatch { header, actual } => {
                write!(f, "payload length mismatch (header says {header}, buffer has {actual})")
            }
            FrameError::Checksum { expect, got } => {
                write!(f, "frame checksum mismatch ({got:#010x} != {expect:#010x})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A validated frame.
#[derive(Debug)]
struct Frame {
    kind: u8,
    #[allow(dead_code)] // diagnostic field; the strict-alternation protocol needs no seq matching
    seq: u32,
    payload: Vec<u8>,
}

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32 (IEEE 802.3) over a sequence of byte slices.
fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for p in parts {
        crc = crc32_update(crc, p);
    }
    !crc
}

fn encode_frame(kind: u8, seq: u32, tag: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&[&buf, payload]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = bytes[4];
    if kind > KIND_NACK {
        return Err(FrameError::BadKind(kind));
    }
    let seq = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
    let payload_len = u32::from_le_bytes(bytes[17..21].try_into().unwrap()) as usize;
    let actual = bytes.len() - HEADER_LEN;
    if payload_len != actual {
        return Err(FrameError::LengthMismatch { header: payload_len, actual });
    }
    let expect = u32::from_le_bytes(bytes[21..25].try_into().unwrap());
    let got = crc32(&[&bytes[0..21], &bytes[HEADER_LEN..]]);
    if got != expect {
        return Err(FrameError::Checksum { expect, got });
    }
    Ok(Frame { kind, seq, payload: bytes[HEADER_LEN..].to_vec() })
}

fn data_kind_byte(kind: PayloadKind) -> u8 {
    match kind {
        PayloadKind::Opaque => KIND_DATA_OPAQUE,
        PayloadKind::RawF32 => KIND_DATA_RAW_F32,
    }
}

fn payload_kind(kind_byte: u8) -> Option<PayloadKind> {
    match kind_byte {
        KIND_DATA_OPAQUE => Some(PayloadKind::Opaque),
        KIND_DATA_RAW_F32 => Some(PayloadKind::RawF32),
        _ => None,
    }
}

/// The outgoing half of an exchange, carried through the ARQ engine.
struct OutHalf<'a> {
    to: usize,
    payload: Vec<u8>,
    kind: PayloadKind,
    logical_bytes: usize,
    /// Produces the raw-f32 replacement of an opaque payload when the
    /// transfer degrades. Only invoked for [`PayloadKind::Opaque`].
    fallback: &'a mut dyn FnMut(&mut Comm) -> Vec<u8>,
}

/// The framed stop-and-wait engine. Runs the outgoing transfer (`out`),
/// the incoming transfer (`from`), or both interleaved; returns the
/// received `(payload, kind)` when `from` is given.
///
/// Deadlock-freedom: the fault plan delivers dropped frames *marked* rather
/// than withholding them, so every blocking receive here is matched by a
/// message that provably arrives; and every data attempt is answered by
/// exactly one control frame (strict alternation), so neither side can wait
/// on a frame the other will never send. Degraded resends travel the
/// reliable channel and therefore always terminate the retry loop.
fn engine(
    comm: &mut Comm,
    res: &Resilience,
    tag: u64,
    mut out: Option<OutHalf<'_>>,
    from: Option<usize>,
) -> Option<(Vec<u8>, PayloadKind)> {
    let ctrl = ctrl_tag(tag);
    let mut attempts: u32 = 0;
    if let Some(o) = &mut out {
        attempts = 1;
        let frame = encode_frame(data_kind_byte(o.kind), attempts, tag, &o.payload);
        comm.send_compressed(o.to, tag, frame, o.logical_bytes);
    }
    let mut result = None;
    let mut in_done = from.is_none();
    let mut out_done = out.is_none();
    while !(in_done && out_done) {
        if !in_done {
            let src = from.expect("in half active");
            let got = comm.recv_msg(src, tag);
            let frame = if got.dropped {
                // the receiver only learns of the loss when its timeout
                // fires; charge that wait before NACKing
                comm.advance_labeled(OpKind::Other, res.timeout_s, "res:timeout-wait");
                comm.mark("res:timeout");
                None
            } else {
                decode_frame(&got.payload)
                    .ok()
                    .and_then(|f| payload_kind(f.kind).map(|k| (f.seq, f.payload, k)))
            };
            match frame {
                Some((seq, payload, kind)) => {
                    comm.send_reliable(src, ctrl, encode_frame(KIND_ACK, seq, ctrl, &[]), 0);
                    result = Some((payload, kind));
                    in_done = true;
                }
                None => {
                    comm.send_reliable(src, ctrl, encode_frame(KIND_NACK, attempts, ctrl, &[]), 0);
                }
            }
        }
        if !out_done {
            let o = out.as_mut().expect("out half active");
            let got = comm.recv_msg(o.to, ctrl);
            assert!(!got.dropped, "control frames travel the reliable channel");
            let frame =
                decode_frame(&got.payload).expect("control frame corrupted on reliable channel");
            if frame.kind == KIND_ACK {
                out_done = true;
                continue;
            }
            if attempts > res.max_retries {
                // out of retries: degrade to raw f32 on the reliable
                // channel — guaranteed valid, so this NACK was the last
                comm.mark("res:degraded-segment");
                if o.kind == PayloadKind::Opaque {
                    o.payload = (o.fallback)(comm);
                    o.kind = PayloadKind::RawF32;
                }
                attempts += 1;
                let frame = encode_frame(data_kind_byte(o.kind), attempts, tag, &o.payload);
                comm.send_reliable(o.to, tag, frame, 0);
            } else {
                let backoff = res.backoff_jittered(attempts, tag);
                attempts += 1;
                if backoff > 0.0 {
                    comm.advance_labeled(OpKind::Other, backoff, "res:backoff");
                }
                comm.mark("res:retransmit");
                let frame = encode_frame(data_kind_byte(o.kind), attempts, tag, &o.payload);
                // retransmits count as wire bytes but never as logical
                // bytes — the recorder invariant tests/chaos.rs pins
                comm.send_compressed(o.to, tag, frame, 0);
            }
        }
    }
    result
}

/// Resilient `sendrecv`: exchange `payload` with the ring neighbours under
/// the ARQ protocol. With `res == None` this is exactly
/// [`Comm::sendrecv_compressed`] — bit-identical events, no framing.
#[allow(clippy::too_many_arguments)] // mirrors Comm::sendrecv_compressed plus the resilience trio
pub(crate) fn sendrecv_resilient(
    comm: &mut Comm,
    res: Option<&Resilience>,
    to: usize,
    tag: u64,
    payload: Vec<u8>,
    kind: PayloadKind,
    logical_bytes: usize,
    from: usize,
    mut fallback: impl FnMut(&mut Comm) -> Vec<u8>,
) -> (Vec<u8>, PayloadKind) {
    match res {
        None => (comm.sendrecv_compressed(to, tag, payload, logical_bytes, from), kind),
        Some(res) => {
            let out = OutHalf { to, payload, kind, logical_bytes, fallback: &mut fallback };
            engine(comm, res, tag, Some(out), Some(from)).expect("incoming half yields a payload")
        }
    }
}

/// Resilient one-directional send (gather/scatter hops). With `res == None`
/// this is exactly [`Comm::send_compressed`].
#[allow(clippy::too_many_arguments)] // mirrors Comm::send_compressed plus the resilience trio
pub(crate) fn send_resilient(
    comm: &mut Comm,
    res: Option<&Resilience>,
    to: usize,
    tag: u64,
    payload: Vec<u8>,
    kind: PayloadKind,
    logical_bytes: usize,
    mut fallback: impl FnMut(&mut Comm) -> Vec<u8>,
) {
    match res {
        None => comm.send_compressed(to, tag, payload, logical_bytes),
        Some(res) => {
            let out = OutHalf { to, payload, kind, logical_bytes, fallback: &mut fallback };
            engine(comm, res, tag, Some(out), None);
        }
    }
}

/// Resilient one-directional receive. With `res == None` this is exactly
/// [`Comm::recv`] (the payload is reported [`PayloadKind::Opaque`]: the
/// schedule's native wire format).
pub(crate) fn recv_resilient(
    comm: &mut Comm,
    res: Option<&Resilience>,
    from: usize,
    tag: u64,
) -> (Vec<u8>, PayloadKind) {
    match res {
        None => (comm.recv(from, tag), PayloadKind::Opaque),
        Some(res) => {
            engine(comm, res, tag, None, Some(from)).expect("incoming half yields a payload")
        }
    }
}

// ---------------------------------------------------------------------------
// Survivable (checked) transport — the data plane of `crate::survivable`
// ---------------------------------------------------------------------------

/// First payload byte of a survivable message: ordinary schedule data.
pub(crate) const SV_DATA: u8 = 0;
/// First payload byte of a survivable message: in-band abort — the sender
/// is tearing down this attempt and will meet the receiver at the
/// agreement barrier instead of sending the scheduled data.
pub(crate) const SV_ABORT: u8 = 1;

/// Why a survivable exchange stopped before delivering its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Interrupt {
    /// A crash notice for this rank arrived on the awaited channel.
    Dead(usize),
    /// The predecessor sent [`SV_ABORT`] instead of data.
    Aborted,
}

/// Send the one-byte in-band abort to `to` on `tag` — the tag of the data
/// the receiver will next await from this rank, so the abort is consumed at
/// a deterministic point of its schedule. Travels the reliable channel
/// (aborts must not be droppable) and is never ACKed; under resilience it
/// is unambiguous because every ARQ frame is at least [`HEADER_LEN`] bytes.
pub(crate) fn sv_abort(comm: &mut Comm, to: usize, tag: u64) {
    comm.send_reliable(to, tag, vec![SV_ABORT], 0);
}

///// Survivable ring exchange: send `payload` to `to` and receive the
/// counterpart from `from` on the same `tag`, tolerating peer death and
/// in-band aborts.
///
/// Unlike the fail-fast wrappers above, both halves run to completion even
/// when the other half fails — a rank that has observed a death keeps
/// serving its live peer (ACKing its data, or retransmitting until ACKed)
/// before returning, so no survivor is ever left waiting on a rank that
/// silently walked away. Only then is the interrupt reported, and the
/// caller escalates it into the abort ripple (`crate::survivable`).
///
/// Retry exhaustion under recovery resends the *same* bytes on the
/// reliable channel instead of degrading to raw f32: survivable group
/// payloads are multi-segment containers whose wire format the group codec
/// must see unchanged.
pub(crate) fn sv_exchange(
    comm: &mut Comm,
    res: Option<&Resilience>,
    to: usize,
    from: usize,
    tag: u64,
    payload: &[u8],
    logical_bytes: usize,
) -> Result<Vec<u8>, Interrupt> {
    match res {
        None => {
            let mut framed = Vec::with_capacity(1 + payload.len());
            framed.push(SV_DATA);
            framed.extend_from_slice(payload);
            comm.send_compressed(to, tag, framed, logical_bytes);
            let got = comm.recv_checked(from, tag).map_err(|c| Interrupt::Dead(c.rank))?;
            assert!(
                !got.dropped,
                "survivable exchanges need the resilient transport on lossy fabrics"
            );
            match got.payload.first() {
                Some(&SV_ABORT) => Err(Interrupt::Aborted),
                Some(&SV_DATA) => Ok(got.payload[1..].to_vec()),
                _ => unreachable!("survivable payloads always carry a kind prefix"),
            }
        }
        Some(res) => engine_checked(comm, res, tag, to, from, payload, logical_bytes),
    }
}

/// The checked stop-and-wait engine behind [`sv_exchange`] with resilience
/// on. Mirrors [`engine`] frame-for-frame on the happy path (same timeout
/// charge, same NACK/backoff/retransmit schedule), with three changes:
/// every blocking receive goes through [`Comm::recv_checked`] so a peer's
/// crash surfaces as [`Interrupt::Dead`] instead of a panic; a sub-header
/// message on the data tag is the in-band [`SV_ABORT`] (returned without
/// ACKing — the aborting sender is no longer listening); and exhaustion
/// resends the original bytes reliably rather than degrading to raw f32.
fn engine_checked(
    comm: &mut Comm,
    res: &Resilience,
    tag: u64,
    to: usize,
    from: usize,
    payload: &[u8],
    logical_bytes: usize,
) -> Result<Vec<u8>, Interrupt> {
    let ctrl = ctrl_tag(tag);
    let mut sv_payload = Vec::with_capacity(1 + payload.len());
    sv_payload.push(SV_DATA);
    sv_payload.extend_from_slice(payload);
    let mut attempts: u32 = 1;
    let frame = encode_frame(KIND_DATA_OPAQUE, attempts, tag, &sv_payload);
    comm.send_compressed(to, tag, frame, logical_bytes);
    let mut incoming: Option<Result<Vec<u8>, Interrupt>> = None;
    let mut out_dead: Option<Interrupt> = None;
    let mut out_done = false;
    while !(incoming.is_some() && out_done) {
        if incoming.is_none() {
            match comm.recv_checked(from, tag) {
                Err(crash) => incoming = Some(Err(Interrupt::Dead(crash.rank))),
                Ok(got) if !got.dropped && got.payload.len() < HEADER_LEN => {
                    debug_assert_eq!(got.payload, [SV_ABORT]);
                    incoming = Some(Err(Interrupt::Aborted));
                }
                Ok(got) => {
                    let frame = if got.dropped {
                        comm.advance_labeled(OpKind::Other, res.timeout_s, "res:timeout-wait");
                        comm.mark("res:timeout");
                        None
                    } else {
                        decode_frame(&got.payload).ok()
                    };
                    match frame {
                        Some(f) => {
                            comm.send_reliable(
                                from,
                                ctrl,
                                encode_frame(KIND_ACK, f.seq, ctrl, &[]),
                                0,
                            );
                            debug_assert_eq!(f.payload.first(), Some(&SV_DATA));
                            incoming = Some(Ok(f.payload[1..].to_vec()));
                        }
                        None => comm.send_reliable(
                            from,
                            ctrl,
                            encode_frame(KIND_NACK, attempts, ctrl, &[]),
                            0,
                        ),
                    }
                }
            }
        }
        if !out_done {
            match comm.recv_checked(to, ctrl) {
                Err(crash) => {
                    out_dead = Some(Interrupt::Dead(crash.rank));
                    out_done = true;
                }
                Ok(got) => {
                    assert!(!got.dropped, "control frames travel the reliable channel");
                    let frame = decode_frame(&got.payload)
                        .expect("control frame corrupted on reliable channel");
                    if frame.kind == KIND_ACK {
                        out_done = true;
                        continue;
                    }
                    if attempts > res.max_retries {
                        // out of retries to a live peer: the reliable channel
                        // carries the same bytes — no format change for the
                        // group codec to cope with
                        comm.mark("rec:reliable-resend");
                        attempts += 1;
                        let frame = encode_frame(KIND_DATA_OPAQUE, attempts, tag, &sv_payload);
                        comm.send_reliable(to, tag, frame, 0);
                    } else {
                        let backoff = res.backoff_jittered(attempts, tag);
                        attempts += 1;
                        if backoff > 0.0 {
                            comm.advance_labeled(OpKind::Other, backoff, "res:backoff");
                        }
                        comm.mark("res:retransmit");
                        let frame = encode_frame(KIND_DATA_OPAQUE, attempts, tag, &sv_payload);
                        comm.send_compressed(to, tag, frame, 0);
                    }
                }
            }
        }
    }
    match incoming.expect("incoming half resolved") {
        Err(i) => Err(i),
        Ok(bytes) => match out_dead {
            Some(i) => Err(i),
            None => Ok(bytes),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload: Vec<u8> = (0..200).map(|i| (i * 7 % 251) as u8).collect();
        let buf = encode_frame(KIND_DATA_OPAQUE, 3, 0xDEAD_BEEF, &payload);
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let frame = decode_frame(&buf).expect("roundtrip");
        assert_eq!(frame.kind, KIND_DATA_OPAQUE);
        assert_eq!(frame.seq, 3);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn empty_payload_frames_work() {
        let buf = encode_frame(KIND_ACK, 1, 42, &[]);
        let frame = decode_frame(&buf).expect("ack frame");
        assert_eq!(frame.kind, KIND_ACK);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload: Vec<u8> = (0..64).collect();
        let buf = encode_frame(KIND_DATA_RAW_F32, 9, 7, &payload);
        for bit in 0..buf.len() * 8 {
            let mut mutated = buf.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_frame(&mutated).is_err(), "flip of bit {bit} must not decode as valid");
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let buf = encode_frame(KIND_DATA_OPAQUE, 1, 1, &[5; 32]);
        for len in 0..buf.len() {
            let err = decode_frame(&buf[..len]).unwrap_err();
            match err {
                FrameError::TooShort { .. } | FrameError::LengthMismatch { .. } => {}
                other => panic!("truncation to {len} gave {other:?}"),
            }
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926, "chunking must not matter");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let res = Resilience::default();
        assert_eq!(res.backoff(1), 5e-6);
        assert_eq!(res.backoff(2), 10e-6);
        assert_eq!(res.backoff(3), 20e-6);
        assert_eq!(res.backoff(10), 80e-6, "capped at backoff_max_s");
    }

    #[test]
    fn for_net_on_the_paper_fabric_is_exactly_the_default() {
        assert_eq!(Resilience::for_net(&NetConfig::default()), Resilience::default());
    }

    #[test]
    fn jitter_off_reproduces_the_constant_backoff_schedule() {
        // the default (and an explicit zero) must be bit-identical to the
        // historical constants — fault-free traces depend on it
        for res in [Resilience::default(), Resilience::default().with_backoff_jitter(0.0, 1234)] {
            for retry in 1..12 {
                for salt in [0u64, 7, u64::MAX] {
                    assert_eq!(res.backoff_jittered(retry, salt), res.backoff(retry));
                }
            }
        }
    }

    #[test]
    fn jitter_is_seeded_bounded_and_deterministic() {
        let res = Resilience::default().with_backoff_jitter(0.5, 42);
        let twin = Resilience::default().with_backoff_jitter(0.5, 42);
        let other_seed = Resilience::default().with_backoff_jitter(0.5, 43);
        let mut moved = 0;
        for retry in 1..10 {
            for salt in [3u64, 1 << 32, 99] {
                let b = res.backoff(retry);
                let j = res.backoff_jittered(retry, salt);
                assert!(j >= b * 0.75 && j < b * 1.25, "jitter stays within the ±25% band");
                assert_eq!(j, twin.backoff_jittered(retry, salt), "same seed replays exactly");
                if j != b {
                    moved += 1;
                }
                if j != other_seed.backoff_jittered(retry, salt) {
                    moved += 1;
                }
            }
        }
        assert!(moved > 10, "jitter must actually perturb and depend on the seed");
    }

    #[test]
    fn for_net_scales_the_virtual_time_constants_with_alpha() {
        let mut wan = NetConfig::default();
        wan.latency_s *= 10.0;
        let res = Resilience::for_net(&wan);
        let d = Resilience::default();
        assert_eq!(res.max_retries, d.max_retries, "the retry budget is latency-independent");
        assert_eq!(res.timeout_s, d.timeout_s * 10.0);
        assert_eq!(res.backoff_base_s, d.backoff_base_s * 10.0);
        assert_eq!(res.backoff_max_s, d.backoff_max_s * 10.0);
        assert!(res.timeout_s > wan.latency_s, "a frame still in flight must not be declared lost");
    }

    #[test]
    fn ctrl_tag_cannot_collide_with_data_tags() {
        for base in [crate::mpi::TAG_RS, crate::mpi::TAG_SCATTER] {
            let t = crate::pipeline::seg_tag(base, 63, 4095);
            assert!(t < 1 << 62, "data tags stay far below bit 63");
            assert_ne!(ctrl_tag(t), t);
        }
    }
}
