//! The unified collectives front-end: one options builder, four verbs,
//! every flavour.
//!
//! Historically each flavour module ([`crate::mpi`], [`crate::ccoll`],
//! [`crate::hz`], [`crate::auto`]) exposed its own free functions with
//! subtly different shapes — `mpi::reduce` returned `Option<Vec<f32>>`
//! where `ccoll::reduce` returned `Result<Option<Vec<f32>>>`, `bcast`
//! wanted an explicit `total_len`, and undersized inputs panicked inside
//! `node_chunks`. This module is the single supported entry point:
//!
//! | verb | signature | non-root behaviour |
//! |---|---|---|
//! | [`allreduce`] | `(&mut Comm, &[f32], &CollectiveOpts) -> Result<Vec<f32>>` | n/a |
//! | [`reduce_scatter`] | same | n/a (returns the own chunk) |
//! | [`reduce`] | same (`opts.root`) | returns `Ok(vec![])` |
//! | [`bcast`] | same (`opts.root`) | returns the full vector |
//!
//! Conventions:
//!
//! * **Every rank passes a full-length buffer to [`bcast`]** (MPI
//!   semantics); non-root contents are ignored. The old `total_len`
//!   parameter is gone — the buffer length *is* the total length.
//! * **Input-dependent panics became typed errors**: fewer elements than
//!   ranks is [`Error::TooFewElements`], an out-of-range root is
//!   [`Error::InvalidRoot`].
//! * **Pipelining is an option, not an API fork**:
//!   [`CollectiveOpts::with_segments`] selects the segmented pipelined ring
//!   schedule (see [`crate::pipeline`]); `1` (the default) is the
//!   phase-serial ring. Results are bit-identical either way. Under
//!   [`Variant::Auto`] the tuner-agreed plan's segment count overrides this
//!   knob.
//!
//! ```
//! use hzccl::collectives::{self, CollectiveOpts};
//! use netsim::SimBuilder;
//!
//! let opts = CollectiveOpts::hz(1e-4).with_segments(4);
//! let report = SimBuilder::new(4)
//!     .run(move |comm| {
//!         let data: Vec<f32> = (0..256).map(|i| (i + comm.rank()) as f32 * 0.1).collect();
//!         collectives::allreduce(comm, &data, &opts).unwrap()
//!     })
//!     .expect_clean();
//! assert!(report.outcomes.iter().all(|o| o.value == report.outcomes[0].value));
//! ```

use crate::auto;
use crate::config::{CollectiveConfig, Mode, Variant};
use crate::resilient::Resilience;
use crate::survivable::{self, SvFlavor};
use crate::{ccoll, hierarchy, hz, mpi};
use netsim::{Comm, OpKind, Topology};
use std::fmt;
use tuner::Engine;

/// What can go wrong in a collective call.
#[derive(Debug)]
pub enum Error {
    /// A compressor/decompressor failure bubbled up from the flavour.
    Compression(fzlight::Error),
    /// Ring collectives need at least one element per rank.
    TooFewElements {
        /// Elements in the caller's buffer.
        elems: usize,
        /// Ranks in the communicator.
        nranks: usize,
    },
    /// The rooted collective named a rank outside the communicator.
    InvalidRoot {
        /// The requested root.
        root: usize,
        /// Ranks in the communicator.
        nranks: usize,
    },
    /// The attached [`Topology`] describes a different rank count than the
    /// communicator has.
    TopologyMismatch {
        /// Ranks the topology describes (`nodes * ppn`).
        topology: usize,
        /// Ranks in the communicator.
        nranks: usize,
    },
    /// The recovery layer ran out of membership epochs: more repairs than
    /// the 8-bit epoch tag field can number.
    TooManyEpochs {
        /// The epoch cap that was exhausted ([`crate::pipeline::MAX_EPOCH`]).
        epochs: u32,
    },
    /// The requested [`RecoveryPolicy`] cannot run under these options —
    /// the combination is refused with a typed error instead of being
    /// silently downgraded.
    RecoveryUnsupported {
        /// The flavour that cannot recover.
        variant: Variant,
        /// Why the combination is refused.
        reason: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compression(e) => write!(f, "compression error: {e}"),
            Error::TooFewElements { elems, nranks } => write!(
                f,
                "ring collectives need at least one element per rank \
                 (elems={elems}, nranks={nranks})"
            ),
            Error::InvalidRoot { root, nranks } => {
                write!(f, "root rank {root} is outside the communicator (nranks={nranks})")
            }
            Error::TopologyMismatch { topology, nranks } => {
                write!(f, "topology describes {topology} ranks but the communicator has {nranks}")
            }
            Error::TooManyEpochs { epochs } => {
                write!(f, "recovery exhausted all {epochs} membership epochs")
            }
            Error::RecoveryUnsupported { variant, reason } => {
                write!(f, "{variant:?} cannot run this recovery policy: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compression(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fzlight::Error> for Error {
    fn from(e: fzlight::Error) -> Error {
        Error::Compression(e)
    }
}

/// Result alias of this module.
pub type Result<T> = std::result::Result<T, Error>;

/// What a collective does when a rank dies mid-flight (ULFM-style
/// semantics, selected per call via [`CollectiveOpts::with_recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Today's behaviour: a peer crash panics the observing rank (the
    /// simulator reports a [`netsim::RankFate::Panicked`] cascade). The
    /// only policy the plain verbs accept.
    #[default]
    FailFast,
    /// Survivors agree on the dead, splice them out of the ring under a
    /// new epoch, and deliver the **sum over survivors**: exact for `mpi`,
    /// error-bounded for the compressed flavours.
    Shrink,
    /// [`RecoveryPolicy::Shrink`], then rescale by `n0 / survivors` — the
    /// survivor *mean* times the launch size, the right estimator when
    /// every rank contributes a same-scale shard (gradient averaging).
    ShrinkRescale,
}

/// What a recoverable collective delivered: the value plus exactly whose
/// contributions are in it.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResult {
    /// The reduced vector (see [`RecoveryPolicy`] for its semantics).
    pub value: Vec<f32>,
    /// Sorted launch ranks whose inputs the value aggregates. The full
    /// communicator on a fault-free run.
    pub contributors: Vec<usize>,
    /// The membership epoch that committed: 0 when nothing died, +1 per
    /// mid-flight repair.
    pub epoch: u32,
}

/// Options of one collective call: flavour, compression parameters, thread
/// mode, pipeline segment count, and (for rooted verbs) the root rank.
///
/// Construct with a flavour constructor ([`CollectiveOpts::mpi`],
/// [`CollectiveOpts::ccoll`], [`CollectiveOpts::hz`],
/// [`CollectiveOpts::auto`]) and refine with the `with_*` builders.
#[derive(Debug, Clone)]
pub struct CollectiveOpts {
    variant: Variant,
    eb: f64,
    block_len: usize,
    mode: Mode,
    segments: usize,
    root: usize,
    engine: Option<Engine>,
    resilience: Option<Resilience>,
    topology: Option<Topology>,
    recovery: RecoveryPolicy,
}

impl CollectiveOpts {
    fn new(variant: Variant, eb: f64, engine: Option<Engine>) -> CollectiveOpts {
        CollectiveOpts {
            variant,
            eb,
            block_len: fzlight::DEFAULT_BLOCK_LEN,
            mode: Mode::SingleThread,
            segments: 1,
            root: 0,
            engine,
            resilience: None,
            topology: None,
            recovery: RecoveryPolicy::FailFast,
        }
    }

    /// Plain MPI (no compression). The error bound is irrelevant and kept
    /// at 0 for cache-key purposes.
    pub fn mpi() -> CollectiveOpts {
        CollectiveOpts::new(Variant::Mpi, 0.0, None)
    }

    /// C-Coll's DOC workflow at absolute error bound `eb`.
    pub fn ccoll(eb: f64) -> CollectiveOpts {
        CollectiveOpts::new(Variant::CColl, eb, None)
    }

    /// hZCCL's homomorphic workflow at absolute error bound `eb`.
    pub fn hz(eb: f64) -> CollectiveOpts {
        CollectiveOpts::new(Variant::Hzccl, eb, None)
    }

    /// Let the tuner pick per call ([`crate::auto`]) with the
    /// paper-calibrated [`Engine`]; override it with
    /// [`CollectiveOpts::with_engine`].
    pub fn auto(eb: f64) -> CollectiveOpts {
        CollectiveOpts::new(Variant::Auto, eb, Some(Engine::paper()))
    }

    /// Parse-driven constructor (CLI): flavour by [`Variant`], paper engine
    /// when `Auto`.
    pub fn for_variant(variant: Variant, eb: f64) -> CollectiveOpts {
        let engine = matches!(variant, Variant::Auto).then(Engine::paper);
        CollectiveOpts::new(variant, eb, engine)
    }

    /// Compressor block length (default [`fzlight::DEFAULT_BLOCK_LEN`]).
    pub fn with_block_len(mut self, block_len: usize) -> CollectiveOpts {
        self.block_len = block_len.max(1);
        self
    }

    /// Single- or multi-thread compression/reduction mode.
    pub fn with_mode(mut self, mode: Mode) -> CollectiveOpts {
        self.mode = mode;
        self
    }

    /// Shorthand: `1` thread is [`Mode::SingleThread`], more is
    /// [`Mode::MultiThread`].
    pub fn with_threads(mut self, threads: usize) -> CollectiveOpts {
        self.mode = if threads <= 1 { Mode::SingleThread } else { Mode::MultiThread(threads) };
        self
    }

    /// Pipeline segment count per ring step. `1` (default) is the
    /// phase-serial schedule; larger counts overlap per-segment compute
    /// with the wire, clamped to [`crate::pipeline::MAX_SEGMENTS`] and the
    /// chunk's block count. `0` is treated as `1`.
    pub fn with_segments(mut self, segments: usize) -> CollectiveOpts {
        self.segments = segments.max(1);
        self
    }

    /// Root rank of the rooted verbs ([`reduce`], [`bcast`]); default 0.
    pub fn with_root(mut self, root: usize) -> CollectiveOpts {
        self.root = root;
        self
    }

    /// Replace the [`Variant::Auto`] decision engine (ignored by the static
    /// flavours).
    pub fn with_engine(mut self, engine: Engine) -> CollectiveOpts {
        self.engine = Some(engine);
        self
    }

    /// Route the serial schedules through the resilient transport
    /// ([`crate::resilient`]): checksummed frames, NACK/retransmit, and
    /// graceful degradation to raw f32 after `max_retries`. Forces the
    /// phase-serial schedule (the segmented pipelined ring is not made
    /// resilient). Composes with every flavour, [`Variant::Auto`]
    /// included — the tuner picks the plan and the chosen flavour runs it
    /// over the resilient transport.
    pub fn with_resilience(mut self, res: Resilience) -> CollectiveOpts {
        self.resilience = Some(res);
        self
    }

    /// What to do when a rank dies mid-collective (default
    /// [`RecoveryPolicy::FailFast`]). The shrinking policies are only
    /// honoured by the recoverable verbs ([`allreduce_recoverable`],
    /// [`reduce_scatter_recoverable`]) — the plain verbs return
    /// [`Error::RecoveryUnsupported`] rather than silently discarding the
    /// request, because their `Vec<f32>` shape cannot say *whose* data the
    /// sum contains.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> CollectiveOpts {
        self.recovery = recovery;
        self
    }

    /// Attach a two-tier fabric shape: [`allreduce`] runs the hierarchical
    /// schedule ([`crate::hierarchy`]) when the topology is genuinely
    /// two-level (`nodes > 1 && ppn > 1`) — intra-node reduce-scatter,
    /// compressed inter-node ring, intra-node allgather. Under
    /// [`Variant::Auto`] the tuner decides between the flat and the
    /// hierarchical plan from its two-tier cost model. The other verbs keep
    /// their flat schedules. `topology.nranks()` must equal the
    /// communicator size at call time or the verb returns
    /// [`Error::TopologyMismatch`]. Pair with
    /// [`netsim::SimBuilder::topology`] so the simulated fabric matches
    /// the schedule's assumptions.
    pub fn with_topology(mut self, topology: Topology) -> CollectiveOpts {
        self.topology = Some(topology);
        self
    }

    /// The flavour this call dispatches to.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Absolute error bound.
    pub fn eb(&self) -> f64 {
        self.eb
    }

    /// Thread mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Pipeline segment count (pre-clamp).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Root rank of the rooted verbs.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The [`Variant::Auto`] engine, when one is attached.
    pub fn engine(&self) -> Option<&Engine> {
        self.engine.as_ref()
    }

    /// The resilient-transport policy, when one is attached.
    pub fn resilience(&self) -> Option<&Resilience> {
        self.resilience.as_ref()
    }

    /// The crash-recovery policy of this call.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The attached fabric shape, when one is attached.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The topology to run a hierarchical schedule over: `Ok(Some(_))` when
    /// one is attached, matches the communicator, and is genuinely
    /// two-level; `Ok(None)` when flat is the right answer (no topology, or
    /// a degenerate one with a single node or a single rank per node).
    fn hier_topology(&self, comm: &Comm) -> Result<Option<Topology>> {
        let Some(topo) = self.topology else { return Ok(None) };
        if topo.nranks() != comm.size() {
            return Err(Error::TopologyMismatch { topology: topo.nranks(), nranks: comm.size() });
        }
        Ok((topo.nodes > 1 && topo.ppn > 1).then_some(topo))
    }

    /// The per-flavour config these options imply.
    fn cfg(&self) -> CollectiveConfig {
        CollectiveConfig {
            eb: self.eb,
            block_len: self.block_len,
            mode: self.mode,
            res: self.resilience,
        }
    }

    /// The effective segment count: the resilient transport only covers the
    /// phase-serial schedules, so resilience forces `segments == 1`.
    fn eff_segments(&self) -> usize {
        if self.resilience.is_some() {
            1
        } else {
            self.segments
        }
    }

    fn engine_ref(&self) -> &Engine {
        self.engine.as_ref().expect("Variant::Auto options always carry an engine")
    }
}

fn check_elems(comm: &Comm, elems: usize) -> Result<()> {
    let nranks = comm.size();
    if elems < nranks {
        return Err(Error::TooFewElements { elems, nranks });
    }
    Ok(())
}

fn check_root(comm: &Comm, root: usize) -> Result<()> {
    let nranks = comm.size();
    if root >= nranks {
        return Err(Error::InvalidRoot { root, nranks });
    }
    Ok(())
}

/// The plain verbs cannot express partial results, so they refuse the
/// shrinking policies instead of silently discarding them.
fn check_fail_fast(opts: &CollectiveOpts) -> Result<()> {
    if opts.recovery != RecoveryPolicy::FailFast {
        return Err(Error::RecoveryUnsupported {
            variant: opts.variant,
            reason: "plain verbs return a bare Vec<f32> and cannot say whose data survived; \
                     call allreduce_recoverable / reduce_scatter_recoverable instead",
        });
    }
    Ok(())
}

/// `Allreduce(sum)`: every rank contributes `data`, every rank receives the
/// (error-bounded, for compressed flavours) element-wise sum.
pub fn allreduce(comm: &mut Comm, data: &[f32], opts: &CollectiveOpts) -> Result<Vec<f32>> {
    check_elems(comm, data.len())?;
    check_fail_fast(opts)?;
    let cfg = opts.cfg();
    let topo = opts.hier_topology(comm)?;
    if let Some(topo) = topo {
        // Static flavours always take the hierarchical schedule on a
        // two-level fabric; Auto lets the tuner weigh it against the flat
        // plans from the two-tier cost model (below).
        let flavor = match opts.variant {
            Variant::Mpi => Some(tuner::Flavor::Mpi),
            Variant::CColl => Some(tuner::Flavor::CColl),
            Variant::Hzccl => Some(tuner::Flavor::Hzccl),
            Variant::Auto => None,
        };
        if let Some(flavor) = flavor {
            return Ok(hierarchy::allreduce_hier(comm, data, flavor, &topo, &cfg)?);
        }
    }
    Ok(match opts.variant {
        Variant::Mpi => mpi::allreduce_impl(
            comm,
            data,
            cfg.mode.threads(),
            opts.eff_segments(),
            cfg.res.as_ref(),
        ),
        Variant::CColl => ccoll::allreduce_impl(comm, data, &cfg, opts.eff_segments())?,
        Variant::Hzccl => hz::allreduce_impl(comm, data, &cfg, opts.eff_segments())?,
        Variant::Auto => auto::allreduce(comm, data, &cfg, opts.engine_ref(), topo.as_ref())?.value,
    })
}

/// `Reduce_scatter(sum)`: every rank receives its own reduced node chunk
/// (chunk layout [`crate::chunks::node_chunks`]).
pub fn reduce_scatter(comm: &mut Comm, data: &[f32], opts: &CollectiveOpts) -> Result<Vec<f32>> {
    check_elems(comm, data.len())?;
    check_fail_fast(opts)?;
    opts.hier_topology(comm)?; // only Allreduce has a hierarchical schedule
    let cfg = opts.cfg();
    Ok(match opts.variant {
        Variant::Mpi => mpi::reduce_scatter_impl(
            comm,
            data,
            cfg.mode.threads(),
            opts.eff_segments(),
            cfg.res.as_ref(),
        ),
        Variant::CColl => ccoll::reduce_scatter_impl(comm, data, &cfg, opts.eff_segments())?,
        Variant::Hzccl => hz::reduce_scatter_impl(comm, data, &cfg, opts.eff_segments())?,
        Variant::Auto => auto::reduce_scatter(comm, data, &cfg, opts.engine_ref())?.value,
    })
}

/// `Reduce(sum)` to `opts.root`: the root receives the full sum, every
/// other rank receives `Ok(vec![])` (no more `Option` vs `Result<Option>`
/// split between flavours).
pub fn reduce(comm: &mut Comm, data: &[f32], opts: &CollectiveOpts) -> Result<Vec<f32>> {
    check_elems(comm, data.len())?;
    check_fail_fast(opts)?;
    check_root(comm, opts.root)?;
    opts.hier_topology(comm)?; // only Allreduce has a hierarchical schedule
    let cfg = opts.cfg();
    let got = match opts.variant {
        Variant::Mpi => mpi::reduce_impl(
            comm,
            data,
            opts.root,
            cfg.mode.threads(),
            opts.eff_segments(),
            cfg.res.as_ref(),
        ),
        Variant::CColl => ccoll::reduce_impl(comm, data, opts.root, &cfg, opts.eff_segments())?,
        Variant::Hzccl => hz::reduce_impl(comm, data, opts.root, &cfg, opts.eff_segments())?,
        Variant::Auto => auto::reduce(comm, data, opts.root, &cfg, opts.engine_ref())?.value,
    };
    Ok(got.unwrap_or_default())
}

/// Long-message `Bcast` from `opts.root`: **every rank passes a full-length
/// buffer** (MPI semantics — the length is the broadcast size; non-root
/// contents are ignored) and receives the root's vector back.
pub fn bcast(comm: &mut Comm, data: &[f32], opts: &CollectiveOpts) -> Result<Vec<f32>> {
    check_elems(comm, data.len())?;
    check_fail_fast(opts)?;
    check_root(comm, opts.root)?;
    opts.hier_topology(comm)?; // only Allreduce has a hierarchical schedule
    let total_len = data.len();
    let payload: &[f32] = if comm.rank() == opts.root { data } else { &[] };
    let cfg = opts.cfg();
    Ok(match opts.variant {
        Variant::Mpi => mpi::bcast_impl(
            comm,
            payload,
            opts.root,
            total_len,
            opts.eff_segments(),
            cfg.res.as_ref(),
        ),
        Variant::CColl => {
            ccoll::bcast_impl(comm, payload, opts.root, total_len, &cfg, opts.eff_segments())?
        }
        Variant::Hzccl => {
            hz::bcast_impl(comm, payload, opts.root, total_len, &cfg, opts.eff_segments())?
        }
        Variant::Auto => {
            auto::bcast(comm, payload, opts.root, total_len, &cfg, opts.engine_ref())?.value
        }
    })
}

/// Map the options' flavour onto the survivable ring's wire formats.
/// [`Variant::Auto`] is refused: the tuner plans against a fixed
/// membership, and a plan agreed at launch is meaningless after a repair.
fn sv_flavor(opts: &CollectiveOpts) -> Result<SvFlavor> {
    match opts.variant {
        Variant::Mpi => Ok(SvFlavor::Mpi),
        Variant::CColl => Ok(SvFlavor::Ccoll),
        Variant::Hzccl => Ok(SvFlavor::Hz),
        Variant::Auto => Err(Error::RecoveryUnsupported {
            variant: Variant::Auto,
            reason: "the tuner cannot plan across unknown future memberships; \
                     pick a static flavour for the shrinking policies",
        }),
    }
}

fn run_recoverable(
    comm: &mut Comm,
    data: &[f32],
    opts: &CollectiveOpts,
    ag: bool,
) -> Result<PartialResult> {
    check_elems(comm, data.len())?;
    if opts.recovery == RecoveryPolicy::FailFast {
        // fail-fast recoverable calls are the plain verbs with the full
        // communicator stamped on — bit-identical schedules and traffic
        let value =
            if ag { allreduce(comm, data, opts)? } else { reduce_scatter(comm, data, opts)? };
        return Ok(PartialResult { value, contributors: (0..comm.size()).collect(), epoch: 0 });
    }
    let flavor = sv_flavor(opts)?;
    if opts.hier_topology(comm)?.is_some() {
        return Err(Error::RecoveryUnsupported {
            variant: opts.variant,
            reason: "the hierarchical two-tier schedule is not survivable; detach the topology",
        });
    }
    let cfg = opts.cfg();
    let out = survivable::run_survivable(comm, data, flavor, &cfg, ag)?;
    let mut value = out.value;
    if opts.recovery == RecoveryPolicy::ShrinkRescale {
        let scale = comm.size() as f32 / out.members.len() as f32;
        let bytes = value.len() * 4;
        comm.compute_labeled(OpKind::Cpt, bytes, "rec:rescale", || {
            for v in value.iter_mut() {
                *v *= scale;
            }
        });
    }
    Ok(PartialResult { value, contributors: out.members, epoch: out.epoch })
}

/// `Allreduce(sum)` with crash recovery: like [`allreduce`], but a rank
/// dying mid-flight is handled per `opts.recovery()` instead of cascading
/// panics, and the result says exactly whose data it aggregates.
///
/// Under [`RecoveryPolicy::Shrink`] / [`RecoveryPolicy::ShrinkRescale`]
/// the survivors run the epoch-numbered self-healing ring
/// (`crate::survivable`): an attempt that observes a death tears down
/// in-band, all survivors agree on the new membership, and the collective
/// re-runs over the shrunk ring — fault-free runs commit at epoch 0 with
/// schedules and traffic identical to the plain verb. Requires a static
/// flavour ([`Variant::Auto`] and attached topologies return
/// [`Error::RecoveryUnsupported`]).
pub fn allreduce_recoverable(
    comm: &mut Comm,
    data: &[f32],
    opts: &CollectiveOpts,
) -> Result<PartialResult> {
    run_recoverable(comm, data, opts, true)
}

/// `Reduce_scatter(sum)` with crash recovery (see [`allreduce_recoverable`]).
///
/// The delivered value is this rank's contiguous owned region **under the
/// committed membership**: at epoch 0 exactly the
/// [`crate::chunks::node_chunks`] chunk, after a repair the survivor's
/// whole segment group (dead ranks' segments are redistributed, so regions
/// grow — consult [`PartialResult::contributors`] and the epoch to map
/// regions back to elements).
pub fn reduce_scatter_recoverable(
    comm: &mut Comm,
    data: &[f32],
    opts: &CollectiveOpts,
) -> Result<PartialResult> {
    run_recoverable(comm, data, opts, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::node_chunks;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.01).sin() * (rank + 1) as f32).collect()
    }

    fn direct_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    fn all_opts() -> Vec<CollectiveOpts> {
        vec![
            CollectiveOpts::mpi(),
            CollectiveOpts::ccoll(1e-4),
            CollectiveOpts::hz(1e-4),
            CollectiveOpts::auto(1e-4),
        ]
    }

    #[test]
    fn allreduce_is_correct_for_every_variant_and_segment_count() {
        let n = 2000;
        let nranks = 4;
        let expect = direct_sum(nranks, n);
        for opts in all_opts() {
            for segments in [1usize, 4] {
                let opts = opts.clone().with_segments(segments);
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        allreduce(comm, &data, &opts).expect("allreduce")
                    })
                    .expect_clean()
                    .outcomes;
                let tol = if opts.variant() == Variant::Mpi { 1e-4 } else { 0.01 };
                for o in &outcomes {
                    // C-Coll's Allgather keeps the own chunk raw (no
                    // quantization roundtrip), so its ranks agree only
                    // within the error bound, not bitwise
                    if opts.variant() != Variant::CColl {
                        assert_eq!(o.value, outcomes[0].value, "{:?}", opts.variant());
                    }
                    for (a, b) in o.value.iter().zip(&expect) {
                        assert!(
                            (a - b).abs() <= tol,
                            "{:?} segments={segments}: {a} vs {b}",
                            opts.variant()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_returns_empty_on_non_roots_for_every_variant() {
        let n = 1200;
        let nranks = 4;
        let root = 2;
        let expect = direct_sum(nranks, n);
        for opts in all_opts() {
            let opts = opts.with_root(root);
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    reduce(comm, &data, &opts).expect("reduce")
                })
                .expect_clean()
                .outcomes;
            for (r, o) in outcomes.iter().enumerate() {
                if r == root {
                    assert_eq!(o.value.len(), n, "{:?}", opts.variant());
                    for (a, b) in o.value.iter().zip(&expect) {
                        assert!((a - b).abs() <= 0.01, "{:?}: {a} vs {b}", opts.variant());
                    }
                } else {
                    assert!(o.value.is_empty(), "{:?}: non-root must get vec![]", opts.variant());
                }
            }
        }
    }

    #[test]
    fn bcast_takes_full_length_buffers_everywhere() {
        let n = 900;
        let nranks = 3;
        let root = 1;
        let base = field(root, n);
        for opts in all_opts() {
            let opts = opts.with_root(root);
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    // non-roots pass garbage of the right length — MPI semantics
                    let data = if comm.rank() == root { base.clone() } else { vec![f32::NAN; n] };
                    bcast(comm, &data, &opts).expect("bcast")
                })
                .expect_clean()
                .outcomes;
            for o in &outcomes {
                for (a, b) in o.value.iter().zip(&base) {
                    assert!((a - b).abs() <= 1e-3 + 1e-6, "{:?}: {a} vs {b}", opts.variant());
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_returns_the_own_chunk() {
        let n = 1000;
        let nranks = 4;
        let expect = direct_sum(nranks, n);
        let chunks = node_chunks(n, nranks);
        for opts in [CollectiveOpts::mpi(), CollectiveOpts::hz(1e-4).with_segments(2)] {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    reduce_scatter(comm, &data, &opts).expect("rs")
                })
                .expect_clean()
                .outcomes;
            for (r, o) in outcomes.iter().enumerate() {
                assert_eq!(o.value.len(), chunks[r].len());
                for (a, b) in o.value.iter().zip(&expect[chunks[r].clone()]) {
                    assert!((a - b).abs() <= 0.01, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn undersized_input_is_a_typed_error_not_a_panic() {
        let cluster = SimBuilder::new(4).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let opts = CollectiveOpts::hz(1e-4);
                allreduce(comm, &[1.0, 2.0], &opts).map_err(|e| e.to_string())
            })
            .expect_clean()
            .outcomes;
        for o in outcomes {
            let msg = o.value.expect_err("2 elements over 4 ranks must fail");
            assert!(msg.contains("elems=2"), "{msg}");
            assert!(msg.contains("nranks=4"), "{msg}");
        }
    }

    #[test]
    fn out_of_range_root_is_a_typed_error() {
        let cluster = SimBuilder::new(2).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let opts = CollectiveOpts::mpi().with_root(7);
                let data = vec![1.0f32; 16];
                (
                    matches!(reduce(comm, &data, &opts), Err(Error::InvalidRoot { root: 7, .. })),
                    matches!(bcast(comm, &data, &opts), Err(Error::InvalidRoot { root: 7, .. })),
                )
            })
            .expect_clean()
            .outcomes;
        for o in outcomes {
            assert_eq!(o.value, (true, true));
        }
    }

    #[test]
    fn builder_roundtrip() {
        let opts = CollectiveOpts::hz(1e-3)
            .with_segments(8)
            .with_threads(18)
            .with_block_len(64)
            .with_root(3);
        assert_eq!(opts.variant(), Variant::Hzccl);
        assert_eq!(opts.segments(), 8);
        assert_eq!(opts.mode(), Mode::MultiThread(18));
        assert_eq!(opts.root(), 3);
        assert!(opts.engine().is_none());
        assert!(CollectiveOpts::auto(1e-4).engine().is_some());
        // zero segments degrades to the serial schedule, threads=1 to ST
        assert_eq!(CollectiveOpts::mpi().with_segments(0).segments(), 1);
        assert_eq!(CollectiveOpts::mpi().with_threads(1).mode(), Mode::SingleThread);
    }

    #[test]
    fn errors_display_and_chain() {
        let e = Error::TooFewElements { elems: 3, nranks: 8 };
        assert!(e.to_string().contains("elems=3"));
        let e = Error::InvalidRoot { root: 9, nranks: 4 };
        assert!(e.to_string().contains("root rank 9"));
        use std::error::Error as _;
        assert!(e.source().is_none());
    }
}
