//! Segmentation plumbing for the pipelined ring collectives.
//!
//! A phase-serial ring step moves one whole node-chunk and only then runs
//! the compute that consumes it (HPR / DOC / CPT). The pipelined schedule
//! splits every chunk into `S` *segments* and interleaves, so segment `s`'s
//! compute overlaps segment `s+1`'s wire time — the closed form lives in
//! [`costmodel::pipelined_step`]. This module owns the two pieces every
//! flavour shares:
//!
//! * [`seg_ranges`] — the deterministic, block-aligned segment split that
//!   all ranks must agree on (a rank segmenting differently from its
//!   neighbour deadlocks on mismatched tags);
//! * [`seg_tag`] — the tag sub-space `base + step·4096 + seg`, keeping each
//!   `(step, segment)` pair's messages disjoint.

use std::ops::Range;

/// Per-step tag stride: segments live in `base + step*SEG_TAG_STRIDE + seg`,
/// so a ring supports up to 4096 segments per step (far above
/// [`MAX_SEGMENTS`]) and `2^32 / 4096 = 2^20` steps per tag base.
pub(crate) const SEG_TAG_STRIDE: u64 = 4096;

/// Hard cap on the segment count, mirroring `costmodel::MAX_SEGMENTS`:
/// past this, per-segment latency `S·α` swamps any overlap gain.
pub const MAX_SEGMENTS: usize = 64;

/// The wire tag of segment `seg` of ring step `step` under `base`
/// (`TAG_RS`, `TAG_AG`, …).
pub(crate) fn seg_tag(base: u64, step: usize, seg: usize) -> u64 {
    debug_assert!((seg as u64) < SEG_TAG_STRIDE, "segment id overflows its tag sub-space");
    base + (step as u64) * SEG_TAG_STRIDE + seg as u64
}

/// Bit position of the 8-bit membership-epoch field inside a wire tag:
/// bits 40–47, above every phase base (bits 32–35) and below the resilient
/// control bit (63). Epoch 0 leaves the tag bit-identical to the historical
/// layout, so fault-free and fail-fast runs are untouched.
pub(crate) const EPOCH_SHIFT: u32 = 40;

/// Maximum membership epoch a tag can carry (and thus the recovery layer
/// can reach): the epoch advances only when ranks die, so 255 repairs is
/// far beyond any simulated crash plan.
pub const MAX_EPOCH: u32 = 0xFF;

/// [`seg_tag`] salted with the membership epoch of the survivable
/// collective layer, so messages of a revoked attempt can never match a
/// repaired epoch's receives.
pub(crate) fn epoch_tag(base: u64, step: usize, seg: usize, epoch: u32) -> u64 {
    debug_assert!(epoch <= MAX_EPOCH, "epoch overflows its 8-bit tag field");
    seg_tag(base, step, seg) | (u64::from(epoch) << EPOCH_SHIFT)
}

/// Decoded coordinates of a collective wire tag (the inverse of
/// [`seg_tag`] plus the phase base and the resilient transport's
/// control-channel bit). Powers the per-phase/step/segment views of
/// `netsim::CriticalPath::by_tag` in `hzc sim --critical-path` and
/// `hzc bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagInfo {
    /// Collective phase the tag base encodes (`rs`, `ag`, `gather`,
    /// `scatter`, `rd`, `fold`, `plan`, or the hierarchical tiers
    /// `h-rs`, `h-ring`, `h-ag`).
    pub phase: &'static str,
    /// Ring step (or recursive-doubling round) within the phase.
    pub step: usize,
    /// Pipeline segment within the step (0 for serial schedules).
    pub seg: usize,
    /// True for the resilient transport's ACK/NACK control channel
    /// (bit 63 set on the data tag).
    pub ctrl: bool,
    /// Membership epoch salted into bits 40–47 by the survivable
    /// collective layer (0 for fault-free / fail-fast traffic).
    pub epoch: u32,
}

/// Decode a wire tag into its `(phase, step, segment)` coordinates.
/// Returns `None` for tags outside the collective tag bases (e.g. ad-hoc
/// tags used by tests or examples).
pub fn decode_tag(tag: u64) -> Option<TagInfo> {
    let ctrl = tag & (1 << 63) != 0;
    let tag = tag & !(1u64 << 63);
    let epoch = ((tag >> EPOCH_SHIFT) & u64::from(MAX_EPOCH)) as u32;
    let tag = tag & !(u64::from(MAX_EPOCH) << EPOCH_SHIFT);
    let phase = match tag >> 32 {
        1 => "rs",
        2 => "ag",
        3 => "gather",
        4 => "scatter",
        5 => "rd",
        6 => "fold",
        7 => "plan",
        8 => "h-rs",
        9 => "h-ring",
        10 => "h-ag",
        11 => "agree",
        _ => return None,
    };
    let rem = tag & 0xFFFF_FFFF;
    Some(TagInfo {
        phase,
        step: (rem / SEG_TAG_STRIDE) as usize,
        seg: (rem % SEG_TAG_STRIDE) as usize,
        ctrl,
        epoch,
    })
}

/// Split an absolute element `range` into at most `segments` contiguous
/// sub-ranges whose boundaries fall on `block_len` multiples (relative to
/// the range start), distributing blocks as evenly as possible.
///
/// The effective count is clamped to
/// `min(segments, ceil(len / block_len), MAX_SEGMENTS)` and floored at 1 —
/// a segment shorter than one compressor block would only add per-message
/// latency, never overlap. Pass `block_len = 1` for uncompressed traffic.
/// Deterministic in its inputs, so every rank derives the identical split.
pub fn seg_ranges(range: Range<usize>, segments: usize, block_len: usize) -> Vec<Range<usize>> {
    let len = range.len();
    assert!(len > 0, "cannot segment an empty chunk");
    let bl = block_len.max(1);
    let nblocks = len.div_ceil(bl);
    let k = segments.clamp(1, MAX_SEGMENTS).min(nblocks);
    let base_blocks = nblocks / k;
    let extra = nblocks % k; // the first `extra` segments carry one more block
    let mut out = Vec::with_capacity(k);
    let mut start = range.start;
    for i in 0..k {
        let blocks = base_blocks + usize::from(i < extra);
        let end = (start + blocks * bl).min(range.end);
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, range.end, "segments must tile the chunk");
    out
}

/// The full segment plan of a ring collective over `total` elements:
/// `plan[chunk][seg]` is the absolute element range of segment `seg` of node
/// chunk `chunk` (chunk layout [`crate::chunks::node_chunks`], segment split
/// [`seg_ranges`]). Deterministic, so every rank derives the identical plan.
pub(crate) fn chunk_seg_plan(
    total: usize,
    nranks: usize,
    segments: usize,
    block_len: usize,
) -> Vec<Vec<Range<usize>>> {
    crate::chunks::node_chunks(total, nranks)
        .iter()
        .map(|c| seg_ranges(c.clone(), segments, block_len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_tile_the_range_and_align_to_blocks() {
        for (lo, hi, s, bl) in
            [(0usize, 1000, 4, 32), (100, 1123, 7, 32), (5, 6, 3, 32), (0, 64, 2, 32)]
        {
            let ranges = seg_ranges(lo..hi, s, bl);
            assert_eq!(ranges.first().unwrap().start, lo);
            assert_eq!(ranges.last().unwrap().end, hi);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert_eq!((w[0].end - lo) % bl, 0, "interior boundaries block-aligned");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn clamp_caps_at_block_count_and_max() {
        // 40 elements = 2 blocks of 32 -> at most 2 segments however many asked
        assert_eq!(seg_ranges(0..40, 16, 32).len(), 2);
        // one block -> degenerate single segment
        assert_eq!(seg_ranges(0..10, 8, 32), vec![0..10]);
        // zero requested behaves as serial
        assert_eq!(seg_ranges(0..100, 0, 32).len(), 1);
        // uncompressed traffic segments at element granularity, capped at MAX
        assert_eq!(seg_ranges(0..1_000_000, 1000, 1).len(), MAX_SEGMENTS);
    }

    #[test]
    fn even_distribution_of_blocks() {
        // 10 blocks over 4 segments -> 3,3,2,2 blocks
        let r = seg_ranges(0..320, 4, 32);
        let lens: Vec<usize> = r.iter().map(|x| x.len()).collect();
        assert_eq!(lens, vec![96, 96, 64, 64]);
    }

    #[test]
    fn tags_are_disjoint_across_steps_and_segments() {
        let base = 1u64 << 32;
        let mut seen = std::collections::BTreeSet::new();
        for step in 0..8 {
            for seg in 0..MAX_SEGMENTS {
                assert!(seen.insert(seg_tag(base, step, seg)));
            }
        }
    }

    #[test]
    fn decode_round_trips_every_phase_base_including_hierarchical() {
        let bases: [(u64, &str); 11] = [
            (1, "rs"),
            (2, "ag"),
            (3, "gather"),
            (4, "scatter"),
            (5, "rd"),
            (6, "fold"),
            (7, "plan"),
            (8, "h-rs"),
            (9, "h-ring"),
            (10, "h-ag"),
            (11, "agree"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (base, phase) in bases {
            for step in [0usize, 1, 7, 63] {
                for seg in [0usize, 1, MAX_SEGMENTS - 1] {
                    let tag = seg_tag(base << 32, step, seg);
                    assert!(seen.insert(tag), "tag collision across phase bases");
                    let info = decode_tag(tag).expect("collective tags decode");
                    assert_eq!(info, TagInfo { phase, step, seg, ctrl: false, epoch: 0 });
                    // the resilient ctrl bit round-trips orthogonally
                    let ctrl = decode_tag(tag | 1 << 63).unwrap();
                    assert_eq!(ctrl, TagInfo { phase, step, seg, ctrl: true, epoch: 0 });
                }
            }
        }
        assert_eq!(decode_tag(12 << 32), None, "bases above the agreement plane are unassigned");
    }

    #[test]
    fn epoch_salt_round_trips_and_keeps_epoch_zero_identical() {
        // epoch 0 leaves the historical tag layout untouched
        assert_eq!(epoch_tag(1 << 32, 3, 5, 0), seg_tag(1 << 32, 3, 5));
        let mut seen = std::collections::BTreeSet::new();
        for epoch in [0u32, 1, 7, MAX_EPOCH] {
            for step in [0usize, 2, 63] {
                let tag = epoch_tag(11 << 32, step, 0, epoch);
                assert!(seen.insert(tag), "epochs must not collide");
                let info = decode_tag(tag).expect("epoch-salted tags decode");
                assert_eq!(info, TagInfo { phase: "agree", step, seg: 0, ctrl: false, epoch });
                // the resilient ctrl bit composes with the epoch field
                let ctrl = decode_tag(tag | 1 << 63).unwrap();
                assert_eq!(ctrl.epoch, epoch);
                assert!(ctrl.ctrl);
            }
        }
    }
}
