//! # hZCCL — homomorphic compression-accelerated collective communication
//!
//! The primary contribution of *"hZCCL: Accelerating Collective
//! Communication with Co-Designed Homomorphic Compression"* (SC 2024),
//! reproduced in Rust on top of:
//!
//! * [`fzlight`] — the ultra-fast error-bounded lossy compressor,
//! * [`hzdyn`] — the dynamic homomorphic compression pipeline,
//! * [`netsim`] — the virtual-time multi-node cluster substrate.
//!
//! Three collective flavours (Table II), each offering ring
//! `Reduce_scatter`, `Allgather` and `Allreduce`:
//!
//! | module | workflow | per-round cost (Reduce_scatter) |
//! |---|---|---|
//! | [`mpi`] | no compression | `CPT` + full-size wire traffic |
//! | [`p2p`] | CPR-P2P [25] (prior work) | `CPR + DPR + CPT` per hop, in *every* stage |
//! | [`ccoll`] | DOC (C-Coll [13]) | `CPR + DPR + CPT` + compressed traffic |
//! | [`hz`] | homomorphic (hZCCL) | `HPR` only (+ `N·CPR` once, `1·DPR` at the end) |
//!
//! Every flavour also provides `Reduce`-to-root and long-message `Bcast`;
//! [`rd`] adds a recursive-doubling Allreduce (with homomorphic reduction)
//! for the latency-bound small-message regime, and [`error_bounds`] states
//! the analytic worst-case error of each workflow.
//!
//! The supported entry point is the unified [`collectives`] API — one
//! options builder ([`CollectiveOpts`]), four verbs, every flavour (plus
//! the segmented pipelined ring schedule via
//! [`CollectiveOpts::with_segments`]):
//!
//! ```
//! use hzccl::collectives::{self, CollectiveOpts};
//! use netsim::SimBuilder;
//!
//! let opts = CollectiveOpts::hz(1e-4);
//! let report = SimBuilder::new(4)
//!     .run(move |comm| {
//!         let rank = comm.rank();
//!         let data: Vec<f32> = (0..256).map(|i| (i + rank) as f32 * 0.1).collect();
//!         collectives::allreduce(comm, &data, &opts).unwrap()
//!     })
//!     .expect_clean();
//! // every rank holds the same error-bounded sum
//! assert!(report.outcomes.iter().all(|o| o.value == report.outcomes[0].value));
//! ```

pub mod auto;
pub mod ccoll;
pub mod chunks;
pub mod collectives;
pub mod config;
pub mod error_bounds;
pub mod hierarchy;
pub mod hz;
pub mod kernels;
pub mod membership;
pub mod mpi;
pub mod p2p;
pub mod pipeline;
pub mod rd;
pub mod resilient;
pub(crate) mod ring;
pub(crate) mod survivable;

pub use collectives::{CollectiveOpts, PartialResult, RecoveryPolicy};
pub use config::{calibrate_doc, calibrate_hz, paper_model, CollectiveConfig, Mode, Variant};
pub use kernels::Kernel;
pub use membership::View;
pub use pipeline::{decode_tag, TagInfo};
pub use resilient::{PayloadKind, Resilience};

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ComputeTiming, NetConfig, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        // DOC-class compressor ~5-20 GB/s, homomorphic processing much faster
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 80.0, 20.0, 40.0))
    }

    fn smooth_field(rank: usize, n: usize) -> Vec<f32> {
        // compressible data, ratio ~ 5-10 at 1e-4: the regime where
        // compression-accelerated collectives win
        (0..n).map(|i| ((i as f32) * 0.004).sin() * (1.0 + rank as f32 * 0.01)).collect()
    }

    /// The paper's headline ordering: hZCCL < C-Coll < MPI in collective
    /// latency for large, compressible messages (Figs. 9-12).
    #[test]
    fn virtual_time_ordering_hzccl_ccoll_mpi() {
        let n = 1 << 18; // 1 MiB of f32 per rank
        let nranks = 8;
        let time_of = |opts: CollectiveOpts| {
            let cluster = SimBuilder::new(nranks).timing(modeled()).net(NetConfig::default());
            let stats = cluster
                .run(|comm| {
                    let data = smooth_field(comm.rank(), n);
                    collectives::allreduce(comm, &data, &opts).expect("allreduce");
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let t_mpi = time_of(CollectiveOpts::mpi());
        let t_ccoll = time_of(CollectiveOpts::ccoll(1e-4));
        let t_hz = time_of(CollectiveOpts::hz(1e-4));
        assert!(
            t_hz < t_ccoll && t_ccoll < t_mpi,
            "expected hz < ccoll < mpi, got {t_hz:.6} {t_ccoll:.6} {t_mpi:.6}"
        );
    }

    /// hZCCL's breakdown shifts from DOC-dominated to MPI-dominated
    /// (Table VII's story).
    #[test]
    fn hzccl_reduces_doc_share_vs_ccoll() {
        let n = 1 << 16;
        let share = |opts: CollectiveOpts| {
            let cluster = SimBuilder::new(4).timing(modeled());
            let stats = cluster
                .run(|comm| {
                    let data = smooth_field(comm.rank(), n);
                    collectives::allreduce(comm, &data, &opts).expect("allreduce");
                })
                .expect_clean()
                .stats;
            let (doc, _, _) = stats.total.percentages();
            doc
        };
        let ccoll_doc = share(CollectiveOpts::ccoll(1e-4));
        let hz_doc = share(CollectiveOpts::hz(1e-4));
        assert!(
            hz_doc < ccoll_doc,
            "hZCCL DOC share {hz_doc:.1}% should undercut C-Coll {ccoll_doc:.1}%"
        );
    }

    /// Accuracy ordering: hZCCL's single quantization beats C-Coll's
    /// repeated DOC re-quantization.
    #[test]
    fn hzccl_accuracy_at_least_matches_ccoll() {
        let n = 4096;
        let nranks = 6;
        let eb = 1e-3;
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let exact: Vec<f32> = {
            let mut acc = vec![0f32; n];
            for r in 0..nranks {
                for (a, b) in acc.iter_mut().zip(smooth_field(r, n)) {
                    *a += b;
                }
            }
            acc
        };
        let max_err = |opts: CollectiveOpts| {
            let outcomes = cluster
                .run(|comm| {
                    let data = smooth_field(comm.rank(), n);
                    collectives::allreduce(comm, &data, &opts).expect("allreduce")
                })
                .expect_clean()
                .outcomes;
            outcomes[0]
                .value
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0f64, f64::max)
        };
        let e_hz = max_err(CollectiveOpts::hz(eb));
        let e_ccoll = max_err(CollectiveOpts::ccoll(eb));
        assert!(
            e_hz <= e_ccoll + eb,
            "hZCCL error {e_hz:.6} should not exceed C-Coll {e_ccoll:.6} materially"
        );
        assert!(e_hz <= nranks as f64 * eb + 1e-9);
    }
}
