//! Uncompressed ring collectives — the "Original Collectives (MPI)" baseline
//! of Table II, implementing the same large-message ring algorithms as
//! MPICH [28] that both C-Coll and hZCCL build on.

use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use hzdyn::{doc::reduce_in_place, ReduceOp};
use netsim::{Comm, OpKind};

/// Tag bases keep the message spaces of different phases disjoint.
pub(crate) const TAG_RS: u64 = 1 << 32;
pub(crate) const TAG_AG: u64 = 2 << 32;
pub(crate) const TAG_GATHER: u64 = 3 << 32;
pub(crate) const TAG_SCATTER: u64 = 4 << 32;

/// Ring `Reduce_scatter(sum)`: every rank contributes `data` (equal length
/// on all ranks) and receives the fully reduced node-chunk `rank`.
///
/// `cpt_threads` parallelizes the local reduction arithmetic (the paper's
/// multi-thread mode also threads CPT).
pub fn reduce_scatter(comm: &mut Comm, data: &[f32], cpt_threads: usize) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    if n == 1 {
        return data.to_vec();
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;

    // step s sends chunk (r - s - 1) mod n; the first send is our local copy
    let mut acc: Vec<f32> = data[chunks[(r + n - 1) % n].clone()].to_vec();
    for s in 0..n - 1 {
        let payload =
            comm.compute_labeled(OpKind::Other, acc.len() * 4, "mpi:pack", || f32_to_bytes(&acc));
        let got = comm.sendrecv(right, TAG_RS + s as u64, payload, left);
        let mut tmp =
            comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
        let local_idx = (r + 2 * n - s - 2) % n;
        let local = &data[chunks[local_idx].clone()];
        comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "mpi:reduce", || {
            reduce_in_place(&mut tmp, local, ReduceOp::Sum, cpt_threads)
        });
        acc = tmp;
    }
    acc
}

/// Ring `Allgather`: rank `r` contributes `own` (node-chunk `r` of a vector
/// of `total_len` elements) and receives the concatenation of all chunks.
pub fn allgather(comm: &mut Comm, own: &[f32], total_len: usize) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(total_len, n);
    assert_eq!(own.len(), chunks[r].len(), "own chunk has the wrong length");
    let mut out = vec![0f32; total_len];
    out[chunks[r].clone()].copy_from_slice(own);
    if n == 1 {
        return out;
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;
    for s in 0..n - 1 {
        let send_idx = (r + n - s) % n;
        let recv_idx = (r + 2 * n - s - 1) % n;
        let payload =
            comm.compute_labeled(OpKind::Other, chunks[send_idx].len() * 4, "mpi:pack", || {
                f32_to_bytes(&out[chunks[send_idx].clone()])
            });
        let got = comm.sendrecv(right, TAG_AG + s as u64, payload, left);
        let vals =
            comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
        out[chunks[recv_idx].clone()].copy_from_slice(&vals);
    }
    out
}

/// Ring `Allreduce(sum)` = `Reduce_scatter` + `Allgather` (the widely used
/// large-message algorithm [28], [8]).
pub fn allreduce(comm: &mut Comm, data: &[f32], cpt_threads: usize) -> Vec<f32> {
    let own = reduce_scatter(comm, data, cpt_threads);
    allgather(comm, &own, data.len())
}

/// Ring `Reduce(sum)` to `root`: Reduce_scatter followed by a gather of the
/// reduced chunks (MPICH's large-message Reduce). Returns `Some(full sum)`
/// on the root, `None` elsewhere.
pub fn reduce(comm: &mut Comm, data: &[f32], root: usize, cpt_threads: usize) -> Option<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let own = reduce_scatter(comm, data, cpt_threads);
    if n == 1 {
        return Some(own);
    }
    let chunks = node_chunks(data.len(), n);
    if r == root {
        let mut out = vec![0f32; data.len()];
        out[chunks[r].clone()].copy_from_slice(&own);
        for src in 0..n {
            if src == root {
                continue;
            }
            let got = comm.recv(src, TAG_GATHER + src as u64);
            let vals =
                comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
            out[chunks[src].clone()].copy_from_slice(&vals);
        }
        Some(out)
    } else {
        let payload =
            comm.compute_labeled(OpKind::Other, own.len() * 4, "mpi:pack", || f32_to_bytes(&own));
        comm.send(root, TAG_GATHER + r as u64, payload);
        None
    }
}

/// Long-message `Bcast`: scatter the root's chunks, then ring-Allgather
/// (MPICH's scatter+allgather broadcast). `data` is read on the root only;
/// every rank returns the full vector.
pub fn bcast(comm: &mut Comm, data: &[f32], root: usize, total_len: usize) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return data.to_vec();
    }
    let chunks = node_chunks(total_len, n);
    let own: Vec<f32> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        for dst in 0..n {
            if dst == root {
                continue;
            }
            let payload =
                comm.compute_labeled(OpKind::Other, chunks[dst].len() * 4, "mpi:pack", || {
                    f32_to_bytes(&data[chunks[dst].clone()])
                });
            comm.send(dst, TAG_SCATTER + dst as u64, payload);
        }
        data[chunks[root].clone()].to_vec()
    } else {
        let got = comm.recv(root, TAG_SCATTER + r as u64);
        comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got))
    };
    allgather(comm, &own, total_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Cluster, ComputeTiming, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i + 1) * (rank + 1)) as f32 * 0.25).collect()
    }

    fn expected_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn reduce_scatter_matches_direct_sum() {
        for nranks in [2usize, 3, 5, 8] {
            let n = 1000;
            let cluster = Cluster::new(nranks).with_timing(modeled());
            let outcomes = cluster.run(|comm| {
                let data = field(comm.rank(), n);
                reduce_scatter(comm, &data, 1)
            });
            let expect = expected_sum(nranks, n);
            let chunks = node_chunks(n, nranks);
            for (r, o) in outcomes.iter().enumerate() {
                assert_eq!(o.value, &expect[chunks[r].clone()], "rank {r} of {nranks}");
            }
        }
    }

    #[test]
    fn allgather_assembles_all_chunks() {
        let n = 100;
        let nranks = 4;
        let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let chunks = node_chunks(n, comm.size());
            let own = base[chunks[comm.rank()].clone()].to_vec();
            allgather(comm, &own, n)
        });
        for o in outcomes {
            assert_eq!(o.value, base);
        }
    }

    #[test]
    fn allreduce_matches_direct_sum_everywhere() {
        for nranks in [2usize, 4, 7] {
            let n = 777;
            let cluster = Cluster::new(nranks).with_timing(modeled());
            let outcomes = cluster.run(|comm| {
                let data = field(comm.rank(), n);
                allreduce(comm, &data, 1)
            });
            let expect = expected_sum(nranks, n);
            for (r, o) in outcomes.iter().enumerate() {
                assert_eq!(o.value, expect, "rank {r}");
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let cluster = Cluster::new(1).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(0, 64);
            allreduce(comm, &data, 1)
        });
        assert_eq!(outcomes[0].value, field(0, 64));
    }

    #[test]
    fn reduce_to_root_matches_direct_sum() {
        for root in [0usize, 2] {
            let nranks = 5;
            let n = 500;
            let cluster = Cluster::new(nranks).with_timing(modeled());
            let outcomes = cluster.run(|comm| {
                let data = field(comm.rank(), n);
                reduce(comm, &data, root, 1)
            });
            let expect = expected_sum(nranks, n);
            for (r, o) in outcomes.iter().enumerate() {
                if r == root {
                    assert_eq!(o.value.as_ref().unwrap(), &expect);
                } else {
                    assert!(o.value.is_none(), "rank {r} should not hold the result");
                }
            }
        }
    }

    #[test]
    fn bcast_distributes_the_root_vector() {
        let nranks = 6;
        let n = 700;
        let root = 3;
        let base = field(9, n);
        let cluster = Cluster::new(nranks).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = if comm.rank() == root { base.clone() } else { Vec::new() };
            bcast(comm, &data, root, n)
        });
        for o in outcomes {
            assert_eq!(o.value, base);
        }
    }

    #[test]
    fn single_rank_reduce_and_bcast_are_identity() {
        let cluster = Cluster::new(1).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(0, 32);
            let red = reduce(comm, &data, 0, 1).unwrap();
            let bc = bcast(comm, &data, 0, 32);
            (red, bc)
        });
        assert_eq!(outcomes[0].value.0, field(0, 32));
        assert_eq!(outcomes[0].value.1, field(0, 32));
    }

    #[test]
    fn mpi_time_dominates_for_large_messages() {
        // the uncompressed baseline should be communication-bound
        let cluster = Cluster::new(4).with_timing(modeled());
        let outcomes = cluster.run(|comm| {
            let data = field(comm.rank(), 1 << 20);
            allreduce(comm, &data, 1);
            comm.breakdown()
        });
        for o in &outcomes[1..] {
            assert!(o.value.mpi > o.value.cpt, "{:?}", o.value);
        }
    }
}
