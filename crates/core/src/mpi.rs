//! Uncompressed ring collectives — the "Original Collectives (MPI)" baseline
//! of Table II, implementing the same large-message ring algorithms as
//! MPICH [28] that both C-Coll and hZCCL build on.
//!
//! The segmented pipelined schedules (`segments > 1`, reached through
//! [`crate::collectives`]) split each ring step's chunk with
//! [`crate::pipeline::seg_ranges`] (`block_len = 1`: raw traffic has no
//! compressor blocks) and defer each segment's unpack + reduce by one slot
//! so it overlaps the next segment's wire time. For the uncompressed
//! baseline the overlappable compute (CPT + byte shuffling) is small next
//! to the full-size wire traffic, so the expected gain is modest — exactly
//! why the tuner never proposes segmented MPI plans on its own.

use crate::chunks::{bytes_to_f32, f32_to_bytes, node_chunks};
use crate::pipeline::{chunk_seg_plan, seg_tag};
use crate::resilient::{
    recv_resilient, send_resilient, sendrecv_resilient, PayloadKind, Resilience,
};
use crate::ring::ring_forward_segmented;
use hzdyn::{doc::reduce_in_place, ReduceOp};
use netsim::{Comm, OpKind};

/// MPI payloads are already raw f32 bytes, so the resilient transport never
/// needs a degradation fallback: an exhausted retry budget just resends the
/// same bytes on the reliable channel.
fn no_fallback(_: &mut Comm) -> Vec<u8> {
    unreachable!("raw payloads degrade by reliable resend, never via fallback")
}

/// Tag bases keep the message spaces of different phases disjoint.
pub(crate) const TAG_RS: u64 = 1 << 32;
pub(crate) const TAG_AG: u64 = 2 << 32;
pub(crate) const TAG_GATHER: u64 = 3 << 32;
pub(crate) const TAG_SCATTER: u64 = 4 << 32;

/// Ring `Allgather`: rank `r` contributes `own` (node-chunk `r` of a vector
/// of `total_len` elements) and receives the concatenation of all chunks.
pub fn allgather(comm: &mut Comm, own: &[f32], total_len: usize) -> Vec<f32> {
    allgather_impl(comm, own, total_len, 1, None)
}

/// `cpt_threads` parallelizes the local reduction arithmetic (the paper's
/// multi-thread mode also threads CPT). `segments <= 1` is the phase-serial
/// ring; larger counts pipeline each step per the module docs. `res` routes
/// the serial schedule's hops through the resilient transport
/// ([`crate::resilient`]); uncompressed payloads are already raw f32s, so a
/// degraded hop is just a reliable resend of the same bytes.
pub(crate) fn reduce_scatter_impl(
    comm: &mut Comm,
    data: &[f32],
    cpt_threads: usize,
    segments: usize,
    res: Option<&Resilience>,
) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(data.len(), n);
    if n == 1 {
        return data.to_vec();
    }
    let right = (r + 1) % n;
    let left = (r + n - 1) % n;

    if segments <= 1 {
        // step s sends chunk (r - s - 1) mod n; the first send is our local copy
        let mut acc: Vec<f32> = data[chunks[(r + n - 1) % n].clone()].to_vec();
        for s in 0..n - 1 {
            let payload = comm
                .compute_labeled(OpKind::Other, acc.len() * 4, "mpi:pack", || f32_to_bytes(&acc));
            let logical = payload.len();
            let (got, _) = sendrecv_resilient(
                comm,
                res,
                right,
                seg_tag(TAG_RS, s, 0),
                payload,
                PayloadKind::RawF32,
                logical,
                left,
                no_fallback,
            );
            let mut tmp =
                comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
            let local_idx = (r + 2 * n - s - 2) % n;
            let local = &data[chunks[local_idx].clone()];
            comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "mpi:reduce", || {
                reduce_in_place(&mut tmp, local, ReduceOp::Sum, cpt_threads)
            });
            acc = tmp;
        }
        return acc;
    }

    let plan = chunk_seg_plan(data.len(), n, segments, 1);
    let first = (r + n - 1) % n;
    let mut acc: Vec<Vec<f32>> = plan[first].iter().map(|rng| data[rng.clone()].to_vec()).collect();
    for s in 0..n - 1 {
        let idx = (r + 2 * n - s - 2) % n; // received chunk == local operand
        let s_send = acc.len();
        let o_ranges = &plan[idx];
        let s_recv = o_ranges.len();
        let mut outgoing: Vec<Vec<f32>> = std::mem::take(&mut acc);
        let mut got: Vec<Vec<u8>> = Vec::with_capacity(s_recv);
        let mut next: Vec<Vec<f32>> = Vec::with_capacity(s_recv);
        let consume = |comm: &mut Comm, k: usize, bytes: &[u8]| -> Vec<f32> {
            let mut tmp = comm
                .compute_labeled(OpKind::Other, bytes.len(), "mpi:unpack", || bytes_to_f32(bytes));
            let local = &data[o_ranges[k].clone()];
            comm.compute_labeled(OpKind::Cpt, tmp.len() * 4, "mpi:reduce", || {
                reduce_in_place(&mut tmp, local, ReduceOp::Sum, cpt_threads)
            });
            tmp
        };
        for k in 0..s_send.max(s_recv) {
            if k < s_send {
                let seg = std::mem::take(&mut outgoing[k]);
                let payload =
                    comm.compute_labeled(OpKind::Other, seg.len() * 4, "mpi:pack", || {
                        f32_to_bytes(&seg)
                    });
                comm.send(right, seg_tag(TAG_RS, s, k), payload);
            }
            if k < s_recv {
                // deferred unpack + reduce: hides behind segment k's wire
                if k > 0 {
                    let reduced = consume(comm, k - 1, &got[k - 1]);
                    next.push(reduced);
                }
                got.push(comm.recv(left, seg_tag(TAG_RS, s, k)));
            }
        }
        let reduced = consume(comm, s_recv - 1, &got[s_recv - 1]);
        next.push(reduced);
        acc = next;
    }
    acc.concat()
}

/// `Allgather` dispatcher (see [`reduce_scatter_impl`] for the split).
pub(crate) fn allgather_impl(
    comm: &mut Comm,
    own: &[f32],
    total_len: usize,
    segments: usize,
    res: Option<&Resilience>,
) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    let chunks = node_chunks(total_len, n);
    assert_eq!(own.len(), chunks[r].len(), "own chunk has the wrong length");
    let mut out = vec![0f32; total_len];
    out[chunks[r].clone()].copy_from_slice(own);
    if n == 1 {
        return out;
    }
    if segments <= 1 {
        let right = (r + 1) % n;
        let left = (r + n - 1) % n;
        for s in 0..n - 1 {
            let send_idx = (r + n - s) % n;
            let recv_idx = (r + 2 * n - s - 1) % n;
            let payload =
                comm.compute_labeled(OpKind::Other, chunks[send_idx].len() * 4, "mpi:pack", || {
                    f32_to_bytes(&out[chunks[send_idx].clone()])
                });
            let logical = payload.len();
            let (got, _) = sendrecv_resilient(
                comm,
                res,
                right,
                seg_tag(TAG_AG, s, 0),
                payload,
                PayloadKind::RawF32,
                logical,
                left,
                no_fallback,
            );
            let vals =
                comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
            out[chunks[recv_idx].clone()].copy_from_slice(&vals);
        }
        return out;
    }
    let plan = chunk_seg_plan(total_len, n, segments, 1);
    let own_bytes: Vec<Vec<u8>> = plan[r]
        .iter()
        .map(|rng| {
            comm.compute_labeled(OpKind::Other, rng.len() * 4, "mpi:pack", || {
                f32_to_bytes(&out[rng.clone()])
            })
        })
        .collect();
    ring_forward_segmented::<std::convert::Infallible>(
        comm,
        own_bytes,
        &plan,
        |comm, idx, k, payload| {
            let vals = comm.compute_labeled(OpKind::Other, payload.len(), "mpi:unpack", || {
                bytes_to_f32(payload)
            });
            out[plan[idx][k].clone()].copy_from_slice(&vals);
            Ok(())
        },
    )
    .unwrap_or_else(|e| match e {});
    out
}

/// `Allreduce` dispatcher: pipelined Reduce_scatter + pipelined Allgather.
pub(crate) fn allreduce_impl(
    comm: &mut Comm,
    data: &[f32],
    cpt_threads: usize,
    segments: usize,
    res: Option<&Resilience>,
) -> Vec<f32> {
    let own = reduce_scatter_impl(comm, data, cpt_threads, segments, res);
    allgather_impl(comm, &own, data.len(), segments, res)
}

/// `Reduce`-to-root dispatcher: Reduce_scatter followed by a gather of the
/// reduced chunks (MPICH's large-message Reduce).
pub(crate) fn reduce_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    cpt_threads: usize,
    segments: usize,
    res: Option<&Resilience>,
) -> Option<Vec<f32>> {
    let n = comm.size();
    let r = comm.rank();
    let own = reduce_scatter_impl(comm, data, cpt_threads, segments, res);
    if n == 1 {
        return Some(own);
    }
    let chunks = node_chunks(data.len(), n);
    if segments <= 1 {
        if r == root {
            let mut out = vec![0f32; data.len()];
            out[chunks[r].clone()].copy_from_slice(&own);
            for src in 0..n {
                if src == root {
                    continue;
                }
                let (got, _) = recv_resilient(comm, res, src, seg_tag(TAG_GATHER, src, 0));
                let vals = comm
                    .compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
                out[chunks[src].clone()].copy_from_slice(&vals);
            }
            return Some(out);
        }
        let payload =
            comm.compute_labeled(OpKind::Other, own.len() * 4, "mpi:pack", || f32_to_bytes(&own));
        let logical = payload.len();
        send_resilient(
            comm,
            res,
            root,
            seg_tag(TAG_GATHER, r, 0),
            payload,
            PayloadKind::RawF32,
            logical,
            no_fallback,
        );
        return None;
    }
    let plan = chunk_seg_plan(data.len(), n, segments, 1);
    if r == root {
        let mut out = vec![0f32; data.len()];
        out[chunks[r].clone()].copy_from_slice(&own);
        for (src, segs) in plan.iter().enumerate() {
            if src == root {
                continue;
            }
            for (k, rng) in segs.iter().enumerate() {
                let got = comm.recv(src, seg_tag(TAG_GATHER, src, k));
                let vals = comm
                    .compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
                out[rng.clone()].copy_from_slice(&vals);
            }
        }
        Some(out)
    } else {
        let base = chunks[r].start;
        for (k, rng) in plan[r].iter().enumerate() {
            let seg = &own[rng.start - base..rng.end - base];
            let payload = comm
                .compute_labeled(OpKind::Other, seg.len() * 4, "mpi:pack", || f32_to_bytes(seg));
            comm.send(root, seg_tag(TAG_GATHER, r, k), payload);
        }
        None
    }
}

/// `Bcast` dispatcher: scatter the root's chunks, then ring-Allgather.
pub(crate) fn bcast_impl(
    comm: &mut Comm,
    data: &[f32],
    root: usize,
    total_len: usize,
    segments: usize,
    res: Option<&Resilience>,
) -> Vec<f32> {
    let n = comm.size();
    let r = comm.rank();
    if n == 1 {
        assert_eq!(data.len(), total_len);
        return data.to_vec();
    }
    let chunks = node_chunks(total_len, n);
    if segments <= 1 {
        let own: Vec<f32> = if r == root {
            assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
            for dst in 0..n {
                if dst == root {
                    continue;
                }
                let payload =
                    comm.compute_labeled(OpKind::Other, chunks[dst].len() * 4, "mpi:pack", || {
                        f32_to_bytes(&data[chunks[dst].clone()])
                    });
                let logical = payload.len();
                send_resilient(
                    comm,
                    res,
                    dst,
                    seg_tag(TAG_SCATTER, dst, 0),
                    payload,
                    PayloadKind::RawF32,
                    logical,
                    no_fallback,
                );
            }
            data[chunks[root].clone()].to_vec()
        } else {
            let (got, _) = recv_resilient(comm, res, root, seg_tag(TAG_SCATTER, r, 0));
            comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got))
        };
        return allgather_impl(comm, &own, total_len, 1, res);
    }
    let plan = chunk_seg_plan(total_len, n, segments, 1);
    let own: Vec<f32> = if r == root {
        assert_eq!(data.len(), total_len, "bcast root must hold the full vector");
        for (dst, segs) in plan.iter().enumerate() {
            if dst == root {
                continue;
            }
            for (k, rng) in segs.iter().enumerate() {
                let payload =
                    comm.compute_labeled(OpKind::Other, rng.len() * 4, "mpi:pack", || {
                        f32_to_bytes(&data[rng.clone()])
                    });
                comm.send(dst, seg_tag(TAG_SCATTER, dst, k), payload);
            }
        }
        data[chunks[root].clone()].to_vec()
    } else {
        let mut own = Vec::with_capacity(chunks[r].len());
        for (k, _) in plan[r].iter().enumerate() {
            let got = comm.recv(root, seg_tag(TAG_SCATTER, r, k));
            let vals =
                comm.compute_labeled(OpKind::Other, got.len(), "mpi:unpack", || bytes_to_f32(&got));
            own.extend_from_slice(&vals);
        }
        own
    };
    allgather_impl(comm, &own, total_len, segments, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn field(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i + 1) * (rank + 1)) as f32 * 0.25).collect()
    }

    fn expected_sum(nranks: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0f32; n];
        for r in 0..nranks {
            for (a, b) in acc.iter_mut().zip(field(r, n)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn reduce_scatter_matches_direct_sum() {
        for nranks in [2usize, 3, 5, 8] {
            for segments in [1usize, 4] {
                let n = 1000;
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        reduce_scatter_impl(comm, &data, 1, segments, None)
                    })
                    .expect_clean()
                    .outcomes;
                let expect = expected_sum(nranks, n);
                let chunks = node_chunks(n, nranks);
                for (r, o) in outcomes.iter().enumerate() {
                    assert_eq!(
                        o.value,
                        &expect[chunks[r].clone()],
                        "rank {r} of {nranks} (segments={segments})"
                    );
                }
            }
        }
    }

    #[test]
    fn allgather_assembles_all_chunks() {
        let n = 100;
        let nranks = 4;
        let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
        for segments in [1usize, 3] {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let chunks = node_chunks(n, comm.size());
                    let own = base[chunks[comm.rank()].clone()].to_vec();
                    allgather_impl(comm, &own, n, segments, None)
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                assert_eq!(o.value, base);
            }
        }
    }

    #[test]
    fn allreduce_matches_direct_sum_everywhere() {
        for nranks in [2usize, 4, 7] {
            for segments in [1usize, 2] {
                let n = 777;
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        allreduce_impl(comm, &data, 1, segments, None)
                    })
                    .expect_clean()
                    .outcomes;
                let expect = expected_sum(nranks, n);
                for (r, o) in outcomes.iter().enumerate() {
                    assert_eq!(o.value, expect, "rank {r} segments={segments}");
                }
            }
        }
    }

    #[test]
    fn pipelined_allreduce_is_bit_identical_to_serial() {
        let n = 2000;
        let nranks = 5;
        let run = |segments: usize| {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce_impl(comm, &data, 1, segments, None)
                })
                .expect_clean()
                .outcomes
        };
        let serial = run(1);
        for segments in [2usize, 8, 64] {
            let piped = run(segments);
            for (a, b) in serial.iter().zip(&piped) {
                assert_eq!(a.value, b.value, "segments={segments}");
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let cluster = SimBuilder::new(1).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(0, 64);
                allreduce_impl(comm, &data, 1, 1, None)
            })
            .expect_clean()
            .outcomes;
        assert_eq!(outcomes[0].value, field(0, 64));
    }

    #[test]
    fn reduce_to_root_matches_direct_sum() {
        for root in [0usize, 2] {
            for segments in [1usize, 4] {
                let nranks = 5;
                let n = 500;
                let cluster = SimBuilder::new(nranks).timing(modeled());
                let outcomes = cluster
                    .run(|comm| {
                        let data = field(comm.rank(), n);
                        reduce_impl(comm, &data, root, 1, segments, None)
                    })
                    .expect_clean()
                    .outcomes;
                let expect = expected_sum(nranks, n);
                for (r, o) in outcomes.iter().enumerate() {
                    if r == root {
                        assert_eq!(o.value.as_ref().unwrap(), &expect);
                    } else {
                        assert!(o.value.is_none(), "rank {r} should not hold the result");
                    }
                }
            }
        }
    }

    #[test]
    fn bcast_distributes_the_root_vector() {
        let nranks = 6;
        let n = 700;
        let root = 3;
        let base = field(9, n);
        for segments in [1usize, 4] {
            let cluster = SimBuilder::new(nranks).timing(modeled());
            let outcomes = cluster
                .run(|comm| {
                    let data = if comm.rank() == root { base.clone() } else { Vec::new() };
                    bcast_impl(comm, &data, root, n, segments, None)
                })
                .expect_clean()
                .outcomes;
            for o in outcomes {
                assert_eq!(o.value, base);
            }
        }
    }

    #[test]
    fn single_rank_reduce_and_bcast_are_identity() {
        let cluster = SimBuilder::new(1).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(0, 32);
                let red = reduce_impl(comm, &data, 0, 1, 1, None).unwrap();
                let bc = bcast_impl(comm, &data, 0, 32, 1, None);
                (red, bc)
            })
            .expect_clean()
            .outcomes;
        assert_eq!(outcomes[0].value.0, field(0, 32));
        assert_eq!(outcomes[0].value.1, field(0, 32));
    }

    #[test]
    fn mpi_time_dominates_for_large_messages() {
        // the uncompressed baseline should be communication-bound
        let cluster = SimBuilder::new(4).timing(modeled());
        let outcomes = cluster
            .run(|comm| {
                let data = field(comm.rank(), 1 << 20);
                allreduce_impl(comm, &data, 1, 1, None);
                comm.breakdown()
            })
            .expect_clean()
            .outcomes;
        for o in &outcomes[1..] {
            assert!(o.value.mpi > o.value.cpt, "{:?}", o.value);
        }
    }
}
