//! # costmodel — the paper's closed-form collective cost equations
//!
//! Sec. III-C derives the compression/computation cost of ring
//! `Reduce_scatter` and `Allreduce` for C-Coll and hZCCL:
//!
//! ```text
//! T_CColl^RS = (N-1)·CPR + (N-1)·DPR + (N-1)·CPT
//! T_hZCCL^RS =     N·CPR +     1·DPR + (N-1)·HPR
//! T_CColl^AR = T_CColl^RS + CPR + (N-1)·DPR
//! T_hZCCL^AR =     N·CPR + (N-1)·DPR + (N-1)·HPR
//! ```
//!
//! where CPR/DPR/HPR/CPT are per-chunk costs. This crate evaluates those
//! equations (plus the wire terms the paper treats as common) from
//! calibrated constants, so the paper-scale configuration — 646 MB messages,
//! 512 Broadwell nodes, Omni-Path — can be *projected* on any host and
//! compared against the discrete simulation in `netsim`/`hzccl`.

use netsim::{LinkTier, NetConfig, OpKind, ThroughputModel, Topology};

/// Scenario parameters for the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Ranks (nodes) in the ring.
    pub nranks: usize,
    /// Per-rank message size in bytes (the Allreduce vector).
    pub message_bytes: usize,
    /// Compression ratio achieved on this data at the chosen error bound.
    pub ratio: f64,
    /// Network model (the same α–β+congestion law `netsim` charges).
    pub net: NetConfig,
    /// Per-kind compute throughputs.
    pub thr: ThroughputModel,
}

impl Scenario {
    fn chunk(&self) -> f64 {
        self.message_bytes as f64 / self.nranks as f64
    }

    fn wire(&self, bytes: f64) -> f64 {
        // reuse NetConfig's law; round to the nearest byte for the API
        self.net.transfer_time(bytes.round() as usize, self.nranks)
    }

    /// Serialization-only (β) wire time — the overlappable part of a
    /// transfer; α is charged per segment by the pipelined forms.
    fn ser(&self, bytes: f64) -> f64 {
        self.net.serialization_time(bytes.round() as usize, self.nranks)
    }

    /// β time of one ring round's uncompressed chunk.
    fn round_ser_raw(&self) -> f64 {
        self.ser(self.chunk())
    }

    /// β time of one ring round's compressed chunk.
    fn round_ser_compressed(&self) -> f64 {
        self.ser(self.chunk() / self.ratio)
    }

    fn cost(&self, kind: OpKind, bytes: f64) -> f64 {
        bytes / (self.thr.gbps[kind.index()] * 1e9)
    }

    /// One ring round's wire time for an uncompressed chunk.
    fn round_wire_raw(&self) -> f64 {
        self.wire(self.chunk())
    }

    /// One ring round's wire time for a compressed chunk.
    fn round_wire_compressed(&self) -> f64 {
        self.wire(self.chunk() / self.ratio)
    }
}

/// `T^RS` for the original MPI ring (no compression).
pub fn reduce_scatter_mpi(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    rounds * (s.round_wire_raw() + s.cost(OpKind::Cpt, s.chunk()))
}

/// `T^AR` for the original MPI ring.
pub fn allreduce_mpi(s: &Scenario) -> f64 {
    reduce_scatter_mpi(s) + (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^RS_CColl = (N-1)(CPR + DPR + CPT)` plus compressed wire traffic.
pub fn reduce_scatter_ccoll(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    rounds
        * (s.round_wire_compressed()
            + s.cost(OpKind::Cpr, c)
            + s.cost(OpKind::Dpr, c)
            + s.cost(OpKind::Cpt, c))
}

/// `T^AR_CColl = T^RS + [CPR + (N-1)·DPR]` plus compressed Allgather wire.
pub fn allreduce_ccoll(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    reduce_scatter_ccoll(s)
        + s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Dpr, c))
}

/// `T^RS_hZCCL = N·CPR + (N-1)·HPR + 1·DPR` plus compressed wire traffic.
pub fn reduce_scatter_hzccl(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Hpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^AR_hZCCL = N·CPR + (N-1)·HPR + N·DPR` plus two compressed ring sweeps
/// (the fused form of Sec. III-C.2; the paper's accounting lists `(N-1)·DPR`,
/// eliding the own-chunk decompression we charge explicitly).
pub fn allreduce_hzccl(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Hpr, c))
        + rounds * s.round_wire_compressed()
        + s.nranks as f64 * s.cost(OpKind::Dpr, c)
}

/// `T^AR` for recursive-doubling MPI allreduce: `ceil(log2 N)` rounds, each
/// exchanging the *full* vector and summing it, plus one extra
/// exchange+sum (fold) and one extra exchange (unfold) when `N` is not a
/// power of two (mirrors `hzccl::rd::RdPlan`).
pub fn allreduce_rd_mpi(s: &Scenario) -> f64 {
    let full = s.message_bytes as f64;
    let pow2 = prev_pow2(s.nranks);
    let rounds = pow2.trailing_zeros() as f64;
    let mut t = rounds * (s.wire(full) + s.cost(OpKind::Cpt, full));
    if pow2 != s.nranks {
        t += s.wire(full) + s.cost(OpKind::Cpt, full); // fold into the pow2 core
        t += s.wire(full); // unfold the result back out
    }
    t
}

/// `T^AR` for recursive-doubling hZCCL allreduce: compress the full vector
/// once, then `ceil(log2 N)` rounds each moving the compressed vector and
/// homomorphically summing it, and a single decompression at the end.
/// Fold/unfold extras mirror [`allreduce_rd_mpi`] but on compressed bytes.
pub fn allreduce_rd_hzccl(s: &Scenario) -> f64 {
    let full = s.message_bytes as f64;
    let wire_c = s.wire(full / s.ratio);
    let pow2 = prev_pow2(s.nranks);
    let rounds = pow2.trailing_zeros() as f64;
    let mut t = s.cost(OpKind::Cpr, full)
        + rounds * (wire_c + s.cost(OpKind::Hpr, full))
        + s.cost(OpKind::Dpr, full);
    if pow2 != s.nranks {
        t += wire_c + s.cost(OpKind::Hpr, full);
        t += wire_c;
    }
    t
}

/// `T^Reduce` for the MPI ring: reduce-scatter, then every non-root rank
/// sends its reduced chunk to the root (serialized at the root's NIC).
pub fn reduce_mpi(s: &Scenario) -> f64 {
    reduce_scatter_mpi(s) + (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^Reduce` for C-Coll: the reduce-scatter leaves decompressed chunks, so
/// each rank re-compresses its chunk, the root collects `N-1` compressed
/// chunks, and decompresses all `N` (its own included, for symmetry with the
/// simulated path).
pub fn reduce_ccoll(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    reduce_scatter_ccoll(s)
        + s.cost(OpKind::Cpr, c)
        + rounds * s.round_wire_compressed()
        + s.nranks as f64 * s.cost(OpKind::Dpr, c)
}

/// `T^Reduce` for hZCCL: the compressed reduce-scatter already ends with a
/// compressed reduced chunk per rank, so the gather to the root moves
/// compressed bytes with no re-compression; only the root decompresses
/// (all `N` chunks).
pub fn reduce_hzccl(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    let rs_compressed = s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Hpr, c));
    rs_compressed + rounds * s.round_wire_compressed() + s.nranks as f64 * s.cost(OpKind::Dpr, c)
}

/// `T^Bcast` for the MPI ring: scatter (`N-1` chunk sends from the root)
/// plus a ring allgather (`N-1` chunk rounds).
pub fn bcast_mpi(s: &Scenario) -> f64 {
    2.0 * (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^Bcast` for C-Coll and hZCCL (identical: no reduction happens, so the
/// homomorphic operator is never invoked): the root compresses all `N`
/// chunks, scatter + ring allgather move compressed bytes, and every rank
/// decompresses all `N` chunks.
pub fn bcast_compressed(s: &Scenario) -> f64 {
    let c = s.chunk();
    s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + 2.0 * (s.nranks - 1) as f64 * s.round_wire_compressed()
        + s.nranks as f64 * s.cost(OpKind::Dpr, c)
}

/// `T^Bcast` for C-Coll (see [`bcast_compressed`]).
pub fn bcast_ccoll(s: &Scenario) -> f64 {
    bcast_compressed(s)
}

/// `T^Bcast` for hZCCL (see [`bcast_compressed`]).
pub fn bcast_hzccl(s: &Scenario) -> f64 {
    bcast_compressed(s)
}

// ---------------------------------------------------------------------------
// Segmented pipelined ring forms
//
// Splitting each ring-step block into `S` segments lets the (de)compression
// / homomorphic work on segment `s` overlap the in-flight wire time of
// segment `s+1`. With `W` the β (serialization) wire time of the whole
// chunk, `C` its overlappable compute, and α the per-message injection
// latency, the classic pipelined step time is
//
// ```text
// T_step(S) = S·α + (W + C)/S + ((S-1)/S)·max(W, C)
// ```
//
// (first segment pays its full wire+compute, every later segment hides the
// smaller of the two behind the larger). At `S = 1` this is exactly the
// phase-serial `α + W + C`, so every pipelined form below reduces to its
// serial sibling at one segment. Differentiating in `S` gives the predicted
// optimum `S* = sqrt(min(W, C)/α)` — more segments amortize overlap until
// the extra α-injections outweigh the hidden time.
// ---------------------------------------------------------------------------

/// Upper bound on segment counts the model (and the tuner) will consider.
pub const MAX_SEGMENTS: usize = 64;

/// One pipelined ring-step: `S·α + (W+C)/S + ((S-1)/S)·max(W, C)` where
/// `wire_ser` is the β-only wire time of the whole block and `compute` its
/// overlappable compute. `segments = 1` degenerates to `α + W + C`.
pub fn pipelined_step(s: &Scenario, segments: usize, wire_ser: f64, compute: f64) -> f64 {
    let k = segments.clamp(1, MAX_SEGMENTS) as f64;
    k * s.net.latency_s + (wire_ser + compute) / k + (k - 1.0) / k * wire_ser.max(compute)
}

/// The integer `S` minimizing [`pipelined_step`] — the analytical
/// `sqrt(min(W, C)/α)`, rounded to whichever neighbour prices cheaper and
/// clamped to `[1, MAX_SEGMENTS]`.
pub fn optimal_segments(s: &Scenario, wire_ser: f64, compute: f64) -> usize {
    let alpha = s.net.latency_s.max(1e-12);
    let star = (wire_ser.min(compute) / alpha).sqrt();
    let lo = (star.floor() as usize).clamp(1, MAX_SEGMENTS);
    let hi = (star.ceil() as usize).clamp(1, MAX_SEGMENTS);
    if pipelined_step(s, lo, wire_ser, compute) <= pipelined_step(s, hi, wire_ser, compute) {
        lo
    } else {
        hi
    }
}

/// Predicted optimal segment count for the pipelined hZCCL ring (its
/// reduce-scatter phase: compressed wire vs just-in-time CPR + HPR).
pub fn optimal_segments_hzccl(s: &Scenario) -> usize {
    let c = s.chunk();
    optimal_segments(s, s.round_ser_compressed(), s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c))
}

/// `T^RS` for the pipelined MPI ring: each round's raw wire overlaps the
/// reduction arithmetic of the previous segment.
pub fn reduce_scatter_mpi_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    rounds * pipelined_step(s, segments, s.round_ser_raw(), s.cost(OpKind::Cpt, s.chunk()))
}

/// `T^AR` for the pipelined MPI ring (allgather has no compute to hide, so
/// its rounds stay phase-serial).
pub fn allreduce_mpi_pipelined(s: &Scenario, segments: usize) -> f64 {
    reduce_scatter_mpi_pipelined(s, segments) + (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^RS` for the pipelined C-Coll ring: the per-round DOC chain
/// (CPR + DPR + CPT) overlaps the compressed wire.
pub fn reduce_scatter_ccoll_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    let doc = s.cost(OpKind::Cpr, c) + s.cost(OpKind::Dpr, c) + s.cost(OpKind::Cpt, c);
    rounds * pipelined_step(s, segments, s.round_ser_compressed(), doc)
}

/// `T^AR` for the pipelined C-Coll ring: pipelined RS, then an allgather
/// whose per-round decompression overlaps the compressed wire.
pub fn allreduce_ccoll_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    reduce_scatter_ccoll_pipelined(s, segments)
        + s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Dpr, c))
}

/// `T^RS` for the pipelined hZCCL ring with *just-in-time* compression: one
/// upfront CPR for the chunk sent in round 0, then every round's
/// CPR (of the next local chunk) + HPR overlaps the compressed wire, and a
/// single final DPR. Same total compute as the serial form — `(N-1)` of the
/// `N` CPRs have simply moved into the overlappable per-round term.
pub fn reduce_scatter_hzccl_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    let per_round = s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c);
    s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), per_round)
        + s.cost(OpKind::Dpr, c)
}

/// `T^AR` for the pipelined fused hZCCL ring: JIT-compressed pipelined RS
/// (no RS-final DPR — fusion), then an allgather whose early per-round
/// decompression overlaps the compressed wire, plus the own-chunk DPR.
pub fn allreduce_hzccl_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    let per_round = s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c);
    s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), per_round)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Dpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^Reduce` for the pipelined MPI ring (the gather to the root moves raw
/// bytes with no compute to hide — it stays serial).
pub fn reduce_mpi_pipelined(s: &Scenario, segments: usize) -> f64 {
    reduce_scatter_mpi_pipelined(s, segments) + (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^Reduce` for pipelined C-Coll: pipelined RS, re-compression, and a
/// root-side gather whose decompression overlaps arrivals.
pub fn reduce_ccoll_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    reduce_scatter_ccoll_pipelined(s, segments)
        + s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Dpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^Reduce` for pipelined hZCCL: JIT-compressed pipelined RS (compressed
/// result, no re-compression), root-side gather with overlapped DPR.
pub fn reduce_hzccl_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    let per_round = s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c);
    s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), per_round)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Dpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^Bcast` for the pipelined compressed variants (C-Coll and hZCCL
/// coincide — no reduction): the root's per-chunk compression overlaps the
/// scatter wire, receivers' decompression overlaps the allgather wire.
pub fn bcast_compressed_pipelined(s: &Scenario, segments: usize) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    s.cost(OpKind::Cpr, c)
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Cpr, c))
        + rounds * pipelined_step(s, segments, s.round_ser_compressed(), s.cost(OpKind::Dpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^Bcast` for the pipelined MPI ring: no compute anywhere, so extra
/// segments only add α — the model will (correctly) never prefer `S > 1`.
pub fn bcast_mpi_pipelined(s: &Scenario, segments: usize) -> f64 {
    2.0 * (s.nranks - 1) as f64 * pipelined_step(s, segments, s.round_ser_raw(), 0.0)
}

// ---------------------------------------------------------------------------
// Two-tier hierarchical forms
//
// On a `nodes × ppn` topology the hierarchical Allreduce runs three phases:
//
// 1. intra-node ring reduce-scatter over the node's `ppn` ranks — `(P-1)`
//    rounds, each moving a raw `E/P` slice over the node-local link and
//    summing it (no compression: the node-local link is too fast for a
//    compressor to pay for itself);
// 2. inter-node flat Allreduce among the `nodes` same-slice leaders on the
//    `E/P` slice — exactly the flat closed form of the chosen flavour,
//    evaluated on the (oversubscribed) inter-node link with the node count
//    as its ring size. Compression only happens here, on the slow tier;
// 3. intra-node ring allgather — `(P-1)` raw `E/P` rounds back over the
//    node-local link.
//
// So `T^hier = T^intra_RS + T^flat_AR(nodes, E/P, inter) + T^intra_AG`, and
// the flavour only changes the middle term.
// ---------------------------------------------------------------------------

/// The two intra-node phases (ring reduce-scatter + ring allgather over the
/// node's `ppn` ranks on `E/ppn` slices of `slice_bytes` each) plus the
/// inner inter-node [`Scenario`] the flat closed forms are evaluated on.
fn hier_split(s: &Scenario, topo: &Topology) -> (f64, Scenario) {
    let ppn = topo.ppn.max(1);
    let slice = (s.message_bytes as f64 / ppn as f64).round().max(1.0) as usize;
    let intra = topo.link(LinkTier::Intra);
    let pop = topo.population(LinkTier::Intra);
    let rounds = (ppn - 1) as f64;
    let wire = intra.transfer_time(slice, pop);
    // RS rounds sum a raw E/P slice each; AG rounds just move one
    let intra_time = rounds * (wire + s.cost(OpKind::Cpt, slice as f64)) + rounds * wire;
    let inner = Scenario {
        nranks: topo.nodes.max(1),
        message_bytes: slice,
        net: topo.link(LinkTier::Inter),
        ..*s
    };
    (intra_time, inner)
}

/// `T^AR` of the hierarchical schedule with a plain-MPI inter-node ring.
pub fn allreduce_hier_mpi(s: &Scenario, topo: &Topology) -> f64 {
    let (intra, inner) = hier_split(s, topo);
    intra + allreduce_mpi(&inner)
}

/// `T^AR` of the hierarchical schedule with a C-Coll (DOC) inter-node ring.
pub fn allreduce_hier_ccoll(s: &Scenario, topo: &Topology) -> f64 {
    let (intra, inner) = hier_split(s, topo);
    intra + allreduce_ccoll(&inner)
}

/// `T^AR` of the hierarchical schedule with an hZCCL homomorphic inter-node
/// ring.
pub fn allreduce_hier_hzccl(s: &Scenario, topo: &Topology) -> f64 {
    let (intra, inner) = hier_split(s, topo);
    intra + allreduce_hzccl(&inner)
}

/// Largest power of two `<= n` (for the recursive-doubling fold).
fn prev_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Bisect for the message size (bytes) where `a` stops being cheaper than
/// `b`: the smallest size in `[lo, hi]` with `a(s) <= b(s)`, given that `a`
/// is slower at `lo` and faster at `hi` (a latency-vs-bandwidth crossover).
/// Returns `None` when the ordering never flips inside the bracket.
pub fn crossover_bytes(
    template: &Scenario,
    lo: usize,
    hi: usize,
    a: impl Fn(&Scenario) -> f64,
    b: impl Fn(&Scenario) -> f64,
) -> Option<usize> {
    let gap = |bytes: usize| {
        let s = Scenario { message_bytes: bytes, ..*template };
        a(&s) - b(&s)
    };
    if !(gap(lo) > 0.0 && gap(hi) <= 0.0) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if gap(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// The paper's Reduce_scatter cost difference,
/// `T_CColl - T_hZCCL = (N-1)(DPR + CPT - HPR) - CPR - DPR`
/// (compute terms only; wire terms cancel because both send compressed
/// chunks). Exposed for the identity test and for intuition in reports.
pub fn rs_compute_gap(s: &Scenario) -> f64 {
    let n = s.nranks as f64;
    let c = s.chunk();
    (n - 1.0) * (s.cost(OpKind::Dpr, c) + s.cost(OpKind::Cpt, c) - s.cost(OpKind::Hpr, c))
        - s.cost(OpKind::Cpr, c)
        - s.cost(OpKind::Dpr, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            nranks: 64,
            message_bytes: 646 << 20,
            ratio: 7.0,
            net: NetConfig::default(),
            thr: ThroughputModel::new(1.7, 3.3, 9.7, 2.8, 6.0),
        }
    }

    #[test]
    fn ordering_matches_paper_headline() {
        let s = scenario();
        let mpi = allreduce_mpi(&s);
        let ccoll = allreduce_ccoll(&s);
        let hz = allreduce_hzccl(&s);
        assert!(hz < ccoll, "hz {hz} vs ccoll {ccoll}");
        assert!(ccoll < mpi, "ccoll {ccoll} vs mpi {mpi}");
        // speedups in the paper's ballpark (1.4x-2.7x for ST)
        let speedup = mpi / hz;
        assert!((1.2..4.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn rs_difference_identity_holds() {
        // T_CColl^RS - T_hZCCL^RS must equal the paper's closed form
        let s = scenario();
        let gap = reduce_scatter_ccoll(&s) - reduce_scatter_hzccl(&s);
        assert!((gap - rs_compute_gap(&s)).abs() < 1e-9 * gap.abs().max(1.0), "{gap}");
    }

    #[test]
    fn gap_grows_linearly_with_ranks() {
        let mut s = scenario();
        s.nranks = 8;
        let g8 = rs_compute_gap(&s);
        s.nranks = 16;
        // same chunk size => double the per-round gap roughly doubles totals
        s.message_bytes *= 2;
        let g16 = rs_compute_gap(&s);
        assert!(g16 > 1.8 * g8, "{g8} -> {g16}");
    }

    #[test]
    fn hz_wins_even_with_modest_ratio() {
        let mut s = scenario();
        s.ratio = 2.0;
        assert!(allreduce_hzccl(&s) < allreduce_mpi(&s));
    }

    #[test]
    fn mpi_wins_when_compression_is_slow_and_ratio_low() {
        let mut s = scenario();
        s.ratio = 1.05;
        s.thr = ThroughputModel::new(0.05, 0.1, 0.3, 2.8, 6.0);
        assert!(allreduce_mpi(&s) < allreduce_hzccl(&s), "crossover must exist");
    }

    #[test]
    fn allreduce_exceeds_reduce_scatter() {
        let s = scenario();
        assert!(allreduce_mpi(&s) > reduce_scatter_mpi(&s));
        assert!(allreduce_ccoll(&s) > reduce_scatter_ccoll(&s));
        assert!(allreduce_hzccl(&s) > reduce_scatter_hzccl(&s));
    }

    #[test]
    fn times_are_monotone_in_message_size() {
        let mut s = scenario();
        let small = [
            reduce_scatter_mpi(&s),
            reduce_scatter_ccoll(&s),
            reduce_scatter_hzccl(&s),
            allreduce_mpi(&s),
            allreduce_ccoll(&s),
            allreduce_hzccl(&s),
        ];
        s.message_bytes *= 2;
        let big = [
            reduce_scatter_mpi(&s),
            reduce_scatter_ccoll(&s),
            reduce_scatter_hzccl(&s),
            allreduce_mpi(&s),
            allreduce_ccoll(&s),
            allreduce_hzccl(&s),
        ];
        for (a, b) in small.iter().zip(&big) {
            assert!(b > a, "doubling the message must cost more: {a} -> {b}");
        }
    }

    #[test]
    fn higher_ratio_always_helps_compressed_variants() {
        let mut s = scenario();
        let base = allreduce_hzccl(&s);
        s.ratio *= 2.0;
        assert!(allreduce_hzccl(&s) < base);
        // and never changes the MPI baseline
        let m1 = allreduce_mpi(&s);
        s.ratio *= 10.0;
        assert_eq!(allreduce_mpi(&s), m1);
    }

    /// Paper ST throughput tables per flavour (same constants as
    /// `tuner::paper_prior`, kept literal here so this crate's golden values
    /// do not depend on the tuner).
    fn mpi_thr() -> ThroughputModel {
        ThroughputModel::new(1.0, 1.0, 1.0, 50.0, 108.0)
    }
    fn ccoll_thr() -> ThroughputModel {
        ThroughputModel::new(1.7, 3.0, 3.0, 2.8, 6.0)
    }

    /// Golden regression: the analytical crossover points at N=64, paper ST
    /// calibration, ratio 7. Below ~37 KB the latency-optimal MPI recursive
    /// doubling wins; above it hZCCL's compressed ring takes over — and it
    /// overtakes MPI *earlier* than C-Coll does. Among equal-round ring
    /// variants there is no size crossover at all (identical alpha terms,
    /// strictly smaller per-byte coefficient), which the last block pins.
    #[test]
    fn golden_crossovers_at_paper_calibration() {
        let t = scenario(); // N=64, ratio 7, hz ST table

        // hz compressed ring overtakes MPI recursive doubling near 36.7 KB.
        let hz_vs_mpi_rd = crossover_bytes(&t, 64, 64 << 20, allreduce_hzccl, |s| {
            allreduce_rd_mpi(&Scenario { thr: mpi_thr(), ..*s })
        })
        .expect("hz ring vs mpi rd must cross");
        assert!(
            (36_000..37_500).contains(&hz_vs_mpi_rd),
            "hz-ring/mpi-rd crossover moved: {hz_vs_mpi_rd} bytes"
        );

        // C-Coll's ring needs ~39 KB to beat the same baseline: hZCCL's
        // homomorphic pipeline lowers the bar by ~2.4 KB.
        let ccoll_vs_mpi_rd = crossover_bytes(
            &Scenario { thr: ccoll_thr(), ..t },
            64,
            64 << 20,
            allreduce_ccoll,
            |s| allreduce_rd_mpi(&Scenario { thr: mpi_thr(), ..*s }),
        )
        .expect("ccoll ring vs mpi rd must cross");
        assert!(
            (38_500..40_000).contains(&ccoll_vs_mpi_rd),
            "ccoll-ring/mpi-rd crossover moved: {ccoll_vs_mpi_rd} bytes"
        );
        assert!(hz_vs_mpi_rd < ccoll_vs_mpi_rd, "hz must overtake MPI before ccoll does");

        // Within hZCCL, ring overtakes recursive doubling near 226 KB
        // (126 vs 6 latency rounds, but 1/64th the per-round bytes).
        let hz_ring_vs_hz_rd =
            crossover_bytes(&t, 64, 64 << 20, allreduce_hzccl, allreduce_rd_hzccl)
                .expect("hz ring vs hz rd must cross");
        assert!(
            (220_000..232_000).contains(&hz_ring_vs_hz_rd),
            "hz ring/rd crossover moved: {hz_ring_vs_hz_rd} bytes"
        );

        // Ring-vs-ring orderings are size-independent: same transfer count,
        // so the alpha terms cancel and the per-byte slope decides alone.
        for bytes in [1 << 10, 1 << 16, 1 << 22, 1 << 28] {
            let s = Scenario { message_bytes: bytes, ..t };
            let c = Scenario { thr: ccoll_thr(), ..s };
            assert!(
                allreduce_hzccl(&s) < allreduce_ccoll(&c),
                "hz ring beats ccoll ring at every size ({bytes} B)"
            );
        }

        // And the bracket guard: no flip inside the range -> None.
        assert_eq!(
            crossover_bytes(&t, 64, 64 << 20, allreduce_hzccl, |s| allreduce_ccoll(&Scenario {
                thr: ccoll_thr(),
                ..*s
            })),
            None,
            "hz already wins at the small end, so there is nothing to bisect"
        );
    }

    #[test]
    fn rd_costs_behave() {
        let s = scenario();
        // At paper scale the compressed rd beats raw rd (same alpha count,
        // smaller slope) and the ring beats both (64x smaller per-round
        // chunks dwarf the extra latency at 646 MB).
        let m = Scenario { thr: mpi_thr(), ..s };
        assert!(allreduce_rd_hzccl(&s) < allreduce_rd_mpi(&m));
        assert!(allreduce_hzccl(&s) < allreduce_rd_hzccl(&s));
        // Non-power-of-two ranks pay the fold/unfold surcharge.
        let p63 = Scenario { nranks: 63, ..s };
        let p64 = Scenario { nranks: 64, ..s };
        assert!(
            allreduce_rd_mpi(&Scenario { thr: mpi_thr(), ..p63 })
                > allreduce_rd_mpi(&Scenario { thr: mpi_thr(), ..p64 })
        );
        assert!(allreduce_rd_hzccl(&p63) > allreduce_rd_hzccl(&p64));
    }

    #[test]
    fn reduce_and_bcast_orderings() {
        let s = scenario();
        let m = Scenario { thr: mpi_thr(), ..s };
        let c = Scenario { thr: ccoll_thr(), ..s };
        // hZCCL's compressed gather (no re-compression) undercuts C-Coll.
        assert!(reduce_hzccl(&s) < reduce_ccoll(&c), "reduce: hz < ccoll");
        assert!(reduce_hzccl(&s) < reduce_mpi(&m), "reduce: hz < mpi");
        // Bcast has no reduction, so both compressed variants coincide and
        // beat raw at paper scale.
        assert_eq!(bcast_hzccl(&s), bcast_ccoll(&s));
        assert!(bcast_hzccl(&s) < bcast_mpi(&m), "bcast: compressed < raw");
        // A reduce costs at least its embedded reduce-scatter.
        assert!(reduce_mpi(&m) > reduce_scatter_mpi(&m));
        assert!(reduce_hzccl(&s) > reduce_scatter_hzccl(&s));
    }

    #[test]
    fn pipelined_forms_reduce_to_serial_at_one_segment() {
        let s = scenario();
        let m = Scenario { thr: mpi_thr(), ..s };
        let c = Scenario { thr: ccoll_thr(), ..s };
        let pairs: [(f64, f64); 10] = [
            (reduce_scatter_mpi_pipelined(&m, 1), reduce_scatter_mpi(&m)),
            (allreduce_mpi_pipelined(&m, 1), allreduce_mpi(&m)),
            (reduce_scatter_ccoll_pipelined(&c, 1), reduce_scatter_ccoll(&c)),
            (allreduce_ccoll_pipelined(&c, 1), allreduce_ccoll(&c)),
            (reduce_scatter_hzccl_pipelined(&s, 1), reduce_scatter_hzccl(&s)),
            (allreduce_hzccl_pipelined(&s, 1), allreduce_hzccl(&s)),
            (reduce_mpi_pipelined(&m, 1), reduce_mpi(&m)),
            (reduce_ccoll_pipelined(&c, 1), reduce_ccoll(&c)),
            (reduce_hzccl_pipelined(&s, 1), reduce_hzccl(&s)),
            (bcast_compressed_pipelined(&s, 1), bcast_compressed(&s)),
        ];
        for (i, (pipe, serial)) in pairs.iter().enumerate() {
            assert!(
                (pipe - serial).abs() <= 1e-12 * serial.max(1.0),
                "form {i}: pipelined(S=1) {pipe} != serial {serial}"
            );
        }
        assert!(
            (bcast_mpi_pipelined(&m, 1) - bcast_mpi(&m)).abs() <= 1e-12 * bcast_mpi(&m),
            "mpi bcast S=1"
        );
    }

    #[test]
    fn pipelining_helps_compute_bound_hz_ring_and_never_below_overlap_floor() {
        let s = scenario(); // paper-calibrated: CPR+HPR dominate the wire
        let serial = allreduce_hzccl(&s);
        let s_star = optimal_segments_hzccl(&s);
        assert!(s_star > 1, "compute-bound hz ring must want segmentation: S*={s_star}");
        let best = allreduce_hzccl_pipelined(&s, s_star);
        assert!(
            best < serial * 0.85,
            "pipelined at S*={s_star} should shave >=15%: {best} vs {serial}"
        );
        // lower bound: pipelining can hide min(W,C), never more
        let c = s.chunk();
        let rounds = (s.nranks - 1) as f64;
        let floor = serial
            - 2.0
                * rounds
                * s.round_ser_compressed().min(s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c));
        assert!(best >= floor, "{best} under the overlap floor {floor}");
    }

    #[test]
    fn optimal_segments_sits_at_the_step_minimum() {
        let s = scenario();
        let c = s.chunk();
        let (w, cpt) = (s.round_ser_compressed(), s.cost(OpKind::Cpr, c) + s.cost(OpKind::Hpr, c));
        let star = optimal_segments(&s, w, cpt);
        let t_star = pipelined_step(&s, star, w, cpt);
        for k in 1..=MAX_SEGMENTS {
            assert!(
                t_star <= pipelined_step(&s, k, w, cpt) + 1e-15,
                "S={k} undercuts the predicted optimum S*={star}"
            );
        }
        // analytical sanity: S* tracks sqrt(min(W,C)/alpha) within a step
        let analytic = (w.min(cpt) / s.net.latency_s).sqrt();
        assert!(
            (star as f64 - analytic).abs() <= 1.0 + analytic * 0.5,
            "S*={star} far from sqrt form {analytic}"
        );
    }

    #[test]
    fn excess_segments_pay_alpha_without_gain() {
        // tiny message: wire and compute are dwarfed by alpha, so more
        // segments only add injections and S*=1
        let mut s = scenario();
        s.message_bytes = 1 << 10;
        assert_eq!(optimal_segments_hzccl(&s), 1);
        assert!(allreduce_hzccl_pipelined(&s, 16) > allreduce_hzccl_pipelined(&s, 1));
        // and an mpi bcast never benefits: zero overlappable compute
        let m = Scenario { thr: mpi_thr(), ..scenario() };
        assert!(bcast_mpi_pipelined(&m, 8) > bcast_mpi_pipelined(&m, 1));
    }

    #[test]
    fn hierarchical_forms_beat_flat_on_the_paper_two_tier_fabric() {
        // 8 nodes x 8 ranks/node, 1 MiB, inter-node links 10x slower than
        // node-local: pushing 63 ring hops over the slow tier loses to
        // (7 fast raw rounds) + (7-round inter ring on a 1/8th slice) +
        // (7 fast raw rounds). The paper-regime win must clear 30%.
        let topo = Topology::paper(8, 8);
        let s = Scenario {
            nranks: topo.nranks(),
            message_bytes: 1 << 20,
            net: topo.link(LinkTier::Inter),
            ..scenario()
        };
        let flat = allreduce_hzccl(&s);
        let hier = allreduce_hier_hzccl(&s, &topo);
        assert!(hier <= 0.7 * flat, "hier {hier} vs flat {flat}: win under 30%");
        // every flavour's hierarchy beats its own flat ring on this fabric,
        // and hz leads ccoll (same codec-class summation throughput). No
        // cross-flavour claim against mpi: its 50 GB/s raw-sum table makes
        // the intra phases nearly free, so mpi-vs-compressed ordering on the
        // short 7-hop inner ring is a simulation question, not a closed-form
        // invariant.
        let m = Scenario { thr: mpi_thr(), ..s };
        let c = Scenario { thr: ccoll_thr(), ..s };
        assert!(allreduce_hier_mpi(&m, &topo) < allreduce_mpi(&m), "mpi hierarchy beats flat mpi");
        assert!(
            allreduce_hier_ccoll(&c, &topo) < allreduce_ccoll(&c),
            "ccoll hierarchy beats flat ccoll"
        );
        let ccoll = allreduce_hier_ccoll(&c, &topo);
        assert!(hier < ccoll, "hz leads ccoll in the hierarchy: {hier} vs {ccoll}");
    }

    #[test]
    fn hierarchy_degenerates_to_flat_at_one_rank_per_node() {
        // ppn = 1: no intra phases, the inter ring IS the flat ring
        let topo = Topology::paper(8, 1);
        let s = Scenario {
            nranks: 8,
            message_bytes: 1 << 20,
            net: topo.link(LinkTier::Inter),
            ..scenario()
        };
        let flat = allreduce_hzccl(&s);
        let hier = allreduce_hier_hzccl(&s, &topo);
        assert!((hier - flat).abs() <= 1e-12 * flat, "{hier} vs {flat}");
    }

    #[test]
    fn oversubscription_slows_only_the_inter_phase() {
        let base = Topology::paper(8, 8);
        let over = base.with_oversub(4.0);
        let s = Scenario {
            nranks: base.nranks(),
            message_bytes: 1 << 20,
            net: base.link(LinkTier::Inter),
            ..scenario()
        };
        assert!(allreduce_hier_hzccl(&s, &over) > allreduce_hier_hzccl(&s, &base));
        // and the fully-provisioned fabric matches the un-oversubscribed one
        assert_eq!(
            allreduce_hier_hzccl(&s, &base.with_oversub(1.0)),
            allreduce_hier_hzccl(&s, &base)
        );
    }

    #[test]
    fn hz_advantage_grows_with_node_count_at_fixed_chunk() {
        // fixed chunk size: scale message with nranks
        let gap_at = |nranks: usize| {
            let s = Scenario { nranks, message_bytes: nranks * (1 << 20), ..scenario() };
            allreduce_ccoll(&s) - allreduce_hzccl(&s)
        };
        assert!(gap_at(64) > gap_at(8));
        assert!(gap_at(512) > gap_at(64));
    }
}
