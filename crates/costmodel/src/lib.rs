//! # costmodel — the paper's closed-form collective cost equations
//!
//! Sec. III-C derives the compression/computation cost of ring
//! `Reduce_scatter` and `Allreduce` for C-Coll and hZCCL:
//!
//! ```text
//! T_CColl^RS = (N-1)·CPR + (N-1)·DPR + (N-1)·CPT
//! T_hZCCL^RS =     N·CPR +     1·DPR + (N-1)·HPR
//! T_CColl^AR = T_CColl^RS + CPR + (N-1)·DPR
//! T_hZCCL^AR =     N·CPR + (N-1)·DPR + (N-1)·HPR
//! ```
//!
//! where CPR/DPR/HPR/CPT are per-chunk costs. This crate evaluates those
//! equations (plus the wire terms the paper treats as common) from
//! calibrated constants, so the paper-scale configuration — 646 MB messages,
//! 512 Broadwell nodes, Omni-Path — can be *projected* on any host and
//! compared against the discrete simulation in `netsim`/`hzccl`.

use netsim::{NetConfig, OpKind, ThroughputModel};

/// Scenario parameters for the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Ranks (nodes) in the ring.
    pub nranks: usize,
    /// Per-rank message size in bytes (the Allreduce vector).
    pub message_bytes: usize,
    /// Compression ratio achieved on this data at the chosen error bound.
    pub ratio: f64,
    /// Network model (the same α–β+congestion law `netsim` charges).
    pub net: NetConfig,
    /// Per-kind compute throughputs.
    pub thr: ThroughputModel,
}

impl Scenario {
    fn chunk(&self) -> f64 {
        self.message_bytes as f64 / self.nranks as f64
    }

    fn wire(&self, bytes: f64) -> f64 {
        // reuse NetConfig's law; round to the nearest byte for the API
        self.net.transfer_time(bytes.round() as usize, self.nranks)
    }

    fn cost(&self, kind: OpKind, bytes: f64) -> f64 {
        bytes / (self.thr.gbps[kind.index()] * 1e9)
    }

    /// One ring round's wire time for an uncompressed chunk.
    fn round_wire_raw(&self) -> f64 {
        self.wire(self.chunk())
    }

    /// One ring round's wire time for a compressed chunk.
    fn round_wire_compressed(&self) -> f64 {
        self.wire(self.chunk() / self.ratio)
    }
}

/// `T^RS` for the original MPI ring (no compression).
pub fn reduce_scatter_mpi(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    rounds * (s.round_wire_raw() + s.cost(OpKind::Cpt, s.chunk()))
}

/// `T^AR` for the original MPI ring.
pub fn allreduce_mpi(s: &Scenario) -> f64 {
    reduce_scatter_mpi(s) + (s.nranks - 1) as f64 * s.round_wire_raw()
}

/// `T^RS_CColl = (N-1)(CPR + DPR + CPT)` plus compressed wire traffic.
pub fn reduce_scatter_ccoll(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    rounds
        * (s.round_wire_compressed()
            + s.cost(OpKind::Cpr, c)
            + s.cost(OpKind::Dpr, c)
            + s.cost(OpKind::Cpt, c))
}

/// `T^AR_CColl = T^RS + [CPR + (N-1)·DPR]` plus compressed Allgather wire.
pub fn allreduce_ccoll(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    reduce_scatter_ccoll(s)
        + s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Dpr, c))
}

/// `T^RS_hZCCL = N·CPR + (N-1)·HPR + 1·DPR` plus compressed wire traffic.
pub fn reduce_scatter_hzccl(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Hpr, c))
        + s.cost(OpKind::Dpr, c)
}

/// `T^AR_hZCCL = N·CPR + (N-1)·HPR + N·DPR` plus two compressed ring sweeps
/// (the fused form of Sec. III-C.2; the paper's accounting lists `(N-1)·DPR`,
/// eliding the own-chunk decompression we charge explicitly).
pub fn allreduce_hzccl(s: &Scenario) -> f64 {
    let rounds = (s.nranks - 1) as f64;
    let c = s.chunk();
    s.nranks as f64 * s.cost(OpKind::Cpr, c)
        + rounds * (s.round_wire_compressed() + s.cost(OpKind::Hpr, c))
        + rounds * s.round_wire_compressed()
        + s.nranks as f64 * s.cost(OpKind::Dpr, c)
}

/// The paper's Reduce_scatter cost difference,
/// `T_CColl - T_hZCCL = (N-1)(DPR + CPT - HPR) - CPR - DPR`
/// (compute terms only; wire terms cancel because both send compressed
/// chunks). Exposed for the identity test and for intuition in reports.
pub fn rs_compute_gap(s: &Scenario) -> f64 {
    let n = s.nranks as f64;
    let c = s.chunk();
    (n - 1.0) * (s.cost(OpKind::Dpr, c) + s.cost(OpKind::Cpt, c) - s.cost(OpKind::Hpr, c))
        - s.cost(OpKind::Cpr, c)
        - s.cost(OpKind::Dpr, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            nranks: 64,
            message_bytes: 646 << 20,
            ratio: 7.0,
            net: NetConfig::default(),
            thr: ThroughputModel::new(1.7, 3.3, 9.7, 2.8, 6.0),
        }
    }

    #[test]
    fn ordering_matches_paper_headline() {
        let s = scenario();
        let mpi = allreduce_mpi(&s);
        let ccoll = allreduce_ccoll(&s);
        let hz = allreduce_hzccl(&s);
        assert!(hz < ccoll, "hz {hz} vs ccoll {ccoll}");
        assert!(ccoll < mpi, "ccoll {ccoll} vs mpi {mpi}");
        // speedups in the paper's ballpark (1.4x-2.7x for ST)
        let speedup = mpi / hz;
        assert!((1.2..4.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn rs_difference_identity_holds() {
        // T_CColl^RS - T_hZCCL^RS must equal the paper's closed form
        let s = scenario();
        let gap = reduce_scatter_ccoll(&s) - reduce_scatter_hzccl(&s);
        assert!((gap - rs_compute_gap(&s)).abs() < 1e-9 * gap.abs().max(1.0), "{gap}");
    }

    #[test]
    fn gap_grows_linearly_with_ranks() {
        let mut s = scenario();
        s.nranks = 8;
        let g8 = rs_compute_gap(&s);
        s.nranks = 16;
        // same chunk size => double the per-round gap roughly doubles totals
        s.message_bytes *= 2;
        let g16 = rs_compute_gap(&s);
        assert!(g16 > 1.8 * g8, "{g8} -> {g16}");
    }

    #[test]
    fn hz_wins_even_with_modest_ratio() {
        let mut s = scenario();
        s.ratio = 2.0;
        assert!(allreduce_hzccl(&s) < allreduce_mpi(&s));
    }

    #[test]
    fn mpi_wins_when_compression_is_slow_and_ratio_low() {
        let mut s = scenario();
        s.ratio = 1.05;
        s.thr = ThroughputModel::new(0.05, 0.1, 0.3, 2.8, 6.0);
        assert!(allreduce_mpi(&s) < allreduce_hzccl(&s), "crossover must exist");
    }

    #[test]
    fn allreduce_exceeds_reduce_scatter() {
        let s = scenario();
        assert!(allreduce_mpi(&s) > reduce_scatter_mpi(&s));
        assert!(allreduce_ccoll(&s) > reduce_scatter_ccoll(&s));
        assert!(allreduce_hzccl(&s) > reduce_scatter_hzccl(&s));
    }

    #[test]
    fn times_are_monotone_in_message_size() {
        let mut s = scenario();
        let small = [
            reduce_scatter_mpi(&s),
            reduce_scatter_ccoll(&s),
            reduce_scatter_hzccl(&s),
            allreduce_mpi(&s),
            allreduce_ccoll(&s),
            allreduce_hzccl(&s),
        ];
        s.message_bytes *= 2;
        let big = [
            reduce_scatter_mpi(&s),
            reduce_scatter_ccoll(&s),
            reduce_scatter_hzccl(&s),
            allreduce_mpi(&s),
            allreduce_ccoll(&s),
            allreduce_hzccl(&s),
        ];
        for (a, b) in small.iter().zip(&big) {
            assert!(b > a, "doubling the message must cost more: {a} -> {b}");
        }
    }

    #[test]
    fn higher_ratio_always_helps_compressed_variants() {
        let mut s = scenario();
        let base = allreduce_hzccl(&s);
        s.ratio *= 2.0;
        assert!(allreduce_hzccl(&s) < base);
        // and never changes the MPI baseline
        let m1 = allreduce_mpi(&s);
        s.ratio *= 10.0;
        assert_eq!(allreduce_mpi(&s), m1);
    }

    #[test]
    fn hz_advantage_grows_with_node_count_at_fixed_chunk() {
        // fixed chunk size: scale message with nranks
        let gap_at = |nranks: usize| {
            let s = Scenario { nranks, message_bytes: nranks * (1 << 20), ..scenario() };
            allreduce_ccoll(&s) - allreduce_hzccl(&s)
        };
        assert!(gap_at(64) > gap_at(8));
        assert!(gap_at(512) > gap_at(64));
    }
}
