//! The simulated cluster: spawns one thread per rank and runs a closure on
//! each, returning per-rank results with virtual-time accounting and
//! (optionally) flight-recorder traces.

use crate::breakdown::Breakdown;
use crate::comm::Comm;
use crate::config::{ComputeTiming, NetConfig};
use crate::faults::FaultPlan;
use crate::topology::Topology;
use crate::trace::{RankTrace, TraceConfig};
use std::collections::HashMap;
use std::sync::mpsc::channel;

/// Result of one rank's participation in a [`Cluster::run`].
#[derive(Debug, Clone)]
pub struct RankOutcome<R> {
    /// Whatever the rank closure returned.
    pub value: R,
    /// The rank's final virtual clock, in seconds.
    pub elapsed: f64,
    /// The rank's cost breakdown.
    pub breakdown: Breakdown,
    /// The rank's flight-recorder event stream — `Some` iff the cluster was
    /// configured with [`Cluster::with_trace`].
    pub trace: Option<RankTrace>,
}

/// A rank thread that died, with the panic message it died with.
///
/// [`Cluster::try_run`] surfaces these instead of re-panicking, so chaos
/// tests can assert *which* rank crashed and *why* (e.g. a fault-plan crash
/// vs. a cascading crash notice on a peer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPanic {
    /// The rank whose thread panicked.
    pub rank: usize,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case: `panic!`/`assert!` messages); a description otherwise.
    pub message: String,
}

/// Aggregate view over all ranks of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Completion time of the slowest rank (the collective's latency).
    pub makespan: f64,
    /// Sum of all ranks' breakdowns.
    pub total: Breakdown,
}

/// A virtual cluster configuration: rank count, network model, compute
/// timing mode, and optional flight-recorder tracing.
#[derive(Debug, Clone)]
pub struct Cluster {
    nprocs: usize,
    net: NetConfig,
    timing: ComputeTiming,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
    topology: Option<Topology>,
}

impl Cluster {
    /// A cluster of `nprocs` ranks with the default (Omni-Path-class)
    /// network, measured compute timing, and tracing disabled.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "cluster needs at least one rank");
        Cluster {
            nprocs,
            net: NetConfig::default(),
            timing: ComputeTiming::Measured,
            trace: None,
            faults: None,
            topology: None,
        }
    }

    /// Replace the network model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replace the compute-timing mode.
    pub fn with_timing(mut self, timing: ComputeTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Enable the flight recorder: every rank records structured
    /// [`crate::trace::Event`]s on the virtual timeline, returned in
    /// [`RankOutcome::trace`]. Off by default; when off, the per-event
    /// record sites compile down to a `None` branch with zero allocation.
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Shape the fabric: every `(src, dst)` pair resolves to its
    /// [`crate::topology::LinkTier`]'s link model instead of the flat
    /// [`NetConfig`], and sends are stamped with the tier they crossed.
    /// `topology.nranks()` must equal the cluster's rank count. Off by
    /// default; without a topology every send takes the exact flat-model
    /// arithmetic path, so untopologized runs stay bit-identical.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert!(
            topology.nranks() == self.nprocs,
            "topology is {} ranks ({}), cluster has {}",
            topology.nranks(),
            topology.describe(),
            self.nprocs
        );
        self.topology = Some(topology);
        self
    }

    /// Inject faults: every rank's sends and compute run under the plan's
    /// seeded, deterministic chaos decisions (drops, corruption, jitter,
    /// stragglers, crashes). Off by default; `None`-equivalent plans (no
    /// probabilities set) leave behaviour bit-identical to a fault-free run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Run `f` on every rank concurrently; returns per-rank outcomes in rank
    /// order. Real data flows through real channels; time is virtual.
    ///
    /// Panics if any rank thread panicked, naming the rank and propagating
    /// its panic message. Use [`Cluster::try_run`] to observe crashes as
    /// values instead (chaos tests with `FaultPlan::with_crash`).
    pub fn run<F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        self.try_run(f)
            .into_iter()
            .map(|r| match r {
                Ok(o) => o,
                Err(RankPanic { rank, message }) => panic!("rank {rank} panicked: {message}"),
            })
            .collect()
    }

    /// [`Cluster::run`] that reports each rank's fate instead of unwinding:
    /// `Ok(outcome)` for ranks that completed, `Err(RankPanic)` with the
    /// rank id and panic message for ranks that died (a crash injected by
    /// the fault plan, or a cascading failure on a peer).
    pub fn try_run<F, R>(&self, f: F) -> Vec<Result<RankOutcome<R>, RankPanic>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let n = self.nprocs;
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut outcomes: Vec<Option<Result<RankOutcome<R>, RankPanic>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let txs = txs.clone();
                    let f = &f;
                    let (net, timing, trace) = (self.net, self.timing, self.trace);
                    let topology = self.topology;
                    let faults = self.faults.clone();
                    s.spawn(move || {
                        let compute_scale =
                            faults.as_ref().map_or(1.0, |p| p.straggler_scale(rank));
                        let mut comm = Comm {
                            rank,
                            size: n,
                            clock: 0.0,
                            breakdown: Breakdown::default(),
                            net,
                            timing,
                            txs,
                            rx,
                            pending: HashMap::new(),
                            trace: trace.map(|cfg| Vec::with_capacity(cfg.capacity)),
                            topology,
                            faults,
                            send_seq: vec![0; n],
                            sends_total: 0,
                            compute_scale,
                        };
                        // catch the closure's panic so the dying rank can
                        // poison its peers' inboxes first — a rank blocked
                        // on a recv involving this rank must unwind too, or
                        // the scope would deadlock on join
                        let value =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)))
                                .unwrap_or_else(|payload| {
                                    comm.broadcast_crash_notice();
                                    std::panic::resume_unwind(payload);
                                });
                        RankOutcome {
                            value,
                            elapsed: comm.elapsed(),
                            breakdown: comm.breakdown(),
                            trace: comm.trace.take().map(|events| RankTrace { rank, events }),
                        }
                    })
                })
                .collect();
            drop(txs); // ranks hold their own clones
            for (rank, (slot, h)) in outcomes.iter_mut().zip(handles).enumerate() {
                *slot = Some(h.join().map_err(|payload| {
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&'static str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "(non-string panic payload)".to_string());
                    RankPanic { rank, message }
                }));
            }
        });
        outcomes.into_iter().map(|o| o.expect("rank outcome missing")).collect()
    }

    /// Run and reduce to aggregate statistics (plus the per-rank values).
    pub fn run_stats<F, R>(&self, f: F) -> (Vec<R>, RunStats)
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let outcomes = self.run(f);
        let mut makespan = 0f64;
        let mut total = Breakdown::default();
        let mut values = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            makespan = makespan.max(o.elapsed);
            total += o.breakdown;
            values.push(o.value);
        }
        (values, RunStats { makespan, total })
    }
}
