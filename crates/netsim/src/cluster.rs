//! Deprecated predecessor of [`crate::sim`]: the `Cluster` builder and its
//! `run`/`try_run`/`run_stats` trio, kept for one release as thin wrappers
//! over [`SimBuilder`]/[`RunReport`].
//!
//! Migration (see DESIGN.md for the full table):
//!
//! | old | new |
//! |---|---|
//! | `Cluster::new(n).with_*(..)` | `SimBuilder::new(n).net/timing/trace/faults/topology(..)` |
//! | `cluster.run(f)` | `sim.run(f).expect_clean().outcomes` |
//! | `cluster.try_run(f)` | `sim.run(f)` → [`RunReport::fates`] / `.panics` |
//! | `cluster.run_stats(f)` | `sim.run(f)` → `.stats` + [`RunReport::values`] |
//! | `RankOutcome::trace` | [`RunReport::traces`] / [`RunReport::trace_of`] |

#![allow(deprecated)]

use crate::comm::Comm;
use crate::config::{ComputeTiming, NetConfig};
use crate::faults::FaultPlan;
use crate::sim::SimBuilder;
use crate::topology::Topology;
use crate::trace::TraceConfig;

pub use crate::sim::{RankOutcome, RankPanic, RunStats};

/// Deprecated builder for a virtual cluster; use [`SimBuilder`].
#[deprecated(since = "0.2.0", note = "use SimBuilder, which returns a typed RunReport")]
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: SimBuilder,
}

impl Cluster {
    /// See [`SimBuilder::new`].
    #[deprecated(since = "0.2.0", note = "use SimBuilder::new")]
    pub fn new(nprocs: usize) -> Self {
        Cluster { inner: SimBuilder::new(nprocs) }
    }

    /// See [`SimBuilder::net`].
    #[deprecated(since = "0.2.0", note = "use SimBuilder::net")]
    pub fn with_net(self, net: NetConfig) -> Self {
        Cluster { inner: self.inner.net(net) }
    }

    /// See [`SimBuilder::timing`].
    #[deprecated(since = "0.2.0", note = "use SimBuilder::timing")]
    pub fn with_timing(self, timing: ComputeTiming) -> Self {
        Cluster { inner: self.inner.timing(timing) }
    }

    /// See [`SimBuilder::trace`]. Traces are now returned in
    /// [`crate::RunReport::traces`], so the old `run` entry points below
    /// cannot surface them — migrate to [`SimBuilder::run`] to read traces.
    #[deprecated(since = "0.2.0", note = "use SimBuilder::trace + RunReport::traces")]
    pub fn with_trace(self, cfg: TraceConfig) -> Self {
        Cluster { inner: self.inner.trace(cfg) }
    }

    /// See [`SimBuilder::topology`].
    #[deprecated(since = "0.2.0", note = "use SimBuilder::topology")]
    pub fn with_topology(self, topology: Topology) -> Self {
        Cluster { inner: self.inner.topology(topology) }
    }

    /// See [`SimBuilder::faults`].
    #[deprecated(since = "0.2.0", note = "use SimBuilder::faults")]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        Cluster { inner: self.inner.faults(plan) }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    /// See [`SimBuilder::run`] — the report's `outcomes`, with the old
    /// panic-on-crash contract.
    #[deprecated(since = "0.2.0", note = "use SimBuilder::run and RunReport::outcomes")]
    pub fn run<F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        self.inner.run(f).expect_clean().outcomes
    }

    /// See [`SimBuilder::run`] — the report's [`crate::RunReport::fates`],
    /// owned.
    #[deprecated(since = "0.2.0", note = "use SimBuilder::run and RunReport::fates/panics")]
    pub fn try_run<F, R>(&self, f: F) -> Vec<Result<RankOutcome<R>, RankPanic>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let report = self.inner.run(f);
        let n = self.inner.nprocs();
        let mut fates: Vec<Option<Result<RankOutcome<R>, RankPanic>>> =
            (0..n).map(|_| None).collect();
        for p in report.panics {
            let rank = p.rank;
            fates[rank] = Some(Err(p));
        }
        for o in report.outcomes {
            let rank = o.rank;
            fates[rank] = Some(Ok(o));
        }
        fates.into_iter().map(|s| s.expect("every rank has a fate")).collect()
    }

    /// See [`SimBuilder::run`] — the report's `stats` plus its values.
    #[deprecated(since = "0.2.0", note = "use SimBuilder::run and RunReport::{values, stats}")]
    pub fn run_stats<F, R>(&self, f: F) -> (Vec<R>, RunStats)
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let report = self.inner.run(f);
        let stats = report.stats;
        (report.values(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OpKind, ThroughputModel};

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(10.0, 20.0, 100.0, 30.0, 50.0))
    }

    /// The deprecated wrappers must keep their original shapes and
    /// semantics while delegating to the new engine-backed builder.
    #[test]
    fn deprecated_cluster_wrappers_still_work() {
        let cluster = Cluster::new(4).with_timing(modeled()).with_net(NetConfig::default());
        assert_eq!(cluster.nprocs(), 4);
        let outcomes = cluster.run(|comm| {
            let n = comm.size();
            let got = comm.sendrecv(
                (comm.rank() + 1) % n,
                0,
                vec![comm.rank() as u8],
                (comm.rank() + n - 1) % n,
            );
            got[0] as usize
        });
        assert_eq!(outcomes.len(), 4);
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(o.rank, rank);
            assert_eq!(o.value, (rank + 3) % 4);
        }

        let (values, stats) = cluster.run_stats(|comm| {
            comm.compute(OpKind::Cpt, 30_000_000_000, || ());
        });
        assert_eq!(values.len(), 4);
        assert!((stats.makespan - 1.0).abs() < 1e-9);

        let fates = cluster.try_run(|comm| {
            if comm.rank() == 2 {
                panic!("wrapper crash");
            }
            comm.rank()
        });
        assert_eq!(fates.len(), 4);
        let p = fates[2].as_ref().unwrap_err();
        assert_eq!((p.rank, p.message.as_str()), (2, "wrapper crash"));
        for rank in [0, 1, 3] {
            let o = fates[rank].as_ref().expect("survivor");
            assert_eq!((o.rank, o.value), (rank, rank));
        }
    }
}
