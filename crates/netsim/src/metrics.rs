//! Metrics registry: counters and log2-bucketed histograms with a stable
//! Prometheus-style text rendering and a hand-rolled JSON snapshot (no
//! `serde` — tier-1 builds run without registry access).
//!
//! [`Registry::record_report`] derives the standard metric set of a
//! simulated collective from a [`RunReport`]: per-[`OpKind`] virtual-second
//! totals (always available from the outcomes' [`Breakdown`]s) plus — when
//! the run was traced via [`crate::SimBuilder::trace`] — message wire-size,
//! per-step achieved-compression-ratio and recv-wait distributions.

use crate::config::OpKind;
use crate::json::Json;
use crate::sim::RunReport;
use crate::trace::Event;
use std::collections::BTreeMap;

/// A log2-bucketed histogram over non-negative `f64` observations.
///
/// Bucket `e` counts observations `v` with `2^(e-1) < v <= 2^e`; zeros fall
/// into a dedicated underflow bucket. Exponents are clamped to ±64, which
/// comfortably covers byte sizes, ratios and second-scale waits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Observations `<= 0` (wait times of already-arrived messages, mostly).
    pub zeros: u64,
    /// `exponent -> count` for positive observations.
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v <= 0.0 {
            self.zeros += 1;
        } else {
            let e = (v.log2().ceil() as i32).clamp(-64, 64);
            *self.buckets.entry(e).or_insert(0) += 1;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        for (e, c) in &other.buckets {
            *self.buckets.entry(*e).or_insert(0) += c;
        }
    }

    /// Estimate the `p`-quantile (`p` in `[0, 1]`) by linear interpolation
    /// inside the owning log2 bucket: bucket `e` holds observations in
    /// `(2^(e-1), 2^e]`, so the estimate walks the cumulative counts to the
    /// target rank `p·count` and interpolates between the bucket bounds.
    /// Exact for the zeros bucket; within one octave otherwise — the right
    /// fidelity for "did p99 regress" questions. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = p.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = self.zeros as f64;
        if target <= seen {
            return 0.0;
        }
        for (e, c) in &self.buckets {
            let next = seen + *c as f64;
            if target <= next {
                let lo = if *e <= -64 { 0.0 } else { 2f64.powi(e - 1) };
                let hi = 2f64.powi(*e);
                let frac = (target - seen) / *c as f64;
                return lo + (hi - lo) * frac;
            }
            seen = next;
        }
        // numerically unreachable unless rounding pushed the target past the
        // last bucket; clamp to its upper bound
        self.buckets.keys().next_back().map_or(0.0, |e| 2f64.powi(*e))
    }

    /// Cumulative `(le, count)` pairs in Prometheus order (upper bound of
    /// each occupied power-of-two bucket, then `+Inf` = `count`).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut running = self.zeros;
        if self.zeros > 0 {
            out.push((0.0, running));
        }
        for (e, c) in &self.buckets {
            running += c;
            out.push((2f64.powi(*e), running));
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// Counters (integer + float) and histograms under stable, fully-qualified
/// names (labels are folded into the name, e.g. `hz_op_seconds{kind="cpr"}`),
/// so both renderings are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Increment an integer counter.
    pub fn inc(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Add to a float accumulator (rendered as an untyped gauge).
    pub fn add(&mut self, name: &str, v: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Raise a float gauge to `v` if `v` is larger (used for makespans).
    pub fn set_max(&mut self, name: &str, v: f64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if v > *slot {
            *slot = v;
        }
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Histogram accessor (for assertions and table rendering).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counter accessor.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge accessor.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one (counters/gauges add,
    /// histograms merge; `*_makespan_*` gauges take the max).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            if k.contains("makespan") {
                self.set_max(k, *v);
            } else {
                *self.gauges.entry(k.clone()).or_insert(0.0) += v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Derive the standard collective-run metric set from a run's report.
    ///
    /// Works untraced (per-kind totals from the outcomes' breakdowns only);
    /// with traces it additionally fills the message/ratio/wait histograms
    /// and per-label compute totals. Crashed ranks contribute nothing — the
    /// report only carries survivors' outcomes and traces.
    pub fn record_report<R>(&mut self, report: &RunReport<R>) {
        self.inc("hz_runs_total", 1);
        self.inc("hz_ranks_total", (report.outcomes.len() + report.panics.len()) as u64);
        for o in &report.outcomes {
            let b = &o.breakdown;
            for (kind, secs) in [
                (OpKind::Cpr, b.cpr),
                (OpKind::Dpr, b.dpr),
                (OpKind::Hpr, b.hpr),
                (OpKind::Cpt, b.cpt),
                (OpKind::Other, b.other),
            ] {
                self.add(&format!("hz_op_seconds{{kind=\"{}\"}}", kind.name()), secs);
            }
            self.add("hz_mpi_wait_seconds", b.mpi);
            // per-rank end-to-end latency distribution (p50/p99 source)
            self.observe("hz_collective_latency_seconds", o.elapsed);
        }
        for trace in &report.traces {
            for ev in &trace.events {
                match *ev {
                    Event::Send { wire_bytes, logical_bytes, .. } => {
                        self.inc("hz_messages_total", 1);
                        self.inc("hz_wire_bytes_total", wire_bytes as u64);
                        self.inc("hz_logical_bytes_total", logical_bytes as u64);
                        self.observe("hz_message_wire_bytes", wire_bytes as f64);
                        if wire_bytes > 0 && logical_bytes > 0 {
                            self.observe(
                                "hz_step_compression_ratio",
                                logical_bytes as f64 / wire_bytes as f64,
                            );
                        }
                    }
                    Event::Recv { wait_secs, .. } => {
                        self.observe("hz_recv_wait_seconds", wait_secs);
                    }
                    Event::Compute { kind, secs, label, bytes, .. } => {
                        // zero-duration resilience/recovery markers become
                        // dedicated counters and gauges; everything else is a
                        // per-label timing
                        match label {
                            "res:retransmit" => self.inc("hz_retransmits_total", 1),
                            "res:timeout" => self.inc("hz_timeouts_total", 1),
                            "res:degraded-segment" => self.inc("hz_degraded_segments_total", 1),
                            "rec:recovery" => self.inc("hz_recoveries_total", 1),
                            "rec:epoch" => self.set_max("hz_epochs", bytes as f64),
                            "rec:survivors" => self.set_max("hz_survivors", bytes as f64),
                            _ => {
                                let label = if label.is_empty() { kind.name() } else { label };
                                self.add(&format!("hz_step_seconds{{label=\"{label}\"}}"), secs);
                                self.inc(&format!("hz_step_calls_total{{label=\"{label}\"}}"), 1);
                            }
                        }
                    }
                    Event::Fault { kind, .. } => {
                        self.inc(
                            &format!("hz_faults_injected_total{{kind=\"{}\"}}", kind.name()),
                            1,
                        );
                    }
                }
            }
        }
        self.set_max("hz_makespan_seconds", report.stats.makespan);
    }

    /// Render in Prometheus text exposition style. Deterministic: names are
    /// sorted, histogram buckets ascend, floats use shortest round-trip
    /// formatting.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let base = base_name(name);
            out.push_str(&format!("# TYPE {base} histogram\n"));
            for (le, count) in h.cumulative() {
                let le = if le.is_infinite() { "+Inf".to_string() } else { format!("{le}") };
                out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {count}\n"));
            }
            out.push_str(&format!("{base}_sum {}\n", h.sum));
            out.push_str(&format!("{base}_count {}\n", h.count));
            // interpolated quantiles as derived samples (see
            // [`Histogram::quantile`] for the fidelity contract)
            out.push_str(&format!("{base}_p50 {}\n", h.quantile(0.5)));
            out.push_str(&format!("{base}_p99 {}\n", h.quantile(0.99)));
        }
        out
    }

    /// Snapshot as a JSON document (hand-rolled writer; see [`crate::json`]).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
        );
        let gauges =
            Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect());
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = h
                        .cumulative()
                        .into_iter()
                        .map(|(le, count)| {
                            Json::obj(vec![
                                (
                                    "le",
                                    if le.is_infinite() {
                                        Json::Str("+Inf".into())
                                    } else {
                                        Json::Num(le)
                                    },
                                ),
                                ("count", Json::Num(count as f64)),
                            ])
                        })
                        .collect();
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::Num(h.count as f64)),
                            ("sum", Json::Num(h.sum)),
                            ("p50", Json::Num(h.quantile(0.5))),
                            ("p99", Json::Num(h.quantile(0.99))),
                            ("buckets", Json::Arr(buckets)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![("counters", counters), ("gauges", gauges), ("histograms", histograms)])
    }

    /// Human-oriented one-histogram bar chart (used by `hzc sim --metrics`).
    pub fn render_histogram_ascii(&self, name: &str, title: &str) -> String {
        let Some(h) = self.histograms.get(name) else {
            return format!("{title}: (no observations)\n");
        };
        let mut out =
            format!("{title} (n={}, mean={:.3}):\n", h.count, h.sum / h.count.max(1) as f64);
        let mut prev = 0u64;
        let per_bucket: Vec<(f64, u64)> = h
            .cumulative()
            .into_iter()
            .map(|(le, cum)| {
                let in_bucket = cum - prev;
                prev = cum;
                (le, in_bucket)
            })
            .collect();
        let max = per_bucket.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        for (le, in_bucket) in per_bucket {
            if in_bucket == 0 {
                continue;
            }
            let bar = "#".repeat(((in_bucket * 40).div_ceil(max) as usize).min(40));
            let le = if le.is_infinite() { "+Inf".into() } else { format!("{le:.6}") };
            out.push_str(&format!("  le {le:>14} : {in_bucket:>6} {bar}\n"));
        }
        out
    }
}

/// Strip a `{label="..."}` suffix for `# TYPE` lines.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 2.0, 3.0, 1024.0, 0.4] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.zeros, 1);
        // 1.0 -> e=0, 2.0 -> e=1, 3.0 -> e=2, 1024 -> e=10, 0.4 -> e=-1
        assert_eq!(h.buckets.get(&0), Some(&1));
        assert_eq!(h.buckets.get(&1), Some(&1));
        assert_eq!(h.buckets.get(&2), Some(&1));
        assert_eq!(h.buckets.get(&10), Some(&1));
        assert_eq!(h.buckets.get(&-1), Some(&1));
        let cum = h.cumulative();
        assert_eq!(cum.last().unwrap().1, 6);
    }

    /// Edge-bucket regression: the bucket invariant is `2^(e-1) < v <= 2^e`,
    /// so exact powers of two must land in their *own* bucket (not the next
    /// one up), `2^k + 1` must spill into bucket `k+1`, zero stays out of the
    /// exponent map entirely, and extremes clamp to ±64 instead of wrapping.
    #[test]
    fn histogram_edge_buckets_zero_one_and_power_boundaries() {
        let mut h = Histogram::default();
        h.observe(0.0);
        assert_eq!(h.zeros, 1, "zero is the underflow bucket, not an exponent");
        assert!(h.buckets.is_empty(), "zero must not create an exponent bucket");

        h.observe(1.0);
        assert_eq!(h.buckets.get(&0), Some(&1), "1 = 2^0 belongs to bucket 0");

        for k in [1i32, 3, 10, 20] {
            let pow = 2f64.powi(k);
            let mut hk = Histogram::default();
            hk.observe(pow);
            hk.observe(pow + 1.0);
            assert_eq!(hk.buckets.get(&k), Some(&1), "2^{k} stays in bucket {k}");
            assert_eq!(hk.buckets.get(&(k + 1)), Some(&1), "2^{k}+1 spills into bucket {}", k + 1);
        }

        // Clamping: denormal-small and astronomically-large observations fold
        // into the ±64 edge buckets rather than overflowing the exponent.
        let mut hc = Histogram::default();
        hc.observe(1e-300);
        hc.observe(1e300);
        assert_eq!(hc.buckets.get(&-64), Some(&1));
        assert_eq!(hc.buckets.get(&64), Some(&1));

        // Cumulative rendering stays monotone and terminates at +Inf = count.
        let cum = hc.cumulative();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1), "{cum:?}");
        assert_eq!(cum.last().unwrap(), &(f64::INFINITY, 2));
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0.0);

        let mut h = Histogram::default();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v); // one observation per bucket e = 0..=3
        }
        // rank 2 of 4 lands on the upper edge of bucket e=1
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 8.0).abs() < 1e-12);
        // monotone in p
        let q: Vec<f64> = (0..=10).map(|i| h.quantile(i as f64 / 10.0)).collect();
        assert!(q.windows(2).all(|w| w[0] <= w[1]), "{q:?}");

        // zeros dominate the median but not the tail
        let mut z = Histogram::default();
        z.observe(0.0);
        z.observe(0.0);
        z.observe(4.0);
        assert_eq!(z.quantile(0.5), 0.0);
        assert!(z.quantile(0.99) > 2.0);
    }

    #[test]
    fn merge_accumulates_and_makespan_takes_max() {
        let mut a = Registry::new();
        a.inc("c", 1);
        a.add("g", 0.5);
        a.set_max("hz_makespan_seconds", 2.0);
        a.observe("h", 8.0);
        let mut b = Registry::new();
        b.inc("c", 2);
        b.add("g", 0.25);
        b.set_max("hz_makespan_seconds", 1.0);
        b.observe("h", 16.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(0.75));
        assert_eq!(a.gauge("hz_makespan_seconds"), Some(2.0));
        assert_eq!(a.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn json_snapshot_parses_back() {
        let mut r = Registry::new();
        r.inc("hz_messages_total", 7);
        r.add("hz_mpi_wait_seconds", 0.125);
        r.observe("hz_message_wire_bytes", 100.0);
        r.observe("hz_message_wire_bytes", 3000.0);
        let doc = Json::parse(&r.to_json().render()).expect("snapshot parses");
        assert_eq!(
            doc.get("counters").unwrap().get("hz_messages_total").unwrap().as_f64(),
            Some(7.0)
        );
        let h = doc.get("histograms").unwrap().get("hz_message_wire_bytes").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(h.get("sum").unwrap().as_f64(), Some(3100.0));
    }

    #[test]
    fn prometheus_rendering_strips_labels_in_type_lines() {
        let mut r = Registry::new();
        r.add("hz_op_seconds{kind=\"cpr\"}", 1.5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hz_op_seconds gauge"), "{text}");
        assert!(text.contains("hz_op_seconds{kind=\"cpr\"} 1.5"), "{text}");
    }
}
