//! Causal critical-path analysis over flight-recorder traces.
//!
//! The simulator executes every rank as-soon-as-possible on the virtual
//! clock, so a traced run *is* the earliest-time schedule of its causal
//! constraint graph. This module reconstructs that graph from the recorded
//! event streams —
//!
//! * **program edges**: event `i+1` of a rank cannot complete before event
//!   `i` plus its own intrinsic cost (compute seconds, send injection α;
//!   zero for receives and fault annotations), and
//! * **wire edges**: a `Recv` cannot complete before its matching `Send`
//!   plus the message's serialization time (and any injected jitter), with
//!   matching replayed exactly as [`crate::Comm`] delivers: FIFO per
//!   `(src, dst, tag)` triple —
//!
//! then walks the *binding* predecessor chain backwards from the globally
//! last completion. Because per-rank timelines are gapless (each event
//! starts where the previous one ended) the walk tiles `[0, makespan]`
//! exactly, so the attributed spans sum to the end-to-end virtual time —
//! the invariant `tests/critpath.rs` pins to 1e-9 relative on every
//! collective flavour.
//!
//! A backward (latest-completion) pass over the same DAG yields per-event
//! **slack**: how far an event could slip without growing the makespan.
//! Zero-slack events are critical; small-slack events are the "almost
//! critical" stragglers `hzc sim --slack` surfaces.

use crate::config::{NetConfig, OpKind};
use crate::faults::FaultKind;
use crate::topology::{LinkTier, Topology};
use crate::trace::{Event, RankTrace};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Where one span of the critical path was spent.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// A compute charge (kernel or analytic advance) on `rank`.
    Compute {
        /// Rank that ran the kernel.
        rank: usize,
        /// Cost bucket of the charge.
        kind: OpKind,
        /// Pipeline-step label (empty if the call site did not label).
        label: &'static str,
    },
    /// Sender-side injection overhead (the α of the network model).
    Inject {
        /// Sending rank.
        rank: usize,
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Fabric tier the message crossed.
        tier: LinkTier,
    },
    /// Time on the wire between a matched send/recv pair.
    Wire {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Serialization (β) share of the span.
        ser_secs: f64,
        /// Fault-injected jitter share of the span.
        jitter_secs: f64,
        /// Fabric tier the message crossed.
        tier: LinkTier,
    },
    /// A blocking wait whose send could not be matched (e.g. the sender's
    /// trace is missing after a crash); healthy runs never produce this.
    Wait {
        /// Receiving rank.
        rank: usize,
        /// Source rank it blocked on.
        from: usize,
        /// Message tag.
        tag: u64,
    },
}

/// One contiguous span `[start, end]` of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathElement {
    /// What the span was spent on.
    pub span: SpanKind,
    /// Span start (virtual seconds).
    pub start: f64,
    /// Span end (virtual seconds).
    pub end: f64,
}

impl PathElement {
    /// Span length in seconds.
    pub fn secs(&self) -> f64 {
        self.end - self.start
    }
}

/// Critical-path time attributed to the paper's cost buckets plus the
/// network-model components the per-rank [`crate::Breakdown`] cannot see.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathBuckets {
    /// Compression (CPR) on the path.
    pub cpr: f64,
    /// Decompression (DPR) on the path.
    pub dpr: f64,
    /// Homomorphic processing (HPR) on the path.
    pub hpr: f64,
    /// Raw reduction arithmetic (CPT) on the path.
    pub cpt: f64,
    /// Other compute (packing, size sync) on the path, *excluding* the
    /// resilient-transport charges split out below.
    pub other: f64,
    /// Sender-side injection overhead (per-message latency α).
    pub alpha: f64,
    /// Wire serialization (the β·bytes share of matched messages).
    pub wire: f64,
    /// Fault-injected delivery jitter on the path.
    pub jitter: f64,
    /// Resilient-transport charges (`res:*`-labelled timeouts/backoffs).
    pub resilience: f64,
    /// Crash-recovery charges (`rec:*`-labelled abort/agreement/repair work
    /// of the survivable collective layer).
    pub recovery: f64,
    /// Waits that could not be attributed to a matched send (crashed or
    /// truncated traces only; ~0 on healthy runs).
    pub blocked_wait: f64,
}

impl PathBuckets {
    /// Sum over every bucket — equals the path length.
    pub fn total(&self) -> f64 {
        self.cpr
            + self.dpr
            + self.hpr
            + self.cpt
            + self.other
            + self.alpha
            + self.wire
            + self.jitter
            + self.resilience
            + self.recovery
            + self.blocked_wait
    }

    /// `(name, seconds)` pairs in stable rendering order.
    pub fn entries(&self) -> [(&'static str, f64); 11] {
        [
            ("cpr", self.cpr),
            ("dpr", self.dpr),
            ("hpr", self.hpr),
            ("cpt", self.cpt),
            ("other", self.other),
            ("alpha", self.alpha),
            ("wire", self.wire),
            ("jitter", self.jitter),
            ("resilience", self.resilience),
            ("recovery", self.recovery),
            ("blocked_wait", self.blocked_wait),
        ]
    }
}

/// Critical-path time spent under one message tag (α + wire + jitter of the
/// path's hops with that tag). Decode tags with `hzccl::pipeline::decode_tag`
/// to fold these into per-phase/step/segment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TagTime {
    /// Injection overhead of on-path sends with this tag.
    pub alpha: f64,
    /// Serialization time of on-path hops with this tag.
    pub wire: f64,
    /// Injected jitter of on-path hops with this tag.
    pub jitter: f64,
    /// Number of on-path wire hops with this tag.
    pub hops: u64,
}

impl TagTime {
    /// Total seconds under this tag.
    pub fn total(&self) -> f64 {
        self.alpha + self.wire + self.jitter
    }
}

/// Critical-path communication time spent on one fabric tier (α + wire +
/// jitter of the path's hops that crossed that tier). Indexed by
/// [`LinkTier::index`]; untopologized runs put everything under
/// [`LinkTier::Flat`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierTime {
    /// Injection overhead of on-path sends on this tier.
    pub alpha: f64,
    /// Serialization time of on-path hops on this tier.
    pub wire: f64,
    /// Injected jitter of on-path hops on this tier.
    pub jitter: f64,
    /// Number of on-path wire hops on this tier.
    pub hops: u64,
}

impl TierTime {
    /// Total seconds on this tier.
    pub fn total(&self) -> f64 {
        self.alpha + self.wire + self.jitter
    }
}

/// The result of [`CriticalPath::analyze`]: the end-to-end binding chain of
/// a traced run, its composition, and per-event slack.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Path length — the sum of the attributed spans. Equals `makespan` to
    /// floating-point accumulation accuracy.
    pub length: f64,
    /// Latest event completion across all ranks (end-to-end virtual time).
    pub makespan: f64,
    /// Path composition by cost bucket; sums to `length`.
    pub buckets: PathBuckets,
    /// Path seconds attributed to each rank (wire spans go to the
    /// *receiving* rank); indexed by rank, sums to `length`.
    pub per_rank: Vec<f64>,
    /// Communication path seconds per message tag.
    pub by_tag: BTreeMap<u64, TagTime>,
    /// Communication path seconds per fabric tier, indexed by
    /// [`LinkTier::index`]. Untopologized runs land entirely on
    /// [`LinkTier::Flat`].
    pub by_tier: [TierTime; LinkTier::COUNT],
    /// Compute path seconds per step label (unlabelled charges fall under
    /// their bucket name).
    pub by_label: BTreeMap<String, f64>,
    /// The path itself, chronological, tiling `[0, length]`.
    pub elements: Vec<PathElement>,
    /// `slack[rank][event]`: seconds event `event` of `rank` could slip
    /// without growing the makespan (0 = critical).
    pub slack: Vec<Vec<f64>>,
}

/// Flat event index: `flat[rank] + idx`.
struct Flat {
    offsets: Vec<usize>,
    total: usize,
}

impl Flat {
    fn new(traces: &[RankTrace]) -> Flat {
        let mut offsets = Vec::with_capacity(traces.len());
        let mut total = 0usize;
        for t in traces {
            offsets.push(total);
            total += t.events.len();
        }
        Flat { offsets, total }
    }

    fn id(&self, rank: usize, idx: usize) -> usize {
        self.offsets[rank] + idx
    }

    /// Inverse of [`Flat::id`].
    fn locate(&self, flat: usize) -> (usize, usize) {
        // offsets is sorted; partition_point finds the owning rank
        let rank = self.offsets.partition_point(|&o| o <= flat) - 1;
        (rank, flat - self.offsets[rank])
    }
}

impl CriticalPath {
    /// Analyze the traces of one complete run (every rank's trace, in rank
    /// order — the same `Vec` [`crate::RunReport::traces`] carries).
    ///
    /// `net` must be the [`NetConfig`] the run used: non-binding wire edges
    /// (messages that arrived before their receive was posted) leave no
    /// timing residue in the trace, so their weight is recomputed from the
    /// model for the slack pass.
    pub fn analyze(traces: &[RankTrace], net: &NetConfig) -> CriticalPath {
        CriticalPath::analyze_with_topology(traces, net, None)
    }

    /// [`CriticalPath::analyze`] for a topologized run: `topology` must be
    /// the [`Topology`] the cluster ran with, so non-binding wire edges are
    /// recomputed from the *tier's* link model (the tier itself is read off
    /// each recorded send). With `None` this is exactly `analyze`.
    pub fn analyze_with_topology(
        traces: &[RankTrace],
        net: &NetConfig,
        topology: Option<&Topology>,
    ) -> CriticalPath {
        let nranks = traces.len();
        let flat = Flat::new(traces);
        let mut end = vec![0.0f64; flat.total];
        // intrinsic per-event cost along the program edge (compute seconds,
        // send injection; zero for recv/fault)
        let mut intrinsic = vec![0.0f64; flat.total];
        let mut jitter = vec![0.0f64; flat.total]; // per send event
        let mut tier_of = vec![LinkTier::Flat; flat.total]; // per send event
        let mut wire_pred: Vec<Option<usize>> = vec![None; flat.total]; // recv -> send
        let mut wire_succ: Vec<Option<usize>> = vec![None; flat.total]; // send -> recv
        let mut wire_w = vec![0.0f64; flat.total]; // weight of recv's wire edge

        // -- pass 1: per-event facts + send queues in sender order ----------
        let mut sends: HashMap<(usize, usize, u64), VecDeque<usize>> = HashMap::new();
        for (rank, t) in traces.iter().enumerate() {
            let mut last_send: HashMap<(usize, u64), usize> = HashMap::new();
            for (idx, ev) in t.events.iter().enumerate() {
                let f = flat.id(rank, idx);
                end[f] = ev.end();
                match *ev {
                    Event::Compute { secs, .. } => intrinsic[f] = secs,
                    Event::Send { to, tag, inject_secs, tier, .. } => {
                        intrinsic[f] = inject_secs;
                        tier_of[f] = tier;
                        sends.entry((rank, to, tag)).or_default().push_back(f);
                        last_send.insert((to, tag), f);
                    }
                    Event::Recv { .. } => {}
                    Event::Fault { kind: FaultKind::Jitter, to, tag, detail, .. } => {
                        // recorded immediately after its send; credit the
                        // extra delay to that send's wire edge
                        if let Some(&s) = last_send.get(&(to, tag)) {
                            jitter[s] += detail;
                        }
                    }
                    Event::Fault { .. } => {}
                }
            }
        }

        // -- pass 2: FIFO send->recv matching (replays channel order) -------
        for (rank, t) in traces.iter().enumerate() {
            for (idx, ev) in t.events.iter().enumerate() {
                let Event::Recv { from, tag, wire_bytes, wait_secs, .. } = *ev else { continue };
                let f = flat.id(rank, idx);
                let Some(s) = sends.get_mut(&(from, rank, tag)).and_then(|q| q.pop_front()) else {
                    continue; // truncated trace set (e.g. crashed sender)
                };
                wire_pred[f] = Some(s);
                wire_succ[s] = Some(f);
                // A blocking receive observed the arrival directly; an
                // already-arrived message leaves no residue, so recompute
                // its wire time from the model (the *tier's* model when the
                // run was topologized).
                wire_w[f] = if wait_secs > 0.0 {
                    end[f] - end[s]
                } else {
                    let ser = match topology {
                        Some(topo) => topo
                            .link(tier_of[s])
                            .serialization_time(wire_bytes, topo.population(tier_of[s])),
                        None => net.serialization_time(wire_bytes, nranks),
                    };
                    ser + jitter[s]
                };
            }
        }

        let makespan = end.iter().cloned().fold(0.0, f64::max);

        // -- backward pass: latest completion times => slack ----------------
        // Process the reversed DAG in topological order (Kahn): a node is
        // ready once all its successors (program + wire) settled.
        let mut latest = vec![f64::INFINITY; flat.total];
        let mut remaining = vec![0u32; flat.total];
        for (rank, t) in traces.iter().enumerate() {
            for idx in 0..t.events.len() {
                let f = flat.id(rank, idx);
                let mut succs = 0u32;
                if idx + 1 < t.events.len() {
                    succs += 1;
                }
                if wire_succ[f].is_some() {
                    succs += 1;
                }
                remaining[f] = succs;
            }
        }
        let mut queue: VecDeque<usize> = (0..flat.total).filter(|&f| remaining[f] == 0).collect();
        while let Some(f) = queue.pop_front() {
            if latest[f].is_infinite() {
                latest[f] = makespan;
            }
            let (_, idx) = flat.locate(f);
            // program predecessor: constrained by this event's intrinsic cost
            if idx > 0 {
                let p = f - 1;
                let bound = latest[f] - intrinsic[f];
                if bound < latest[p] {
                    latest[p] = bound;
                }
                remaining[p] -= 1;
                if remaining[p] == 0 {
                    queue.push_back(p);
                }
            }
            // wire predecessor of a matched receive
            if let Some(s) = wire_pred[f] {
                let bound = latest[f] - wire_w[f];
                if bound < latest[s] {
                    latest[s] = bound;
                }
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        let slack: Vec<Vec<f64>> = traces
            .iter()
            .enumerate()
            .map(|(rank, t)| {
                (0..t.events.len())
                    .map(|idx| {
                        let f = flat.id(rank, idx);
                        (latest[f] - end[f]).max(0.0)
                    })
                    .collect()
            })
            .collect();

        // -- binding-predecessor walk from the last completion --------------
        let mut elements: Vec<PathElement> = Vec::new();
        let mut cur: Option<usize> = (0..flat.total).filter(|&f| end[f] >= makespan).min(); // deterministic tie-break: lowest rank, earliest event
        let mut steps = 0usize;
        while let Some(f) = cur {
            steps += 1;
            assert!(steps <= flat.total + 1, "critical-path walk failed to terminate");
            let (rank, idx) = flat.locate(f);
            let ev = &traces[rank].events[idx];
            if let Event::Recv { from, tag, wait_secs, .. } = *ev {
                if wait_secs > 0.0 {
                    // binding wire edge (or an unmatchable wait)
                    if let Some(s) = wire_pred[f] {
                        let (srank, sidx) = flat.locate(s);
                        let Event::Send { .. } = traces[srank].events[sidx] else {
                            unreachable!("wire predecessor is always a send")
                        };
                        let span = ev.end() - end[s];
                        let j = jitter[s].min(span).max(0.0);
                        elements.push(PathElement {
                            span: SpanKind::Wire {
                                from: srank,
                                to: rank,
                                tag,
                                ser_secs: span - j,
                                jitter_secs: j,
                                tier: tier_of[s],
                            },
                            start: end[s],
                            end: ev.end(),
                        });
                        cur = Some(s);
                        continue;
                    }
                    elements.push(PathElement {
                        span: SpanKind::Wait { rank, from, tag },
                        start: ev.start(),
                        end: ev.end(),
                    });
                }
            } else if ev.duration() > 0.0 {
                let span = match *ev {
                    Event::Compute { kind, label, .. } => SpanKind::Compute { rank, kind, label },
                    Event::Send { to, tag, tier, .. } => SpanKind::Inject { rank, to, tag, tier },
                    _ => unreachable!("recv handled above; faults have zero duration"),
                };
                elements.push(PathElement { span, start: ev.start(), end: ev.end() });
            }
            cur = if idx > 0 { Some(f - 1) } else { None };
        }
        elements.reverse();

        // -- attribution -----------------------------------------------------
        let mut buckets = PathBuckets::default();
        let mut per_rank = vec![0.0f64; nranks];
        let mut by_tag: BTreeMap<u64, TagTime> = BTreeMap::new();
        let mut by_tier = [TierTime::default(); LinkTier::COUNT];
        let mut by_label: BTreeMap<String, f64> = BTreeMap::new();
        let mut length = 0.0f64;
        for el in &elements {
            let secs = el.secs();
            length += secs;
            match el.span {
                SpanKind::Compute { rank, kind, label } => {
                    if label.starts_with("res:") {
                        buckets.resilience += secs;
                    } else if label.starts_with("rec:") {
                        buckets.recovery += secs;
                    } else {
                        match kind {
                            OpKind::Cpr => buckets.cpr += secs,
                            OpKind::Dpr => buckets.dpr += secs,
                            OpKind::Hpr => buckets.hpr += secs,
                            OpKind::Cpt => buckets.cpt += secs,
                            OpKind::Other => buckets.other += secs,
                        }
                    }
                    let key = if label.is_empty() { kind.name() } else { label };
                    *by_label.entry(key.to_string()).or_insert(0.0) += secs;
                    per_rank[rank] += secs;
                }
                SpanKind::Inject { rank, tag, tier, .. } => {
                    buckets.alpha += secs;
                    per_rank[rank] += secs;
                    by_tag.entry(tag).or_default().alpha += secs;
                    by_tier[tier.index()].alpha += secs;
                }
                SpanKind::Wire { to, tag, ser_secs, jitter_secs, tier, .. } => {
                    buckets.wire += ser_secs;
                    buckets.jitter += jitter_secs;
                    per_rank[to] += secs;
                    let t = by_tag.entry(tag).or_default();
                    t.wire += ser_secs;
                    t.jitter += jitter_secs;
                    t.hops += 1;
                    let tt = &mut by_tier[tier.index()];
                    tt.wire += ser_secs;
                    tt.jitter += jitter_secs;
                    tt.hops += 1;
                }
                SpanKind::Wait { rank, .. } => {
                    buckets.blocked_wait += secs;
                    per_rank[rank] += secs;
                }
            }
        }
        // Residual gap before the path's first element (possible only with a
        // truncated trace set): account it so the tiling invariant holds.
        if let Some(first) = elements.first() {
            if first.start > 0.0 {
                buckets.blocked_wait += first.start;
                length += first.start;
            }
        }

        CriticalPath {
            length,
            makespan,
            buckets,
            per_rank,
            by_tag,
            by_tier,
            by_label,
            elements,
            slack,
        }
    }

    /// Fraction of events (across all ranks) whose slack is below
    /// `threshold` seconds — the "how contended is this schedule" scalar.
    pub fn critical_fraction(&self, threshold: f64) -> f64 {
        let total: usize = self.slack.iter().map(|s| s.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let near: usize = self.slack.iter().flatten().filter(|&&s| s <= threshold).count();
        near as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ComputeTiming, ThroughputModel};
    use crate::sim::SimBuilder;
    use crate::trace::TraceConfig;

    fn net() -> NetConfig {
        NetConfig { latency_s: 1e-5, bandwidth_gbps: 10.0, congestion: 0.0 }
    }

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
    }

    fn traced_sim(nranks: usize) -> SimBuilder {
        SimBuilder::new(nranks).net(net()).timing(modeled()).trace(TraceConfig::default())
    }

    /// Two ranks, one message: the path must be sender compute -> inject ->
    /// wire -> receiver compute, and its length the receiver's end time.
    #[test]
    fn two_rank_chain_is_fully_attributed() {
        let traces = traced_sim(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.compute(OpKind::Cpr, 1_000_000, || ());
                    comm.send(1, 7, vec![0u8; 1000]);
                } else {
                    let got = comm.recv(0, 7);
                    comm.compute(OpKind::Cpt, got.len(), || ());
                }
            })
            .expect_clean()
            .traces;
        let cp = CriticalPath::analyze(&traces, &net());
        assert!((cp.length - cp.makespan).abs() <= 1e-12 * cp.makespan.max(1.0));
        assert!((cp.buckets.total() - cp.length).abs() <= 1e-12);
        // composition: cpr + alpha + wire + cpt, nothing else
        assert!(cp.buckets.cpr > 0.0 && cp.buckets.cpt > 0.0);
        assert!((cp.buckets.alpha - 1e-5).abs() < 1e-12, "{:?}", cp.buckets);
        let ser = net().serialization_time(1000, 2);
        assert!((cp.buckets.wire - ser).abs() < 1e-12, "{:?}", cp.buckets);
        assert_eq!(cp.buckets.blocked_wait, 0.0);
        assert_eq!(cp.buckets.jitter, 0.0);
        assert_eq!(cp.by_tag.get(&7).map(|t| t.hops), Some(1));
        // chronological tiling
        for w in cp.elements.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12, "{:?}", cp.elements);
        }
        // last event of the receiver is critical; the idle sender's tail has
        // slack
        assert!(cp.slack[1].last().copied().unwrap().abs() < 1e-12);
    }

    /// The straggler's compute chain is the path; the fast rank shows slack.
    #[test]
    fn slack_exposes_the_non_critical_rank() {
        let traces = traced_sim(2)
            .run(|comm| {
                let bytes = if comm.rank() == 0 { 50_000_000 } else { 1_000 };
                comm.compute(OpKind::Cpt, bytes, || ());
                // exchange so both ranks finish together in causal terms
                let peer = 1 - comm.rank();
                comm.send(peer, 1, vec![0u8; 8]);
                comm.recv(peer, 1);
            })
            .expect_clean()
            .traces;
        let cp = CriticalPath::analyze(&traces, &net());
        assert!((cp.length - cp.makespan).abs() <= 1e-9 * cp.makespan);
        // rank 0's big compute dominates the path
        assert!(cp.per_rank[0] > cp.per_rank[1], "{:?}", cp.per_rank);
        // rank 1's compute has large slack; rank 0's has none
        assert!(cp.slack[1][0] > 1e-4, "slack {:?}", cp.slack);
        assert!(cp.slack[0][0] < 1e-12, "slack {:?}", cp.slack);
        assert!(cp.critical_fraction(1e-12) < 1.0);
    }

    /// Injected jitter must surface as its own bucket, not as wire time.
    #[test]
    fn jitter_is_attributed_separately() {
        let jitter_s = 5e-4;
        let traces = traced_sim(2)
            .faults(crate::faults::FaultPlan::new(3).with_jitter(jitter_s))
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 2, vec![0u8; 4096]);
                } else {
                    comm.recv(0, 2);
                }
            })
            .expect_clean()
            .traces;
        let cp = CriticalPath::analyze(&traces, &net());
        assert!((cp.length - cp.makespan).abs() <= 1e-12);
        assert!(cp.buckets.jitter > 0.0, "{:?}", cp.buckets);
        let ser = net().serialization_time(4096, 2);
        assert!((cp.buckets.wire - ser).abs() < 1e-12, "{:?}", cp.buckets);
    }

    /// A receive whose sender is missing from the trace set falls back to
    /// `blocked_wait` instead of panicking or dropping time.
    #[test]
    fn unmatched_recv_degrades_to_blocked_wait() {
        let mut traces = traced_sim(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 9, vec![0u8; 100_000]);
                } else {
                    comm.recv(0, 9);
                }
            })
            .expect_clean()
            .traces;
        traces[0].events.clear(); // simulate a lost sender trace
        let cp = CriticalPath::analyze(&traces, &net());
        assert!(cp.buckets.blocked_wait > 0.0, "{:?}", cp.buckets);
        assert!((cp.buckets.total() - cp.length).abs() <= 1e-12);
    }

    /// On a two-tier run the path's communication time must split cleanly
    /// into intra- and inter-node tier buckets that tile the α/wire/jitter
    /// totals.
    #[test]
    fn tier_attribution_splits_intra_and_inter_wire() {
        use crate::topology::{LinkTier, Topology};
        let topo = Topology::paper(2, 2);
        // causal chain 0 -> 1 (intra) -> 2 (inter): both hops bind the path
        let traces = SimBuilder::new(4)
            .topology(topo)
            .timing(modeled())
            .trace(TraceConfig::default())
            .run(|comm| match comm.rank() {
                0 => comm.send(1, 1, vec![0u8; 100_000]),
                1 => {
                    let got = comm.recv(0, 1);
                    comm.send(2, 2, got);
                }
                2 => drop(comm.recv(1, 2)),
                _ => {}
            })
            .expect_clean()
            .traces;
        let cp = CriticalPath::analyze_with_topology(&traces, &NetConfig::default(), Some(&topo));
        assert!((cp.length - cp.makespan).abs() <= 1e-9 * cp.makespan.max(1.0));
        let intra = cp.by_tier[LinkTier::Intra.index()];
        let inter = cp.by_tier[LinkTier::Inter.index()];
        assert_eq!((intra.hops, inter.hops), (1, 1), "{:?}", cp.by_tier);
        assert!(inter.total() > intra.total(), "{:?}", cp.by_tier);
        assert_eq!(cp.by_tier[LinkTier::Flat.index()], TierTime::default());
        let comm_total = cp.buckets.alpha + cp.buckets.wire + cp.buckets.jitter;
        let tier_total: f64 = cp.by_tier.iter().map(|t| t.total()).sum();
        assert!((comm_total - tier_total).abs() < 1e-12, "tiers tile the comm share");
        // the exact tier wire times come from the tier links
        for (tt, tier) in [(intra, LinkTier::Intra), (inter, LinkTier::Inter)] {
            let link = topo.link(tier);
            let ser = link.serialization_time(100_000, topo.population(tier));
            assert!((tt.wire - ser).abs() < 1e-12, "{tier:?}: {} vs {ser}", tt.wire);
            assert!((tt.alpha - link.latency_s).abs() < 1e-12);
        }
    }

    /// Untopologized analysis lands every hop on the flat tier and is
    /// unchanged by the new per-tier table.
    #[test]
    fn flat_runs_attribute_to_the_flat_tier() {
        use crate::topology::LinkTier;
        let traces = traced_sim(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, vec![0u8; 1000]);
                } else {
                    comm.recv(0, 7);
                }
            })
            .expect_clean()
            .traces;
        let cp = CriticalPath::analyze(&traces, &net());
        let flat = cp.by_tier[LinkTier::Flat.index()];
        assert_eq!(flat.hops, 1);
        assert!((flat.total() - (cp.buckets.alpha + cp.buckets.wire)).abs() < 1e-12);
        assert_eq!(cp.by_tier[LinkTier::Intra.index()], TierTime::default());
        assert_eq!(cp.by_tier[LinkTier::Inter.index()], TierTime::default());
    }

    #[test]
    fn empty_traces_yield_an_empty_path() {
        let cp = CriticalPath::analyze(&[], &net());
        assert_eq!(cp.length, 0.0);
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.elements.is_empty());
    }
}
