//! Cluster topology models: which network tier a message crosses and what
//! that tier's link looks like.
//!
//! The flat α–β model in [`NetConfig`] treats every rank pair identically —
//! accurate for the paper's one-process-per-node runs, but real clusters are
//! two-tier: ranks sharing a node talk over shared memory / NVLink-class
//! links that are an order of magnitude faster than the inter-node fabric,
//! and the inter-node fabric itself is often *oversubscribed* (fewer uplinks
//! than downlinks, so effective per-flow bandwidth divides by the
//! oversubscription factor). [`Topology`] captures exactly that: a
//! `nodes × ppn` rank grid with a per-tier [`NetConfig`] each, resolved per
//! `(src, dst)` pair by [`Topology::tier`].
//!
//! A simulation configured with [`crate::SimBuilder::topology`]
//! routes every send through the pair's tier link and stamps the tier on the
//! [`crate::trace::Event::Send`], so [`crate::critpath`] can attribute path
//! time to intra- vs inter-node wire. Without a topology the simulator keeps
//! the flat model on the *identical* arithmetic path, so untopologized runs
//! stay bit-for-bit what they were.
//!
//! The rank → node mapping is **block** order: rank `r` lives on node
//! `r / ppn` (ranks `0..ppn` on node 0, and so on), matching the default
//! placement of `mpirun`-style launchers. Richer shapes (fat-tree levels,
//! dragonfly groups) can extend [`LinkTier`] later; the congestion law
//! already takes the tier's *population* (ranks per node for the intra tier,
//! node count for the inter tier) instead of the global rank count.

use crate::config::NetConfig;

/// Which tier of the fabric a message crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkTier {
    /// No topology configured: the single flat fabric.
    #[default]
    Flat,
    /// Both endpoints share a node (fast node-local link).
    Intra,
    /// Endpoints on different nodes (oversubscribed inter-node fabric).
    Inter,
}

impl LinkTier {
    /// Number of tiers (array sizing for per-tier tables).
    pub const COUNT: usize = 3;

    /// All tiers in index order.
    pub const ALL: [LinkTier; LinkTier::COUNT] = [LinkTier::Flat, LinkTier::Intra, LinkTier::Inter];

    /// Stable index of this tier.
    pub fn index(self) -> usize {
        match self {
            LinkTier::Flat => 0,
            LinkTier::Intra => 1,
            LinkTier::Inter => 2,
        }
    }

    /// Stable lowercase name (trace args, report rows).
    pub fn name(self) -> &'static str {
        match self {
            LinkTier::Flat => "flat",
            LinkTier::Intra => "intra",
            LinkTier::Inter => "inter",
        }
    }
}

/// A two-tier `nodes × ppn` cluster topology with per-tier link models and
/// an inter-node oversubscription factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// Ranks (processes) per node.
    pub ppn: usize,
    /// Node-local link model (shared memory / intra-node interconnect).
    pub intra: NetConfig,
    /// Inter-node fabric model *before* oversubscription.
    pub inter: NetConfig,
    /// Oversubscription factor of the inter-node fabric: effective per-flow
    /// inter-node bandwidth is `inter.bandwidth_gbps / oversub`. 1.0 = fully
    /// provisioned.
    pub oversub: f64,
}

impl Topology {
    /// A two-tier topology with explicit per-tier links and no
    /// oversubscription.
    pub fn two_tier(nodes: usize, ppn: usize, intra: NetConfig, inter: NetConfig) -> Topology {
        assert!(nodes > 0 && ppn > 0, "topology needs at least one node and one rank per node");
        Topology { nodes, ppn, intra, inter, oversub: 1.0 }
    }

    /// Set the inter-node oversubscription factor (must be ≥ 1).
    pub fn with_oversub(mut self, oversub: f64) -> Topology {
        assert!(oversub >= 1.0, "oversubscription factor must be >= 1, got {oversub}");
        self.oversub = oversub;
        self
    }

    /// The paper-calibrated two-tier shape: the flat default ([`NetConfig`]'s
    /// effective Omni-Path per-flow goodput) becomes the *inter-node* tier,
    /// and the node-local tier models a shared-memory-class link — 10× the
    /// bandwidth, sub-microsecond latency, no congestion (node-local traffic
    /// never crosses the switch).
    pub fn paper(nodes: usize, ppn: usize) -> Topology {
        let intra = NetConfig { latency_s: 5e-7, bandwidth_gbps: 120.0, congestion: 0.0 };
        Topology::two_tier(nodes, ppn, intra, NetConfig::default())
    }

    /// Total rank count (`nodes * ppn`).
    pub fn nranks(&self) -> usize {
        self.nodes * self.ppn
    }

    /// Node hosting `rank` (block placement: ranks `0..ppn` on node 0, …).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ppn
    }

    /// `rank`'s index within its node (`0..ppn`).
    pub fn local_index(&self, rank: usize) -> usize {
        rank % self.ppn
    }

    /// Which tier a `src → dst` message crosses.
    pub fn tier(&self, src: usize, dst: usize) -> LinkTier {
        if self.node_of(src) == self.node_of(dst) {
            LinkTier::Intra
        } else {
            LinkTier::Inter
        }
    }

    /// The link model of `tier`, with oversubscription applied to the
    /// inter-node tier. [`LinkTier::Flat`] resolves to the inter-node link
    /// (a topology has no flat tier; this keeps lookups total).
    pub fn link(&self, tier: LinkTier) -> NetConfig {
        match tier {
            LinkTier::Intra => self.intra,
            LinkTier::Inter | LinkTier::Flat => {
                let mut net = self.inter;
                net.bandwidth_gbps /= self.oversub;
                net
            }
        }
    }

    /// The congestion-law population of `tier`: how many endpoints contend
    /// on that tier's links (ranks per node for the intra tier, node count
    /// for the inter tier).
    pub fn population(&self, tier: LinkTier) -> usize {
        match tier {
            LinkTier::Intra => self.ppn,
            LinkTier::Inter | LinkTier::Flat => self.nodes,
        }
    }

    /// Parse a `NODESxPPN[:OVERSUB]` spec (also accepts `×` for the
    /// separator), e.g. `8x8`, `16x4:2`. Links come from
    /// [`Topology::paper`].
    pub fn parse(spec: &str) -> Result<Topology, String> {
        let (shape, oversub) = match spec.split_once(':') {
            Some((shape, o)) => {
                let oversub: f64 = o
                    .parse()
                    .map_err(|_| format!("bad oversubscription factor {o:?} in {spec:?}"))?;
                if oversub.is_nan() || oversub < 1.0 {
                    return Err(format!("oversubscription factor must be >= 1, got {o:?}"));
                }
                (shape, oversub)
            }
            None => (spec, 1.0),
        };
        let (n, p) = shape
            .split_once(['x', 'X'])
            .or_else(|| shape.split_once('\u{d7}'))
            .ok_or_else(|| format!("topology {spec:?} must look like NODESxPPN[:OVERSUB]"))?;
        let nodes: usize = n.parse().map_err(|_| format!("bad node count {n:?} in {spec:?}"))?;
        let ppn: usize = p.parse().map_err(|_| format!("bad ranks-per-node {p:?} in {spec:?}"))?;
        if nodes == 0 || ppn == 0 {
            return Err(format!("topology {spec:?} needs at least one node and one rank per node"));
        }
        Ok(Topology::paper(nodes, ppn).with_oversub(oversub))
    }

    /// One-line human description (`8 nodes x 8 ranks/node, oversub 2`).
    pub fn describe(&self) -> String {
        if self.oversub != 1.0 {
            format!("{} nodes x {} ranks/node, oversub {}", self.nodes, self.ppn, self.oversub)
        } else {
            format!("{} nodes x {} ranks/node", self.nodes, self.ppn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_maps_ranks_to_nodes() {
        let t = Topology::paper(4, 8);
        assert_eq!(t.nranks(), 32);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(31), 3);
        assert_eq!(t.local_index(9), 1);
        assert_eq!(t.tier(0, 7), LinkTier::Intra);
        assert_eq!(t.tier(7, 8), LinkTier::Inter);
        assert_eq!(t.tier(0, 31), LinkTier::Inter);
    }

    #[test]
    fn paper_topology_has_a_10x_tier_gap() {
        let t = Topology::paper(8, 8);
        let intra = t.link(LinkTier::Intra);
        let inter = t.link(LinkTier::Inter);
        assert_eq!(intra.bandwidth_gbps / inter.bandwidth_gbps, 10.0);
        assert!(intra.latency_s < inter.latency_s);
        assert_eq!(inter, NetConfig::default(), "inter tier is the flat default");
        assert_eq!(t.population(LinkTier::Intra), 8);
        assert_eq!(t.population(LinkTier::Inter), 8);
    }

    #[test]
    fn oversubscription_divides_inter_bandwidth_only() {
        let t = Topology::paper(8, 4).with_oversub(2.0);
        assert_eq!(t.link(LinkTier::Inter).bandwidth_gbps, 6.0);
        assert_eq!(t.link(LinkTier::Intra).bandwidth_gbps, 120.0);
    }

    #[test]
    fn parse_accepts_shape_and_oversub() {
        let t = Topology::parse("8x8").unwrap();
        assert_eq!((t.nodes, t.ppn, t.oversub), (8, 8, 1.0));
        let t = Topology::parse("16x4:2").unwrap();
        assert_eq!((t.nodes, t.ppn, t.oversub), (16, 4, 2.0));
        let t = Topology::parse("2\u{d7}3").unwrap();
        assert_eq!((t.nodes, t.ppn), (2, 3));
        assert_eq!(t, Topology::paper(2, 3), "parse uses the paper links");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "8", "8x", "x8", "0x4", "4x0", "8x8:0.5", "8x8:none", "axb"] {
            assert!(Topology::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn tier_indices_and_names_are_stable() {
        for (i, tier) in LinkTier::ALL.iter().enumerate() {
            assert_eq!(tier.index(), i);
        }
        assert_eq!(LinkTier::Flat.name(), "flat");
        assert_eq!(LinkTier::Intra.name(), "intra");
        assert_eq!(LinkTier::Inter.name(), "inter");
        assert_eq!(LinkTier::default(), LinkTier::Flat);
    }
}
