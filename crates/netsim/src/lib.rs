//! # netsim — a virtual-time multi-node cluster simulator
//!
//! The MPI substrate of the hZCCL reproduction (DESIGN.md §1). Ranks
//! exchange **real byte buffers**, so every collective's data path
//! (compression, homomorphic reduction, decompression) runs for real and
//! its results can be verified. Time, however, is *virtual*:
//!
//! * wire time comes from an α–β(+congestion) model of the paper's 100 Gbps
//!   Omni-Path fabric ([`NetConfig`]);
//! * compute time is either the kernel's measured wall clock
//!   ([`ComputeTiming::Measured`]) or `bytes / calibrated-throughput`
//!   ([`ComputeTiming::Modeled`]) for rank counts that oversubscribe the
//!   host.
//!
//! Execution is driven by a [`SimEngine`]: by default ranks are
//! cooperatively-scheduled fibers under a discrete-event scheduler on one
//! OS thread ([`SimEngine::Events`], scales past 10k ranks); the original
//! one-OS-thread-per-rank model survives as [`SimEngine::Threads`] for
//! cross-engine equivalence testing. Both engines produce bit-identical
//! results (see `crate::engine::events` for the argument).
//!
//! Every rank carries a [`Breakdown`] so collectives report the paper's
//! CPR/DPR/HPR/CPT vs MPI vs OTHER splits (Fig. 2, Table VII) directly.
//! A flight recorder ([`trace`], enabled via [`SimBuilder::trace`])
//! additionally captures per-event streams on the virtual timeline, with
//! Chrome-trace/Perfetto and ASCII Gantt exporters, and [`metrics`] turns a
//! run into counters + log2-bucketed histograms with Prometheus-text and
//! JSON renderings ([`json`] is the hand-rolled JSON layer both use).
//! [`critpath`] reconstructs the causal DAG of a traced run and extracts
//! the end-to-end critical path with per-event slack, so breakdowns can be
//! read as "what actually gated the makespan" rather than mere totals.
//!
//! ```
//! use netsim::{OpKind, SimBuilder};
//!
//! let report = SimBuilder::new(4).run(|comm| {
//!     // ring: everyone passes its rank to the right, sums what it gets
//!     let to = (comm.rank() + 1) % comm.size();
//!     let from = (comm.rank() + comm.size() - 1) % comm.size();
//!     let rank = comm.rank();
//!     let got = comm.sendrecv(to, 0, vec![rank as u8], from);
//!     comm.compute(OpKind::Cpt, 1, || got[0] as usize + rank)
//! });
//! assert_eq!(report.outcomes.len(), 4);
//! assert!(report.stats.makespan > 0.0);
//! ```

pub mod breakdown;
pub mod comm;
pub mod config;
pub mod critpath;
mod engine;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod sim;
pub mod topology;
pub mod trace;

pub use breakdown::Breakdown;
pub use comm::{Comm, PeerCrashed, RecvMsg};
pub use config::{ComputeTiming, NetConfig, OpKind, ThroughputModel};
pub use critpath::{CriticalPath, PathBuckets, PathElement, SpanKind, TagTime, TierTime};
pub use faults::{FaultKind, FaultPlan, LinkFault};
pub use json::Json;
pub use metrics::Registry;
pub use sim::{RankOutcome, RankPanic, RunReport, RunStats, SimBuilder, SimEngine};
pub use topology::{LinkTier, Topology};
pub use trace::{Event, RankTrace, TraceConfig};

#[cfg(test)]
mod tests {
    use super::*;

    fn modeled() -> ComputeTiming {
        ComputeTiming::Modeled(ThroughputModel::new(10.0, 20.0, 100.0, 30.0, 50.0))
    }

    #[test]
    fn ring_exchange_delivers_correct_payloads() {
        let outcomes = SimBuilder::new(8)
            .run(|comm| {
                let n = comm.size();
                let to = (comm.rank() + 1) % n;
                let from = (comm.rank() + n - 1) % n;
                let got = comm.sendrecv(to, 7, vec![comm.rank() as u8; 3], from);
                got[0] as usize
            })
            .expect_clean()
            .outcomes;
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(o.rank, rank);
            assert_eq!(o.value, (rank + 8 - 1) % 8);
        }
    }

    #[test]
    fn tags_disambiguate_messages() {
        let report = SimBuilder::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1]);
                comm.send(1, 2, vec![2]);
                0
            } else {
                // receive in reverse tag order: matching must hold
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                (a[0] as usize) * 10 + b[0] as usize
            }
        });
        assert_eq!(*report.value(1), 12);
    }

    #[test]
    fn virtual_time_reflects_message_size() {
        let net = NetConfig { latency_s: 1e-6, bandwidth_gbps: 100.0, congestion: 0.0 };
        let run_with = |bytes: usize| {
            let report = SimBuilder::new(2).net(net).timing(modeled()).run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![0u8; bytes]);
                } else {
                    comm.recv(0, 0);
                }
                comm.elapsed()
            });
            *report.value(1)
        };
        let t_small = run_with(1_000);
        let t_big = run_with(10_000_000);
        // 10 MB at 100 Gbps = 0.8 ms
        assert!(t_big > t_small);
        assert!((t_big - (1e-6 + 10_000_000.0 * 8.0 / 100e9)).abs() < 1e-9);
    }

    #[test]
    fn mpi_wait_time_is_charged() {
        let net = NetConfig { latency_s: 1e-3, bandwidth_gbps: 100.0, congestion: 0.0 };
        let report = SimBuilder::new(2).net(net).timing(modeled()).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 8]);
            } else {
                comm.recv(0, 0);
            }
            comm.breakdown()
        });
        assert!(report.value(1).mpi >= 1e-3);
        assert_eq!(report.value(0).mpi, 0.0);
    }

    #[test]
    fn modeled_compute_charges_expected_time() {
        let report = SimBuilder::new(1).timing(modeled()).run(|comm| {
            comm.compute(OpKind::Cpr, 10_000_000_000, || ());
            comm.breakdown()
        });
        assert!((report.value(0).cpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_compute_charges_wall_time() {
        let report = SimBuilder::new(1).run(|comm| {
            comm.compute(OpKind::Cpt, 0, || {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
            comm.breakdown()
        });
        assert!(report.value(0).cpt >= 0.004);
    }

    #[test]
    fn stats_aggregate_across_ranks() {
        let report = SimBuilder::new(4).timing(modeled()).run(|comm| {
            comm.compute(OpKind::Cpt, 30_000_000_000, || ());
        });
        let stats = report.expect_clean().stats;
        assert!((stats.makespan - 1.0).abs() < 1e-9);
        assert!((stats.total.cpt - 4.0).abs() < 1e-9);
    }

    #[test]
    fn modeled_runs_are_deterministic() {
        let run_once = || {
            SimBuilder::new(8)
                .timing(modeled())
                .run(|comm| {
                    let n = comm.size();
                    let to = (comm.rank() + 1) % n;
                    let from = (comm.rank() + n - 1) % n;
                    for round in 0..5u64 {
                        let payload = vec![comm.rank() as u8; 1000 * (round as usize + 1)];
                        let got = comm.sendrecv(to, round, payload, from);
                        comm.compute(OpKind::Cpt, got.len(), || ());
                    }
                })
                .expect_clean()
                .stats
                .makespan
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn engines_agree_on_a_traced_multi_round_ring() {
        let run_under = |engine: SimEngine| {
            SimBuilder::new(6).timing(modeled()).trace(TraceConfig::default()).engine(engine).run(
                |comm| {
                    let n = comm.size();
                    let to = (comm.rank() + 1) % n;
                    let from = (comm.rank() + n - 1) % n;
                    let mut sum = 0usize;
                    for round in 0..4u64 {
                        let got = comm.sendrecv(to, round, vec![comm.rank() as u8; 4096], from);
                        sum += comm.compute(OpKind::Cpt, got.len(), || got[0] as usize);
                    }
                    sum
                },
            )
        };
        let ev = run_under(SimEngine::Events);
        let th = run_under(SimEngine::Threads);
        assert_eq!(ev.stats.makespan, th.stats.makespan);
        for rank in 0..6 {
            assert_eq!(ev.value(rank), th.value(rank));
            assert_eq!(ev.outcome(rank).unwrap().elapsed, th.outcome(rank).unwrap().elapsed);
            assert_eq!(ev.trace_of(rank).unwrap().events, th.trace_of(rank).unwrap().events);
        }
    }

    #[test]
    fn reset_clock_clears_accounting() {
        let report = SimBuilder::new(1).timing(modeled()).run(|comm| {
            comm.compute(OpKind::Cpr, 1_000_000, || ());
            comm.reset_clock();
            (comm.elapsed(), comm.breakdown().total())
        });
        assert_eq!(*report.value(0), (0.0, 0.0));
    }

    #[test]
    fn large_rank_counts_work() {
        let outcomes = SimBuilder::new(128)
            .timing(modeled())
            .run(|comm| {
                let n = comm.size();
                let got =
                    comm.sendrecv((comm.rank() + 1) % n, 0, vec![1u8], (comm.rank() + n - 1) % n);
                got[0]
            })
            .expect_clean()
            .outcomes;
        assert_eq!(outcomes.len(), 128);
        assert!(outcomes.iter().all(|o| o.value == 1));
    }

    #[test]
    fn all_to_all_random_order_is_deadlock_free() {
        // every rank sends to every other rank, then receives in an
        // arbitrary (rank-dependent) order: the pending-message buffer must
        // hold whatever arrives early
        let nranks = 12;
        let report = SimBuilder::new(nranks).timing(modeled()).run(|comm| {
            let me = comm.rank();
            let n = comm.size();
            for dst in 0..n {
                if dst != me {
                    comm.send(dst, 99, vec![me as u8]);
                }
            }
            let mut sum = 0usize;
            // receive in reverse order to exercise out-of-order buffering
            for src in (0..n).rev() {
                if src != me {
                    let got = comm.recv(src, 99);
                    sum += got[0] as usize;
                }
            }
            sum
        });
        let expect: usize = (0..nranks).sum();
        for (r, o) in report.expect_clean().outcomes.iter().enumerate() {
            assert_eq!(o.value, expect - r);
        }
    }

    #[test]
    fn large_payload_integrity() {
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let report = SimBuilder::new(2).timing(modeled()).run(move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, payload.clone());
                true
            } else {
                comm.recv(0, 0) == expected
            }
        });
        assert!(*report.value(1));
    }

    #[test]
    fn opa_line_rate_is_faster_than_default() {
        let bytes = 10 << 20;
        let fast = NetConfig::opa_line_rate().transfer_time(bytes, 64);
        let slow = NetConfig::default().transfer_time(bytes, 64);
        assert!(fast < slow / 5.0, "line rate {fast} vs effective {slow}");
    }

    #[test]
    fn elapsed_equals_breakdown_total() {
        let report = SimBuilder::new(3).timing(modeled()).run(|comm| {
            let n = comm.size();
            let to = (comm.rank() + 1) % n;
            let from = (comm.rank() + n - 1) % n;
            for round in 0..4u64 {
                let got = comm.sendrecv(to, round, vec![0u8; 10_000], from);
                comm.compute(OpKind::Cpt, got.len(), || ());
            }
            (comm.elapsed(), comm.breakdown().total())
        });
        for o in report.expect_clean().outcomes {
            let (elapsed, total) = o.value;
            assert!((elapsed - total).abs() < 1e-12, "{elapsed} vs {total}");
        }
    }

    #[test]
    fn send_injection_is_charged_to_sender_other_bucket() {
        let net = NetConfig { latency_s: 5e-4, bandwidth_gbps: 100.0, congestion: 0.0 };
        let report = SimBuilder::new(2).net(net).timing(modeled()).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 1000]);
            } else {
                comm.recv(0, 0);
            }
            comm.breakdown()
        });
        // sender paid exactly alpha, into OTHER (never MPI)
        assert!((report.value(0).other - 5e-4).abs() < 1e-12, "{:?}", report.value(0));
        assert_eq!(report.value(0).mpi, 0.0);
        // end-to-end unloaded latency is still alpha + beta*s
        let expect = 5e-4 + 1000.0 * 8.0 / 100e9;
        assert!((report.value(1).mpi - expect).abs() < 1e-12, "{:?}", report.value(1));
    }

    #[test]
    fn topology_routes_pairs_through_their_tier_link() {
        let topo = Topology::paper(2, 2); // ranks {0,1} on node 0, {2,3} on node 1
        let run_pair = |src: usize, dst: usize| {
            let report = SimBuilder::new(4).timing(modeled()).topology(topo).run(move |comm| {
                if comm.rank() == src {
                    comm.send(dst, 0, vec![0u8; 1_000_000]);
                }
                if comm.rank() == dst {
                    comm.recv(src, 0);
                }
                comm.elapsed()
            });
            *report.value(dst)
        };
        let intra = run_pair(0, 1);
        let inter = run_pair(1, 2);
        assert!(inter > 5.0 * intra, "inter-node must be much slower: {inter} vs {intra}");
        for (measured, tier) in [(intra, LinkTier::Intra), (inter, LinkTier::Inter)] {
            let link = topo.link(tier);
            let expect = link.latency_s + link.serialization_time(1_000_000, topo.population(tier));
            assert!((measured - expect).abs() < 1e-12, "{tier:?}: {measured} vs {expect}");
        }
    }

    #[test]
    fn topology_stamps_tiers_on_sends() {
        let topo = Topology::paper(2, 2);
        let report =
            SimBuilder::new(4).timing(modeled()).topology(topo).trace(TraceConfig::default()).run(
                |comm| match comm.rank() {
                    0 => comm.send(1, 1, vec![1u8; 64]),
                    1 => {
                        comm.recv(0, 1);
                        comm.send(2, 2, vec![2u8; 64]);
                    }
                    2 => drop(comm.recv(1, 2)),
                    _ => {}
                },
            );
        let tier_of_send = |rank: usize| {
            report.trace_of(rank).unwrap().events.iter().find_map(|e| match *e {
                Event::Send { tier, .. } => Some(tier),
                _ => None,
            })
        };
        assert_eq!(tier_of_send(0), Some(LinkTier::Intra));
        assert_eq!(tier_of_send(1), Some(LinkTier::Inter));
    }

    #[test]
    #[should_panic(expected = "topology is 4 ranks")]
    fn topology_rank_count_must_match_the_simulation() {
        let _ = SimBuilder::new(8).topology(Topology::paper(2, 2));
    }

    #[test]
    fn tracing_is_disabled_by_default() {
        let report = SimBuilder::new(2).timing(modeled()).run(|comm| {
            assert!(!comm.tracing_enabled());
            let n = comm.size();
            comm.sendrecv((comm.rank() + 1) % n, 0, vec![1u8; 64], (comm.rank() + n - 1) % n);
        });
        assert!(report.expect_clean().traces.is_empty());
    }

    #[test]
    fn traced_run_reconciles_with_breakdown() {
        let report =
            SimBuilder::new(4).timing(modeled()).trace(TraceConfig::default()).run(|comm| {
                let n = comm.size();
                let to = (comm.rank() + 1) % n;
                let from = (comm.rank() + n - 1) % n;
                for round in 0..3u64 {
                    let got = comm.sendrecv_compressed(to, round, vec![0u8; 500], 2000, from);
                    comm.compute_labeled(OpKind::Hpr, got.len() * 4, "test:hpr", || ());
                }
                comm.advance(OpKind::Cpt, 1e-4);
            });
        for o in &report.outcomes {
            let trace = report.trace_of(o.rank).expect("traced run returns events");
            let rebuilt = trace.reconstructed_breakdown();
            for (a, b) in [
                (rebuilt.cpr, o.breakdown.cpr),
                (rebuilt.dpr, o.breakdown.dpr),
                (rebuilt.hpr, o.breakdown.hpr),
                (rebuilt.cpt, o.breakdown.cpt),
                (rebuilt.other, o.breakdown.other),
                (rebuilt.mpi, o.breakdown.mpi),
            ] {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
            // event stream is non-decreasing in virtual time
            for w in trace.events.windows(2) {
                assert!(w[1].start() >= w[0].start() - 1e-12);
            }
            // compressed sends recorded wire and logical sizes
            assert!(trace
                .events
                .iter()
                .any(|e| matches!(e, Event::Send { wire_bytes: 500, logical_bytes: 2000, .. })));
        }
    }

    #[test]
    fn reset_clock_clears_trace() {
        let report =
            SimBuilder::new(1).timing(modeled()).trace(TraceConfig::default()).run(|comm| {
                comm.compute(OpKind::Cpr, 1_000_000, || ());
                comm.reset_clock();
                comm.compute(OpKind::Dpr, 1_000_000, || ());
            });
        let trace = report.trace_of(0).unwrap();
        assert_eq!(trace.events.len(), 1);
        assert!(matches!(trace.events[0], Event::Compute { kind: OpKind::Dpr, .. }));
    }

    #[test]
    fn recv_ready_tracks_arrival_without_advancing_the_clock() {
        let net = NetConfig { latency_s: 1e-5, bandwidth_gbps: 1.0, congestion: 0.0 };
        let report = SimBuilder::new(2).net(net).timing(modeled()).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![0u8; 1_000_000]); // slow: arrives late
                comm.send(1, 4, vec![7u8]); // fast: arrives first
                (true, true, true)
            } else {
                // Blocking on the fast message drains the slow one into the
                // pending buffer, making the probe's view deterministic.
                comm.recv(0, 4);
                let clock_before = comm.elapsed();
                // slow message is buffered but its arrival is in the future
                let not_yet = !comm.recv_ready(0, 3);
                // probing a message that was never sent is simply false
                let absent = !comm.recv_ready(0, 99);
                let clock_unchanged = comm.elapsed() == clock_before;
                // after the blocking recv catches up, the probe flips true
                // for a message sent even earlier in virtual time
                comm.recv(0, 3);
                (not_yet, absent, clock_unchanged)
            }
        });
        assert_eq!(*report.value(1), (true, true, true));
    }

    #[test]
    fn recv_ready_is_true_for_an_already_arrived_message() {
        let net = NetConfig { latency_s: 1e-5, bandwidth_gbps: 100.0, congestion: 0.0 };
        let report = SimBuilder::new(2).net(net).timing(modeled()).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1u8]); // early, tiny: arrives first
                comm.send(1, 2, vec![0u8; 1_000_000]); // late, big: arrives last
                true
            } else {
                // receiving the big one advances the clock past the tiny
                // one's arrival; the tiny one sits buffered and ready
                comm.recv(0, 2);
                let ready = comm.recv_ready(0, 1);
                comm.recv(0, 1);
                ready
            }
        });
        assert!(*report.value(1), "buffered message with past arrival must probe ready");
    }

    #[test]
    #[should_panic(expected = "self-send in a collective is a bug")]
    fn self_send_panics_the_rank() {
        // the self-send assert fires inside the rank; expect_clean surfaces
        // it by re-panicking with the original message
        let _ = SimBuilder::new(1).run(|comm| comm.send(0, 0, vec![])).expect_clean();
    }

    #[test]
    fn report_tells_which_rank_died_and_why() {
        let report = SimBuilder::new(2).timing(modeled()).run(|comm| {
            if comm.rank() == 1 {
                panic!("injected failure on rank 1");
            }
            comm.recv(1, 0); // blocks; must unwind, not deadlock
        });
        assert!(!report.is_clean());
        assert!(report.panic_of(0).is_some(), "rank 0 dies on the crash cascade");
        let p = report.panic_of(1).expect("rank 1 died");
        assert_eq!(p.rank, 1);
        assert_eq!(p.message, "injected failure on rank 1");
        // the fates view interleaves survivors and casualties by rank
        let fates = report.fates();
        assert_eq!(fates.len(), 2);
        assert!(fates.iter().all(|f| f.is_err()));
    }

    #[test]
    fn fault_plan_crash_cascades_and_is_attributed() {
        let report = SimBuilder::new(3)
            .timing(modeled())
            .faults(FaultPlan::new(1).with_crash(1, 0))
            .run(|comm| {
                let n = comm.size();
                let to = (comm.rank() + 1) % n;
                let from = (comm.rank() + n - 1) % n;
                for round in 0..3u64 {
                    comm.sendrecv(to, round, vec![comm.rank() as u8; 64], from);
                }
            });
        let p1 = report.panic_of(1).expect("rank 1 crashed");
        assert!(p1.message.contains("crashed by fault plan at send step 0"), "{}", p1.message);
        // The survivors die observing the cascade. Which dead neighbour each
        // one trips over first (the crashed rank or a fellow casualty) is an
        // engine-scheduling detail, so only the fact of a crash observation
        // is asserted here.
        for r in [0, 2] {
            let p = report.panic_of(r).expect("cascade kills the ring");
            assert!(p.message.contains("observed crash of rank"), "rank {r}: {}", p.message);
        }
    }

    #[test]
    fn dropped_message_panics_plain_recv() {
        let report = SimBuilder::new(2)
            .timing(modeled())
            .faults(FaultPlan::new(0).with_drop(1.0))
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 5, vec![1, 2, 3]);
                } else {
                    comm.recv(0, 5);
                }
            });
        let p = report.panic_of(1).expect("the receiver starves");
        assert!(p.message.contains("dropped by the fault plan"), "{}", p.message);
    }

    #[test]
    fn recv_msg_surfaces_drops_and_send_reliable_bypasses_them() {
        let report = SimBuilder::new(2)
            .timing(modeled())
            .faults(FaultPlan::new(0).with_drop(1.0))
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, vec![9; 16]);
                    comm.send_reliable(1, 2, vec![8; 16], 16);
                    (true, true)
                } else {
                    let lossy = comm.recv_msg(0, 1);
                    let safe = comm.recv_msg(0, 2);
                    (lossy.dropped, !safe.dropped && safe.payload == vec![8; 16])
                }
            });
        assert_eq!(*report.value(1), (true, true));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let sent: Vec<u8> = (0..64).collect();
        let expect = sent.clone();
        let report = SimBuilder::new(2)
            .timing(modeled())
            .faults(FaultPlan::new(3).with_corrupt(1.0))
            .run(move |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, sent.clone());
                    0
                } else {
                    let got = comm.recv(0, 0);
                    got.iter().zip(&expect).map(|(a, b)| (a ^ b).count_ones()).sum::<u32>()
                }
            });
        assert_eq!(*report.value(1), 1);
    }

    #[test]
    fn straggler_scales_modeled_compute() {
        let run_with = |plan: Option<FaultPlan>| {
            let mut sim = SimBuilder::new(2).timing(modeled());
            if let Some(p) = plan {
                sim = sim.faults(p);
            }
            let report = sim.run(|comm| {
                comm.compute(OpKind::Cpt, 30_000_000_000, || ());
                comm.elapsed()
            });
            (*report.value(0), *report.value(1))
        };
        let (h0, h1) = run_with(None);
        let (s0, s1) = run_with(Some(FaultPlan::new(0).with_straggler(1, 4.0)));
        assert_eq!(h0, s0, "healthy rank untouched");
        assert!((s1 - h1 * 4.0).abs() < 1e-12, "straggler runs 4x slower: {s1} vs {h1}");
    }

    #[test]
    fn jitter_delays_arrivals_deterministically() {
        let run_once = |plan: FaultPlan| {
            let report = SimBuilder::new(2).timing(modeled()).faults(plan).run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![0u8; 100]);
                } else {
                    comm.recv(0, 0);
                }
                comm.elapsed()
            });
            *report.value(1)
        };
        let healthy = run_once(FaultPlan::new(7));
        let jittered = run_once(FaultPlan::new(7).with_jitter(1e-3));
        assert!(jittered > healthy, "jitter must delay the receiver");
        assert_eq!(jittered, run_once(FaultPlan::new(7).with_jitter(1e-3)), "and replay exactly");
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let run = |faulted: bool| {
            let mut sim = SimBuilder::new(4).timing(modeled());
            if faulted {
                sim = sim.faults(FaultPlan::new(99));
            }
            let stats = sim
                .run(|comm| {
                    let n = comm.size();
                    let to = (comm.rank() + 1) % n;
                    let from = (comm.rank() + n - 1) % n;
                    for round in 0..4u64 {
                        let got = comm.sendrecv(to, round, vec![comm.rank() as u8; 2048], from);
                        comm.compute(OpKind::Cpt, got.len(), || ());
                    }
                })
                .expect_clean()
                .stats;
            (stats.makespan, stats.total.total())
        };
        assert_eq!(run(false), run(true));
    }
}
