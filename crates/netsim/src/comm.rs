//! Per-rank communicator: point-to-point messaging with virtual-time
//! accounting, compute-cost charging, and optional flight-recorder tracing.

use crate::breakdown::Breakdown;
use crate::config::{ComputeTiming, NetConfig, OpKind};
use crate::engine::events::EventEndpoint;
use crate::faults::{FaultKind, FaultPlan};
use crate::topology::{LinkTier, Topology};
use crate::trace::{Event, RankTrace, TraceConfig};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

/// Delivery status of a message, as decided by the cluster's [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MsgStatus {
    /// Delivered intact (possibly corrupted — a bit flip is invisible here,
    /// exactly as on a real wire; checksums live a layer above).
    Ok,
    /// Lost in transit. The message still crosses the channel so the
    /// receiver can account the arrival time it *would* have had, but its
    /// payload never becomes visible: [`Comm::recv_msg`] reports the loss,
    /// plain [`Comm::recv`] panics.
    Dropped,
    /// Poison pill broadcast by a crashing rank; any receiver touching it
    /// panics, cascading the crash so the run terminates instead of
    /// deadlocking.
    CrashNotice,
}

/// A message in flight: payload plus the virtual time at which it reaches
/// the receiver.
pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    pub payload: Vec<u8>,
    pub arrival: f64,
    pub status: MsgStatus,
}

/// The transport a [`Comm`] sits on: real `mpsc` channels under the thread
/// engine, shared inboxes under the event engine's cooperative scheduler.
/// All the matching logic (the pending map) lives above this in `Comm`, so
/// both engines share one deterministic match path.
pub(crate) enum Endpoint {
    /// One `mpsc` channel per rank; `txs[to]` reaches rank `to`.
    Threads { txs: Vec<Sender<Message>>, rx: Receiver<Message> },
    /// A handle onto the event engine's shared scheduler state.
    Events(EventEndpoint),
}

impl Endpoint {
    /// Post `msg` to rank `to`. With `lenient` (survivable mode) a send to a
    /// rank that already finished — most importantly, one that crashed — is
    /// silently discarded instead of panicking: the self-healing layer keeps
    /// addressing dead peers until membership agreement removes them.
    fn deliver(&self, to: usize, msg: Message, lenient: bool) {
        match self {
            Endpoint::Threads { txs, .. } => {
                if lenient {
                    let _ = txs[to].send(msg);
                } else {
                    txs[to].send(msg).expect("receiver rank hung up")
                }
            }
            Endpoint::Events(ep) => ep.deliver_checked(to, msg, lenient),
        }
    }

    /// Next inbound message, blocking (thread engine) or yielding to the
    /// scheduler (event engine) until one exists. Panics when no live peer
    /// can ever send again — the deadlock backstop of both engines.
    fn recv_next(&self) -> Message {
        match self {
            Endpoint::Threads { rx, .. } => rx.recv().expect("sender ranks hung up"),
            Endpoint::Events(ep) => ep.recv_next(),
        }
    }

    /// Non-blocking variant of [`Endpoint::recv_next`] (the probe path).
    fn try_recv_next(&self) -> Option<Message> {
        match self {
            Endpoint::Threads { rx, .. } => rx.try_recv().ok(),
            Endpoint::Events(ep) => ep.try_recv_next(),
        }
    }

    /// Poison every peer's inbox with a crash notice from `rank`.
    fn crash_broadcast(&self, rank: usize, clock: f64) {
        match self {
            Endpoint::Threads { txs, .. } => {
                for (to, tx) in txs.iter().enumerate() {
                    if to == rank {
                        continue;
                    }
                    // a peer that already finished has dropped its receiver;
                    // that is fine — it no longer needs the notice
                    let _ = tx.send(Message {
                        from: rank,
                        tag: 0,
                        payload: Vec::new(),
                        arrival: clock,
                        status: MsgStatus::CrashNotice,
                    });
                }
            }
            Endpoint::Events(ep) => ep.crash_broadcast(clock),
        }
    }
}

/// Error of [`Comm::recv_checked`]: the peer the caller was blocked on has
/// crashed, so the awaited message can never arrive. Only observable in
/// survivable mode ([`Comm::set_survivable`]); the default mode keeps the
/// historical behaviour of panicking on any observed crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerCrashed {
    /// The rank that crashed (always the `from` the caller was waiting on).
    pub rank: usize,
}

impl std::fmt::Display for PeerCrashed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer rank {} crashed", self.rank)
    }
}

impl std::error::Error for PeerCrashed {}

/// What [`Comm::recv_msg`] saw: the payload plus whether the fault plan
/// dropped the message in transit (in which case `payload` is what was
/// sent but must be treated as never having arrived).
pub struct RecvMsg {
    /// The received bytes (the sent payload even when `dropped`, so the
    /// simulation can keep flowing; resilient callers must ignore it).
    pub payload: Vec<u8>,
    /// True iff the fault plan marked this message lost.
    pub dropped: bool,
}

/// The per-rank handle passed to the closure run on every simulated node.
///
/// Semantics:
/// * [`Comm::send`] is non-blocking (eager) but **not free**: the sender's
///   clock advances by the network model's per-message latency α — the
///   CPU-side injection overhead of posting the message (charged to the
///   `OTHER` bucket, see below) — and the message then arrives
///   `serialization_time` later.
/// * [`Comm::recv`] blocks until the matching `(from, tag)` message exists
///   and advances the virtual clock to `max(clock, arrival)`; the wait is
///   charged to the `MPI` bucket.
/// * [`Comm::compute`] runs a kernel and charges its cost to a breakdown
///   bucket — wall-clock measured or modeled from calibrated throughputs,
///   per the cluster's [`ComputeTiming`].
///
/// ## Why send injection is charged to `OTHER`, not `MPI`
///
/// Modelling sends as entirely free (the pre-flight-recorder behaviour) let
/// a rank inject unbounded messages at a single virtual instant, which both
/// understates sender-side cost and makes α invisible in breakdowns. We now
/// charge α on the sender. It goes to the `OTHER` bucket — CPU-side
/// posting/packing work — rather than `MPI`, deliberately: the paper's
/// Fig. 2 `MPI` share means *time blocked on communication*, and keeping
/// `MPI` purely blocking-wait preserves both that reading and the flight
/// recorder's invariant `Σ Recv.wait_secs == Breakdown::mpi`. The wire
/// share of α is correspondingly removed from the receiver side: a message
/// posted at `t` arrives at `t + serialization_time`, so the end-to-end
/// latency of an unloaded message is still exactly
/// `α + bytes/effective_bandwidth` and `elapsed_equals_breakdown_total`
/// stays green.
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) clock: f64,
    pub(crate) breakdown: Breakdown,
    pub(crate) net: NetConfig,
    pub(crate) timing: ComputeTiming,
    pub(crate) endpoint: Endpoint,
    pub(crate) pending: HashMap<(usize, u64), VecDeque<Message>>,
    /// Flight-recorder buffer; `None` (the default) disables tracing and
    /// makes every record site a single branch with no event construction
    /// and no allocation.
    pub(crate) trace: Option<Vec<Event>>,
    /// Two-tier fabric shape; `None` (the default) keeps every send on the
    /// exact flat-model arithmetic path (bit-identical to pre-topology runs).
    pub(crate) topology: Option<Topology>,
    /// Chaos plan shared by the whole cluster; `None` (the default) keeps
    /// every send/recv on the exact pre-fault code path.
    pub(crate) faults: Option<FaultPlan>,
    /// Per-destination count of fault-eligible sends — the `k` fed to
    /// [`FaultPlan::decide`], so fault decisions are a pure function of the
    /// schedule and never of thread interleaving.
    pub(crate) send_seq: Vec<u64>,
    /// Count of *all* sends posted by this rank (crash-at-step trigger).
    pub(crate) sends_total: u64,
    /// Straggler multiplier applied to compute durations (1.0 = healthy).
    pub(crate) compute_scale: f64,
    /// Survivable mode: crash notices are recorded into [`Comm::dead`] and
    /// surfaced through [`Comm::recv_checked`] instead of panicking, and
    /// sends to finished/crashed peers are silently discarded. Off by
    /// default — every legacy code path is byte-identical.
    pub(crate) survivable: bool,
    /// Ranks this rank has *observed* to be dead (crash notices consumed
    /// while in survivable mode). A subset of the truly-dead set; grows
    /// monotonically and only at deterministic points of the rank's own
    /// receive sequence.
    pub(crate) dead: BTreeSet<usize>,
}

impl Comm {
    /// Build the communicator one rank runs on; called by both engines'
    /// harnesses with their own [`Endpoint`] flavour.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_rank(
        rank: usize,
        size: usize,
        net: NetConfig,
        timing: ComputeTiming,
        trace: Option<TraceConfig>,
        topology: Option<Topology>,
        faults: Option<FaultPlan>,
        endpoint: Endpoint,
    ) -> Comm {
        let compute_scale = faults.as_ref().map_or(1.0, |p| p.straggler_scale(rank));
        Comm {
            rank,
            size,
            clock: 0.0,
            breakdown: Breakdown::default(),
            net,
            timing,
            endpoint,
            pending: HashMap::new(),
            trace: trace.map(|cfg| Vec::with_capacity(cfg.capacity)),
            topology,
            faults,
            send_seq: vec![0; size],
            sends_total: 0,
            compute_scale,
            survivable: false,
            dead: BTreeSet::new(),
        }
    }

    /// Detach the recorded event stream (if tracing was on), rank-stamped.
    pub(crate) fn take_trace(&mut self) -> Option<RankTrace> {
        let rank = self.rank;
        self.trace.take().map(|events| RankTrace { rank, events })
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time on this rank, in seconds.
    pub fn elapsed(&self) -> f64 {
        self.clock
    }

    /// Cost breakdown accumulated so far on this rank.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown
    }

    /// Whether the flight recorder is active on this rank.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The cluster's topology, if one was configured with
    /// [`crate::SimBuilder::topology`].
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Switch survivable mode on or off. While on, observed peer crashes are
    /// recorded (see [`Comm::recv_checked`], [`Comm::known_dead`]) instead of
    /// panicking, and sends to finished peers are discarded instead of
    /// asserting — the substrate the self-healing collective layer builds
    /// on. The default (`false`) keeps every code path byte-identical to the
    /// historical fail-fast behaviour.
    pub fn set_survivable(&mut self, on: bool) {
        self.survivable = on;
    }

    /// Whether survivable mode is active.
    pub fn survivable(&self) -> bool {
        self.survivable
    }

    /// Whether this rank has observed `rank`'s crash (survivable mode only;
    /// a subset of the truly-dead ranks — a crash is observed only when its
    /// notice is consumed by this rank's own receive sequence).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.contains(&rank)
    }

    /// The ranks this rank has observed to be dead, ascending.
    pub fn known_dead(&self) -> Vec<usize> {
        self.dead.iter().copied().collect()
    }

    /// Reset the virtual clock, breakdown and recorded events (e.g. after a
    /// warm-up round).
    pub fn reset_clock(&mut self) {
        self.clock = 0.0;
        self.breakdown = Breakdown::default();
        if let Some(buf) = &mut self.trace {
            buf.clear();
        }
    }

    /// Record an event if (and only if) tracing is enabled. The closure
    /// defers event construction, so the disabled path is one `Option`
    /// branch with zero allocation — the no-op contract relied on by
    /// runs without [`crate::SimBuilder::trace`].
    #[inline]
    fn record(&mut self, make: impl FnOnce() -> Event) {
        if let Some(buf) = &mut self.trace {
            buf.push(make());
        }
    }

    /// Send `payload` to `to` with matching `tag`. Non-blocking, but charges
    /// the sender-side injection overhead α to this rank's clock (`OTHER`
    /// bucket — see the type-level docs for the modelling rationale).
    ///
    /// Panics on self-sends and unknown ranks (programming errors in a
    /// collective).
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<u8>) {
        let logical = payload.len();
        self.send_compressed(to, tag, payload, logical);
    }

    /// [`Comm::send`] for compressed traffic: `logical_bytes` is the
    /// uncompressed-equivalent size this message represents, so the flight
    /// recorder can observe the per-step achieved compression ratio
    /// (`logical_bytes / wire_bytes`). Identical timing to `send`.
    pub fn send_compressed(&mut self, to: usize, tag: u64, payload: Vec<u8>, logical_bytes: usize) {
        self.send_inner(to, tag, payload, logical_bytes, false);
    }

    /// [`Comm::send_compressed`] on a fault-exempt channel: the cluster's
    /// [`FaultPlan`] never drops, corrupts or jitters this message. Models
    /// link-level-protected control traffic (ACK/NACK frames); timing and
    /// accounting are identical to a regular send. A crashing rank still
    /// crashes — reliability protects the wire, not the endpoint.
    pub fn send_reliable(&mut self, to: usize, tag: u64, payload: Vec<u8>, logical_bytes: usize) {
        self.send_inner(to, tag, payload, logical_bytes, true);
    }

    fn send_inner(
        &mut self,
        to: usize,
        tag: u64,
        payload: Vec<u8>,
        logical_bytes: usize,
        reliable: bool,
    ) {
        assert!(to != self.rank, "self-send in a collective is a bug");
        // Crash injection models *data-plane* deaths: a rank dies at its
        // configured data send step (`>=` so a step consumed by control
        // traffic still fires at the next data send). Link-level-protected
        // control traffic (`send_reliable`) never triggers the crash — the
        // membership/agreement protocol relies on control rounds being
        // crash-free (DESIGN.md §5.5); any rank already past its crash step
        // never reaches another data send anyway.
        if !reliable {
            if let Some(step) = self.faults.as_ref().and_then(|p| p.crash_step(self.rank)) {
                if self.sends_total >= step {
                    self.crash(step);
                }
            }
        }
        self.sends_total += 1;
        let mut payload = payload;
        let wire_bytes = payload.len();
        let t = self.clock;
        // Resolve the pair's link. Without a topology this reproduces the
        // flat model with the identical operands in the identical order, so
        // untopologized runs stay bit-for-bit unchanged.
        let (link, population, tier) = match &self.topology {
            Some(topo) => {
                let tier = topo.tier(self.rank, to);
                (topo.link(tier), topo.population(tier), tier)
            }
            None => (self.net, self.size, LinkTier::Flat),
        };
        let inject = link.latency_s;
        self.clock += inject;
        self.breakdown.charge(OpKind::Other, inject);
        self.record(|| Event::Send {
            t,
            to,
            tag,
            wire_bytes,
            logical_bytes,
            inject_secs: inject,
            tier,
        });
        let mut arrival = self.clock + link.serialization_time(wire_bytes, population);
        let mut status = MsgStatus::Ok;
        if !reliable {
            if let Some(plan) = &self.faults {
                let k = self.send_seq[to];
                self.send_seq[to] += 1;
                let d = plan.decide(self.rank, to, k, wire_bytes * 8);
                if d.drop {
                    status = MsgStatus::Dropped;
                    self.record(|| Event::Fault { t, kind: FaultKind::Drop, to, tag, detail: 0.0 });
                } else {
                    if let Some(bit) = d.corrupt_bit {
                        payload[bit / 8] ^= 1 << (bit % 8);
                        self.record(|| Event::Fault {
                            t,
                            kind: FaultKind::Corrupt,
                            to,
                            tag,
                            detail: bit as f64,
                        });
                    }
                    if d.jitter_s > 0.0 {
                        arrival += d.jitter_s;
                        self.record(|| Event::Fault {
                            t,
                            kind: FaultKind::Jitter,
                            to,
                            tag,
                            detail: d.jitter_s,
                        });
                    }
                }
            }
        }
        let msg = Message { from: self.rank, tag, payload, arrival, status };
        self.endpoint.deliver(to, msg, self.survivable);
    }

    /// One-shot fault-plan crash. The panic unwinds into the cluster's
    /// per-rank harness, which broadcasts a crash notice to every peer (see
    /// [`Comm::broadcast_crash_notice`]) so blocked receivers panic in turn
    /// instead of deadlocking.
    fn crash(&mut self, step: u64) -> ! {
        let t = self.clock;
        let rank = self.rank;
        self.record(|| Event::Fault {
            t,
            kind: FaultKind::Crash,
            to: rank,
            tag: 0,
            detail: step as f64,
        });
        panic!("rank {rank} crashed by fault plan at send step {step}");
    }

    /// Poison every peer's inbox with a crash notice. Called by the rank
    /// harness when this rank's closure panics (fault-plan crash or any
    /// other bug), so ranks blocked — now or later — on a `recv` involving
    /// this rank observe the crash and unwind instead of deadlocking, and
    /// [`crate::RunReport::panics`] can report every casualty.
    pub(crate) fn broadcast_crash_notice(&self) {
        self.endpoint.crash_broadcast(self.rank, self.clock);
    }

    /// Receive the message with matching `(from, tag)`, blocking as needed.
    ///
    /// Panics if the fault plan dropped the message: a plain `recv` has no
    /// recovery protocol, so silent loss would hang the collective — chaos
    /// runs must use the resilient transport (see [`Comm::recv_msg`]).
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<u8> {
        let got = self.recv_msg(from, tag);
        assert!(
            !got.dropped,
            "message (from={from}, tag={tag:#x}) was dropped by the fault plan; \
             plain recv cannot recover — use the resilient transport"
        );
        got.payload
    }

    /// [`Comm::recv`] that surfaces transit loss instead of panicking: the
    /// building block of the resilient transport. Accounting is identical to
    /// `recv` — the clock still advances to the (would-be) arrival and the
    /// wait is charged to the `MPI` bucket, modelling a receiver that blocks
    /// until its loss-detection timeout fires.
    pub fn recv_msg(&mut self, from: usize, tag: u64) -> RecvMsg {
        let key = (from, tag);
        let msg = loop {
            if let Some(q) = self.pending.get_mut(&key) {
                if let Some(m) = q.pop_front() {
                    break m;
                }
            }
            let m = self.endpoint.recv_next();
            if m.status == MsgStatus::CrashNotice {
                panic!("rank {} observed crash of rank {}", self.rank, m.from);
            }
            if m.from == from && m.tag == tag {
                break m;
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m);
        };
        let t = self.clock;
        let wait = (msg.arrival - self.clock).max(0.0);
        if wait > 0.0 {
            self.breakdown.mpi += wait;
            self.clock = msg.arrival;
        }
        let wire_bytes = msg.payload.len();
        self.record(|| Event::Recv { t, from, tag, wire_bytes, wait_secs: wait });
        RecvMsg { payload: msg.payload, dropped: msg.status == MsgStatus::Dropped }
    }

    /// [`Comm::recv_msg`] for survivable mode: a crash of the awaited peer
    /// surfaces as `Err(PeerCrashed)` instead of a panic, so the caller can
    /// repair and continue.
    ///
    /// Determinism contract (the engine-equivalence property relies on it):
    /// the result depends only on this rank's program order and on `from`'s
    /// program order, never on cross-sender arrival interleaving. While
    /// blocked on `(from, tag)`, a crash notice from a *different* rank `c`
    /// is recorded into the dead set and waiting continues — it is acted on
    /// only at deterministic points (a later `recv_checked(c, ..)` or a
    /// membership round). A crash notice *from* `from` yields `Err`; since
    /// both engines deliver each sender's messages in send order, everything
    /// `from` sent before dying is matched first, on both engines.
    ///
    /// Only meaningful in survivable mode; outside it the notice-tolerant
    /// branch is unreachable (notices panic in `recv_msg`-style paths first)
    /// but the method still behaves like a fallible `recv_msg`.
    pub fn recv_checked(&mut self, from: usize, tag: u64) -> Result<RecvMsg, PeerCrashed> {
        let key = (from, tag);
        let msg = loop {
            if let Some(m) = self.pending.get_mut(&key).and_then(|q| q.pop_front()) {
                break m;
            }
            // No earlier message from `from` can still be in flight once its
            // notice has been consumed (per-sender FIFO), so checking the
            // pending map first and the dead set second is exact.
            if self.dead.contains(&from) {
                return Err(PeerCrashed { rank: from });
            }
            let m = self.endpoint.recv_next();
            if m.status == MsgStatus::CrashNotice {
                self.dead.insert(m.from);
                if m.from == from {
                    return Err(PeerCrashed { rank: from });
                }
                continue;
            }
            if m.from == from && m.tag == tag {
                break m;
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m);
        };
        let t = self.clock;
        let wait = (msg.arrival - self.clock).max(0.0);
        if wait > 0.0 {
            self.breakdown.mpi += wait;
            self.clock = msg.arrival;
        }
        let wire_bytes = msg.payload.len();
        self.record(|| Event::Recv { t, from, tag, wire_bytes, wait_secs: wait });
        Ok(RecvMsg { payload: msg.payload, dropped: msg.status == MsgStatus::Dropped })
    }

    /// Non-blocking probe (`MPI_Iprobe`): would a [`Comm::recv`] of
    /// `(from, tag)` complete without advancing the virtual clock?
    ///
    /// Drains the channel without blocking, files everything into the
    /// pending map (exactly the structures `recv` consumes, so probing never
    /// reorders or drops messages), and reports whether the head matching
    /// message has an `arrival` at or before the current clock.
    ///
    /// **Attribution only, never control flow.** The underlying channel is a
    /// wall-clock artifact: a message another rank has already posted in
    /// *virtual* time may not be observable here yet in *wall* time, so a
    /// `false` is conservative rather than authoritative. Deterministic
    /// pipelines must still issue an unconditional `recv` (whose FIFO
    /// drain-and-match is deterministic); `recv_ready` exists so schedules
    /// can attribute *whether a wait is expected* — e.g. deciding which
    /// bucket absorbs overlap slack — without perturbing the simulation.
    pub fn recv_ready(&mut self, from: usize, tag: u64) -> bool {
        while let Some(m) = self.endpoint.try_recv_next() {
            if m.status == MsgStatus::CrashNotice {
                panic!("rank {} observed crash of rank {}", self.rank, m.from);
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m);
        }
        self.pending
            .get(&(from, tag))
            .and_then(|q| q.front())
            .is_some_and(|m| m.arrival <= self.clock)
    }

    /// Concurrent exchange: send to `to`, receive from `from` (the classic
    /// ring-step `MPI_Sendrecv`).
    pub fn sendrecv(&mut self, to: usize, tag: u64, payload: Vec<u8>, from: usize) -> Vec<u8> {
        self.send(to, tag, payload);
        self.recv(from, tag)
    }

    /// [`Comm::sendrecv`] for compressed traffic (see
    /// [`Comm::send_compressed`]).
    pub fn sendrecv_compressed(
        &mut self,
        to: usize,
        tag: u64,
        payload: Vec<u8>,
        logical_bytes: usize,
        from: usize,
    ) -> Vec<u8> {
        self.send_compressed(to, tag, payload, logical_bytes);
        self.recv(from, tag)
    }

    /// Run `f`, charging its cost to `kind`. `bytes` is the volume of
    /// *uncompressed-equivalent* data the kernel touches, used by modeled
    /// timing (ignored by measured timing).
    pub fn compute<T>(&mut self, kind: OpKind, bytes: usize, f: impl FnOnce() -> T) -> T {
        self.compute_labeled(kind, bytes, "", f)
    }

    /// [`Comm::compute`] with a pipeline-step label recorded on the flight
    /// recorder event (e.g. `"hz:homomorphic-sum"`). Labels must be static
    /// so the disabled-tracing path stays allocation-free.
    pub fn compute_labeled<T>(
        &mut self,
        kind: OpKind,
        bytes: usize,
        label: &'static str,
        f: impl FnOnce() -> T,
    ) -> T {
        let t = self.clock;
        let (r, mut dt) = match self.timing {
            ComputeTiming::Measured => {
                let t0 = Instant::now();
                let r = f();
                (r, t0.elapsed().as_secs_f64())
            }
            ComputeTiming::Modeled(model) => (f(), model.duration(kind, bytes)),
        };
        // straggler ranks run the same kernel, just slower; scale == 1.0 is
        // bit-exact identity so healthy runs are untouched
        if self.compute_scale != 1.0 {
            dt *= self.compute_scale;
        }
        self.clock += dt;
        self.breakdown.charge(kind, dt);
        self.record(|| Event::Compute { t, kind, bytes, secs: dt, label });
        r
    }

    /// Advance the virtual clock without running anything (e.g. a cost known
    /// analytically).
    pub fn advance(&mut self, kind: OpKind, secs: f64) {
        self.advance_labeled(kind, secs, "advance");
    }

    /// [`Comm::advance`] with an explicit flight-recorder label, so analytic
    /// charges stay distinguishable in traces and the critical-path report
    /// (e.g. `"res:timeout-wait"` vs a generic `"advance"`). Labels must be
    /// static so the disabled-tracing path stays allocation-free.
    pub fn advance_labeled(&mut self, kind: OpKind, secs: f64, label: &'static str) {
        let t = self.clock;
        self.clock += secs;
        self.breakdown.charge(kind, secs);
        self.record(|| Event::Compute { t, kind, bytes: 0, secs, label });
    }

    /// Drop a zero-duration marker on the flight recorder (e.g.
    /// `"res:retransmit"`). Costs nothing on the virtual clock or breakdown;
    /// the metrics registry turns well-known labels into counters.
    pub fn mark(&mut self, label: &'static str) {
        let t = self.clock;
        self.record(|| Event::Compute { t, kind: OpKind::Other, bytes: 0, secs: 0.0, label });
    }

    /// [`Comm::mark`] carrying a number in the event's `bytes` field (e.g.
    /// `"rec:epoch"` with the committed epoch), so the metrics registry can
    /// surface values — not just occurrence counts — from trace labels.
    pub fn mark_value(&mut self, label: &'static str, value: u64) {
        let t = self.clock;
        self.record(|| Event::Compute {
            t,
            kind: OpKind::Other,
            bytes: value as usize,
            secs: 0.0,
            label,
        });
    }
}
