//! Per-rank communicator: point-to-point messaging with virtual-time
//! accounting and compute-cost charging.

use crate::breakdown::Breakdown;
use crate::config::{ComputeTiming, NetConfig, OpKind};
use crossbeam::channel::{Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// A message in flight: payload plus the virtual time at which it reaches
/// the receiver.
pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    pub payload: Vec<u8>,
    pub arrival: f64,
}

/// The per-rank handle passed to the closure run on every simulated node.
///
/// Semantics:
/// * [`Comm::send`] is non-blocking (eager): the message departs at the
///   sender's current virtual clock and arrives `transfer_time` later.
/// * [`Comm::recv`] blocks until the matching `(from, tag)` message exists
///   and advances the virtual clock to `max(clock, arrival)`; the wait is
///   charged to the `MPI` bucket.
/// * [`Comm::compute`] runs a kernel and charges its cost to a breakdown
///   bucket — wall-clock measured or modeled from calibrated throughputs,
///   per the cluster's [`ComputeTiming`].
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) clock: f64,
    pub(crate) breakdown: Breakdown,
    pub(crate) net: NetConfig,
    pub(crate) timing: ComputeTiming,
    pub(crate) txs: Vec<Sender<Message>>,
    pub(crate) rx: Receiver<Message>,
    pub(crate) pending: HashMap<(usize, u64), VecDeque<Message>>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time on this rank, in seconds.
    pub fn elapsed(&self) -> f64 {
        self.clock
    }

    /// Cost breakdown accumulated so far on this rank.
    pub fn breakdown(&self) -> Breakdown {
        self.breakdown
    }

    /// Reset the virtual clock and breakdown (e.g. after a warm-up round).
    pub fn reset_clock(&mut self) {
        self.clock = 0.0;
        self.breakdown = Breakdown::default();
    }

    /// Send `payload` to `to` with matching `tag`. Non-blocking.
    ///
    /// Panics on self-sends and unknown ranks (programming errors in a
    /// collective).
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<u8>) {
        assert!(to != self.rank, "self-send in a collective is a bug");
        let arrival = self.clock + self.net.transfer_time(payload.len(), self.size);
        let msg = Message { from: self.rank, tag, payload, arrival };
        self.txs[to].send(msg).expect("receiver rank hung up");
    }

    /// Receive the message with matching `(from, tag)`, blocking as needed.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<u8> {
        let key = (from, tag);
        let msg = loop {
            if let Some(q) = self.pending.get_mut(&key) {
                if let Some(m) = q.pop_front() {
                    break m;
                }
            }
            let m = self.rx.recv().expect("sender ranks hung up");
            if m.from == from && m.tag == tag {
                break m;
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m);
        };
        if msg.arrival > self.clock {
            self.breakdown.mpi += msg.arrival - self.clock;
            self.clock = msg.arrival;
        }
        msg.payload
    }

    /// Concurrent exchange: send to `to`, receive from `from` (the classic
    /// ring-step `MPI_Sendrecv`).
    pub fn sendrecv(
        &mut self,
        to: usize,
        tag: u64,
        payload: Vec<u8>,
        from: usize,
    ) -> Vec<u8> {
        self.send(to, tag, payload);
        self.recv(from, tag)
    }

    /// Run `f`, charging its cost to `kind`. `bytes` is the volume of
    /// *uncompressed-equivalent* data the kernel touches, used by modeled
    /// timing (ignored by measured timing).
    pub fn compute<T>(&mut self, kind: OpKind, bytes: usize, f: impl FnOnce() -> T) -> T {
        match self.timing {
            ComputeTiming::Measured => {
                let t0 = Instant::now();
                let r = f();
                let dt = t0.elapsed().as_secs_f64();
                self.clock += dt;
                self.breakdown.charge(kind, dt);
                r
            }
            ComputeTiming::Modeled(model) => {
                let r = f();
                let dt = model.duration(kind, bytes);
                self.clock += dt;
                self.breakdown.charge(kind, dt);
                r
            }
        }
    }

    /// Advance the virtual clock without running anything (e.g. a cost known
    /// analytically).
    pub fn advance(&mut self, kind: OpKind, secs: f64) {
        self.clock += secs;
        self.breakdown.charge(kind, secs);
    }
}
