//! Fault injection: a seeded, deterministic chaos plan for the simulated
//! cluster.
//!
//! A [`FaultPlan`] describes *which* messages misbehave — dropped, bit-flip
//! corrupted, or jittered — plus per-rank straggler slowdowns and one-shot
//! rank-crash events. Decisions are **stateless**: each one is a pure hash
//! of `(seed, from, to, per-destination send index)`, so they do not depend
//! on thread interleaving or wall-clock time and the same plan replayed on
//! the same schedule yields a bit-identical virtual-time trace (the property
//! `tests/chaos.rs` pins down).
//!
//! Faults act on the *data plane* only: [`crate::Comm::send_reliable`]
//! bypasses the plan, modelling link-level-protected control traffic
//! (ACK/NACK frames of the resilient transport in `hzccl`).

/// Per-link fault probabilities and jitter bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability that a message is lost in transit. The payload still
    /// crosses the channel (virtual time needs its arrival) but is marked
    /// dropped: a resilient receiver times out and NACKs, a plain `recv`
    /// panics loudly.
    pub drop_p: f64,
    /// Probability that one uniformly chosen payload bit is flipped.
    pub corrupt_p: f64,
    /// Upper bound of extra per-message delivery jitter, in seconds
    /// (uniform in `[0, jitter_s]`, added to the arrival time).
    pub jitter_s: f64,
}

impl LinkFault {
    /// A perfectly healthy link.
    pub const NONE: LinkFault = LinkFault { drop_p: 0.0, corrupt_p: 0.0, jitter_s: 0.0 };
}

/// What a [`FaultPlan`] decided for one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultDecision {
    /// Deliver the message marked as lost.
    pub drop: bool,
    /// Flip this payload bit index before delivery.
    pub corrupt_bit: Option<usize>,
    /// Extra delivery delay in seconds.
    pub jitter_s: f64,
}

/// The kind of an injected fault, as recorded on the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Message marked lost in transit.
    Drop,
    /// One payload bit flipped in transit.
    Corrupt,
    /// Extra delivery delay added.
    Jitter,
    /// The sending rank crashed (one-shot, per plan).
    Crash,
}

impl FaultKind {
    /// Stable lowercase name (metrics labels, trace exports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Jitter => "jitter",
            FaultKind::Crash => "crash",
        }
    }
}

/// A deterministic, seeded chaos plan for one cluster run.
///
/// Built with `FaultPlan::new(seed)` plus the `with_*` builders; wired in
/// through [`crate::SimBuilder::faults`]. All decisions derive from the
/// seed — no wall clock, no shared RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Fault parameters applied to every link without an override.
    default: LinkFault,
    /// `(from, to)` overrides, taking precedence over `default`.
    links: Vec<((usize, usize), LinkFault)>,
    /// `(rank, slowdown)`: compute on `rank` takes `slowdown`× as long.
    stragglers: Vec<(usize, f64)>,
    /// `(rank, send_step)`: `rank` crashes when posting its `send_step`-th
    /// message (0-based, counted over all its sends).
    crashes: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default: LinkFault::NONE,
            links: Vec::new(),
            stragglers: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Message drop probability on every link.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.default.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Single-bit corruption probability on every link.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.default.corrupt_p = p.clamp(0.0, 1.0);
        self
    }

    /// Extra uniform delivery jitter bound (seconds) on every link.
    pub fn with_jitter(mut self, jitter_s: f64) -> FaultPlan {
        self.default.jitter_s = jitter_s.max(0.0);
        self
    }

    /// Override the fault parameters of one directed link `from -> to`.
    pub fn with_link(mut self, from: usize, to: usize, fault: LinkFault) -> FaultPlan {
        self.links.retain(|((f, t), _)| !(*f == from && *t == to));
        self.links.push(((from, to), fault));
        self
    }

    /// Mark `rank` as a straggler: its compute kernels take `slowdown`× as
    /// long (`1.0` is a no-op; values below 1 speed the rank up).
    pub fn with_straggler(mut self, rank: usize, slowdown: f64) -> FaultPlan {
        self.stragglers.retain(|(r, _)| *r != rank);
        self.stragglers.push((rank, slowdown.max(0.0)));
        self
    }

    /// Crash `rank` at its first *data-plane* send at or after `send_step`
    /// (0-based, counted over every send the rank performs; control traffic
    /// via [`crate::Comm::send_reliable`] advances the count but never
    /// triggers the crash — see DESIGN.md §5.5). One-shot: the rank
    /// broadcasts a crash notice to all peers and panics; peers blocked on
    /// it panic in turn — unless they run in survivable mode and repair —
    /// so the whole run terminates cleanly and
    /// [`crate::RunReport::panics`] reports who died and why. Call
    /// repeatedly to crash several ranks.
    pub fn with_crash(mut self, rank: usize, send_step: u64) -> FaultPlan {
        self.crashes.retain(|(r, _)| *r != rank);
        self.crashes.push((rank, send_step));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The compute-slowdown factor of `rank` (1.0 unless configured).
    pub fn straggler_scale(&self, rank: usize) -> f64 {
        self.stragglers.iter().find(|(r, _)| *r == rank).map_or(1.0, |(_, s)| *s)
    }

    /// The send step at which `rank` crashes, if any.
    pub fn crash_step(&self, rank: usize) -> Option<u64> {
        self.crashes.iter().find(|(r, _)| *r == rank).map(|(_, s)| *s)
    }

    fn link(&self, from: usize, to: usize) -> LinkFault {
        self.links
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map_or(self.default, |(_, l)| *l)
    }

    /// The fault decision of the `k`-th fault-eligible message on the
    /// directed link `from -> to` with `payload_bits` payload bits.
    pub(crate) fn decide(
        &self,
        from: usize,
        to: usize,
        k: u64,
        payload_bits: usize,
    ) -> FaultDecision {
        let l = self.link(from, to);
        if l == LinkFault::NONE {
            return FaultDecision { drop: false, corrupt_bit: None, jitter_s: 0.0 };
        }
        let key = |salt: u64| hash(&[self.seed, from as u64, to as u64, k, salt]);
        let drop = l.drop_p > 0.0 && unit(key(1)) < l.drop_p;
        // a dropped message never reaches the receiver, so corrupting or
        // jittering it would only perturb nothing
        let corrupt_bit =
            (!drop && payload_bits > 0 && l.corrupt_p > 0.0 && unit(key(2)) < l.corrupt_p)
                .then(|| (key(3) % payload_bits as u64) as usize);
        let jitter_s = if !drop && l.jitter_s > 0.0 { unit(key(4)) * l.jitter_s } else { 0.0 };
        FaultDecision { drop, corrupt_bit, jitter_s }
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixing function.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a word sequence through the mixer (order-sensitive).
fn hash(parts: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi, nothing up the sleeve
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Map a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(7).with_drop(0.3).with_corrupt(0.2).with_jitter(1e-5);
        let a: Vec<_> = (0..100).map(|k| plan.decide(0, 1, k, 800)).collect();
        let b: Vec<_> = (0..100).map(|k| plan.decide(0, 1, k, 800)).collect();
        assert_eq!(a, b, "same plan, same decisions");
        let other = FaultPlan::new(8).with_drop(0.3).with_corrupt(0.2).with_jitter(1e-5);
        let c: Vec<_> = (0..100).map(|k| other.decide(0, 1, k, 800)).collect();
        assert_ne!(a, c, "a different seed must reshuffle the fault pattern");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let plan = FaultPlan::new(42).with_drop(0.25);
        let drops = (0..4000).filter(|&k| plan.decide(2, 3, k, 64).drop).count();
        assert!((800..1200).contains(&drops), "{drops} drops out of 4000 at p=0.25");
    }

    #[test]
    fn link_overrides_beat_the_default() {
        let plan = FaultPlan::new(1).with_drop(1.0).with_link(0, 1, LinkFault::NONE).with_link(
            0,
            1,
            LinkFault { drop_p: 0.0, corrupt_p: 1.0, jitter_s: 0.0 },
        );
        let healthy = plan.decide(0, 1, 0, 64);
        assert!(!healthy.drop, "override replaces the lossy default");
        assert!(healthy.corrupt_bit.is_some());
        assert!(plan.decide(1, 0, 0, 64).drop, "other links keep the default");
    }

    #[test]
    fn dropped_messages_are_not_also_corrupted_or_jittered() {
        let plan = FaultPlan::new(3).with_drop(0.5).with_corrupt(1.0).with_jitter(1e-3);
        for k in 0..200 {
            let d = plan.decide(0, 1, k, 128);
            if d.drop {
                assert_eq!(d.corrupt_bit, None);
                assert_eq!(d.jitter_s, 0.0);
            } else {
                assert!(d.corrupt_bit.is_some(), "corrupt_p=1 must flip surviving messages");
            }
        }
    }

    #[test]
    fn corrupt_bit_stays_in_bounds_and_varies() {
        let plan = FaultPlan::new(11).with_corrupt(1.0);
        let bits: Vec<usize> =
            (0..64).map(|k| plan.decide(0, 1, k, 96).corrupt_bit.unwrap()).collect();
        assert!(bits.iter().all(|&b| b < 96));
        assert!(bits.iter().collect::<std::collections::BTreeSet<_>>().len() > 10);
    }

    #[test]
    fn straggler_and_crash_lookups() {
        let plan = FaultPlan::new(0).with_straggler(2, 3.5).with_crash(1, 40);
        assert_eq!(plan.straggler_scale(2), 3.5);
        assert_eq!(plan.straggler_scale(0), 1.0);
        assert_eq!(plan.crash_step(1), Some(40));
        assert_eq!(plan.crash_step(2), None);
        // re-registering replaces
        let plan = plan.with_straggler(2, 2.0).with_crash(1, 7);
        assert_eq!(plan.straggler_scale(2), 2.0);
        assert_eq!(plan.crash_step(1), Some(7));
    }

    #[test]
    fn empty_payload_is_never_corrupted() {
        let plan = FaultPlan::new(5).with_corrupt(1.0);
        assert_eq!(plan.decide(0, 1, 0, 0).corrupt_bit, None);
    }
}
