//! Per-rank cost breakdown (the DPR+CPT+CPR / MPI / OTHER split of Fig. 2 and
//! Table VII).

use crate::config::OpKind;
use std::fmt;
use std::ops::AddAssign;

/// Virtual seconds charged to each cost bucket on one rank (or aggregated
/// over ranks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Compression time.
    pub cpr: f64,
    /// Decompression time.
    pub dpr: f64,
    /// Homomorphic processing time.
    pub hpr: f64,
    /// Raw reduction arithmetic time.
    pub cpt: f64,
    /// Everything else charged explicitly.
    pub other: f64,
    /// Time spent blocked on communication.
    pub mpi: f64,
}

impl Breakdown {
    /// Charge `secs` to the bucket for `kind`.
    pub fn charge(&mut self, kind: OpKind, secs: f64) {
        match kind {
            OpKind::Cpr => self.cpr += secs,
            OpKind::Dpr => self.dpr += secs,
            OpKind::Hpr => self.hpr += secs,
            OpKind::Cpt => self.cpt += secs,
            OpKind::Other => self.other += secs,
        }
    }

    /// Total virtual time across all buckets.
    pub fn total(&self) -> f64 {
        self.cpr + self.dpr + self.hpr + self.cpt + self.other + self.mpi
    }

    /// The paper's Fig. 2 aggregate: decompression + computation +
    /// compression (+ homomorphic processing, which replaces them in hZCCL).
    pub fn doc_related(&self) -> f64 {
        self.cpr + self.dpr + self.hpr + self.cpt
    }

    /// `(doc_related, mpi, other)` as percentages of the total; zeros for an
    /// empty breakdown.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.doc_related() * 100.0 / t, self.mpi * 100.0 / t, self.other * 100.0 / t)
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.cpr += rhs.cpr;
        self.dpr += rhs.dpr;
        self.hpr += rhs.hpr;
        self.cpt += rhs.cpt;
        self.other += rhs.other;
        self.mpi += rhs.mpi;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (doc, mpi, other) = self.percentages();
        write!(
            f,
            "DOC-related {doc:.2}% (cpr {:.3}s dpr {:.3}s hpr {:.3}s cpt {:.3}s) | MPI {mpi:.2}% | OTHER {other:.2}%",
            self.cpr, self.dpr, self.hpr, self.cpt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_to_right_bucket() {
        let mut b = Breakdown::default();
        b.charge(OpKind::Cpr, 1.0);
        b.charge(OpKind::Dpr, 2.0);
        b.charge(OpKind::Hpr, 3.0);
        b.charge(OpKind::Cpt, 4.0);
        b.charge(OpKind::Other, 5.0);
        b.mpi = 5.0;
        assert_eq!(b.total(), 20.0);
        assert_eq!(b.doc_related(), 10.0);
        let (doc, mpi, other) = b.percentages();
        assert!((doc - 50.0).abs() < 1e-12);
        assert!((mpi - 25.0).abs() < 1e-12);
        assert!((other - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_percentages() {
        assert_eq!(Breakdown::default().percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Breakdown { cpr: 1.0, ..Default::default() };
        a += Breakdown { mpi: 2.0, ..Default::default() };
        assert_eq!(a.cpr, 1.0);
        assert_eq!(a.mpi, 2.0);
    }
}
