//! The simulation front-end: [`SimBuilder`] configures a virtual cluster,
//! [`SimBuilder::run`] executes a closure on every rank under the selected
//! [`SimEngine`], and a typed [`RunReport`] carries everything one run
//! produces — per-rank outcomes, aggregate stats, flight-recorder traces
//! and rank panics.
//!
//! This replaced the historic `Cluster::{run, try_run, run_stats}` trio
//! and its accumulating `with_*` chain; the deprecated wrappers are gone
//! (DESIGN.md §10.3 keeps the migration table).

use crate::breakdown::Breakdown;
use crate::comm::Comm;
use crate::config::{ComputeTiming, NetConfig};
use crate::engine;
use crate::faults::FaultPlan;
use crate::topology::Topology;
use crate::trace::{RankTrace, TraceConfig};

/// Result of one rank's participation in a [`SimBuilder::run`].
#[derive(Debug, Clone)]
pub struct RankOutcome<R> {
    /// The rank this outcome belongs to. Equal to its index in
    /// [`RunReport::outcomes`] on a clean run; meaningful on its own when
    /// some ranks crashed.
    pub rank: usize,
    /// Whatever the rank closure returned.
    pub value: R,
    /// The rank's final virtual clock, in seconds.
    pub elapsed: f64,
    /// The rank's cost breakdown.
    pub breakdown: Breakdown,
}

/// A rank that died, with the panic message it died with.
///
/// [`RunReport::panics`] surfaces these as values, so chaos tests can assert
/// *which* rank crashed and *why* (e.g. a fault-plan crash vs. a cascading
/// crash notice on a peer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPanic {
    /// The rank that panicked.
    pub rank: usize,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case: `panic!`/`assert!` messages); a description otherwise.
    pub message: String,
}

/// Aggregate view over the completed ranks of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Completion time of the slowest rank (the collective's latency).
    pub makespan: f64,
    /// Sum of all ranks' breakdowns.
    pub total: Breakdown,
}

/// Which execution engine drives the ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Fibers under a cooperative virtual-time scheduler on one OS thread:
    /// ~20 ns suspensions instead of µs-scale thread parking, unlocking
    /// 10k+-rank simulations. The default. On targets without a fiber
    /// backend (anything but x86-64/aarch64) runs fall back to
    /// [`SimEngine::Threads`] — results are identical either way, only the
    /// scale ceiling differs.
    #[default]
    Events,
    /// One OS thread per rank over `mpsc` channels — the original model,
    /// kept for cross-engine equivalence testing. Caps out around the host's
    /// thread limit (~512 ranks).
    Threads,
}

impl SimEngine {
    /// Parse a CLI token (`"events"` / `"threads"`).
    pub fn parse(s: &str) -> Option<SimEngine> {
        match s {
            "events" | "event" => Some(SimEngine::Events),
            "threads" | "thread" => Some(SimEngine::Threads),
            _ => None,
        }
    }

    /// Stable lowercase name (`"events"` / `"threads"`).
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::Events => "events",
            SimEngine::Threads => "threads",
        }
    }

    /// Whether this target has the fiber backend the event engine needs.
    /// When `false`, [`SimEngine::Events`] silently runs on threads.
    pub fn events_supported() -> bool {
        engine::fiber::SUPPORTED
    }
}

/// Everything a [`SimBuilder::run`] produces.
///
/// On a clean run `outcomes[rank].rank == rank`, `panics` is empty, and —
/// when tracing was enabled — `traces[rank].rank == rank`. When ranks
/// crashed, `outcomes`/`traces` hold the survivors (still in rank order,
/// each stamped with its rank) and `panics` the casualties.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Per-rank results of the ranks that completed, in rank order.
    pub outcomes: Vec<RankOutcome<R>>,
    /// The ranks that died, in rank order; empty on a clean run.
    pub panics: Vec<RankPanic>,
    /// Aggregates over the completed ranks.
    pub stats: RunStats,
    /// Flight-recorder traces of the completed ranks, in rank order; empty
    /// unless the run was configured with [`SimBuilder::trace`].
    pub traces: Vec<RankTrace>,
}

impl<R> RunReport<R> {
    fn from_raw(raw: engine::RawRun<R>) -> RunReport<R> {
        let mut outcomes = Vec::with_capacity(raw.fates.len());
        let mut panics = Vec::new();
        for fate in raw.fates {
            match fate {
                Ok(o) => outcomes.push(o),
                Err(p) => panics.push(p),
            }
        }
        let mut stats = RunStats { makespan: 0.0, total: Breakdown::default() };
        for o in &outcomes {
            stats.makespan = stats.makespan.max(o.elapsed);
            stats.total += o.breakdown;
        }
        RunReport { outcomes, panics, stats, traces: raw.traces }
    }

    /// True iff every rank completed.
    pub fn is_clean(&self) -> bool {
        self.panics.is_empty()
    }

    /// Assert the run was clean, propagating the first rank panic otherwise
    /// (chainable: `sim.run(f).expect_clean().outcomes`).
    #[track_caller]
    pub fn expect_clean(self) -> Self {
        if let Some(p) = self.panics.first() {
            panic!("rank {} panicked: {}", p.rank, p.message);
        }
        self
    }

    /// The per-rank closure return values in rank order; panics if any rank
    /// died.
    #[track_caller]
    pub fn values(self) -> Vec<R> {
        self.expect_clean().outcomes.into_iter().map(|o| o.value).collect()
    }

    /// The completed outcome of `rank`, if it completed.
    pub fn outcome(&self, rank: usize) -> Option<&RankOutcome<R>> {
        self.outcomes.binary_search_by_key(&rank, |o| o.rank).ok().map(|i| &self.outcomes[i])
    }

    /// The closure return value of `rank`; panics (with the rank's own panic
    /// message, if it died) when there is no outcome for it.
    #[track_caller]
    pub fn value(&self, rank: usize) -> &R {
        match self.outcome(rank) {
            Some(o) => &o.value,
            None => match self.panic_of(rank) {
                Some(p) => panic!("rank {} panicked: {}", p.rank, p.message),
                None => panic!("no such rank: {rank}"),
            },
        }
    }

    /// The panic that killed `rank`, if it died.
    pub fn panic_of(&self, rank: usize) -> Option<&RankPanic> {
        self.panics.iter().find(|p| p.rank == rank)
    }

    /// The flight-recorder trace of `rank`, if it completed under tracing.
    pub fn trace_of(&self, rank: usize) -> Option<&RankTrace> {
        self.traces.binary_search_by_key(&rank, |t| t.rank).ok().map(|i| &self.traces[i])
    }

    /// Per-rank fates in rank order: `Ok` for survivors, `Err` for
    /// casualties.
    pub fn fates(&self) -> Vec<Result<&RankOutcome<R>, &RankPanic>> {
        let n = self.outcomes.len() + self.panics.len();
        let mut out = Vec::with_capacity(n);
        let (mut oi, mut pi) = (0, 0);
        for rank in 0..n {
            if oi < self.outcomes.len() && self.outcomes[oi].rank == rank {
                out.push(Ok(&self.outcomes[oi]));
                oi += 1;
            } else {
                debug_assert!(pi < self.panics.len() && self.panics[pi].rank == rank);
                out.push(Err(&self.panics[pi]));
                pi += 1;
            }
        }
        out
    }

    /// Completion time of the slowest completed rank.
    pub fn makespan(&self) -> f64 {
        self.stats.makespan
    }
}

/// A virtual cluster configuration: rank count, network model, compute
/// timing, optional tracing/faults/topology, and the execution engine.
///
/// ```
/// use netsim::{OpKind, SimBuilder};
///
/// let report = SimBuilder::new(4).run(|comm| {
///     let rank = comm.rank();
///     let to = (rank + 1) % comm.size();
///     let from = (rank + comm.size() - 1) % comm.size();
///     let got = comm.sendrecv(to, 0, vec![rank as u8], from);
///     comm.compute(OpKind::Cpt, 1, || got[0] as usize + rank)
/// });
/// assert_eq!(report.outcomes.len(), 4);
/// assert!(report.stats.makespan > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    pub(crate) nprocs: usize,
    pub(crate) net: NetConfig,
    pub(crate) timing: ComputeTiming,
    pub(crate) trace: Option<TraceConfig>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) topology: Option<Topology>,
    pub(crate) engine: SimEngine,
    pub(crate) stack_bytes: usize,
}

impl SimBuilder {
    /// A simulation of `nprocs` ranks with the default (Omni-Path-class)
    /// network, measured compute timing, tracing disabled, no faults, a
    /// flat fabric, and the event engine.
    pub fn new(nprocs: usize) -> SimBuilder {
        assert!(nprocs > 0, "simulation needs at least one rank");
        SimBuilder {
            nprocs,
            net: NetConfig::default(),
            timing: ComputeTiming::Measured,
            trace: None,
            faults: None,
            topology: None,
            engine: SimEngine::default(),
            stack_bytes: 1 << 20,
        }
    }

    /// Replace the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replace the compute-timing mode.
    pub fn timing(mut self, timing: ComputeTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Enable the flight recorder: every rank records structured
    /// [`crate::trace::Event`]s on the virtual timeline, returned in
    /// [`RunReport::traces`]. Off by default; when off, the per-event record
    /// sites compile down to a `None` branch with zero allocation.
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Inject faults: every rank's sends and compute run under the plan's
    /// seeded, deterministic chaos decisions (drops, corruption, jitter,
    /// stragglers, crashes). Off by default; `None`-equivalent plans (no
    /// probabilities set) leave behaviour bit-identical to a fault-free run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Shape the fabric: every `(src, dst)` pair resolves to its
    /// [`crate::topology::LinkTier`]'s link model instead of the flat
    /// [`NetConfig`], and sends are stamped with the tier they crossed.
    /// `topology.nranks()` must equal the rank count. Off by default;
    /// without a topology every send takes the exact flat-model arithmetic
    /// path, so untopologized runs stay bit-identical.
    pub fn topology(mut self, topology: Topology) -> Self {
        assert!(
            topology.nranks() == self.nprocs,
            "topology is {} ranks ({}), simulation has {}",
            topology.nranks(),
            topology.describe(),
            self.nprocs
        );
        self.topology = Some(topology);
        self
    }

    /// Select the execution engine (default: [`SimEngine::Events`]).
    pub fn engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Per-rank fiber stack size for the event engine, in bytes (default
    /// 1 MiB, floor 64 KiB). Stacks are reserved lazily, so large values
    /// cost address space, not resident memory. Ignored by the thread
    /// engine.
    pub fn stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = bytes;
        self
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Run `f` on every rank; real data flows through real buffers, time is
    /// virtual. Returns the full [`RunReport`]; rank panics are reported in
    /// [`RunReport::panics`], never re-raised here.
    pub fn run<F, R>(&self, f: F) -> RunReport<R>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let raw = match self.engine {
            SimEngine::Events if engine::fiber::SUPPORTED => engine::events::run(self, &f),
            SimEngine::Events | SimEngine::Threads => engine::threads::run(self, &f),
        };
        RunReport::from_raw(raw)
    }
}
