//! Flight recorder: per-rank structured event tracing on the virtual
//! timeline, plus Chrome-trace (Perfetto) and ASCII Gantt exporters.
//!
//! Tracing is **off by default** and enabled per run with
//! [`crate::SimBuilder::trace`] (traces come back in
//! [`crate::RunReport::traces`]). When disabled, every record site inside
//! [`crate::Comm`] reduces to a single `Option` branch — no event is
//! constructed and nothing is allocated (the zero-overhead contract DESIGN.md
//! §"Observability" documents and `tests/trace.rs` pins down).
//!
//! Every event carries its *start* virtual time `t` and a duration, so the
//! per-rank event stream reconstructs the rank's [`Breakdown`] exactly:
//!
//! * `Compute { kind, secs }` sums match the `cpr`/`dpr`/`hpr`/`cpt` buckets,
//! * `Send.inject_secs` plus `Compute(Other)` sums match `other`,
//! * `Recv.wait_secs` sums match `mpi`.

use crate::breakdown::Breakdown;
use crate::config::OpKind;
use crate::critpath::{CriticalPath, SpanKind};
use crate::faults::FaultKind;
use crate::json::Json;
use crate::topology::LinkTier;

/// Configuration for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Initial per-rank event-buffer capacity (one up-front allocation; the
    /// buffer grows amortized beyond it).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1024 }
    }
}

/// One structured event on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message departure. `t` is the clock when the send was posted; the
    /// sender's injection overhead (`inject_secs`, the α portion of the
    /// network model) is charged to the sender's `other` bucket.
    Send {
        /// Start time (virtual seconds).
        t: f64,
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Bytes that travel the wire (compressed size for compressed
        /// collectives).
        wire_bytes: usize,
        /// Uncompressed-equivalent bytes this message represents; equals
        /// `wire_bytes` for uncompressed traffic. `logical/wire` is the
        /// per-step achieved compression ratio.
        logical_bytes: usize,
        /// Sender-side injection overhead charged at this event.
        inject_secs: f64,
        /// Fabric tier the message crossed ([`LinkTier::Flat`] when the
        /// cluster has no topology).
        tier: LinkTier,
    },
    /// A message receipt. `t` is the clock when the receive was posted;
    /// `wait_secs` is the blocking time until the message's arrival
    /// (zero if it had already arrived), charged to the `mpi` bucket.
    Recv {
        /// Start time (virtual seconds).
        t: f64,
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
        /// Bytes that travelled the wire.
        wire_bytes: usize,
        /// Blocking wait charged to the `mpi` bucket.
        wait_secs: f64,
    },
    /// A compute kernel (or an analytic [`crate::Comm::advance`] charge).
    Compute {
        /// Start time (virtual seconds).
        t: f64,
        /// Cost bucket.
        kind: OpKind,
        /// Uncompressed-equivalent bytes the kernel touched.
        bytes: usize,
        /// Charged duration.
        secs: f64,
        /// Pipeline-step label (e.g. `"hz:homomorphic-sum"`); empty when the
        /// call site did not label itself.
        label: &'static str,
    },
    /// A fault injected by the cluster's [`crate::FaultPlan`], recorded on
    /// the *sending* rank at zero duration (the fault itself costs nothing;
    /// its consequences — waits, retransmits — show up as ordinary events).
    Fault {
        /// Virtual time of the affected send.
        t: f64,
        /// What was injected.
        kind: FaultKind,
        /// Destination rank of the affected message (the crashing rank
        /// itself for [`FaultKind::Crash`]).
        to: usize,
        /// Tag of the affected message (0 for a crash).
        tag: u64,
        /// Kind-specific detail: flipped bit index (corrupt), extra delay in
        /// seconds (jitter), crash send-step (crash), 0 (drop).
        detail: f64,
    },
}

impl Event {
    /// Virtual start time of the event.
    pub fn start(&self) -> f64 {
        match *self {
            Event::Send { t, .. }
            | Event::Recv { t, .. }
            | Event::Compute { t, .. }
            | Event::Fault { t, .. } => t,
        }
    }

    /// Charged duration of the event (zero-cost events return 0).
    pub fn duration(&self) -> f64 {
        match *self {
            Event::Send { inject_secs, .. } => inject_secs,
            Event::Recv { wait_secs, .. } => wait_secs,
            Event::Compute { secs, .. } => secs,
            Event::Fault { .. } => 0.0,
        }
    }

    /// Virtual end time of the event.
    pub fn end(&self) -> f64 {
        self.start() + self.duration()
    }
}

/// The recorded event stream of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank that produced the events.
    pub rank: usize,
    /// Events in the order they occurred (non-decreasing `start()`).
    pub events: Vec<Event>,
}

impl RankTrace {
    /// Reconstruct the rank's [`Breakdown`] purely from the event stream.
    /// Matches the rank's live accounting exactly (same `f64` additions in
    /// the same order), which `tests/trace.rs` relies on.
    pub fn reconstructed_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for ev in &self.events {
            match *ev {
                Event::Compute { kind, secs, .. } => b.charge(kind, secs),
                Event::Send { inject_secs, .. } => b.charge(OpKind::Other, inject_secs),
                Event::Recv { wait_secs, .. } => b.mpi += wait_secs,
                Event::Fault { .. } => {} // zero-cost annotation
            }
        }
        b
    }

    /// Sum of charged compute seconds for one bucket (send injection counts
    /// toward [`OpKind::Other`]).
    pub fn seconds(&self, kind: OpKind) -> f64 {
        let mut total = 0.0;
        for ev in &self.events {
            match *ev {
                Event::Compute { kind: k, secs, .. } if k == kind => total += secs,
                Event::Send { inject_secs, .. } if kind == OpKind::Other => total += inject_secs,
                _ => {}
            }
        }
        total
    }

    /// Sum of blocking receive waits (the `mpi` bucket).
    pub fn wait_seconds(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match *e {
                Event::Recv { wait_secs, .. } => wait_secs,
                _ => 0.0,
            })
            .sum()
    }

    /// Virtual end time of the last event (0 for an empty trace).
    pub fn end_time(&self) -> f64 {
        self.events.iter().map(|e| e.end()).fold(0.0, f64::max)
    }
}

/// Export traces as Chrome trace-event JSON (the format `chrome://tracing`
/// and [Perfetto](https://ui.perfetto.dev) load). One *pid* per rank; every
/// recorded duration becomes one `traceEvents` entry ("X" complete events),
/// plus one `process_name` metadata entry per rank. [`Event::Fault`]s and the
/// resilient transport's zero-duration `res:*` markers render as **instant
/// events** (`ph: "i"`) under their own `fault` / `resilience` categories,
/// so chaos runs are visually debuggable rather than merely countable.
pub fn chrome_trace(traces: &[RankTrace]) -> String {
    chrome_trace_with(traces, None)
}

/// [`chrome_trace`] with an optional critical-path overlay: every rank event
/// gains a `slack` argument (seconds it could slip without growing the
/// makespan) and the extracted path is rendered as a synthetic extra process
/// so the binding chain reads left-to-right across ranks in the viewer.
pub fn chrome_trace_with(traces: &[RankTrace], critpath: Option<&CriticalPath>) -> String {
    let us = |secs: f64| Json::Num(secs * 1e6);
    let mut events = Vec::new();
    for trace in traces {
        let pid = trace.rank as f64;
        events.push(Json::obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(pid)),
            ("tid", Json::Num(0.0)),
            ("args", Json::obj(vec![("name", Json::Str(format!("rank {}", trace.rank)))])),
        ]));
        for (idx, ev) in trace.events.iter().enumerate() {
            // zero-cost annotations (injected faults, res:* markers) become
            // instant events with a dedicated category
            let instant = match *ev {
                Event::Fault { kind, to, tag, detail, .. } => Some((
                    format!("fault:{}", kind.name()),
                    "fault",
                    Json::obj(vec![
                        ("to", Json::Num(to as f64)),
                        ("tag", Json::Num(tag as f64)),
                        ("detail", Json::Num(detail)),
                    ]),
                )),
                Event::Compute { secs, label, .. } if secs == 0.0 && label.starts_with("res:") => {
                    Some((label.to_string(), "resilience", Json::obj(vec![])))
                }
                _ => None,
            };
            if let Some((name, cat, args)) = instant {
                events.push(Json::obj(vec![
                    ("name", Json::Str(name)),
                    ("cat", Json::Str(cat.into())),
                    ("ph", Json::Str("i".into())),
                    ("ts", us(ev.start())),
                    ("s", Json::Str("t".into())),
                    ("pid", Json::Num(pid)),
                    ("tid", Json::Num(0.0)),
                    ("args", args),
                ]));
                continue;
            }
            let (name, cat, mut args) = match *ev {
                Event::Send { to, tag, wire_bytes, logical_bytes, tier, .. } => {
                    let mut fields = vec![
                        ("to", Json::Num(to as f64)),
                        ("tag", Json::Num(tag as f64)),
                        ("wire_bytes", Json::Num(wire_bytes as f64)),
                        ("logical_bytes", Json::Num(logical_bytes as f64)),
                    ];
                    // only topologized runs grow the extra arg, so flat
                    // chrome exports stay byte-identical
                    if tier != LinkTier::Flat {
                        fields.push(("tier", Json::Str(tier.name().into())));
                    }
                    (format!("send\u{2192}{to}"), "send", Json::obj(fields))
                }
                Event::Recv { from, tag, wire_bytes, .. } => (
                    format!("recv\u{2190}{from}"),
                    "wait",
                    Json::obj(vec![
                        ("from", Json::Num(from as f64)),
                        ("tag", Json::Num(tag as f64)),
                        ("wire_bytes", Json::Num(wire_bytes as f64)),
                    ]),
                ),
                Event::Compute { kind, bytes, label, .. } => (
                    if label.is_empty() { kind.name().to_string() } else { label.to_string() },
                    kind.name(),
                    Json::obj(vec![("bytes", Json::Num(bytes as f64))]),
                ),
                Event::Fault { .. } => unreachable!("faults render as instant events"),
            };
            if let Some(cp) = critpath {
                let slack =
                    cp.slack.get(trace.rank).and_then(|s| s.get(idx)).copied().unwrap_or(0.0);
                if let Json::Obj(fields) = &mut args {
                    fields.push(("slack".into(), Json::Num(slack)));
                }
            }
            events.push(Json::obj(vec![
                ("name", Json::Str(name)),
                ("cat", Json::Str(cat.into())),
                ("ph", Json::Str("X".into())),
                ("ts", us(ev.start())),
                ("dur", us(ev.duration())),
                ("pid", Json::Num(pid)),
                ("tid", Json::Num(0.0)),
                ("args", args),
            ]));
        }
    }
    if let Some(cp) = critpath {
        let pid = traces.len() as f64;
        events.push(Json::obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(pid)),
            ("tid", Json::Num(0.0)),
            ("args", Json::obj(vec![("name", Json::Str("critical path".into()))])),
        ]));
        for el in &cp.elements {
            let (name, args) = match el.span {
                SpanKind::Compute { rank, kind, label } => (
                    if label.is_empty() { kind.name().to_string() } else { label.to_string() },
                    Json::obj(vec![("rank", Json::Num(rank as f64))]),
                ),
                SpanKind::Inject { rank, to, tag, tier } => {
                    let mut fields =
                        vec![("rank", Json::Num(rank as f64)), ("tag", Json::Num(tag as f64))];
                    if tier != LinkTier::Flat {
                        fields.push(("tier", Json::Str(tier.name().into())));
                    }
                    (format!("alpha\u{2192}{to}"), Json::obj(fields))
                }
                SpanKind::Wire { from, to, tag, ser_secs, jitter_secs, tier } => {
                    let mut fields = vec![
                        ("tag", Json::Num(tag as f64)),
                        ("ser_secs", Json::Num(ser_secs)),
                        ("jitter_secs", Json::Num(jitter_secs)),
                    ];
                    if tier != LinkTier::Flat {
                        fields.push(("tier", Json::Str(tier.name().into())));
                    }
                    (format!("wire {from}\u{2192}{to}"), Json::obj(fields))
                }
                SpanKind::Wait { rank, from, tag } => (
                    format!("wait\u{2190}{from}"),
                    Json::obj(vec![
                        ("rank", Json::Num(rank as f64)),
                        ("tag", Json::Num(tag as f64)),
                    ]),
                ),
            };
            events.push(Json::obj(vec![
                ("name", Json::Str(name)),
                ("cat", Json::Str("critical".into())),
                ("ph", Json::Str("X".into())),
                ("ts", us(el.start)),
                ("dur", us(el.secs())),
                ("pid", Json::Num(pid)),
                ("tid", Json::Num(0.0)),
                ("args", args),
            ]));
        }
    }
    Json::obj(vec![("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::Str("ms".into()))])
        .render()
}

/// Render a terminal ASCII Gantt chart of a traced run: one row per rank,
/// one column per time bin, the glyph of the dominant activity in each bin
/// (`C`ompression, `D`ecompression, `H`omomorphic, cm`P`utation, `o`ther,
/// `.` = blocked on communication, space = done/idle).
pub fn ascii_timeline(traces: &[RankTrace], width: usize) -> String {
    let width = width.clamp(8, 512);
    let span = traces.iter().map(|t| t.end_time()).fold(0.0, f64::max);
    let mut out = String::new();
    if span <= 0.0 || traces.is_empty() {
        out.push_str("(empty timeline)\n");
        return out;
    }
    let col = span / width as f64;
    out.push_str(&format!(
        "virtual timeline: {} ranks, makespan {} (1 col = {})\n",
        traces.len(),
        fmt_secs(span),
        fmt_secs(col),
    ));
    // glyph order decides ties deterministically; '.' (wait) loses ties to
    // real work so short stalls do not mask computation
    const GLYPHS: [char; 6] = ['C', 'D', 'H', 'P', 'o', '.'];
    for trace in traces {
        let mut overlap = vec![[0.0f64; GLYPHS.len()]; width];
        for ev in &trace.events {
            let slot = match ev {
                Event::Compute { kind, .. } => kind.index().min(4),
                Event::Send { .. } => 4, // injection is charged to `other`
                Event::Recv { .. } => 5,
                Event::Fault { .. } => continue, // zero-duration, nothing to draw
            };
            let (start, end) = (ev.start(), ev.end());
            if end <= start {
                continue;
            }
            let first = ((start / col).floor() as usize).min(width - 1);
            let last = ((end / col).ceil() as usize).clamp(first + 1, width);
            for (c, cell) in overlap.iter_mut().enumerate().take(last).skip(first) {
                let c0 = c as f64 * col;
                let c1 = c0 + col;
                let covered = end.min(c1) - start.max(c0);
                if covered > 0.0 {
                    cell[slot] += covered;
                }
            }
        }
        out.push_str(&format!("rank {:>3} |", trace.rank));
        for cell in &overlap {
            let (mut best, mut best_cover) = (' ', 0.0f64);
            for (slot, &covered) in cell.iter().enumerate() {
                if covered > best_cover {
                    best_cover = covered;
                    best = GLYPHS[slot];
                }
            }
            // require a visible share of the column to draw anything
            out.push(if best_cover >= col * 0.05 { best } else { ' ' });
        }
        out.push_str("|\n");
    }
    out.push_str("legend: C=cpr D=dpr H=hpr P=cpt o=other .=recv-wait\n");
    out
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RankTrace {
        RankTrace {
            rank: 1,
            events: vec![
                Event::Compute { t: 0.0, kind: OpKind::Cpr, bytes: 100, secs: 0.4, label: "x:cpr" },
                Event::Send {
                    t: 0.4,
                    to: 0,
                    tag: 7,
                    wire_bytes: 40,
                    logical_bytes: 100,
                    inject_secs: 0.1,
                    tier: LinkTier::Flat,
                },
                Event::Recv { t: 0.5, from: 0, tag: 7, wire_bytes: 30, wait_secs: 0.5 },
                Event::Compute { t: 1.0, kind: OpKind::Hpr, bytes: 100, secs: 1.0, label: "" },
            ],
        }
    }

    #[test]
    fn reconstructed_breakdown_matches_charges() {
        let t = sample_trace();
        let b = t.reconstructed_breakdown();
        assert_eq!(b.cpr, 0.4);
        assert_eq!(b.hpr, 1.0);
        assert_eq!(b.other, 0.1);
        assert_eq!(b.mpi, 0.5);
        assert_eq!(t.seconds(OpKind::Other), 0.1);
        assert_eq!(t.wait_seconds(), 0.5);
        assert_eq!(t.end_time(), 2.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_and_covers_every_event() {
        let traces = vec![sample_trace()];
        let text = chrome_trace(&traces);
        let doc = Json::parse(&text).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let complete: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(complete.len(), traces[0].events.len());
        // ts/dur in microseconds of the first compute
        assert_eq!(complete[0].get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(complete[0].get("dur").unwrap().as_f64(), Some(0.4e6));
        assert_eq!(complete[0].get("name").unwrap().as_str(), Some("x:cpr"));
    }

    #[test]
    fn ascii_timeline_draws_dominant_activity() {
        let art = ascii_timeline(&[sample_trace()], 20);
        assert!(art.contains("rank   1 |"), "{art}");
        assert!(art.contains('C') && art.contains('H') && art.contains('.'), "{art}");
        assert!(art.contains("legend:"), "{art}");
    }

    #[test]
    fn fault_events_are_zero_cost_annotations() {
        let mut t = sample_trace();
        let base = t.reconstructed_breakdown();
        t.events.push(Event::Fault { t: 1.2, kind: FaultKind::Drop, to: 0, tag: 7, detail: 0.0 });
        t.events.push(Event::Fault {
            t: 1.3,
            kind: FaultKind::Corrupt,
            to: 0,
            tag: 7,
            detail: 13.0,
        });
        assert_eq!(t.events[4].duration(), 0.0);
        assert_eq!(t.reconstructed_breakdown(), base, "faults never charge a bucket");
        assert_eq!(t.end_time(), 2.0, "zero-duration faults do not extend the timeline");
        let text = chrome_trace(&[t.clone()]);
        assert!(text.contains("fault:drop") && text.contains("fault:corrupt"), "{text}");
        Json::parse(&text).expect("chrome trace with faults parses");
        assert!(ascii_timeline(&[t], 20).contains("legend:"));
    }

    #[test]
    fn empty_timeline_is_handled() {
        assert!(ascii_timeline(&[], 40).contains("empty"));
        let t = RankTrace { rank: 0, events: vec![] };
        assert!(ascii_timeline(&[t], 40).contains("empty"));
    }
}
