//! Network and compute-timing configuration for the simulated cluster.

/// α–β(+congestion) network model.
///
/// A message of `s` bytes sent between two ranks completes
/// `latency_s + s / effective_bandwidth` after it departs, where the
/// effective per-link bandwidth degrades logarithmically with the number of
/// participating ranks (fabric contention — the paper attributes the growth
/// of compression's benefit with node count to exactly this congestion
/// effect, Sec. IV-D).
///
/// The **default** models the *effective per-flow goodput* of the paper's
/// platform — one MPI process per node on 100 Gbps Omni-Path — not the line
/// rate: a single process drives roughly 1.5 GB/s of large-message goodput
/// (PSM2 single-core packing), further degraded by collective congestion.
/// These defaults are calibrated so the C-Coll cost breakdown of the paper's
/// Fig. 2 (ST: ~78% DOC / ~22% MPI while still beating MPI by ~1.5x) is
/// reproduced; see EXPERIMENTS.md. Use [`NetConfig::opa_line_rate`] for the
/// idealized 100 Gbps fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-message latency α in seconds. Default 3 µs (Omni-Path MPI
    /// large-message rendezvous class).
    pub latency_s: f64,
    /// Per-link bandwidth in Gbit/s. Default 12 (effective per-flow goodput
    /// of one process per node on the paper's Omni-Path fabric).
    pub bandwidth_gbps: f64,
    /// Congestion coefficient γ: effective byte time is scaled by
    /// `1 + γ * log2(nprocs)`. Default 0.3; set 0 for an ideal fabric.
    pub congestion: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { latency_s: 3e-6, bandwidth_gbps: 12.0, congestion: 0.3 }
    }
}

impl NetConfig {
    /// The idealized 100 Gbps Omni-Path line rate with low latency and no
    /// congestion — an upper bound, useful for sensitivity studies.
    pub fn opa_line_rate() -> Self {
        NetConfig { latency_s: 2e-6, bandwidth_gbps: 100.0, congestion: 0.0 }
    }

    /// Wire time for a message of `bytes` on a job of `nprocs` ranks.
    pub fn transfer_time(&self, bytes: usize, nprocs: usize) -> f64 {
        self.latency_s + self.serialization_time(bytes, nprocs)
    }

    /// The β (bandwidth) portion of [`NetConfig::transfer_time`]: time on
    /// the wire excluding the per-message latency α. [`crate::Comm::send`]
    /// charges α to the *sender* (injection overhead) and the message then
    /// arrives `serialization_time` later, so end-to-end unloaded latency is
    /// still exactly `transfer_time`.
    pub fn serialization_time(&self, bytes: usize, nprocs: usize) -> f64 {
        let beta = 8.0 / (self.bandwidth_gbps * 1e9); // seconds per byte
        let factor = 1.0 + self.congestion * (nprocs.max(1) as f64).log2();
        bytes as f64 * beta * factor
    }
}

/// Which cost bucket a compute kernel belongs to (the paper's breakdown
/// categories: compression, decompression, homomorphic processing, raw
/// reduction computation, everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Compression (CPR).
    Cpr,
    /// Decompression (DPR).
    Dpr,
    /// Homomorphic processing of one compressed block pair stream (HPR).
    Hpr,
    /// Raw (uncompressed) reduction arithmetic (CPT).
    Cpt,
    /// Anything else charged to the operation (buffer handling, size sync).
    Other,
}

impl OpKind {
    /// Bucket index used by throughput tables.
    pub const COUNT: usize = 5;

    /// Stable index of this kind.
    pub fn index(self) -> usize {
        match self {
            OpKind::Cpr => 0,
            OpKind::Dpr => 1,
            OpKind::Hpr => 2,
            OpKind::Cpt => 3,
            OpKind::Other => 4,
        }
    }

    /// All kinds in index order.
    pub const ALL: [OpKind; OpKind::COUNT] =
        [OpKind::Cpr, OpKind::Dpr, OpKind::Hpr, OpKind::Cpt, OpKind::Other];

    /// Stable lowercase name (metric labels, trace categories).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Cpr => "cpr",
            OpKind::Dpr => "dpr",
            OpKind::Hpr => "hpr",
            OpKind::Cpt => "cpt",
            OpKind::Other => "other",
        }
    }
}

/// Per-kind throughputs (GB/s of *uncompressed* bytes processed) for modeled
/// compute timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// GB/s for `[Cpr, Dpr, Hpr, Cpt, Other]`.
    pub gbps: [f64; OpKind::COUNT],
}

impl ThroughputModel {
    /// Build from explicit per-kind throughputs.
    pub fn new(cpr: f64, dpr: f64, hpr: f64, cpt: f64, other: f64) -> Self {
        ThroughputModel { gbps: [cpr, dpr, hpr, cpt, other] }
    }

    /// Modeled duration for `bytes` of kind `kind`.
    pub fn duration(&self, kind: OpKind, bytes: usize) -> f64 {
        let g = self.gbps[kind.index()];
        assert!(g > 0.0, "throughput for {kind:?} must be positive");
        bytes as f64 / (g * 1e9)
    }
}

/// How compute kernels are charged to the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeTiming {
    /// Charge the measured wall-clock time of the kernel. Accurate when the
    /// simulated ranks do not oversubscribe the host cores.
    Measured,
    /// Charge `bytes / throughput` from a calibrated model; the kernel still
    /// runs (data correctness is real), but its wall time is ignored. Use
    /// for rank counts far above the host core count.
    Modeled(ThroughputModel),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_in_bytes() {
        let net = NetConfig { latency_s: 1e-6, bandwidth_gbps: 80.0, congestion: 0.0 };
        let t1 = net.transfer_time(1_000_000, 2);
        let t2 = net.transfer_time(2_000_000, 2);
        assert!((t2 - t1 - (t1 - 1e-6)).abs() < 1e-12);
        // 1 MB at 80 Gbps = 0.1 ms
        assert!((t1 - 1e-6 - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn congestion_grows_with_ranks() {
        let net = NetConfig { latency_s: 0.0, bandwidth_gbps: 100.0, congestion: 0.1 };
        let t2 = net.transfer_time(1 << 20, 2);
        let t512 = net.transfer_time(1 << 20, 512);
        assert!(t512 > t2);
        // 1 + 0.1*9 vs 1 + 0.1*1
        assert!((t512 / t2 - 1.9 / 1.1).abs() < 1e-9);
    }

    #[test]
    fn modeled_duration() {
        let m = ThroughputModel::new(10.0, 20.0, 100.0, 30.0, 50.0);
        assert!((m.duration(OpKind::Cpr, 10_000_000_000) - 1.0).abs() < 1e-12);
        assert!((m.duration(OpKind::Hpr, 1_000_000_000) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn op_kind_indices_are_distinct() {
        use OpKind::*;
        let idx: Vec<usize> = [Cpr, Dpr, Hpr, Cpt, Other].iter().map(|k| k.index()).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), OpKind::COUNT);
    }
}
