//! Minimal hand-rolled JSON value, writer and parser.
//!
//! The observability layer (Chrome trace export, metrics snapshots) must not
//! pull `serde` into the dependency graph — tier-1 builds run without any
//! registry access — so this module provides the small JSON surface those
//! exporters need: a [`Json`] tree, a compact writer, and a strict
//! recursive-descent parser used to validate exported files in tests and by
//! `hzc sim --trace`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order via a key list so exported
/// documents render deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object accessor (ordered pairs).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object accessor as a map (convenience for unordered lookups).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        self.as_obj().map(|pairs| pairs.iter().map(|(k, v)| (k.as_str(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict: exactly one value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// JSON numbers must be finite; non-finite values render as `null`.
fn write_num(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance over one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("rank \"0\"\n".into())),
            ("n", Json::Num(3.0)),
            ("pi", Json::Num(3.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("x".into())])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }
}
