//! The event engine: every rank is a cooperatively-scheduled fiber on one
//! OS thread, and "time" is the same per-rank virtual clock the thread
//! engine uses.
//!
//! ## Why this is bit-compatible with the thread engine
//!
//! The simulation is a deterministic dataflow: each rank's clock, breakdown
//! and trace depend only on its own program order and on the `arrival`
//! stamps of the messages it *matches* — and matching (the pending-map +
//! per-`(from, tag)` FIFO in [`Comm`]) is independent of the order in which
//! messages from different senders reach the inbox. So any scheduler that
//! (a) preserves each rank's program order and (b) delivers each sender's
//! messages in send order produces identical results. OS threads satisfy
//! (a)+(b) by accident of `mpsc` FIFOs; this engine satisfies them by
//! construction, with a run-until-blocked schedule instead of a global
//! wall-clock race.
//!
//! ## Task states and scheduling
//!
//! Each rank fiber is `Ready`, `Running`, `Blocked` (its inbox is empty and
//! it needs a message) or `Done`. The scheduler drains a ready deque seeded
//! in rank order; a running fiber yields only when its inbox runs dry, and a
//! send to a blocked rank re-readies it. A blocked rank can therefore run
//! arbitrarily far "ahead" or "behind" its peers in virtual time — virtual
//! time is per-rank and only synchronises through message arrivals, exactly
//! as with one thread per rank.
//!
//! ## Deadlock and crashes
//!
//! If the ready deque empties while fibers are still blocked, no message can
//! ever arrive for them (virtual deadlock). The scheduler then poisons the
//! simulation and resumes each blocked fiber so its receive fails with the
//! same "sender ranks hung up" panic the thread engine's closed channel
//! would raise — the failure surfaces as per-rank [`RankPanic`]s, never as a
//! hang. Rank panics themselves are caught at the fiber boundary; the dying
//! rank broadcasts a crash notice that wakes and cascades through blocked
//! peers, mirroring the thread engine's poison-pill protocol.

use super::fiber::{self, Fiber, FiberStart};
use super::{execute_rank, RankFate, RawRun};
use crate::comm::{Comm, Endpoint, Message, MsgStatus};
use crate::sim::SimBuilder;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    Blocked,
    Done,
}

/// State shared between the scheduler and every rank fiber. Single-threaded
/// by construction (fibers all run on the scheduler's OS thread), so plain
/// `Cell`/`RefCell` interior mutability suffices; no borrow is ever held
/// across a context switch.
pub(crate) struct EventShared {
    sched_sp: Cell<*mut u8>,
    task_sps: Vec<Cell<*mut u8>>,
    status: Vec<Cell<Status>>,
    ready: RefCell<VecDeque<usize>>,
    inboxes: RefCell<Vec<VecDeque<Message>>>,
    /// Set on virtual deadlock; blocked fibers then fail their receives.
    poisoned: Cell<bool>,
}

impl EventShared {
    fn new(n: usize) -> EventShared {
        EventShared {
            sched_sp: Cell::new(std::ptr::null_mut()),
            task_sps: (0..n).map(|_| Cell::new(std::ptr::null_mut())).collect(),
            status: (0..n).map(|_| Cell::new(Status::Ready)).collect(),
            ready: RefCell::new(VecDeque::with_capacity(n)),
            inboxes: RefCell::new((0..n).map(|_| VecDeque::new()).collect()),
            poisoned: Cell::new(false),
        }
    }
}

/// A rank's handle onto the shared scheduler state: the event-engine
/// counterpart of the thread engine's `mpsc` sender/receiver pair.
pub(crate) struct EventEndpoint {
    shared: Rc<EventShared>,
    rank: usize,
}

impl EventEndpoint {
    /// Enqueue `msg` on `to`'s inbox, waking it if it is blocked.
    ///
    /// Panics if `to` already finished — the thread engine's send to a
    /// dropped receiver raises the same "receiver rank hung up", just
    /// non-deterministically (only when the receiver's thread happens to
    /// have exited first).
    pub(crate) fn deliver(&self, to: usize, msg: Message) {
        self.deliver_checked(to, msg, false);
    }

    /// [`EventEndpoint::deliver`] with an explicit leniency flag: in
    /// survivable mode a send to a finished (usually crashed) rank is
    /// silently discarded — the thread engine's `let _ = tx.send(..)` to a
    /// dropped receiver — instead of asserting. The dead rank never reads
    /// its inbox again, so dropping and enqueueing are observationally
    /// identical; dropping just mirrors the thread engine exactly.
    pub(crate) fn deliver_checked(&self, to: usize, msg: Message, lenient: bool) {
        if self.shared.status[to].get() == Status::Done {
            assert!(lenient, "receiver rank hung up: rank {to} already finished");
            return;
        }
        self.shared.inboxes.borrow_mut()[to].push_back(msg);
        if self.shared.status[to].get() == Status::Blocked {
            self.shared.status[to].set(Status::Ready);
            self.shared.ready.borrow_mut().push_back(to);
        }
    }

    /// Next inbox message, yielding to the scheduler while the inbox is
    /// empty. Panics once the simulation is poisoned (virtual deadlock) —
    /// the event-engine analogue of the thread engine's hung-up channel.
    pub(crate) fn recv_next(&self) -> Message {
        loop {
            if let Some(m) = self.shared.inboxes.borrow_mut()[self.rank].pop_front() {
                return m;
            }
            assert!(
                !self.shared.poisoned.get(),
                "sender ranks hung up: rank {} blocked on recv with no message in flight",
                self.rank
            );
            self.shared.status[self.rank].set(Status::Blocked);
            self.yield_to_scheduler();
        }
    }

    /// Non-blocking inbox pop (the probe path).
    pub(crate) fn try_recv_next(&self) -> Option<Message> {
        self.shared.inboxes.borrow_mut()[self.rank].pop_front()
    }

    /// Poison every unfinished peer's inbox with a crash notice (see
    /// [`Comm::broadcast_crash_notice`]).
    pub(crate) fn crash_broadcast(&self, clock: f64) {
        for to in 0..self.shared.task_sps.len() {
            // a finished peer no longer needs the notice
            if to == self.rank || self.shared.status[to].get() == Status::Done {
                continue;
            }
            self.deliver(
                to,
                Message {
                    from: self.rank,
                    tag: 0,
                    payload: Vec::new(),
                    arrival: clock,
                    status: MsgStatus::CrashNotice,
                },
            );
        }
    }

    fn yield_to_scheduler(&self) {
        unsafe {
            fiber::switch(self.shared.task_sps[self.rank].as_ptr(), self.shared.sched_sp.as_ptr())
        }
    }
}

/// Run `f` on every rank as a fiber under the cooperative scheduler.
pub(crate) fn run<F, R>(b: &SimBuilder, f: &F) -> RawRun<R>
where
    F: Fn(&mut Comm) -> R + Sync,
    R: Send,
{
    let n = b.nprocs;
    let shared = Rc::new(EventShared::new(n));
    let results: Rc<RefCell<Vec<Option<RankFate<R>>>>> =
        Rc::new(RefCell::new((0..n).map(|_| None).collect()));

    let mut fibers = Vec::with_capacity(n);
    for rank in 0..n {
        let shared2 = Rc::clone(&shared);
        let results2 = Rc::clone(&results);
        let faults = b.faults.clone();
        let (net, timing, topology, trace) = (b.net, b.timing, b.topology, b.trace);
        let body = move || {
            let endpoint = Endpoint::Events(EventEndpoint { shared: Rc::clone(&shared2), rank });
            let mut comm = Comm::for_rank(rank, n, net, timing, trace, topology, faults, endpoint);
            let fate = execute_rank(&mut comm, f);
            drop(comm); // release the endpoint's shared handle eagerly
            results2.borrow_mut()[rank] = Some(fate);
            shared2.status[rank].set(Status::Done);
        };
        // SAFETY: lifetime erasure only. Every fiber body runs to completion
        // before this function returns on every non-panicking path, so the
        // borrows the closure captures (`f`, the shared state) outlive it.
        // On the panicking path (scheduler invariant breach) unfinished
        // fibers are never resumed again.
        let body: Box<dyn FnOnce()> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce()>>(Box::new(body))
        };
        let start = FiberStart {
            body,
            save: shared.task_sps[rank].as_ptr(),
            load: shared.sched_sp.as_ptr(),
        };
        fibers.push(Fiber::spawn(b.stack_bytes, start, &shared.task_sps[rank]));
        shared.ready.borrow_mut().push_back(rank);
    }

    loop {
        let next = shared.ready.borrow_mut().pop_front();
        match next {
            Some(r) => {
                shared.status[r].set(Status::Running);
                unsafe { fiber::switch(shared.sched_sp.as_ptr(), shared.task_sps[r].as_ptr()) };
            }
            None => {
                let blocked: Vec<usize> =
                    (0..n).filter(|&r| shared.status[r].get() != Status::Done).collect();
                if blocked.is_empty() {
                    break;
                }
                // Virtual deadlock: no in-flight message can ever wake these
                // ranks. Poison the run and resume each one so it fails its
                // receive (and cascades) instead of hanging the process.
                shared.poisoned.set(true);
                let mut ready = shared.ready.borrow_mut();
                for r in blocked {
                    shared.status[r].set(Status::Ready);
                    ready.push_back(r);
                }
            }
        }
    }

    for (rank, fb) in fibers.iter().enumerate() {
        assert!(
            fb.canary_intact(),
            "rank {rank} overflowed its {} B fiber stack; raise SimBuilder::stack_bytes",
            fb.stack_bytes()
        );
    }
    drop(fibers);

    let results = Rc::try_unwrap(results)
        .unwrap_or_else(|_| unreachable!("all fibers finished"))
        .into_inner();
    super::collect(results.into_iter().map(|slot| slot.expect("every rank recorded a fate")))
}
