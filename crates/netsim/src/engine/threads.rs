//! The thread engine: one OS thread per rank over `mpsc` channels — the
//! original execution model, kept for cross-engine equivalence testing and
//! as the fallback on targets without a fiber backend.

use super::{execute_rank, RawRun};
use crate::comm::{Comm, Endpoint};
use crate::sim::SimBuilder;
use std::sync::mpsc::channel;

/// Run `f` on every rank in its own scoped OS thread.
pub(crate) fn run<F, R>(b: &SimBuilder, f: &F) -> RawRun<R>
where
    F: Fn(&mut Comm) -> R + Sync,
    R: Send,
{
    let n = b.nprocs;
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let fates = std::thread::scope(|s| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                let txs = txs.clone();
                let faults = b.faults.clone();
                let (net, timing, topology, trace) = (b.net, b.timing, b.topology, b.trace);
                s.spawn(move || {
                    let mut comm = Comm::for_rank(
                        rank,
                        n,
                        net,
                        timing,
                        trace,
                        topology,
                        faults,
                        Endpoint::Threads { txs, rx },
                    );
                    execute_rank(&mut comm, f)
                })
            })
            .collect();
        drop(txs); // ranks hold their own clones
        handles
            .into_iter()
            .map(|h| h.join().expect("rank harness catches all panics"))
            .collect::<Vec<_>>()
    });
    super::collect(fates)
}
