//! Stackful fibers: the context-switch layer under the event engine.
//!
//! A fiber is a saved callee-saved register set plus a heap-allocated stack.
//! The scheduler resumes a fiber with [`switch`]; the fiber yields back the
//! same way. Because a switch is an ordinary function call from the
//! compiler's point of view, only the registers the platform ABI requires a
//! callee to preserve need saving — callee-saved general-purpose registers
//! on x86-64 (SysV), plus the low halves of `v8`–`v15` on aarch64 (AAPCS64).
//! That keeps a switch at a handful of moves (~20 ns), which is what makes
//! simulations with tens of millions of rank suspensions tractable.
//!
//! Floating-point *control* state (rounding mode, exception masks) is not
//! saved: nothing in this workspace alters it, so every fiber sees the
//! process-default state.
//!
//! Supported on x86-64 and aarch64; [`SUPPORTED`] is `false` elsewhere and
//! the event engine falls back to the thread engine (identical results, no
//! scale win).

use std::cell::Cell;

/// Whether this target has a fiber backend.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

/// Everything a fiber needs on first entry, boxed and passed through the
/// initial register frame.
pub(crate) struct FiberStart {
    /// Runs the rank to completion. Must not unwind — the rank harness
    /// catches panics before they reach the fiber trampoline.
    pub body: Box<dyn FnOnce()>,
    /// Slot this fiber's stack pointer is saved into when it yields.
    pub save: *mut *mut u8,
    /// Slot holding the scheduler's saved stack pointer.
    pub load: *mut *mut u8,
}

/// First Rust frame on a fresh fiber stack, reached via the architecture
/// trampoline. Never returns: after `body` completes, the fiber parks by
/// yielding to the scheduler forever (a correct scheduler never resumes a
/// finished fiber; a buggy resume just bounces straight back).
unsafe extern "C" fn fiber_entry(arg: *mut FiberStart) -> ! {
    let FiberStart { body, save, load } = *unsafe { Box::from_raw(arg) };
    body();
    loop {
        unsafe { switch(save, load) };
    }
}

/// Magic word written at the low end of every fiber stack; checked on
/// teardown as a best-effort overflow detector.
const STACK_CANARY: u64 = 0x68_7a_73_69_6d_5f_66_62; // "hzsim_fb"

/// An allocated, possibly-suspended fiber. Holds only the stack memory; the
/// saved stack pointer lives in the scheduler's slot so yields need no
/// access to this struct.
pub(crate) struct Fiber {
    stack: Vec<u8>,
    size: usize,
}

impl Fiber {
    /// Allocate a stack and arrange for the first [`switch`] through `sp` to
    /// enter `start.body`. The stack is only *reserved* here — pages are
    /// committed lazily by the OS as the fiber actually touches them, so
    /// thousands of lightly-used fibers stay cheap.
    pub fn spawn(stack_bytes: usize, start: FiberStart, sp: &Cell<*mut u8>) -> Fiber {
        let size = stack_bytes.max(64 * 1024);
        let mut stack: Vec<u8> = Vec::with_capacity(size);
        let base = stack.as_mut_ptr();
        unsafe {
            (base as *mut u64).write_unaligned(STACK_CANARY);
            let arg = Box::into_raw(Box::new(start));
            sp.set(arch::prepare(base.add(size), arg));
        }
        Fiber { stack, size }
    }

    /// Whether the overflow canary at the stack base survived the run.
    pub fn canary_intact(&self) -> bool {
        unsafe { (self.stack.as_ptr() as *const u64).read_unaligned() == STACK_CANARY }
    }

    /// Configured stack size in bytes.
    pub fn stack_bytes(&self) -> usize {
        self.size
    }
}

/// Save the current continuation into `*save`, then resume the one in
/// `*load`.
///
/// # Safety
/// `*load` must hold a stack pointer produced by [`arch::prepare`] or by a
/// previous `switch` save, and the stack it points into must still be live.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) use arch::switch;

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::FiberStart;

    /// See the module docs: saves the SysV callee-saved GP registers on the
    /// current stack, parks the stack pointer in `*save`, and resumes from
    /// `*load`.
    #[unsafe(naked)]
    pub(crate) unsafe extern "C" fn switch(save: *mut *mut u8, load: *mut *mut u8) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First instruction pointer of a fresh fiber: moves the `FiberStart`
    /// pointer (parked in `r12` by [`prepare`]) into the argument register
    /// and calls [`super::fiber_entry`], which never returns.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "mov rdi, r12",
            "call {entry}",
            "ud2",
            entry = sym super::fiber_entry,
        )
    }

    /// Lay out the initial frame [`switch`] restores: six callee-saved
    /// slots (with `arg` in the `r12` slot) and the trampoline as the
    /// return address, positioned so the trampoline is entered with
    /// `rsp % 16 == 0` (its `call` then establishes standard SysV entry
    /// alignment for Rust code).
    ///
    /// # Safety
    /// `stack_top` must be the one-past-the-end pointer of a live allocation
    /// with at least 120 usable bytes below it.
    pub(crate) unsafe fn prepare(stack_top: *mut u8, arg: *mut FiberStart) -> *mut u8 {
        unsafe {
            let top = ((stack_top as usize) & !15) as *mut u8;
            let sp = top.sub(7 * 8); // ≡ 8 (mod 16)
            let q = sp as *mut u64;
            q.add(0).write(0); // r15
            q.add(1).write(0); // r14
            q.add(2).write(0); // r13
            q.add(3).write(arg as u64); // r12
            q.add(4).write(0); // rbx
            q.add(5).write(0); // rbp
            q.add(6).write(trampoline as *const () as usize as u64); // ret target
            sp
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::FiberStart;

    /// See the module docs: saves the AAPCS64 callee-saved registers
    /// (x19–x28, fp, lr, d8–d15) on the current stack, parks the stack
    /// pointer in `*save`, and resumes from `*load`.
    #[unsafe(naked)]
    pub(crate) unsafe extern "C" fn switch(save: *mut *mut u8, load: *mut *mut u8) {
        core::arch::naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp, #0]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x9, sp",
            "str x9, [x0]",
            "ldr x9, [x1]",
            "mov sp, x9",
            "ldp x19, x20, [sp, #0]",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "add sp, sp, #160",
            "ret",
        )
    }

    /// First instruction pointer of a fresh fiber: moves the `FiberStart`
    /// pointer (parked in `x19` by [`prepare`]) into the argument register
    /// and calls [`super::fiber_entry`], which never returns.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "mov x0, x19",
            "bl {entry}",
            "brk #1",
            entry = sym super::fiber_entry,
        )
    }

    /// Lay out the initial 160-byte frame [`switch`] restores: `arg` in the
    /// `x19` slot, the trampoline in the `x30` (link register) slot, zeros
    /// elsewhere. The restored `sp` is the 16-aligned stack top, as AAPCS64
    /// requires.
    ///
    /// # Safety
    /// `stack_top` must be the one-past-the-end pointer of a live allocation
    /// with at least 176 usable bytes below it.
    pub(crate) unsafe fn prepare(stack_top: *mut u8, arg: *mut FiberStart) -> *mut u8 {
        unsafe {
            let top = ((stack_top as usize) & !15) as *mut u8;
            let sp = top.sub(160);
            let q = sp as *mut u64;
            for i in 0..20 {
                q.add(i).write(0);
            }
            q.add(0).write(arg as u64); // x19
            q.add(11).write(trampoline as *const () as usize as u64); // x30 (lr)
            sp
        }
    }
}

// On unsupported targets the event engine never calls into this module
// (`SUPPORTED` gates it), but the types above must still compile.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) unsafe fn switch(_save: *mut *mut u8, _load: *mut *mut u8) {
    unreachable!("fiber backend is not supported on this architecture")
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    use super::FiberStart;
    pub(crate) unsafe fn prepare(_stack_top: *mut u8, _arg: *mut FiberStart) -> *mut u8 {
        unreachable!("fiber backend is not supported on this architecture")
    }
}

#[cfg(all(test, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::rc::Rc;

    /// Ping-pong between the test "scheduler" and one fiber through raw
    /// switches: exercises prepare/trampoline/entry and the final park.
    #[test]
    fn fiber_runs_yields_and_finishes() {
        let sched_sp = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let task_sp = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let log = Rc::new(Cell::new(0u32));

        let (s2, t2, l2) = (Rc::clone(&sched_sp), Rc::clone(&task_sp), Rc::clone(&log));
        let body = move || {
            l2.set(l2.get() + 1);
            unsafe { switch(t2.as_ptr(), s2.as_ptr()) }; // yield once
            l2.set(l2.get() + 10);
        };
        let start =
            FiberStart { body: Box::new(body), save: task_sp.as_ptr(), load: sched_sp.as_ptr() };
        let fb = Fiber::spawn(128 * 1024, start, &task_sp);

        unsafe { switch(sched_sp.as_ptr(), task_sp.as_ptr()) };
        assert_eq!(log.get(), 1, "fiber ran to its first yield");
        unsafe { switch(sched_sp.as_ptr(), task_sp.as_ptr()) };
        assert_eq!(log.get(), 11, "fiber resumed and finished");
        assert!(fb.canary_intact());
        assert!(fb.stack_bytes() >= 128 * 1024);
    }

    /// A deep-ish call chain on the fiber stack must not clobber the canary.
    #[test]
    fn fiber_stack_hosts_real_frames() {
        fn burn(depth: usize, acc: u64) -> u64 {
            let local = [acc; 16];
            if depth == 0 {
                local.iter().sum()
            } else {
                burn(depth - 1, acc + 1) + local[0]
            }
        }
        let sched_sp = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let task_sp = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let out = Rc::new(Cell::new(0u64));
        let o2 = Rc::clone(&out);
        let start = FiberStart {
            body: Box::new(move || o2.set(burn(100, 1))),
            save: task_sp.as_ptr(),
            load: sched_sp.as_ptr(),
        };
        let fb = Fiber::spawn(256 * 1024, start, &task_sp);
        unsafe { switch(sched_sp.as_ptr(), task_sp.as_ptr()) };
        assert!(out.get() > 0);
        assert!(fb.canary_intact());
    }
}
