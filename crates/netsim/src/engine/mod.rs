//! Execution engines behind [`crate::SimBuilder`]: the per-rank harness
//! shared by both, the thread engine (one OS thread per rank) and the event
//! engine (fibers under a cooperative virtual-time scheduler).

pub(crate) mod events;
pub(crate) mod fiber;
pub(crate) mod threads;

use crate::comm::Comm;
use crate::sim::{RankOutcome, RankPanic};
use crate::trace::RankTrace;

/// What one rank's execution produced: its outcome plus its flight-recorder
/// trace (when tracing is on), or the panic that killed it.
pub(crate) type RankFate<R> = Result<(RankOutcome<R>, Option<RankTrace>), RankPanic>;

/// Engine-level result of a run, in rank order, before aggregation into a
/// [`crate::RunReport`].
pub(crate) struct RawRun<R> {
    pub fates: Vec<Result<RankOutcome<R>, RankPanic>>,
    pub traces: Vec<RankTrace>,
}

/// The per-rank harness both engines run: execute the closure, catch a
/// panic, and — before reporting it — poison every peer's inbox so blocked
/// receivers cascade instead of deadlocking.
pub(crate) fn execute_rank<F, R>(comm: &mut Comm, f: &F) -> RankFate<R>
where
    F: Fn(&mut Comm) -> R + Sync,
    R: Send,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))) {
        Ok(value) => {
            let outcome = RankOutcome {
                rank: comm.rank(),
                value,
                elapsed: comm.elapsed(),
                breakdown: comm.breakdown(),
            };
            Ok((outcome, comm.take_trace()))
        }
        Err(payload) => {
            comm.broadcast_crash_notice();
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&'static str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "(non-string panic payload)".to_string());
            Err(RankPanic { rank: comm.rank(), message })
        }
    }
}

/// Split per-rank fates into the engine-neutral [`RawRun`].
pub(crate) fn collect<R>(fates: impl IntoIterator<Item = RankFate<R>>) -> RawRun<R> {
    let mut out = RawRun { fates: Vec::new(), traces: Vec::new() };
    for fate in fates {
        match fate {
            Ok((outcome, trace)) => {
                out.traces.extend(trace);
                out.fates.push(Ok(outcome));
            }
            Err(p) => out.fates.push(Err(p)),
        }
    }
    out
}
