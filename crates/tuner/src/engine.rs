//! The decision engine: enumerate candidate plans for a scenario, rank them
//! by predicted cost from the analytical model (`costmodel` with this
//! engine's calibrated constants), and prefer measured winners from the
//! tuning cache when the scenario bucket has been seen before.
//!
//! Decision precedence:
//!
//! 1. **Cache** — the bucket has a measured winner: trust the measurement.
//! 2. **Small-message short-circuit** — tiny `Allreduce`s are latency-bound;
//!    the ring's `2(N-1)` alpha charges can never beat recursive doubling's
//!    `ceil(log2 N)`, so only `rd` candidates are ranked.
//! 3. **Model** — rank every candidate by the Sec. III-C closed forms.
//!
//! Decisions are pure functions of the engine state and the spec
//! (`tests/properties.rs` pins determinism), so every rank of a collective
//! that evaluates the same spec against the same engine picks the same plan.

use crate::cache::TuningCache;
use crate::calibration::Calibration;
use crate::plan::{Algo, Flavor, Op, Plan, ScenarioSpec, ThreadMode};
use netsim::{Json, RunReport};

/// Where a decision came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// A measured winner from the tuning cache.
    Cache,
    /// The latency-bound small-message short-circuit (rd candidates only).
    SmallMessage,
    /// Full analytical ranking.
    Model,
}

impl DecisionSource {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DecisionSource::Cache => "cache",
            DecisionSource::SmallMessage => "small-message",
            DecisionSource::Model => "model",
        }
    }
}

/// One candidate with its predicted completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The candidate plan.
    pub plan: Plan,
    /// Predicted completion time in seconds.
    pub secs: f64,
}

/// The engine's answer: the chosen plan, why, and the full ranking (for the
/// CLI's "why" print-out and for drift diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The plan to execute.
    pub plan: Plan,
    /// How the plan was chosen.
    pub source: DecisionSource,
    /// All candidates, best first, with model predictions.
    pub ranked: Vec<Prediction>,
    /// Human-readable explanation.
    pub why: String,
}

/// Cost-model-guided autotuner with online calibration and a persistent
/// cache. See the crate docs for the full architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Engine {
    /// Calibrated model constants (throughputs + network law).
    pub calib: Calibration,
    /// Measured winners per scenario bucket.
    pub cache: TuningCache,
    /// `Allreduce` messages at or below this many bytes short-circuit to
    /// recursive doubling.
    pub small_message_bytes: usize,
    /// Thread modes to consider (default: ST only — inside the virtual-time
    /// simulator ST and MT charge identically, so offering both would just
    /// create fake ties; the CLI adds an MT candidate when asked).
    pub mode_candidates: Vec<ThreadMode>,
    /// Compressor block lengths to consider.
    pub block_candidates: Vec<usize>,
    /// Ring-step segment counts to consider for *compressed ring* plans
    /// (1 = phase-serial; `S > 1` = pipelined, overlapping (de)compression /
    /// homomorphic work with the wire). Plain-MPI rings and recursive
    /// doubling only get the serial entry — their overlappable compute is
    /// too small (mpi) or the schedule has no ring steps (rd) for
    /// segmentation to pay for its extra α-injections.
    pub segment_candidates: Vec<usize>,
}

impl Engine {
    /// Engine seeded from the paper calibration with an empty cache.
    pub fn paper() -> Engine {
        Engine {
            calib: Calibration::paper(),
            cache: TuningCache::new(),
            small_message_bytes: 64 << 10,
            mode_candidates: vec![ThreadMode::St],
            block_candidates: vec![32],
            segment_candidates: vec![1, 2, 4, 8],
        }
    }

    /// Enumerate every executable candidate for `spec` (before the
    /// small-message short-circuit). Stable order: flavour, algorithm,
    /// mode, block length, segments.
    pub fn candidates(&self, spec: &ScenarioSpec) -> Vec<Plan> {
        let mut out = Vec::new();
        for flavor in [Flavor::Mpi, Flavor::CColl, Flavor::Hzccl] {
            let algos: &[Algo] = if spec.op == Op::Allreduce && flavor != Flavor::CColl {
                &[Algo::Ring, Algo::Rd]
            } else {
                &[Algo::Ring]
            };
            for &algo in algos {
                for &mode in &self.mode_candidates {
                    // block length only matters for compressed flavours
                    let blocks: &[usize] = if flavor == Flavor::Mpi {
                        &self.block_candidates[..1]
                    } else {
                        &self.block_candidates
                    };
                    for &block_len in blocks {
                        // segmentation only exists on compressed ring plans
                        let segs: &[usize] = if algo == Algo::Ring && flavor != Flavor::Mpi {
                            &self.segment_candidates
                        } else {
                            &[1]
                        };
                        for &segments in segs {
                            out.push(Plan {
                                flavor,
                                algo,
                                mode,
                                block_len,
                                segments,
                                hierarchical: false,
                            });
                        }
                    }
                }
            }
        }
        // Two-tier fabrics additionally offer the hierarchical Allreduce
        // schedule (intra RS → inter ring → intra AG) per flavour. Serial
        // only: the inter ring moves 1/ppn-size slices, too small for
        // segmentation to pay for its α-injections.
        if spec.op == Op::Allreduce && spec.two_tier_topology().is_some() {
            for flavor in [Flavor::Mpi, Flavor::CColl, Flavor::Hzccl] {
                for &mode in &self.mode_candidates {
                    let blocks: &[usize] = if flavor == Flavor::Mpi {
                        &self.block_candidates[..1]
                    } else {
                        &self.block_candidates
                    };
                    for &block_len in blocks {
                        out.push(Plan {
                            flavor,
                            algo: Algo::Ring,
                            mode,
                            block_len,
                            segments: 1,
                            hierarchical: true,
                        });
                    }
                }
            }
        }
        out
    }

    /// Predicted completion time of `plan` on `spec` from the analytical
    /// model with this engine's calibrated constants.
    pub fn predict(&self, spec: &ScenarioSpec, plan: &Plan) -> f64 {
        let ratio = if plan.flavor == Flavor::Mpi { 1.0 } else { spec.ratio_for(plan.block_len) };
        let s = costmodel::Scenario {
            nranks: spec.nranks.max(1),
            message_bytes: spec.message_bytes().max(1),
            ratio,
            net: self.calib.net(),
            thr: self.calib.model(plan.flavor, plan.mode),
        };
        if plan.hierarchical {
            // two-tier closed forms; a hierarchical plan without a topology
            // cannot happen via candidates(), but price it as flat to keep
            // predict() total
            if let Some(topo) = spec.two_tier_topology() {
                return match plan.flavor {
                    Flavor::Mpi => costmodel::allreduce_hier_mpi(&s, topo),
                    Flavor::CColl => costmodel::allreduce_hier_ccoll(&s, topo),
                    Flavor::Hzccl => costmodel::allreduce_hier_hzccl(&s, topo),
                };
            }
        }
        let seg = plan.segments.max(1);
        if seg > 1 && plan.algo == Algo::Ring {
            // pipelined closed forms: T_step = S·α + (W+C)/S + (S-1)/S·max(W,C)
            return match (spec.op, plan.flavor) {
                (Op::Allreduce, Flavor::Mpi) => costmodel::allreduce_mpi_pipelined(&s, seg),
                (Op::Allreduce, Flavor::CColl) => costmodel::allreduce_ccoll_pipelined(&s, seg),
                (Op::Allreduce, Flavor::Hzccl) => costmodel::allreduce_hzccl_pipelined(&s, seg),
                (Op::ReduceScatter, Flavor::Mpi) => {
                    costmodel::reduce_scatter_mpi_pipelined(&s, seg)
                }
                (Op::ReduceScatter, Flavor::CColl) => {
                    costmodel::reduce_scatter_ccoll_pipelined(&s, seg)
                }
                (Op::ReduceScatter, Flavor::Hzccl) => {
                    costmodel::reduce_scatter_hzccl_pipelined(&s, seg)
                }
                (Op::Reduce, Flavor::Mpi) => costmodel::reduce_mpi_pipelined(&s, seg),
                (Op::Reduce, Flavor::CColl) => costmodel::reduce_ccoll_pipelined(&s, seg),
                (Op::Reduce, Flavor::Hzccl) => costmodel::reduce_hzccl_pipelined(&s, seg),
                (Op::Bcast, Flavor::Mpi) => costmodel::bcast_mpi_pipelined(&s, seg),
                (Op::Bcast, _) => costmodel::bcast_compressed_pipelined(&s, seg),
            };
        }
        match (spec.op, plan.flavor, plan.algo) {
            (Op::Allreduce, Flavor::Mpi, Algo::Ring) => costmodel::allreduce_mpi(&s),
            (Op::Allreduce, Flavor::CColl, _) => costmodel::allreduce_ccoll(&s),
            (Op::Allreduce, Flavor::Hzccl, Algo::Ring) => costmodel::allreduce_hzccl(&s),
            (Op::Allreduce, Flavor::Mpi, Algo::Rd) => costmodel::allreduce_rd_mpi(&s),
            (Op::Allreduce, Flavor::Hzccl, Algo::Rd) => costmodel::allreduce_rd_hzccl(&s),
            (Op::ReduceScatter, Flavor::Mpi, _) => costmodel::reduce_scatter_mpi(&s),
            (Op::ReduceScatter, Flavor::CColl, _) => costmodel::reduce_scatter_ccoll(&s),
            (Op::ReduceScatter, Flavor::Hzccl, _) => costmodel::reduce_scatter_hzccl(&s),
            (Op::Reduce, Flavor::Mpi, _) => costmodel::reduce_mpi(&s),
            (Op::Reduce, Flavor::CColl, _) => costmodel::reduce_ccoll(&s),
            (Op::Reduce, Flavor::Hzccl, _) => costmodel::reduce_hzccl(&s),
            (Op::Bcast, Flavor::Mpi, _) => costmodel::bcast_mpi(&s),
            (Op::Bcast, Flavor::CColl, _) => costmodel::bcast_ccoll(&s),
            (Op::Bcast, Flavor::Hzccl, _) => costmodel::bcast_hzccl(&s),
        }
    }

    /// Rank `plans` by prediction, best first; ties break on the plan's
    /// stable ordering so the result is deterministic.
    fn rank(&self, spec: &ScenarioSpec, plans: &[Plan]) -> Vec<Prediction> {
        let mut ranked: Vec<Prediction> = plans
            .iter()
            .map(|&plan| Prediction { plan, secs: self.predict(spec, &plan) })
            .collect();
        ranked.sort_by(|a, b| {
            a.secs
                .partial_cmp(&b.secs)
                .expect("cost predictions are finite")
                .then_with(|| a.plan.cmp(&b.plan))
        });
        ranked
    }

    /// Decide the plan for `spec`. Pure: identical engine state + spec give
    /// an identical decision.
    pub fn decide(&self, spec: &ScenarioSpec) -> Decision {
        let key = spec.bucket_key();
        let all = self.candidates(spec);
        if let Some(entry) = self.cache.get(&key) {
            // a cached winner must still be executable for this op
            if all.contains(&entry.plan) || spec.op != Op::Allreduce {
                let ranked = self.rank(spec, &all);
                let why = format!(
                    "cache hit for bucket {key}: {} measured at {:.3} ms over {} sample(s) \
                     (model now predicts {:.3} ms)",
                    entry.plan.label(),
                    entry.measured_secs * 1e3,
                    entry.samples,
                    self.predict(spec, &entry.plan) * 1e3,
                );
                return Decision { plan: entry.plan, source: DecisionSource::Cache, ranked, why };
            }
        }
        let small = spec.op == Op::Allreduce && spec.message_bytes() <= self.small_message_bytes;
        let (pool, source) = if small {
            let rd: Vec<Plan> = all.iter().copied().filter(|p| p.algo == Algo::Rd).collect();
            if rd.is_empty() {
                (all, DecisionSource::Model)
            } else {
                (rd, DecisionSource::SmallMessage)
            }
        } else {
            (all, DecisionSource::Model)
        };
        let ranked = self.rank(spec, &pool);
        let best = ranked.first().expect("candidate pool is never empty");
        let why = match source {
            DecisionSource::SmallMessage => format!(
                "message {} B <= {} B: latency-bound, short-circuit to recursive doubling; \
                 model picks {} at {:.3} ms",
                spec.message_bytes(),
                self.small_message_bytes,
                best.plan.label(),
                best.secs * 1e3,
            ),
            _ => {
                let runner_up = ranked
                    .get(1)
                    .map(|p| format!("; runner-up {} at {:.3} ms", p.plan.label(), p.secs * 1e3))
                    .unwrap_or_default();
                format!(
                    "no measurement for bucket {key}: analytical model picks {} at {:.3} ms{}",
                    best.plan.label(),
                    best.secs * 1e3,
                    runner_up,
                )
            }
        };
        Decision { plan: best.plan, source, ranked, why }
    }

    /// Absorb one simulated/measured run: feed the report's flight-recorder
    /// traces to the calibration loop and record the makespan in the cache.
    /// Returns the makespan it recorded.
    pub fn observe_run<R>(
        &mut self,
        spec: &ScenarioSpec,
        plan: &Plan,
        report: &RunReport<R>,
    ) -> f64 {
        let makespan = report.stats.makespan;
        self.calib.absorb_run(plan.flavor, plan.mode, report);
        self.observe_measurement(spec, plan, makespan);
        makespan
    }

    /// Record a bare completion-time measurement (no traces to calibrate
    /// from) in the tuning cache.
    pub fn observe_measurement(&mut self, spec: &ScenarioSpec, plan: &Plan, secs: f64) {
        let model = self.predict(spec, plan);
        self.cache.record(&spec.bucket_key(), *plan, secs, model);
    }

    /// Serialize engine state (calibration + cache + knobs) to JSON.
    ///
    /// Schema version 3: adds per-cache-entry `hierarchical`. Version 2
    /// added `segment_candidates` and per-cache-entry `segments`; v1 and v2
    /// documents are still accepted by [`Engine::from_json`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Num(3.0)),
            ("small_message_bytes", Json::Num(self.small_message_bytes as f64)),
            (
                "block_candidates",
                Json::Arr(self.block_candidates.iter().map(|&b| Json::Num(b as f64)).collect()),
            ),
            (
                "segment_candidates",
                Json::Arr(self.segment_candidates.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
            (
                "mode_candidates",
                Json::Arr(
                    self.mode_candidates
                        .iter()
                        .map(|m| Json::Num(if m.is_mt() { m.threads() as f64 } else { 1.0 }))
                        .collect(),
                ),
            ),
            ("calibration", self.calib.to_json()),
            ("cache", self.cache.to_json()),
        ])
    }

    /// Parse [`Engine::to_json`]'s output back. Accepts the current v3
    /// schema and migrates v1/v2 documents: v1 caches (pre-segmentation)
    /// hold serial plans and gain the default segment-candidate grid, v2
    /// caches (pre-hierarchy) load every entry as a flat plan.
    pub fn from_json(doc: &Json) -> Result<Engine, String> {
        let version = doc.get("version").and_then(Json::as_f64).unwrap_or(0.0);
        if version != 1.0 && version != 2.0 && version != 3.0 {
            return Err(format!("unsupported tuner state version {version}"));
        }
        let small_message_bytes =
            doc.get("small_message_bytes")
                .and_then(Json::as_f64)
                .ok_or("tuner state: missing small_message_bytes")? as usize;
        let block_candidates: Vec<usize> = doc
            .get("block_candidates")
            .and_then(Json::as_arr)
            .ok_or("tuner state: missing block_candidates")?
            .iter()
            .filter_map(|v| v.as_f64().map(|b| b as usize))
            .filter(|&b| b > 0)
            .collect();
        if block_candidates.is_empty() {
            return Err("tuner state: empty block_candidates".into());
        }
        let mode_candidates: Vec<ThreadMode> = doc
            .get("mode_candidates")
            .and_then(Json::as_arr)
            .ok_or("tuner state: missing mode_candidates")?
            .iter()
            .filter_map(|v| v.as_f64())
            .map(|t| if t <= 1.0 { ThreadMode::St } else { ThreadMode::Mt(t as usize) })
            .collect();
        if mode_candidates.is_empty() {
            return Err("tuner state: empty mode_candidates".into());
        }
        let segment_candidates: Vec<usize> = match doc.get("segment_candidates") {
            Some(v) => {
                let segs: Vec<usize> = v
                    .as_arr()
                    .ok_or("tuner state: segment_candidates must be an array")?
                    .iter()
                    .filter_map(|v| v.as_f64().map(|s| s as usize))
                    .filter(|&s| s > 0)
                    .collect();
                if segs.is_empty() {
                    return Err("tuner state: empty segment_candidates".into());
                }
                segs
            }
            // v1 migration: pre-segmentation states gain the default grid
            None => Engine::paper().segment_candidates,
        };
        let calib = Calibration::from_json(
            doc.get("calibration").ok_or("tuner state: missing calibration")?,
        )?;
        let cache = TuningCache::from_json(doc.get("cache").ok_or("tuner state: missing cache")?)?;
        Ok(Engine {
            calib,
            cache,
            small_message_bytes,
            mode_candidates,
            block_candidates,
            segment_candidates,
        })
    }

    /// Write the engine state to `path` (compact JSON).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }

    /// Load an engine saved with [`Engine::save`].
    pub fn load(path: &std::path::Path) -> Result<Engine, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Engine::from_json(&Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(elems: usize, nranks: usize, ratio: f64) -> ScenarioSpec {
        ScenarioSpec::new(Op::Allreduce, elems, nranks, 1e-4, 32, ratio)
    }

    #[test]
    fn small_messages_short_circuit_to_rd() {
        let engine = Engine::paper();
        let d = engine.decide(&spec(256, 64, 6.0)); // 1 KiB
        assert_eq!(d.source, DecisionSource::SmallMessage);
        assert_eq!(d.plan.algo, Algo::Rd);
        assert!(d.why.contains("short-circuit"), "{}", d.why);
    }

    #[test]
    fn large_compressible_messages_pick_the_homomorphic_ring() {
        let engine = Engine::paper();
        let d = engine.decide(&spec(1 << 22, 64, 7.0)); // 16 MiB, ratio 7
        assert_eq!(d.source, DecisionSource::Model);
        assert_eq!(d.plan.flavor, Flavor::Hzccl);
        assert_eq!(d.plan.algo, Algo::Ring);
    }

    #[test]
    fn incompressible_large_messages_fall_back_to_mpi() {
        let mut engine = Engine::paper();
        // make compression cost real but useless: ratio ~1, slow compressor
        engine.calib.thr.insert(Calibration::key(Flavor::Hzccl, false), [0.05, 0.1, 0.3, 2.8, 6.0]);
        engine.calib.thr.insert(Calibration::key(Flavor::CColl, false), [0.05, 0.1, 0.3, 2.8, 6.0]);
        let d = engine.decide(&spec(1 << 22, 64, 1.02));
        assert_eq!(d.plan.flavor, Flavor::Mpi, "{}", d.why);
    }

    #[test]
    fn cache_overrides_the_model() {
        let mut engine = Engine::paper();
        let s = spec(1 << 20, 8, 7.0);
        let slow_plan = Plan::serial(Flavor::CColl, Algo::Ring, ThreadMode::St, 32);
        engine.observe_measurement(&s, &slow_plan, 0.001);
        let d = engine.decide(&s);
        assert_eq!(d.source, DecisionSource::Cache);
        assert_eq!(d.plan, slow_plan, "{}", d.why);
        assert!(d.why.contains("cache hit"), "{}", d.why);
    }

    #[test]
    fn candidates_exclude_unimplemented_combinations() {
        let engine = Engine::paper();
        for op in [Op::ReduceScatter, Op::Reduce, Op::Bcast] {
            let plans = engine.candidates(&ScenarioSpec::new(op, 1 << 16, 8, 1e-4, 32, 5.0));
            assert!(plans.iter().all(|p| p.algo == Algo::Ring), "{op:?} is ring-only");
        }
        let ar = engine.candidates(&spec(1 << 16, 8, 5.0));
        assert!(!ar.iter().any(|p| p.flavor == Flavor::CColl && p.algo == Algo::Rd));
        assert!(ar.iter().any(|p| p.flavor == Flavor::Hzccl && p.algo == Algo::Rd));
        assert!(ar.iter().any(|p| p.flavor == Flavor::Mpi && p.algo == Algo::Rd));
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let engine = Engine::paper();
        let s = spec(1 << 20, 16, 6.0);
        let d = engine.decide(&s);
        assert_eq!(d.ranked.len(), engine.candidates(&s).len());
        for w in d.ranked.windows(2) {
            assert!(w[0].secs <= w[1].secs);
        }
        assert_eq!(d.ranked[0].plan, d.plan);
    }

    #[test]
    fn predictions_scale_with_message_size() {
        let engine = Engine::paper();
        let p = Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32);
        let small = engine.predict(&spec(1 << 14, 8, 5.0), &p);
        let big = engine.predict(&spec(1 << 20, 8, 5.0), &p);
        assert!(big > small);
    }

    #[test]
    fn segmented_candidates_exist_only_on_compressed_rings() {
        let engine = Engine::paper();
        let plans = engine.candidates(&spec(1 << 20, 8, 6.0));
        assert!(
            plans
                .iter()
                .any(|p| p.flavor == Flavor::Hzccl && p.algo == Algo::Ring && p.segments > 1),
            "hz ring must offer pipelined candidates"
        );
        assert!(
            plans.iter().any(|p| p.flavor == Flavor::CColl && p.segments > 1),
            "ccoll ring must offer pipelined candidates"
        );
        for p in &plans {
            if p.flavor == Flavor::Mpi || p.algo == Algo::Rd {
                assert_eq!(p.segments, 1, "{} must stay serial", p.label());
            }
        }
    }

    #[test]
    fn compute_bound_scenarios_decide_on_a_segmented_plan() {
        // 4 MiB/rank at 64 ranks, paper ST calibration, compressible: the
        // pipelined closed form predicts segmentation hides the wire behind
        // the JIT CPR + HPR chain, so the model must pick S > 1 — and the
        // prediction must agree with calling the costmodel directly.
        let engine = Engine::paper();
        let s = spec(1 << 20, 64, 7.0); // 4 MiB
        let d = engine.decide(&s);
        assert_eq!(d.source, DecisionSource::Model);
        assert_eq!(d.plan.flavor, Flavor::Hzccl, "{}", d.why);
        assert_eq!(d.plan.algo, Algo::Ring, "{}", d.why);
        assert!(d.plan.segments > 1, "compute-bound run must pipeline: {}", d.why);
        let serial = engine.predict(&s, &Plan { segments: 1, ..d.plan });
        let best = engine.predict(&s, &d.plan);
        assert!(best < serial, "pipelined prediction must undercut serial");
    }

    #[test]
    fn hierarchical_candidates_appear_only_on_two_tier_topologies() {
        let engine = Engine::paper();
        let flat = spec(1 << 18, 64, 7.0);
        assert!(engine.candidates(&flat).iter().all(|p| !p.hierarchical));
        let topo = spec(1 << 18, 64, 7.0).with_topology(netsim::Topology::paper(8, 8));
        let plans = engine.candidates(&topo);
        assert!(plans.iter().any(|p| p.hierarchical && p.flavor == Flavor::Hzccl));
        assert!(
            plans.iter().filter(|p| p.hierarchical).all(|p| p.segments == 1),
            "hierarchical plans stay serial"
        );
        // degenerate shapes (one node, or one rank per node) offer none
        for degenerate in [netsim::Topology::paper(1, 64), netsim::Topology::paper(64, 1)] {
            let d = spec(1 << 18, 64, 7.0).with_topology(degenerate);
            assert!(engine.candidates(&d).iter().all(|p| !p.hierarchical));
        }
        // and non-allreduce ops never get the hierarchical schedule
        let rs = ScenarioSpec::new(Op::ReduceScatter, 1 << 18, 64, 1e-4, 32, 7.0)
            .with_topology(netsim::Topology::paper(8, 8));
        assert!(engine.candidates(&rs).iter().all(|p| !p.hierarchical));
    }

    /// Golden crossover: at the paper calibration on 8 nodes x 8 ranks/node
    /// (inter-node links 10x slower than node-local), a 1 MiB Allreduce must
    /// decide on a *hierarchical* plan — the flavour is the model's call
    /// (the single-thread raw-summation table makes mpi's intra phases
    /// nearly free, so mpi-hier may out-price hz-hier) — and the model must
    /// price the hierarchical hz ring at least 30% under the flat hz ring.
    /// On the same scenario without a topology the flat plans are all that
    /// exist.
    #[test]
    fn golden_auto_picks_hierarchy_on_the_paper_topology() {
        let engine = Engine::paper();
        let topo = netsim::Topology::paper(8, 8);
        let s = spec(1 << 18, 64, 7.0).with_topology(topo); // 1 MiB
        let d = engine.decide(&s);
        assert_eq!(d.source, DecisionSource::Model);
        assert!(d.plan.hierarchical, "must pick the hierarchical schedule: {}", d.why);
        let flat_hz =
            engine.predict(&s, &Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32));
        let hier_hz = engine.predict(
            &s,
            &Plan {
                hierarchical: true,
                ..Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32)
            },
        );
        assert!(hier_hz <= 0.7 * flat_hz, "hier {hier_hz} must undercut flat {flat_hz} by >=30%");
        // and the winner prices at or under the hz hierarchy
        assert!(engine.predict(&s, &d.plan) <= hier_hz);
        // stripped of the topology, the same scenario decides flat
        let d_flat = engine.decide(&spec(1 << 18, 64, 7.0));
        assert!(!d_flat.plan.hierarchical);
    }

    #[test]
    fn v1_engine_state_migrates_with_default_segment_grid() {
        // a v3 document stripped back to the v1 shape: version 1, no
        // segment_candidates, cache entries without segments/hierarchical
        let mut engine = Engine::paper();
        let s = spec(1 << 18, 8, 6.5);
        engine.observe_measurement(
            &s,
            &Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32),
            0.002,
        );
        let v3 = engine.to_json().render();
        let v1 = v3
            .replacen("\"version\":3", "\"version\":1", 1)
            .replace("\"segment_candidates\":[1,2,4,8],", "")
            .replace(",\"segments\":1", "")
            .replace(",\"hierarchical\":false", "");
        assert_ne!(v1, v3, "the v1 fixture must actually differ");
        let back = Engine::from_json(&Json::parse(&v1).unwrap()).unwrap();
        assert_eq!(back.segment_candidates, Engine::paper().segment_candidates);
        assert_eq!(back.cache, engine.cache, "v1 cache entries load as serial flat plans");
        // and the migrated engine re-saves as v3
        assert!(back.to_json().render().contains("\"version\":3"));
    }

    #[test]
    fn engine_state_roundtrips_through_json() {
        let mut engine = Engine::paper();
        engine.block_candidates = vec![32, 128];
        engine.mode_candidates = vec![ThreadMode::St, ThreadMode::Mt(18)];
        let s = spec(1 << 18, 8, 6.5);
        let plan = engine.decide(&s).plan;
        engine.observe_measurement(&s, &plan, 0.0025);
        let text = engine.to_json().render();
        let back = Engine::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, engine);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn load_rejects_missing_and_bad_files() {
        assert!(Engine::load(std::path::Path::new("/nonexistent/tuner.json")).is_err());
        let doc = Json::parse("{\"version\":99}").unwrap();
        assert!(Engine::from_json(&doc).is_err());
    }
}
