//! # tuner — the hZCCL auto-selection subsystem
//!
//! The paper's headline result (hZCCL beating both plain MPI and
//! compress-operate-decompress C-Coll) only holds in the right regime: large,
//! compressible messages. Elsewhere — tiny latency-bound vectors,
//! incompressible data, slow compressors — a different flavour wins. This
//! crate turns the closed-form cost equations of `costmodel` into an online
//! decision system so callers never have to pick by hand:
//!
//! * [`plan`] — the vocabulary: [`Op`], [`Plan`] (flavour x algorithm x
//!   thread mode x block length, wire-encodable so one rank can decide and
//!   broadcast), and [`ScenarioSpec`] (what a decision is about).
//! * [`engine`] — the [`Engine`]: ranks every candidate plan by predicted
//!   cost, short-circuits small allreduces to recursive doubling, and
//!   prefers a cached measured winner over the model when one exists.
//! * [`calibration`] — [`Calibration`]: per-flavour throughput tables
//!   (CPR/DPR/HPR/CPT) plus the network alpha/beta, refined from `netsim`
//!   flight-recorder outcomes by exponentially-weighted updates. Also home
//!   of [`paper_prior`], the single source of truth for the paper's Table
//!   II calibration (the `hzccl` crate delegates here).
//! * [`cache`] — [`TuningCache`]: persistent scenario-bucket -> best
//!   measured plan store, JSON round-trippable bit-for-bit through
//!   [`netsim::Json`].
//!
//! Layering: `tuner` sits *below* the collective crate (`hzccl` depends on
//! it, not vice versa), so the types here mirror `hzccl::Variant` /
//! `hzccl::Mode` as [`Flavor`] / [`ThreadMode`] rather than importing them.

pub mod cache;
pub mod calibration;
pub mod engine;
pub mod plan;

pub use cache::{CacheEntry, TuningCache};
pub use calibration::{paper_prior, Calibration};
pub use engine::{Decision, DecisionSource, Engine, Prediction};
pub use plan::{Algo, Flavor, Op, Plan, ScenarioSpec, ThreadMode};
