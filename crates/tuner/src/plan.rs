//! The tuner's vocabulary: which collective is being run ([`Op`]), what a
//! candidate configuration looks like ([`Plan`]), and the scenario the
//! decision engine is asked about ([`ScenarioSpec`]).
//!
//! Plans are tiny and wire-encodable ([`Plan::encode`]) so the `hzccl::auto`
//! front-end can have one rank decide and broadcast the result — every rank
//! of a collective must execute the *same* plan or the exchange deadlocks.

/// Which collective operation a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Ring `Allreduce(sum)` (or recursive doubling, per plan).
    Allreduce,
    /// Ring `Reduce_scatter(sum)`.
    ReduceScatter,
    /// `Reduce(sum)` to a root.
    Reduce,
    /// Long-message `Bcast` from a root.
    Bcast,
}

impl Op {
    /// Stable lowercase name (cache keys, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Op::Allreduce => "allreduce",
            Op::ReduceScatter => "reduce_scatter",
            Op::Reduce => "reduce",
            Op::Bcast => "bcast",
        }
    }

    /// Parse the stable name back.
    pub fn parse(name: &str) -> Option<Op> {
        Some(match name {
            "allreduce" => Op::Allreduce,
            "reduce_scatter" => Op::ReduceScatter,
            "reduce" => Op::Reduce,
            "bcast" => Op::Bcast,
            _ => return None,
        })
    }

    /// All ops, in stable order.
    pub const ALL: [Op; 4] = [Op::Allreduce, Op::ReduceScatter, Op::Reduce, Op::Bcast];
}

/// Collective framework flavour (paper Table II; mirrors `hzccl::Variant`
/// minus the auto-selector itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flavor {
    /// Plain MPI, no compression.
    Mpi,
    /// C-Coll: compress-operate-decompress on every hop.
    CColl,
    /// hZCCL: homomorphic reduction on compressed data.
    Hzccl,
}

impl Flavor {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Mpi => "mpi",
            Flavor::CColl => "ccoll",
            Flavor::Hzccl => "hz",
        }
    }

    /// Parse the stable name back.
    pub fn parse(name: &str) -> Option<Flavor> {
        Some(match name {
            "mpi" => Flavor::Mpi,
            "ccoll" => Flavor::CColl,
            "hz" => Flavor::Hzccl,
            _ => return None,
        })
    }
}

/// Ring vs recursive-doubling topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algo {
    /// Bandwidth-optimal ring (2(N-1) chunk rounds).
    Ring,
    /// Latency-optimal recursive doubling (ceil(log2 N) full-vector rounds);
    /// only implemented for `Allreduce`.
    Rd,
}

impl Algo {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Ring => "ring",
            Algo::Rd => "rd",
        }
    }

    /// Parse the stable name back.
    pub fn parse(name: &str) -> Option<Algo> {
        Some(match name {
            "ring" => Algo::Ring,
            "rd" => Algo::Rd,
            _ => return None,
        })
    }
}

/// Single- vs multi-thread compression mode (mirrors `hzccl::Mode` without
/// depending on the collective crate — the tuner sits *below* it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadMode {
    /// One compression thread per rank.
    St,
    /// `k` compression threads per rank.
    Mt(usize),
}

impl ThreadMode {
    /// True for the multi-thread mode.
    pub fn is_mt(self) -> bool {
        matches!(self, ThreadMode::Mt(_))
    }

    /// Thread count (1 for ST, at least 2 for MT — same floor as
    /// `hzccl::Mode`).
    pub fn threads(self) -> usize {
        match self {
            ThreadMode::St => 1,
            ThreadMode::Mt(k) => k.max(2),
        }
    }

    /// Stable short name (`st` / `mt`).
    pub fn name(self) -> &'static str {
        if self.is_mt() {
            "mt"
        } else {
            "st"
        }
    }
}

/// One executable collective configuration: flavour x algorithm x thread
/// mode x compression chunking (the small-block length the compressors
/// quantize over, which trades ratio against error-control granularity) x
/// ring-step segmentation (1 = phase-serial, >1 = pipelined segments whose
/// compute overlaps the next segment's wire time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Plan {
    /// Collective framework.
    pub flavor: Flavor,
    /// Ring or recursive doubling.
    pub algo: Algo,
    /// Compression thread mode.
    pub mode: ThreadMode,
    /// Compressor small-block length (ignored by [`Flavor::Mpi`]).
    pub block_len: usize,
    /// Ring-step segment count: 1 runs the phase-serial ring, `S > 1`
    /// splits each ring-step block into `S` pipelined segments (ignored by
    /// [`Algo::Rd`], clamped to the block count at execution time).
    pub segments: usize,
    /// Run the two-tier hierarchical schedule (intra-node reduce-scatter →
    /// inter-node ring of the chosen flavour → intra-node allgather) instead
    /// of the flat one. Only meaningful for `Allreduce` on a scenario that
    /// carries a genuinely two-level [`ScenarioSpec::topology`]; executors
    /// fall back to the flat schedule when no topology is available at run
    /// time.
    pub hierarchical: bool,
}

impl Plan {
    /// A phase-serial (one-segment, flat) plan — the pre-segmentation shape.
    pub fn serial(flavor: Flavor, algo: Algo, mode: ThreadMode, block_len: usize) -> Plan {
        Plan { flavor, algo, mode, block_len, segments: 1, hierarchical: false }
    }

    /// Compact human label, e.g. `hz/ring/st/b32` (serial),
    /// `hz/ring/st/b32/s4` (pipelined with 4 segments), or
    /// `hz/ring/st/b32/hier` (two-tier hierarchical schedule).
    pub fn label(&self) -> String {
        let mut base = format!(
            "{}/{}/{}/b{}",
            self.flavor.name(),
            self.algo.name(),
            self.mode.name(),
            self.block_len
        );
        if self.segments > 1 {
            base = format!("{base}/s{}", self.segments);
        }
        if self.hierarchical {
            base = format!("{base}/hier");
        }
        base
    }

    /// Wire encoding v3 (for the one-rank-decides broadcast):
    /// `[flavor, algo, mt, threads, block_len·LE4, segments·LE4]` plus a
    /// trailing `1` byte **only for hierarchical plans** — flat plans keep
    /// the 12-byte v2 form, so every pre-topology trace and bench number
    /// stays bit-identical. v1 encodings were 8 bytes without the segment
    /// word; [`Plan::decode`] accepts all three (hierarchical = false,
    /// segments = 1 where absent).
    pub fn encode(&self) -> Vec<u8> {
        let flavor = match self.flavor {
            Flavor::Mpi => 0u8,
            Flavor::CColl => 1,
            Flavor::Hzccl => 2,
        };
        let algo = match self.algo {
            Algo::Ring => 0u8,
            Algo::Rd => 1,
        };
        let (mt, threads) = match self.mode {
            ThreadMode::St => (0u8, 1u8),
            ThreadMode::Mt(k) => (1, k.clamp(2, 255) as u8),
        };
        let bl = (self.block_len as u32).to_le_bytes();
        let sg = (self.segments.max(1) as u32).to_le_bytes();
        let mut out =
            vec![flavor, algo, mt, threads, bl[0], bl[1], bl[2], bl[3], sg[0], sg[1], sg[2], sg[3]];
        if self.hierarchical {
            out.push(1);
        }
        out
    }

    /// Decode [`Plan::encode`]'s output — 13-byte v3, 12-byte v2 (which
    /// predates the hierarchy byte and means `hierarchical = false`), or the
    /// legacy 8-byte v1 layout (pre-segmentation, `segments = 1`); `None` on
    /// malformed bytes.
    pub fn decode(bytes: &[u8]) -> Option<Plan> {
        if bytes.len() != 13 && bytes.len() != 12 && bytes.len() != 8 {
            return None;
        }
        let flavor = match bytes[0] {
            0 => Flavor::Mpi,
            1 => Flavor::CColl,
            2 => Flavor::Hzccl,
            _ => return None,
        };
        let algo = match bytes[1] {
            0 => Algo::Ring,
            1 => Algo::Rd,
            _ => return None,
        };
        let mode = match bytes[2] {
            0 => ThreadMode::St,
            1 => ThreadMode::Mt(bytes[3] as usize),
            _ => return None,
        };
        let block_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if block_len == 0 {
            return None;
        }
        let segments = if bytes.len() >= 12 {
            u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize
        } else {
            1
        };
        if segments == 0 {
            return None;
        }
        let hierarchical = match bytes.get(12) {
            None => false,
            Some(0) => false,
            Some(1) => true,
            Some(_) => return None,
        };
        Some(Plan { flavor, algo, mode, block_len, segments, hierarchical })
    }
}

/// What the decision engine is asked about: the collective, its size and
/// shape, the error bound, and the compressibility of the data at that bound
/// (estimated per candidate block length, usually by probe-compressing a
/// small sample).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Collective operation.
    pub op: Op,
    /// Per-rank vector length in `f32` elements (full vector for rooted ops).
    pub elems: usize,
    /// Ranks participating.
    pub nranks: usize,
    /// Absolute error bound.
    pub eb: f64,
    /// `(block_len, estimated compression ratio)` pairs; must contain at
    /// least one entry. Ratio 1.0 means incompressible.
    pub ratios: Vec<(usize, f64)>,
    /// Two-tier fabric shape the collective runs on, when known. `None`
    /// (the default) is the flat single-tier fabric; `Some` lets the engine
    /// offer hierarchical candidates and price them with the two-tier cost
    /// forms.
    pub topology: Option<netsim::Topology>,
}

impl ScenarioSpec {
    /// Convenience constructor with a single `(block_len, ratio)` estimate.
    pub fn new(op: Op, elems: usize, nranks: usize, eb: f64, block_len: usize, ratio: f64) -> Self {
        ScenarioSpec { op, elems, nranks, eb, ratios: vec![(block_len, ratio)], topology: None }
    }

    /// Attach the two-tier fabric shape this scenario runs on.
    pub fn with_topology(mut self, topology: netsim::Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The topology, when it is genuinely two-level (`nodes > 1 && ppn > 1`
    /// — degenerate shapes collapse to the flat fabric and never justify
    /// hierarchical plans).
    pub fn two_tier_topology(&self) -> Option<&netsim::Topology> {
        self.topology.as_ref().filter(|t| t.nodes > 1 && t.ppn > 1)
    }

    /// Per-rank message size in bytes.
    pub fn message_bytes(&self) -> usize {
        self.elems * 4
    }

    /// Estimated ratio at `block_len` (falls back to the first entry, then
    /// to 1.0 — a safe "incompressible" default).
    pub fn ratio_for(&self, block_len: usize) -> f64 {
        self.ratios
            .iter()
            .find(|(b, _)| *b == block_len)
            .or_else(|| self.ratios.first())
            .map(|&(_, r)| r.max(1.0))
            .unwrap_or(1.0)
    }

    /// The scenario bucket this spec falls into: cache entries are shared by
    /// all scenarios with the same op, rank count, power-of-two size bucket
    /// and error-bound decade. Deterministic and human-readable, e.g.
    /// `allreduce:b20:r64:e-4`. Topologized scenarios get their own buckets
    /// (`…:t8x8`, plus `:o2` under oversubscription) — a winner measured on
    /// a flat fabric says nothing about a two-tier one — while flat
    /// scenarios keep the historical key shape, so existing caches stay
    /// valid.
    pub fn bucket_key(&self) -> String {
        let bytes = self.message_bytes().max(1);
        // ceil(log2(bytes)): 1 byte -> 0, 2 -> 1, 3..4 -> 2, ...
        let exp = usize::BITS - (bytes - 1).leading_zeros();
        let decade = self.eb.max(f64::MIN_POSITIVE).log10().round() as i64;
        let mut key = format!("{}:b{}:r{}:e{}", self.op.name(), exp, self.nranks, decade);
        if let Some(t) = &self.topology {
            key.push_str(&format!(":t{}x{}", t.nodes, t.ppn));
            if t.oversub != 1.0 {
                key.push_str(&format!(":o{}", t.oversub));
            }
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_encoding_roundtrips() {
        for flavor in [Flavor::Mpi, Flavor::CColl, Flavor::Hzccl] {
            for algo in [Algo::Ring, Algo::Rd] {
                for mode in [ThreadMode::St, ThreadMode::Mt(18)] {
                    for block_len in [32usize, 64, 256] {
                        for segments in [1usize, 4, 16] {
                            for hierarchical in [false, true] {
                                let plan =
                                    Plan { flavor, algo, mode, block_len, segments, hierarchical };
                                assert_eq!(
                                    Plan::decode(&plan.encode()),
                                    Some(plan),
                                    "{}",
                                    plan.label()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn plan_decode_accepts_legacy_v1_and_v2_bytes() {
        // the pre-segmentation 8-byte layout decodes with segments = 1
        let v1 = [2u8, 0, 0, 1, 32, 0, 0, 0];
        assert_eq!(
            Plan::decode(&v1),
            Some(Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32))
        );
        // the pre-hierarchy 12-byte layout decodes as a flat plan
        let v2 = [2u8, 0, 0, 1, 32, 0, 0, 0, 4, 0, 0, 0];
        assert_eq!(
            Plan::decode(&v2),
            Some(Plan {
                segments: 4,
                ..Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32)
            })
        );
    }

    #[test]
    fn plan_decode_rejects_garbage() {
        assert_eq!(Plan::decode(&[]), None);
        assert_eq!(Plan::decode(&[9, 0, 0, 1, 32, 0, 0, 0]), None, "bad flavor");
        assert_eq!(Plan::decode(&[0, 7, 0, 1, 32, 0, 0, 0]), None, "bad algo");
        assert_eq!(Plan::decode(&[0, 0, 0, 1, 0, 0, 0, 0]), None, "zero block");
        assert_eq!(Plan::decode(&[0, 0, 0, 1, 32, 0, 0, 0, 0, 0, 0, 0]), None, "zero segments");
        assert_eq!(Plan::decode(&[0, 0, 0, 1, 32, 0, 0, 0, 4, 0]), None, "odd length");
        assert_eq!(
            Plan::decode(&[0, 0, 0, 1, 32, 0, 0, 0, 4, 0, 0, 0, 9]),
            None,
            "bad hierarchy byte"
        );
    }

    #[test]
    fn plan_label_marks_segmented_and_hierarchical_plans() {
        let serial = Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32);
        assert_eq!(serial.label(), "hz/ring/st/b32");
        let piped = Plan { segments: 4, ..serial };
        assert_eq!(piped.label(), "hz/ring/st/b32/s4");
        let hier = Plan { hierarchical: true, ..serial };
        assert_eq!(hier.label(), "hz/ring/st/b32/hier");
    }

    #[test]
    fn bucket_key_buckets_by_size_and_decade() {
        let spec = |elems: usize, eb: f64| ScenarioSpec::new(Op::Allreduce, elems, 64, eb, 32, 5.0);
        // same power-of-two byte bucket -> same key
        assert_eq!(spec(1 << 18, 1e-4).bucket_key(), spec((1 << 18) - 7, 1e-4).bucket_key());
        // different size bucket or eb decade -> different key
        assert_ne!(spec(1 << 18, 1e-4).bucket_key(), spec(1 << 19, 1e-4).bucket_key());
        assert_ne!(spec(1 << 18, 1e-4).bucket_key(), spec(1 << 18, 1e-3).bucket_key());
        assert_eq!(spec(1 << 18, 1e-4).bucket_key(), "allreduce:b20:r64:e-4");
        // topologized scenarios bucket separately (and keep oversub apart)
        let topo = netsim::Topology::paper(8, 8);
        let t = spec(1 << 18, 1e-4).with_topology(topo);
        assert_eq!(t.bucket_key(), "allreduce:b20:r64:e-4:t8x8");
        let o = spec(1 << 18, 1e-4).with_topology(topo.with_oversub(2.0));
        assert_eq!(o.bucket_key(), "allreduce:b20:r64:e-4:t8x8:o2");
        // degenerate shapes are still two-tier-ineligible but keyed apart
        let flat = spec(1 << 18, 1e-4).with_topology(netsim::Topology::paper(64, 1));
        assert!(flat.two_tier_topology().is_none());
        assert!(t.two_tier_topology().is_some());
    }

    #[test]
    fn ratio_lookup_falls_back_sanely() {
        let mut spec = ScenarioSpec::new(Op::Bcast, 100, 4, 1e-3, 32, 6.0);
        spec.ratios.push((128, 7.5));
        assert_eq!(spec.ratio_for(128), 7.5);
        assert_eq!(spec.ratio_for(32), 6.0);
        assert_eq!(spec.ratio_for(999), 6.0, "unknown block falls back to first");
        spec.ratios.clear();
        assert_eq!(spec.ratio_for(32), 1.0, "no estimate means incompressible");
    }

    #[test]
    fn op_names_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::parse(op.name()), Some(op));
        }
        assert_eq!(Op::parse("gathermax"), None);
    }
}
