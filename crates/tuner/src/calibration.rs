//! Online calibration of the cost model's constants.
//!
//! The analytical model (Sec. III-C, `costmodel`) is only as good as its
//! constants: per-kind compute throughputs (CPR/DPR/HPR/CPT/OTHER, GB/s of
//! uncompressed bytes) and the alpha-beta(+congestion) network law. This
//! module seeds them from the paper's calibration ([`paper_prior`]) and then
//! *refines* them from observed `netsim` flight-recorder outcomes with
//! exponentially-weighted updates, so repeated runs converge on the
//! behaviour of the actual host/simulator rather than trusting the paper's
//! Broadwell/Omni-Path numbers forever.
//!
//! What each constant learns from:
//!
//! * **throughputs** — every traced `Compute` event carries the
//!   uncompressed-equivalent bytes it touched and the charged seconds, so
//!   `bytes/secs` is an exact per-event throughput observation. Events are
//!   aggregated per kind (bytes-weighted) and applied as one EW step per run.
//! * **alpha** — every `Send` event records the sender-side injection
//!   overhead, which *is* the network alpha.
//! * **beta** — only observable through receive-side waits, which confound
//!   serialization with sender compute imbalance; the estimator therefore
//!   only updates when the run was communication-dominated (MPI share of
//!   virtual time above [`Calibration::BETA_GUARD_SHARE`]) and uses the
//!   median implied per-byte time, at half the usual gain.

use crate::plan::{Flavor, ThreadMode};
use netsim::{Event, Json, NetConfig, OpKind, RunReport, ThroughputModel};
use std::collections::BTreeMap;

/// Throughputs calibrated to the paper's 36-thread Broadwell socket, per
/// framework and mode. The hZCCL values come from the paper's Fig. 6 /
/// Tables V-VI (fZ-light ~30/60 GB/s compress/decompress MT, hZ-dynamic
/// ~175 GB/s on mixed data); the C-Coll values reflect its SZx-class
/// compressor, which matches fZ-light single-threaded but scales far worse
/// (Fig. 2's 52% MT DOC share). This is the cold-start prior of every
/// [`Calibration`]; `hzccl::paper_model` delegates here so the constants
/// live in exactly one place.
pub fn paper_prior(flavor: Flavor, mt: bool) -> ThroughputModel {
    match (flavor, mt) {
        (Flavor::Mpi, _) => ThroughputModel::new(1.0, 1.0, 1.0, 50.0, 108.0),
        (Flavor::CColl, false) => ThroughputModel::new(1.7, 3.0, 3.0, 2.8, 6.0),
        (Flavor::CColl, true) => ThroughputModel::new(4.0, 7.0, 7.0, 50.0, 108.0),
        (Flavor::Hzccl, false) => ThroughputModel::new(1.7, 3.3, 9.7, 2.8, 6.0),
        (Flavor::Hzccl, true) => ThroughputModel::new(30.0, 60.0, 175.0, 50.0, 108.0),
    }
}

/// All calibrated constants: six throughput tables (three flavours x ST/MT)
/// plus the network law. Serializable through [`netsim::Json`] so a tuning
/// cache file carries its calibration along.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Per-kind GB/s, keyed `"<flavor>:<st|mt>"` (e.g. `"hz:st"`).
    pub thr: BTreeMap<String, [f64; OpKind::COUNT]>,
    /// Per-message latency alpha in seconds.
    pub latency_s: f64,
    /// Effective per-flow bandwidth in Gbit/s (the beta term).
    pub bandwidth_gbps: f64,
    /// Congestion coefficient gamma (`1 + gamma * log2(nprocs)` scaling).
    pub congestion: f64,
    /// EW gain per observed run (0 < eta <= 1).
    pub eta: f64,
    /// Number of runs absorbed so far.
    pub samples: u64,
}

impl Calibration {
    /// Beta updates require at least this MPI share of total virtual time.
    pub const BETA_GUARD_SHARE: f64 = 0.3;

    /// Table key for a flavour/mode pair.
    pub fn key(flavor: Flavor, mt: bool) -> String {
        format!("{}:{}", flavor.name(), if mt { "mt" } else { "st" })
    }

    /// The paper-calibrated prior (all six tables + the default effective
    /// Omni-Path network law).
    pub fn paper() -> Calibration {
        let mut thr = BTreeMap::new();
        for flavor in [Flavor::Mpi, Flavor::CColl, Flavor::Hzccl] {
            for mt in [false, true] {
                thr.insert(Self::key(flavor, mt), paper_prior(flavor, mt).gbps);
            }
        }
        let net = NetConfig::default();
        Calibration {
            thr,
            latency_s: net.latency_s,
            bandwidth_gbps: net.bandwidth_gbps,
            congestion: net.congestion,
            eta: 0.3,
            samples: 0,
        }
    }

    /// Current throughput model for one flavour/mode.
    pub fn model(&self, flavor: Flavor, mode: ThreadMode) -> ThroughputModel {
        let gbps = self
            .thr
            .get(&Self::key(flavor, mode.is_mt()))
            .copied()
            .unwrap_or(paper_prior(flavor, mode.is_mt()).gbps);
        ThroughputModel { gbps }
    }

    /// Current network law.
    pub fn net(&self) -> NetConfig {
        NetConfig {
            latency_s: self.latency_s,
            bandwidth_gbps: self.bandwidth_gbps,
            congestion: self.congestion,
        }
    }

    /// One EW step on a single throughput constant (exposed so tests and
    /// offline calibrators can inject observations directly).
    pub fn nudge(&mut self, flavor: Flavor, mt: bool, kind: OpKind, observed_gbps: f64) {
        if !(observed_gbps.is_finite() && observed_gbps > 0.0) {
            return;
        }
        let slot = &mut self
            .thr
            .entry(Self::key(flavor, mt))
            .or_insert_with(|| paper_prior(flavor, mt).gbps)[kind.index()];
        *slot += self.eta * (observed_gbps - *slot);
    }

    /// Absorb one traced run: refine the `(flavor, mode)` throughput table
    /// from its `Compute` events, alpha from `Send` injection overheads, and
    /// (guarded) beta from receive waits. Untraced reports are a no-op —
    /// the flight recorder is the calibration signal.
    pub fn absorb_run<R>(&mut self, flavor: Flavor, mode: ThreadMode, report: &RunReport<R>) {
        let mut bytes_by_kind = [0f64; OpKind::COUNT];
        let mut secs_by_kind = [0f64; OpKind::COUNT];
        let mut inject_total = 0f64;
        let mut inject_count = 0u64;
        let mut implied_byte_times: Vec<f64> = Vec::new();
        let mut wait_total = 0f64;
        let mut elapsed_total = 0f64;
        let traced = !report.traces.is_empty();
        let nranks = report.outcomes.len().max(1);
        for o in &report.outcomes {
            elapsed_total += o.elapsed;
        }
        for trace in &report.traces {
            for ev in &trace.events {
                match *ev {
                    Event::Compute { kind, bytes, secs, .. } => {
                        if bytes > 0 && secs > 0.0 {
                            bytes_by_kind[kind.index()] += bytes as f64;
                            secs_by_kind[kind.index()] += secs;
                        }
                    }
                    Event::Send { inject_secs, .. } => {
                        if inject_secs > 0.0 {
                            inject_total += inject_secs;
                            inject_count += 1;
                        }
                    }
                    Event::Recv { wire_bytes, wait_secs, .. } => {
                        wait_total += wait_secs;
                        // only waits clearly above alpha carry a beta signal
                        if wire_bytes >= 4096 && wait_secs > self.latency_s {
                            implied_byte_times
                                .push((wait_secs - self.latency_s) / wire_bytes as f64);
                        }
                    }
                    // fault annotations carry no timing signal
                    Event::Fault { .. } => {}
                }
            }
        }
        if !traced {
            return;
        }
        self.samples += 1;
        // --- throughputs: one bytes-weighted EW step per kind -------------
        for kind in OpKind::ALL {
            let (b, s) = (bytes_by_kind[kind.index()], secs_by_kind[kind.index()]);
            if b > 0.0 && s > 0.0 {
                self.nudge(flavor, mode.is_mt(), kind, b / s / 1e9);
            }
        }
        // --- alpha: the injection overhead is alpha by construction -------
        if inject_count > 0 {
            let observed = inject_total / inject_count as f64;
            self.latency_s += self.eta * (observed - self.latency_s);
        }
        // --- beta: guarded, half-gain, median estimator -------------------
        let mpi_share = if elapsed_total > 0.0 { wait_total / elapsed_total } else { 0.0 };
        if mpi_share > Self::BETA_GUARD_SHARE && !implied_byte_times.is_empty() {
            implied_byte_times.sort_by(|a, b| a.partial_cmp(b).expect("finite byte times"));
            let median = implied_byte_times[implied_byte_times.len() / 2];
            let factor = 1.0 + self.congestion * (nranks as f64).log2();
            let observed_gbps = 8.0 / (median / factor) / 1e9;
            if observed_gbps.is_finite() && observed_gbps > 0.0 {
                self.bandwidth_gbps += 0.5 * self.eta * (observed_gbps - self.bandwidth_gbps);
            }
        }
    }

    /// Serialize to a [`Json`] tree (deterministic field order).
    pub fn to_json(&self) -> Json {
        let tables = Json::Obj(
            self.thr
                .iter()
                .map(|(k, gbps)| {
                    (k.clone(), Json::Arr(gbps.iter().map(|&g| Json::Num(g)).collect()))
                })
                .collect(),
        );
        Json::obj(vec![
            ("latency_s", Json::Num(self.latency_s)),
            ("bandwidth_gbps", Json::Num(self.bandwidth_gbps)),
            ("congestion", Json::Num(self.congestion)),
            ("eta", Json::Num(self.eta)),
            ("samples", Json::Num(self.samples as f64)),
            ("throughputs", tables),
        ])
    }

    /// Parse [`Calibration::to_json`]'s output back.
    pub fn from_json(doc: &Json) -> Result<Calibration, String> {
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("calibration: missing number '{key}'"))
        };
        let mut thr = BTreeMap::new();
        let tables =
            doc.get("throughputs").and_then(Json::as_obj).ok_or("calibration: missing tables")?;
        for (key, arr) in tables {
            let arr = arr.as_arr().ok_or("calibration: table is not an array")?;
            if arr.len() != OpKind::COUNT {
                return Err(format!("calibration: table '{key}' has {} entries", arr.len()));
            }
            let mut gbps = [0f64; OpKind::COUNT];
            for (slot, v) in gbps.iter_mut().zip(arr) {
                *slot = v.as_f64().ok_or("calibration: non-numeric throughput")?;
                if !(slot.is_finite() && *slot > 0.0) {
                    return Err(format!("calibration: non-positive throughput in '{key}'"));
                }
            }
            thr.insert(key.clone(), gbps);
        }
        Ok(Calibration {
            thr,
            latency_s: num("latency_s")?,
            bandwidth_gbps: num("bandwidth_gbps")?,
            congestion: num("congestion")?,
            eta: num("eta")?,
            samples: num("samples")? as u64,
        })
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ComputeTiming, SimBuilder};

    #[test]
    fn paper_prior_matches_paper_ordering() {
        for mt in [false, true] {
            let hz = paper_prior(Flavor::Hzccl, mt);
            let cc = paper_prior(Flavor::CColl, mt);
            assert!(hz.gbps[2] > cc.gbps[0], "homomorphic beats DOC compress");
            assert!(hz.gbps[2] > cc.gbps[1], "homomorphic beats DOC decompress");
            assert!(hz.gbps[0] >= cc.gbps[0]);
        }
    }

    #[test]
    fn nudge_moves_toward_observation() {
        let mut c = Calibration::paper();
        let before = c.model(Flavor::Hzccl, ThreadMode::St).gbps[0];
        c.nudge(Flavor::Hzccl, false, OpKind::Cpr, 10.0);
        let after = c.model(Flavor::Hzccl, ThreadMode::St).gbps[0];
        assert!(after > before && after < 10.0, "{before} -> {after}");
        // non-finite and non-positive observations are ignored
        c.nudge(Flavor::Hzccl, false, OpKind::Cpr, f64::NAN);
        c.nudge(Flavor::Hzccl, false, OpKind::Cpr, -1.0);
        assert_eq!(c.model(Flavor::Hzccl, ThreadMode::St).gbps[0], after);
    }

    #[test]
    fn absorb_run_learns_modeled_throughput_and_alpha() {
        let mut c = Calibration::paper();
        // deliberately mis-seed CPR far below the simulator's true 5 GB/s
        c.thr.get_mut(&Calibration::key(Flavor::Hzccl, false)).unwrap()[0] = 0.05;
        let true_gbps = 5.0;
        let report = SimBuilder::new(2)
            .timing(ComputeTiming::Modeled(ThroughputModel::new(true_gbps, 10.0, 50.0, 20.0, 40.0)))
            .trace(netsim::TraceConfig::default())
            .run(|comm| {
                comm.compute(OpKind::Cpr, 1 << 20, || ());
                let n = comm.size();
                comm.sendrecv(
                    (comm.rank() + 1) % n,
                    0,
                    vec![0u8; 1 << 16],
                    (comm.rank() + n - 1) % n,
                );
            });
        let before = c.model(Flavor::Hzccl, ThreadMode::St).gbps[0];
        c.absorb_run(Flavor::Hzccl, ThreadMode::St, &report);
        let after = c.model(Flavor::Hzccl, ThreadMode::St).gbps[0];
        assert!(
            (after - true_gbps).abs() < (before - true_gbps).abs(),
            "CPR must move toward the measured value: {before} -> {after}"
        );
        assert!(after > before);
        // repeated absorption converges
        for _ in 0..40 {
            c.absorb_run(Flavor::Hzccl, ThreadMode::St, &report);
        }
        let settled = c.model(Flavor::Hzccl, ThreadMode::St).gbps[0];
        assert!((settled - true_gbps).abs() < 0.05, "settled at {settled}");
        assert!(c.samples >= 41);
    }

    #[test]
    fn untraced_outcomes_are_ignored() {
        let mut c = Calibration::paper();
        let snapshot = c.clone();
        let report = SimBuilder::new(2)
            .timing(ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0)))
            .run(|comm| {
                comm.compute(OpKind::Cpr, 1 << 20, || ());
            });
        c.absorb_run(Flavor::Hzccl, ThreadMode::St, &report);
        assert_eq!(c, snapshot, "no trace, no update");
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut c = Calibration::paper();
        c.nudge(Flavor::CColl, true, OpKind::Dpr, 11.7);
        c.samples = 3;
        let doc = c.to_json().render();
        let back = Calibration::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, c);
        // bit-for-bit stable rendering
        assert_eq!(back.to_json().render(), doc);
    }

    #[test]
    fn from_json_rejects_malformed_tables() {
        let mut c = Calibration::paper();
        c.thr.get_mut("hz:st").unwrap()[0] = 1.0;
        let good = c.to_json().render();
        let bad = good.replace("\"hz:st\":[1", "\"hz:st\":[-1");
        assert!(Calibration::from_json(&Json::parse(&bad).unwrap()).is_err());
    }
}
