//! The persistent tuning cache: scenario bucket -> best measured plan.
//!
//! Keys come from [`crate::ScenarioSpec::bucket_key`]; values remember the
//! best plan seen so far for that bucket, its (exponentially smoothed)
//! measured time, the model's prediction at record time, and how many
//! measurements contributed. Serialization goes through [`netsim::Json`]
//! (the workspace's no-dependency JSON layer) and is bit-for-bit stable
//! under a render -> parse -> render cycle, which `tests/` pin down.

use crate::plan::{Algo, Flavor, Plan, ThreadMode};
use netsim::Json;
use std::collections::BTreeMap;

/// Best-known configuration for one scenario bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// The winning plan.
    pub plan: Plan,
    /// Measured completion time (EW-smoothed over repeats of the same plan).
    pub measured_secs: f64,
    /// What the analytical model predicted for this plan when it was
    /// recorded (kept for drift diagnostics: a growing model/measured gap
    /// means the calibration needs more observations).
    pub model_secs: f64,
    /// Measurements that contributed to this entry.
    pub samples: u64,
}

/// Scenario-bucket keyed store of [`CacheEntry`]s (BTreeMap so rendering is
/// deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuningCache {
    /// `bucket_key -> entry`.
    pub entries: BTreeMap<String, CacheEntry>,
}

impl TuningCache {
    /// An empty cache.
    pub fn new() -> TuningCache {
        TuningCache::default()
    }

    /// Entry lookup by bucket key.
    pub fn get(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Number of buckets with a recorded winner.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record one measurement. Rules:
    ///
    /// * empty bucket -> insert;
    /// * same plan re-measured -> EW-smooth `measured_secs` (gain 0.5) and
    ///   bump `samples`, so repeated runs converge instead of jittering;
    /// * different plan measured faster -> replace the winner;
    /// * different plan measured slower -> keep the incumbent (but still
    ///   count the sample, so `samples` reflects total evidence).
    pub fn record(&mut self, key: &str, plan: Plan, measured_secs: f64, model_secs: f64) {
        if !(measured_secs.is_finite() && measured_secs > 0.0) {
            return;
        }
        match self.entries.get_mut(key) {
            None => {
                self.entries.insert(
                    key.to_string(),
                    CacheEntry { plan, measured_secs, model_secs, samples: 1 },
                );
            }
            Some(entry) if entry.plan == plan => {
                entry.measured_secs += 0.5 * (measured_secs - entry.measured_secs);
                entry.model_secs = model_secs;
                entry.samples += 1;
            }
            Some(entry) if measured_secs < entry.measured_secs => {
                *entry = CacheEntry { plan, measured_secs, model_secs, samples: entry.samples + 1 };
            }
            Some(entry) => entry.samples += 1,
        }
    }

    /// Serialize to a [`Json`] tree (deterministic: BTreeMap order).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(key, e)| {
                    (
                        key.clone(),
                        Json::obj(vec![
                            ("flavor", Json::Str(e.plan.flavor.name().into())),
                            ("algo", Json::Str(e.plan.algo.name().into())),
                            ("mode", Json::Str(e.plan.mode.name().into())),
                            ("threads", Json::Num(e.plan.mode.threads() as f64)),
                            ("block_len", Json::Num(e.plan.block_len as f64)),
                            ("segments", Json::Num(e.plan.segments.max(1) as f64)),
                            ("hierarchical", Json::Bool(e.plan.hierarchical)),
                            ("measured_secs", Json::Num(e.measured_secs)),
                            ("model_secs", Json::Num(e.model_secs)),
                            ("samples", Json::Num(e.samples as f64)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Parse [`TuningCache::to_json`]'s output back.
    pub fn from_json(doc: &Json) -> Result<TuningCache, String> {
        let pairs = doc.as_obj().ok_or("tuning cache: expected an object")?;
        let mut entries = BTreeMap::new();
        for (key, v) in pairs {
            let str_field = |name: &str| -> Result<&str, String> {
                v.get(name)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cache entry '{key}': missing '{name}'"))
            };
            let num_field = |name: &str| -> Result<f64, String> {
                v.get(name)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cache entry '{key}': missing '{name}'"))
            };
            let flavor = Flavor::parse(str_field("flavor")?)
                .ok_or_else(|| format!("cache entry '{key}': bad flavor"))?;
            let algo = Algo::parse(str_field("algo")?)
                .ok_or_else(|| format!("cache entry '{key}': bad algo"))?;
            let mode = match str_field("mode")? {
                "st" => ThreadMode::St,
                "mt" => ThreadMode::Mt(num_field("threads")? as usize),
                other => return Err(format!("cache entry '{key}': bad mode '{other}'")),
            };
            let block_len = num_field("block_len")? as usize;
            if block_len == 0 {
                return Err(format!("cache entry '{key}': zero block_len"));
            }
            // schema v1 entries predate segmentation: default to the
            // phase-serial 1-segment plan they actually measured
            let segments = match v.get("segments") {
                None => 1,
                Some(s) => {
                    let s =
                        s.as_f64().ok_or_else(|| format!("cache entry '{key}': bad 'segments'"))?
                            as usize;
                    if s == 0 {
                        return Err(format!("cache entry '{key}': zero segments"));
                    }
                    s
                }
            };
            // schema v1/v2 entries predate the hierarchical schedule: they
            // measured the flat path
            let hierarchical = match v.get("hierarchical") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err(format!("cache entry '{key}': bad 'hierarchical'")),
            };
            entries.insert(
                key.clone(),
                CacheEntry {
                    plan: Plan { flavor, algo, mode, block_len, segments, hierarchical },
                    measured_secs: num_field("measured_secs")?,
                    model_secs: num_field("model_secs")?,
                    samples: num_field("samples")? as u64,
                },
            );
        }
        Ok(TuningCache { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(flavor: Flavor, algo: Algo) -> Plan {
        Plan::serial(flavor, algo, ThreadMode::St, 32)
    }

    #[test]
    fn record_keeps_the_fastest_plan() {
        let mut cache = TuningCache::new();
        cache.record("k", plan(Flavor::Mpi, Algo::Ring), 2.0, 2.1);
        cache.record("k", plan(Flavor::Hzccl, Algo::Ring), 1.0, 0.9);
        assert_eq!(cache.get("k").unwrap().plan.flavor, Flavor::Hzccl);
        // slower challenger does not displace the winner
        cache.record("k", plan(Flavor::CColl, Algo::Ring), 1.5, 1.4);
        assert_eq!(cache.get("k").unwrap().plan.flavor, Flavor::Hzccl);
        assert_eq!(cache.get("k").unwrap().samples, 3);
    }

    #[test]
    fn repeats_of_the_same_plan_smooth_the_measurement() {
        let mut cache = TuningCache::new();
        let p = plan(Flavor::Hzccl, Algo::Rd);
        cache.record("k", p, 1.0, 1.0);
        cache.record("k", p, 2.0, 1.0);
        let e = cache.get("k").unwrap();
        assert!((e.measured_secs - 1.5).abs() < 1e-12);
        assert_eq!(e.samples, 2);
    }

    #[test]
    fn bogus_measurements_are_dropped() {
        let mut cache = TuningCache::new();
        cache.record("k", plan(Flavor::Mpi, Algo::Ring), f64::NAN, 1.0);
        cache.record("k", plan(Flavor::Mpi, Algo::Ring), -1.0, 1.0);
        cache.record("k", plan(Flavor::Mpi, Algo::Ring), 0.0, 1.0);
        assert!(cache.is_empty());
    }

    #[test]
    fn json_roundtrip_bit_for_bit() {
        let mut cache = TuningCache::new();
        cache.record(
            "allreduce:b20:r64:e-4",
            Plan {
                flavor: Flavor::Hzccl,
                algo: Algo::Ring,
                mode: ThreadMode::Mt(18),
                block_len: 32,
                segments: 4,
                hierarchical: true,
            },
            0.001234,
            0.0011,
        );
        cache.record("bcast:b10:r8:e-3", plan(Flavor::CColl, Algo::Ring), 5e-5, 6e-5);
        let text = cache.to_json().render();
        let back = TuningCache::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cache);
        assert_eq!(back.to_json().render(), text, "render -> parse -> render is stable");
    }

    #[test]
    fn v1_entries_without_segments_load_as_serial() {
        // a cache file written before the segment dimension existed
        let v1 = "{\"allreduce:b18:r8:e-4\":{\"flavor\":\"hz\",\"algo\":\"ring\",\"mode\":\"st\",\
                  \"threads\":1,\"block_len\":32,\"measured_secs\":0.002,\"model_secs\":0.0018,\
                  \"samples\":3}}";
        let cache = TuningCache::from_json(&Json::parse(v1).unwrap()).unwrap();
        let e = cache.get("allreduce:b18:r8:e-4").unwrap();
        assert_eq!(e.plan.segments, 1, "v1 entries measured the phase-serial path");
        assert_eq!(e.samples, 3);
        // and re-rendering writes the v2 shape (explicit segments field)
        assert!(cache.to_json().render().contains("\"segments\":1"));
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        let doc = Json::parse("{\"k\":{\"flavor\":\"warp\",\"algo\":\"ring\",\"mode\":\"st\",\"threads\":1,\"block_len\":32,\"measured_secs\":1,\"model_secs\":1,\"samples\":1}}").unwrap();
        assert!(TuningCache::from_json(&doc).is_err());
        assert!(TuningCache::from_json(&Json::parse("[1,2]").unwrap()).is_err());
    }
}
