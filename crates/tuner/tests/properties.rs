//! Property-style tests for the tuner (std-only, xorshift-randomized):
//!
//! 1. **Decision determinism** — given a fixed engine state (calibration +
//!    cache) and a fixed scenario, `Engine::decide` is a pure function: the
//!    same plan, source, ranking and why-string every time, including across
//!    a JSON round-trip of the engine.
//! 2. **Cache round-trip** — `TuningCache` and full `Engine` state serialize
//!    to JSON that parses back to an equal value AND re-renders to the
//!    bit-identical byte string (so a resumed `hzc tune` run never churns
//!    the file it just wrote).

use tuner::{Engine, Op, Plan, ScenarioSpec, TuningCache};

/// Deterministic xorshift64* PRNG — no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() % xs.len() as u64) as usize]
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

fn random_scenario(rng: &mut Rng) -> ScenarioSpec {
    let op = rng.pick(&[Op::Allreduce, Op::ReduceScatter, Op::Reduce, Op::Bcast]);
    let elems = rng.range(16, 4 << 20);
    let nranks = rng.pick(&[2usize, 4, 8, 16, 64, 200]);
    let eb = rng.pick(&[1e-3, 1e-4, 1e-5]);
    let ratio = 1.0 + (rng.next() % 1000) as f64 / 50.0;
    ScenarioSpec::new(op, elems, nranks, eb, 32, ratio)
}

/// A populated engine: paper priors plus a cache seeded from model winners
/// of a few scenarios (pretending those were measured slightly faster).
fn populated_engine(rng: &mut Rng) -> Engine {
    let mut engine = Engine::paper();
    for _ in 0..12 {
        let spec = random_scenario(rng);
        let d = engine.decide(&spec);
        let model = d.ranked.first().map(|p| p.secs).unwrap_or(1e-3);
        engine.observe_measurement(&spec, &d.plan, model * 0.9);
    }
    engine
}

#[test]
fn decisions_are_deterministic_given_fixed_state() {
    let mut rng = Rng::new(0xA11CE);
    let engine = populated_engine(&mut rng);

    // The same engine must answer identically across repeats and across a
    // serialization round-trip (a reloaded cache file decides the same way).
    let reloaded = Engine::from_json(&engine.to_json()).expect("engine round-trips");
    for _ in 0..200 {
        let spec = random_scenario(&mut rng);
        let a = engine.decide(&spec);
        let b = engine.decide(&spec);
        let c = reloaded.decide(&spec);
        for other in [&b, &c] {
            assert_eq!(a.plan, other.plan, "plan drifted for {}", spec.bucket_key());
            assert_eq!(a.source, other.source, "source drifted for {}", spec.bucket_key());
            assert_eq!(a.why, other.why, "why drifted for {}", spec.bucket_key());
            assert_eq!(a.ranked.len(), other.ranked.len());
            for (x, y) in a.ranked.iter().zip(&other.ranked) {
                assert_eq!(x.plan, y.plan);
                assert!(
                    (x.secs - y.secs).abs() < 1e-15,
                    "prediction drifted: {} vs {}",
                    x.secs,
                    y.secs
                );
            }
        }
        // And the chosen plan is always one of the enumerated candidates.
        assert!(
            engine.candidates(&spec).contains(&a.plan),
            "decision {} outside the candidate set",
            a.plan.label()
        );
    }
}

#[test]
fn scenarios_in_the_same_bucket_get_the_same_decision() {
    // bucket_key quantizes (op, ceil-log2 bytes, ranks, eb decade); any two
    // scenarios sharing a bucket must resolve to the same cached plan — this
    // is what makes the runtime Session memo safe.
    let mut rng = Rng::new(7);
    let mut engine = Engine::paper();
    let spec = ScenarioSpec::new(Op::Allreduce, 200_000, 64, 1e-4, 32, 8.0);
    let d = engine.decide(&spec);
    engine.observe_measurement(&spec, &d.plan, 1e-3);

    for _ in 0..50 {
        // Same byte bucket (ceil log2 of 800_000 covers (2^19, 2^20]).
        let elems = rng.range((1 << 19) / 4 + 1, (1 << 20) / 4 + 1);
        let twin = ScenarioSpec::new(Op::Allreduce, elems, 64, 1e-4, 32, 4.0);
        assert_eq!(twin.bucket_key(), spec.bucket_key());
        let e = engine.decide(&twin);
        assert_eq!(e.plan, d.plan);
        assert_eq!(e.source, tuner::DecisionSource::Cache);
    }
}

#[test]
fn cache_json_round_trips_bit_for_bit() {
    let mut rng = Rng::new(0xBEEF);
    let mut cache = TuningCache::new();
    let mut engine = Engine::paper();
    for _ in 0..64 {
        let spec = random_scenario(&mut rng);
        let plan = rng.pick(&engine.candidates(&spec));
        let secs = (1 + rng.next() % 10_000) as f64 * 1e-6;
        let model = (1 + rng.next() % 10_000) as f64 * 1e-6;
        cache.record(&spec.bucket_key(), plan, secs, model);
        engine.observe_measurement(&spec, &plan, secs);
    }

    // Value-level equality after a parse…
    let text = cache.to_json().render();
    let parsed =
        TuningCache::from_json(&netsim::Json::parse(&text).expect("parses")).expect("loads");
    assert_eq!(parsed, cache);

    // …and byte-level stability of the rendering (the file never churns).
    assert_eq!(parsed.to_json().render(), text, "cache rendering not bit-stable");

    // The same holds for the whole engine state (calibration + cache + knobs).
    let etext = engine.to_json().render();
    let eback = Engine::from_json(&netsim::Json::parse(&etext).expect("parses")).expect("loads");
    assert_eq!(eback.to_json().render(), etext, "engine rendering not bit-stable");
}

#[test]
fn plan_encode_decode_is_the_identity_on_valid_plans() {
    let mut rng = Rng::new(42);
    let engine = Engine::paper();
    for _ in 0..100 {
        let spec = random_scenario(&mut rng);
        for plan in engine.candidates(&spec) {
            let wire = plan.encode();
            assert_eq!(Plan::decode(&wire), Some(plan), "wire round-trip failed");
        }
    }
    // Garbage must not decode.
    assert_eq!(Plan::decode(&[0xFF; 8]), None);
    assert_eq!(Plan::decode(&[1, 2]), None);
}
