//! szxlite stream format.
//!
//! ```text
//! Header (little-endian):
//!   magic "SZXL" 4 B | version u32 | n u64 | eb f64 | block_len u32
//! Body, per block of up to `block_len` values:
//!   flag u8:
//!     0          constant block: followed by the mean as f32 (4 B)
//!     1..=4      non-constant: bytes per quantization integer, followed by
//!                len * flag bytes of little-endian two's-complement integers
//! ```
//!
//! No offset tables, no bit packing, no prediction — the minimal,
//! byte-aligned layout that makes the SZx design point fast.

use fzlight::error::{Error, Result};

/// Stream magic bytes.
pub const MAGIC: [u8; 4] = *b"SZXL";
/// Stream format version.
pub const VERSION: u32 = 1;
/// Default block length (SZx-class designs use larger blocks than cuSZp).
pub const DEFAULT_BLOCK_LEN: usize = 64;

const FIXED: usize = 4 + 4 + 8 + 8 + 4;

/// Parsed szxlite header.
#[derive(Debug, Clone, PartialEq)]
pub struct SzxHeader {
    /// Element count.
    pub n: u64,
    /// Absolute error bound.
    pub eb: f64,
    /// Block length.
    pub block_len: u32,
}

impl SzxHeader {
    /// Serialized header size.
    pub fn serialized_len() -> usize {
        FIXED
    }

    /// Append the serialized header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.eb.to_le_bytes());
        out.extend_from_slice(&self.block_len.to_le_bytes());
    }

    /// Parse a header; returns it with the body offset.
    pub fn parse(bytes: &[u8]) -> Result<(SzxHeader, usize)> {
        if bytes.len() < FIXED {
            return Err(Error::Truncated { need: FIXED, have: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(Error::Corrupt("bad magic"));
        }
        if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
            return Err(Error::Corrupt("unsupported version"));
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let eb = f64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let block_len = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        if !(eb.is_finite() && eb > 0.0) {
            return Err(Error::Corrupt("non-positive error bound"));
        }
        if block_len == 0 {
            return Err(Error::Corrupt("invalid block length"));
        }
        Ok((SzxHeader { n, eb, block_len }, FIXED))
    }
}

/// An owned szxlite compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SzxStream {
    bytes: Vec<u8>,
    header: SzxHeader,
}

impl SzxStream {
    /// Assemble from header + body.
    pub fn from_parts(header: SzxHeader, body: &[u8]) -> SzxStream {
        let mut bytes = Vec::with_capacity(FIXED + body.len());
        header.write_to(&mut bytes);
        bytes.extend_from_slice(body);
        SzxStream { bytes, header }
    }

    /// Parse from wire bytes (body length is validated lazily by decode —
    /// the format has no offset table to cross-check eagerly).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SzxStream> {
        let (header, _) = SzxHeader::parse(&bytes)?;
        Ok(SzxStream { bytes, header })
    }

    /// Full wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parsed header.
    pub fn header(&self) -> &SzxHeader {
        &self.header
    }

    /// Body bytes (after the header).
    pub fn body(&self) -> &[u8] {
        &self.bytes[FIXED..]
    }

    /// Element count.
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Total compressed size (header + body).
    pub fn compressed_size(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio `original / compressed`.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        (self.n() * 4) as f64 / self.compressed_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = SzxHeader { n: 123, eb: 1e-4, block_len: 64 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (h2, at) = SzxHeader::parse(&buf).unwrap();
        assert_eq!(h, h2);
        assert_eq!(at, SzxHeader::serialized_len());
    }

    #[test]
    fn bad_inputs_rejected() {
        let h = SzxHeader { n: 1, eb: 1e-4, block_len: 64 };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        for cut in 0..buf.len() {
            assert!(SzxHeader::parse(&buf[..cut]).is_err());
        }
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(SzxHeader::parse(&bad).is_err());
    }
}
