//! # szxlite — an SZx-style prediction-free error-bounded compressor
//!
//! The paper's Sec. III-B.1 surveys the high-speed CPU pipelines and singles
//! out SZx [11] as "the fastest CPU compressor", whose *constant-block
//! design* "may severely degrade data reconstruction quality" — the
//! observation that motivated cuSZp and, in turn, fZ-light. This crate
//! implements that design point so the trade-off can be measured instead of
//! cited:
//!
//! * **Prediction-free**: no Lorenzo delta — each value is quantized
//!   independently, so smooth data compresses far worse than under
//!   fZ-light's delta coding (the ratio gap the survey implies).
//! * **Constant-block design**: a block whose value spread fits within the
//!   error bound (`max - min <= 2*eb`) is collapsed to a single mean value.
//!   The point-wise bound still holds, but every value in the block
//!   reconstructs to the *same* number — the blocky-artifact quality issue
//!   cuSZp [14] demonstrated.
//! * **Byte-aligned storage**: non-constant blocks store each quantization
//!   integer in the minimum whole number of bytes for the block — no
//!   bit-granular packing, which is what makes the design so fast.
//!
//! The public API mirrors `fzlight`: [`compress`], [`decompress`],
//! [`SzxStream`]. Error bound semantics are identical (`|v - v'| <= eb`).

mod codec;
mod format;

pub use codec::{compress, decompress, decompress_into};
pub use format::{SzxHeader, SzxStream};

pub use fzlight::error::{Error, Result};
pub use fzlight::{Config, ErrorBound};

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], cfg: &Config) -> Vec<f32> {
        decompress(&compress(data, cfg).expect("compress")).expect("decompress")
    }

    #[test]
    fn empty_and_small_inputs_roundtrip() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        assert!(roundtrip(&[], &cfg).is_empty());
        for n in [1usize, 2, 63, 64, 65, 130] {
            let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin() * 7.0).collect();
            let out = roundtrip(&data, &cfg);
            assert_eq!(out.len(), n);
            for (a, b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= 1e-3 + 1e-9, "n={n}: |{a}-{b}|");
            }
        }
    }

    #[test]
    fn error_bound_holds_across_magnitudes() {
        let data: Vec<f32> =
            (0..50_000).map(|i| ((i as f32) * 0.0173).sin() * 10f32.powi(i % 5 - 2)).collect();
        for &eb in &[1e-1, 1e-2, 1e-3] {
            let cfg = Config::new(ErrorBound::Abs(eb));
            let out = roundtrip(&data, &cfg);
            for (a, b) in data.iter().zip(&out) {
                let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
                assert!(((a - b).abs() as f64) <= tol, "eb={eb}: |{a}-{b}|");
            }
        }
    }

    #[test]
    fn near_constant_blocks_collapse_to_the_mean() {
        // a gentle ramp inside one block: spread < 2*eb => constant block,
        // every value reconstructs to the same mean
        let eb = 0.5f64;
        let data: Vec<f32> = (0..64).map(|i| 10.0 + i as f32 * 0.01).collect();
        let out = roundtrip(&data, &Config::new(ErrorBound::Abs(eb)));
        assert!(out.windows(2).all(|w| w[0] == w[1]), "block must collapse");
        assert!((out[0] - 10.315).abs() <= 0.5);
    }

    #[test]
    fn prediction_free_ratio_trails_fzlight_on_smooth_data() {
        // smooth data: delta coding wins big — the survey's implied gap
        let data: Vec<f32> = (0..1 << 16).map(|i| (i as f32 * 2e-4).sin() * 50.0).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let szx = compress(&data, &cfg).unwrap();
        let fz = fzlight::compress(&data, &cfg).unwrap();
        assert!(
            fz.ratio() > 1.5 * szx.ratio(),
            "fzlight {:.2} should beat szxlite {:.2}",
            fz.ratio(),
            szx.ratio()
        );
    }

    #[test]
    fn constant_block_design_degrades_quality_at_matched_ratio() {
        // The Sec. III-B.1 claim: at a comparable compression ratio, the
        // constant-block reconstruction is worse. Pick bounds that give
        // szxlite and fzlight similar ratios, compare RMSE.
        let data: Vec<f32> = (0..1 << 16)
            .map(|i| (i as f32 * 0.002).sin() * 10.0 + (i as f32 * 0.05).cos() * 0.05)
            .collect();
        let szx_cfg = Config::new(ErrorBound::Abs(2e-2));
        let szx = compress(&data, &szx_cfg).unwrap();
        let szx_out = decompress(&szx).unwrap();
        // fzlight's delta coding reaches the same ratio at a *tighter* bound:
        // sweep downward and pick the bound whose ratio is closest to szxlite's
        let mut best: Option<(f64, f64)> = None; // (ratio gap, rmse)
        for eb in [2e-2, 1e-2, 5e-3, 2.5e-3, 1.25e-3] {
            let fz = fzlight::compress(&data, &Config::new(ErrorBound::Abs(eb))).unwrap();
            let out = fzlight::decompress(&fz).unwrap();
            let gap = (fz.ratio() - szx.ratio()).abs();
            let r = rmse(&data, &out);
            if best.map(|(g, _)| gap < g).unwrap_or(true) {
                best = Some((gap, r));
            }
        }
        let szx_rmse = rmse(&data, &szx_out);
        let (_, fz_rmse) = best.expect("sweep is non-empty");
        assert!(
            fz_rmse < szx_rmse,
            "at matched ratio fzlight rmse {fz_rmse} must beat szxlite {szx_rmse}"
        );
    }

    fn rmse(a: &[f32], b: &[f32]) -> f64 {
        let s: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                let d = (*x - *y) as f64;
                d * d
            })
            .sum();
        (s / a.len() as f64).sqrt()
    }

    #[test]
    fn stream_survives_byte_serialization() {
        let data: Vec<f32> = (0..9_000).map(|i| (i as f32 * 0.02).cos() * 3.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-4))).unwrap();
        let s2 = SzxStream::from_bytes(s.as_bytes().to_vec()).unwrap();
        assert_eq!(decompress(&s).unwrap(), decompress(&s2).unwrap());
    }

    #[test]
    fn rejects_non_finite_and_overflow() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        assert!(compress(&[f32::NAN], &cfg).is_err());
        // two distinct huge values: the constant-block shortcut cannot
        // bypass quantization, so the overflow must be caught
        assert!(compress(&[1e9, -1e9], &Config::new(ErrorBound::Abs(1e-30))).is_err());
    }
}
