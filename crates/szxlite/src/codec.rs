//! szxlite compression/decompression: prediction-free quantization with the
//! constant-block shortcut and byte-aligned integer storage.

use crate::format::{SzxHeader, SzxStream, DEFAULT_BLOCK_LEN};
use fzlight::error::{Error, Result};
use fzlight::Config;

/// Compress `data`. `Config::block_len` is ignored (szxlite uses its own
/// 64-element blocks, the SZx-class granularity); threads are ignored too —
/// the kernel is already memory-bound single-threaded.
pub fn compress(data: &[f32], cfg: &Config) -> Result<SzxStream> {
    let eb = cfg.eb.resolve(data)?;
    let inv_2eb = 1.0 / (2.0 * eb);
    let block_len = DEFAULT_BLOCK_LEN;
    let mut body = Vec::with_capacity(data.len() + data.len() / block_len + 16);
    let mut quants = vec![0i64; block_len];
    for (bi, block) in data.chunks(block_len).enumerate() {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let mut sum = 0f64;
        for (k, &v) in block.iter().enumerate() {
            if !v.is_finite() {
                return Err(Error::NonFiniteInput { index: bi * block_len + k });
            }
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v as f64;
        }
        if (hi - lo) as f64 <= 2.0 * eb {
            // constant block: the mean is within eb of every value
            body.push(0);
            let mean = (sum / block.len() as f64) as f32;
            body.extend_from_slice(&mean.to_le_bytes());
            continue;
        }
        // non-constant: quantize each value independently (no prediction)
        let mut max_mag = 0u64;
        for (k, &v) in block.iter().enumerate() {
            let q = (v as f64 * inv_2eb).round();
            // reject i32::MIN too: its magnitude needs a 33rd bit
            if q.abs() > i32::MAX as f64 {
                return Err(Error::QuantizationOverflow { index: bi * block_len + k, value: v });
            }
            let q = q as i64;
            quants[k] = q;
            max_mag = max_mag.max(q.unsigned_abs());
        }
        // whole bytes per integer: enough for magnitude + sign bit
        let bits = 64 - max_mag.leading_zeros() as usize + 1;
        let nbytes = bits.div_ceil(8).max(1);
        debug_assert!(nbytes <= 4);
        body.push(nbytes as u8);
        for &q in &quants[..block.len()] {
            body.extend_from_slice(&q.to_le_bytes()[..nbytes]);
        }
    }
    let header = SzxHeader { n: data.len() as u64, eb, block_len: block_len as u32 };
    Ok(SzxStream::from_parts(header, &body))
}

/// Decompress into a new vector.
pub fn decompress(stream: &SzxStream) -> Result<Vec<f32>> {
    let mut out = vec![0f32; stream.n()];
    decompress_into(stream, &mut out)?;
    Ok(out)
}

/// Decompress into a caller-provided buffer of exactly `stream.n()` values.
pub fn decompress_into(stream: &SzxStream, out: &mut [f32]) -> Result<()> {
    if out.len() != stream.n() {
        return Err(Error::Mismatch("output buffer length != stream element count"));
    }
    let body = stream.body();
    let block_len = stream.header().block_len as usize;
    let two_eb = 2.0 * stream.header().eb;
    let mut pos = 0usize;
    for block in out.chunks_mut(block_len) {
        let Some(&flag) = body.get(pos) else {
            return Err(Error::Truncated { need: pos + 1, have: body.len() });
        };
        pos += 1;
        match flag {
            0 => {
                if body.len() < pos + 4 {
                    return Err(Error::Truncated { need: pos + 4, have: body.len() });
                }
                let mean = f32::from_le_bytes(body[pos..pos + 4].try_into().unwrap());
                pos += 4;
                block.fill(mean);
            }
            nbytes @ 1..=4 => {
                let nbytes = nbytes as usize;
                let need = pos + nbytes * block.len();
                if body.len() < need {
                    return Err(Error::Truncated { need, have: body.len() });
                }
                for o in block.iter_mut() {
                    let mut raw = [0u8; 8];
                    raw[..nbytes].copy_from_slice(&body[pos..pos + nbytes]);
                    pos += nbytes;
                    // sign-extend the little-endian two's-complement value
                    let shift = 64 - 8 * nbytes as u32;
                    let q = (i64::from_le_bytes(raw) << shift) >> shift;
                    *o = (q as f64 * two_eb) as f32;
                }
            }
            _ => return Err(Error::Corrupt("invalid block flag")),
        }
    }
    if pos != body.len() {
        return Err(Error::Corrupt("body longer than its blocks"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::ErrorBound;

    #[test]
    fn mixed_constant_and_varying_blocks() {
        // first block flat, second block varying
        let mut data = vec![5.0f32; 64];
        data.extend((0..64).map(|i| (i as f32).sin() * 20.0));
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-2))).unwrap();
        let out = decompress(&s).unwrap();
        assert!(out[..64].iter().all(|&v| v == out[0]));
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-2 + 1e-7);
        }
        // constant block costs 5 bytes vs 64 raw values
        assert!(s.ratio() > 2.0);
    }

    #[test]
    fn negative_values_sign_extend_correctly() {
        let data: Vec<f32> = (0..64).map(|i| -(i as f32) * 3.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let out = decompress(&s).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-3 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn truncated_body_detected() {
        let data: Vec<f32> = (0..128).map(|i| (i as f32).sin() * 9.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let bytes = s.as_bytes();
        for cut in [bytes.len() - 1, bytes.len() - 10, crate::format::SzxHeader::serialized_len()] {
            let t = SzxStream::from_bytes(bytes[..cut].to_vec()).unwrap();
            assert!(decompress(&t).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_output_length_rejected() {
        let data = vec![0.5f32; 64];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let mut out = vec![0f32; 63];
        assert!(decompress_into(&s, &mut out).is_err());
    }
}
