//! Reduction operations supported homomorphically.
//!
//! The paper demonstrates `sum` and notes the principles apply to other
//! reduction operations; any operation that is *linear on the quantization
//! integers* composes with the delta encoding. `Sum` and `Diff` are provided
//! here, and [`crate::homomorphic_scale`] covers integer scaling.

/// A binary reduction applied on quantization integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise addition (`MPI_SUM` analogue) — the collective default.
    Sum,
    /// Element-wise subtraction `a - b`.
    Diff,
}

impl ReduceOp {
    /// Apply the operation to two integers (deltas or outliers).
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Diff => a - b,
        }
    }

    /// Apply the operation to two floats (used by the DOC baseline).
    #[inline]
    pub fn apply_f32(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Diff => a - b,
        }
    }

    /// Whether a constant (all-zero-delta) *left* block lets the result be a
    /// verbatim copy of the right block. True for `Sum` (0 + b = b); false
    /// for `Diff`, where `0 - b` needs a negation pass.
    #[inline]
    pub fn left_identity_copies(self) -> bool {
        matches!(self, ReduceOp::Sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_semantics() {
        assert_eq!(ReduceOp::Sum.apply(3, 4), 7);
        assert_eq!(ReduceOp::Diff.apply(3, 4), -1);
        assert_eq!(ReduceOp::Sum.apply_f32(1.5, 2.5), 4.0);
        assert_eq!(ReduceOp::Diff.apply_f32(1.5, 2.5), -1.0);
    }

    #[test]
    fn identity_copy_rules() {
        assert!(ReduceOp::Sum.left_identity_copies());
        assert!(!ReduceOp::Diff.left_identity_copies());
    }
}
