//! The *static* homomorphic compression pipeline (Fig. 4, left side) —
//! ablation baseline.
//!
//! The static approach (as in HoSZp [30]) always performs "partial"
//! decompression and recompression: every block pair is inverse fixed-length
//! decoded into integer deltas, reduced, and re-encoded — even when both
//! blocks are constant. It produces byte-identical output to the dynamic
//! pipeline (the codec is canonical), just slower; the
//! `abl_static_vs_dynamic` bench quantifies the gap that Table V attributes
//! to pipelines ①–③.

use crate::op::ReduceOp;
use fzlight::chunk::chunk_spans;
use fzlight::codec;
use fzlight::config::MAX_BLOCK_LEN;
use fzlight::error::{Error, Result};
use fzlight::header::Header;
use fzlight::stream::CompressedStream;

/// Homomorphic sum through the static (always decode + re-encode) pipeline.
pub fn homomorphic_sum_static(
    a: &CompressedStream,
    b: &CompressedStream,
) -> Result<CompressedStream> {
    static_op(a, b, ReduceOp::Sum)
}

fn static_op(a: &CompressedStream, b: &CompressedStream, op: ReduceOp) -> Result<CompressedStream> {
    a.header().check_compatible(b.header())?;
    let n = a.n();
    let nchunks = a.nchunks();
    let block_len = a.block_len();
    let spans = chunk_spans(n, nchunks);

    let parts: Vec<Result<Vec<u8>>> = if nchunks <= 1 {
        spans
            .iter()
            .enumerate()
            .map(|(ci, span)| {
                static_chunk(a.chunk_payload(ci), b.chunk_payload(ci), ci, span.len, block_len, op)
            })
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(ci, span)| {
                    let (pa, pb, len) = (a.chunk_payload(ci), b.chunk_payload(ci), span.len);
                    s.spawn(move || static_chunk(pa, pb, ci, len, block_len, op))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("static hz thread panicked")).collect()
        })
    };

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    for part in parts {
        body.extend_from_slice(&part?);
        offsets.push(body.len() as u64);
    }
    let header = Header {
        n: n as u64,
        eb: a.eb(),
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok(CompressedStream::from_parts(header, &body))
}

fn static_chunk(
    pa: &[u8],
    pb: &[u8],
    ci: usize,
    chunk_len: usize,
    block_len: usize,
    op: ReduceOp,
) -> Result<Vec<u8>> {
    if pa.len() < 4 || pb.len() < 4 {
        return Err(Error::Truncated { need: 4, have: pa.len().min(pb.len()) });
    }
    let oa = i32::from_le_bytes(pa[0..4].try_into().unwrap()) as i64;
    let ob = i32::from_le_bytes(pb[0..4].try_into().unwrap()) as i64;
    let o32 =
        i32::try_from(op.apply(oa, ob)).map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;

    // The static pipeline materializes the whole chunk's integer prediction
    // array (the memory cost the dynamic design avoids).
    let mut ia = vec![0i64; chunk_len];
    let mut ib = vec![0i64; chunk_len];
    let mut pos = 4usize;
    for start in (0..chunk_len).step_by(block_len) {
        let len = block_len.min(chunk_len - start);
        pos += codec::decode_block(&pa[pos..], &mut ia[start..start + len])?;
    }
    if pos != pa.len() {
        return Err(Error::Corrupt("chunk payload longer than its blocks"));
    }
    let mut pos = 4usize;
    for start in (0..chunk_len).step_by(block_len) {
        let len = block_len.min(chunk_len - start);
        pos += codec::decode_block(&pb[pos..], &mut ib[start..start + len])?;
    }
    if pos != pb.len() {
        return Err(Error::Corrupt("chunk payload longer than its blocks"));
    }

    for k in 0..chunk_len {
        ia[k] = op.apply(ia[k], ib[k]);
    }

    let mut out = Vec::with_capacity(pa.len().max(pb.len()) + 16);
    out.extend_from_slice(&o32.to_le_bytes());
    let mut scratch = [0i64; MAX_BLOCK_LEN];
    for block in ia.chunks(block_len) {
        scratch[..block.len()].copy_from_slice(block);
        codec::encode_deltas(&scratch[..block.len()], &mut out)
            .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::homomorphic_sum;
    use fzlight::{compress, Config, ErrorBound};

    #[test]
    fn static_matches_dynamic_byte_for_byte() {
        let data_a: Vec<f32> = (0..7777).map(|i| (i as f32 * 0.01).sin() * 7.0).collect();
        let data_b: Vec<f32> = (0..7777).map(|i| (i as f32 * 0.002).cos() * 3.0).collect();
        for threads in [1usize, 2, 4] {
            let cfg = Config::new(ErrorBound::Abs(1e-4)).with_threads(threads);
            let ca = compress(&data_a, &cfg).unwrap();
            let cb = compress(&data_b, &cfg).unwrap();
            let d = homomorphic_sum(&ca, &cb).unwrap();
            let s = homomorphic_sum_static(&ca, &cb).unwrap();
            assert_eq!(d.as_bytes(), s.as_bytes(), "threads={threads}");
        }
    }

    #[test]
    fn static_rejects_incompatible_streams() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let ca = compress(&a, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let cb = compress(&a, &Config::new(ErrorBound::Abs(1e-2))).unwrap();
        assert!(homomorphic_sum_static(&ca, &cb).is_err());
    }
}
