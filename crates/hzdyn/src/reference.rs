//! Retained scalar reference for the homomorphic sum.
//!
//! This is the original block-at-a-time walk over the two operand streams,
//! built on the scalar codec paths
//! ([`codec::decode_block_scalar`]/[`codec::encode_deltas_scalar`]): no tile
//! arenas, per-byte `Vec` pushes, bit-buffered residual handling. It is kept
//! for two jobs:
//!
//! 1. **Differential testing** — the cache-blocked fast path in
//!    [`crate::dynamic`] must produce byte-identical streams (asserted by the
//!    workspace `kernel_equivalence` property tests).
//! 2. **Roofline baseline** — `hzc kernels` measures the fast path's speedup
//!    against this implementation, so the reported ratio reflects real kernel
//!    work, not harness overhead.
//!
//! Parallelization over thread-chunks is identical to the fast path; only the
//! per-block kernels differ.

use fzlight::chunk::chunk_spans;
use fzlight::codec;
use fzlight::config::MAX_BLOCK_LEN;
use fzlight::error::{Error, Result};
use fzlight::header::Header;
use fzlight::stream::CompressedStream;

/// Homomorphic element-wise sum via the scalar reference kernels.
///
/// Byte-identical to [`crate::homomorphic_sum`]; slower by design.
pub fn homomorphic_sum_scalar(
    a: &CompressedStream,
    b: &CompressedStream,
) -> Result<CompressedStream> {
    a.header().check_compatible(b.header())?;
    let n = a.n();
    let nchunks = a.nchunks();
    let block_len = a.block_len();
    let spans = chunk_spans(n, nchunks);

    let parts: Vec<Result<Vec<u8>>> = if nchunks <= 1 {
        spans
            .iter()
            .enumerate()
            .map(|(ci, span)| {
                hz_chunk_scalar(a.chunk_payload(ci), b.chunk_payload(ci), ci, span.len, block_len)
            })
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(ci, span)| {
                    let (pa, pb, len) = (a.chunk_payload(ci), b.chunk_payload(ci), span.len);
                    s.spawn(move || hz_chunk_scalar(pa, pb, ci, len, block_len))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("hz scalar thread panicked")).collect()
        })
    };

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    for part in parts {
        body.extend_from_slice(&part?);
        offsets.push(body.len() as u64);
    }
    let header = Header {
        n: n as u64,
        eb: a.eb(),
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok(CompressedStream::from_parts(header, &body))
}

/// The original per-block chunk walk: dynamic pipeline dispatch with scalar
/// decode → add → scalar encode on pipeline ④.
fn hz_chunk_scalar(
    pa: &[u8],
    pb: &[u8],
    ci: usize,
    chunk_len: usize,
    block_len: usize,
) -> Result<Vec<u8>> {
    if pa.len() < 4 || pb.len() < 4 {
        return Err(Error::Truncated { need: 4, have: pa.len().min(pb.len()) });
    }
    let oa = i32::from_le_bytes(pa[0..4].try_into().unwrap()) as i64;
    let ob = i32::from_le_bytes(pb[0..4].try_into().unwrap()) as i64;
    let o32 = i32::try_from(oa + ob).map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;

    let mut out = Vec::with_capacity(pa.len().max(pb.len()) + 16);
    out.extend_from_slice(&o32.to_le_bytes());

    let mut posa = 4usize;
    let mut posb = 4usize;
    let mut da = [0i64; MAX_BLOCK_LEN];
    let mut db = [0i64; MAX_BLOCK_LEN];
    let mut remaining = chunk_len;
    while remaining > 0 {
        let len = remaining.min(block_len);
        remaining -= len;
        let ca = codec::peek_code(&pa[posa..])?;
        let cb = codec::peek_code(&pb[posb..])?;
        match (ca, cb) {
            (0, 0) => {
                out.push(0);
                posa += 1;
                posb += 1;
            }
            (0, _) => {
                posa += 1;
                posb += codec::copy_block(&pb[posb..], len, &mut out)?;
            }
            (_, 0) => {
                posb += 1;
                posa += codec::copy_block(&pa[posa..], len, &mut out)?;
            }
            (_, _) => {
                posa += codec::decode_block_scalar(&pa[posa..], &mut da[..len])?;
                posb += codec::decode_block_scalar(&pb[posb..], &mut db[..len])?;
                for k in 0..len {
                    da[k] += db[k];
                }
                codec::encode_deltas_scalar(&da[..len], &mut out)
                    .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
            }
        }
    }
    if posa != pa.len() || posb != pb.len() {
        return Err(Error::Corrupt("chunk payload longer than its blocks"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::{compress, Config, ErrorBound};

    #[test]
    fn scalar_reference_is_byte_identical_to_fast_path() {
        let a: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.013).sin() * 6.0).collect();
        let b: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.029).cos() * 3.0).collect();
        for threads in [1usize, 3] {
            let cfg = Config::new(ErrorBound::Abs(1e-4)).with_threads(threads);
            let ca = compress(&a, &cfg).unwrap();
            let cb = compress(&b, &cfg).unwrap();
            let fast = crate::homomorphic_sum(&ca, &cb).unwrap();
            let slow = homomorphic_sum_scalar(&ca, &cb).unwrap();
            assert_eq!(fast.as_bytes(), slow.as_bytes(), "threads={threads}");
        }
    }

    #[test]
    fn scalar_reference_handles_mixed_pipelines() {
        // interleave constant and varying regions to exercise ①②③④
        let n = 32 * 128;
        let a: Vec<f32> =
            (0..n).map(|i| if (i / 64) % 2 == 0 { 0.0 } else { (i as f32 * 0.7).sin() }).collect();
        let b: Vec<f32> =
            (0..n).map(|i| if (i / 128) % 2 == 0 { 0.0 } else { (i as f32 * 0.3).cos() }).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let fast = crate::homomorphic_sum(&ca, &cb).unwrap();
        let slow = homomorphic_sum_scalar(&ca, &cb).unwrap();
        assert_eq!(fast.as_bytes(), slow.as_bytes());
    }
}
