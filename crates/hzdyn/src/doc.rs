//! The traditional **D**ecompression-**O**peration-**C**ompression workflow —
//! the `fZ-light (DOC)` baseline of Table VI and the per-round reduction step
//! of the C-Coll collective framework.
//!
//! Unlike the homomorphic path, DOC fully decompresses both operands, applies
//! the reduction on `f32` values, and recompresses the result. The extra
//! quantization of the recompression step is why the paper observes slightly
//! *worse* NRMSE for DOC than for hZ-dynamic.

use crate::op::ReduceOp;
use fzlight::error::Result;
use fzlight::stream::CompressedStream;
use fzlight::{compress_resolved, decompress};

/// Reduce two compatible streams through decompress → operate → recompress.
///
/// The result is compressed with the same error bound, block length and
/// chunk layout as the inputs, so it stays homomorphically compatible with
/// other streams of the same family.
pub fn doc_reduce(
    a: &CompressedStream,
    b: &CompressedStream,
    op: ReduceOp,
) -> Result<CompressedStream> {
    a.header().check_compatible(b.header())?;
    let da = decompress(a)?;
    let db = decompress(b)?;
    let mut reduced = da;
    reduce_in_place(&mut reduced, &db, op, a.nchunks());
    compress_resolved(&reduced, a.eb(), a.block_len(), a.nchunks().max(1))
}

/// Element-wise `acc = op(acc, other)` on raw values, parallelized across
/// `threads` chunks (the CPT kernel the collectives charge to `Cpt`).
pub fn reduce_in_place(acc: &mut [f32], other: &[f32], op: ReduceOp, threads: usize) {
    assert_eq!(acc.len(), other.len(), "operand lengths must match");
    let threads = threads.max(1);
    if threads == 1 || acc.len() < 4096 {
        for (x, &y) in acc.iter_mut().zip(other) {
            *x = op.apply_f32(*x, y);
        }
        return;
    }
    let chunk = acc.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (xs, ys) in acc.chunks_mut(chunk).zip(other.chunks(chunk)) {
            s.spawn(move || {
                for (x, &y) in xs.iter_mut().zip(ys) {
                    *x = op.apply_f32(*x, y);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::{compress, Config, ErrorBound};

    #[test]
    fn doc_sum_is_error_bounded() {
        let eb = 1e-3;
        let a: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).sin() * 4.0).collect();
        let b: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.03).cos() * 2.0).collect();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let s = doc_reduce(&ca, &cb, ReduceOp::Sum).unwrap();
        let out = decompress(&s).unwrap();
        for i in 0..a.len() {
            // each input contributes eb, the recompression another eb
            assert!(
                (out[i] - (a[i] + b[i])).abs() as f64 <= 3.0 * eb + 1e-9,
                "at {i}: {} vs {}",
                out[i],
                a[i] + b[i]
            );
        }
    }

    #[test]
    fn doc_result_stays_homomorphically_compatible() {
        let a: Vec<f32> = (0..1000).map(|i| i as f32 * 0.001).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-4)).with_threads(3);
        let ca = compress(&a, &cfg).unwrap();
        let s = doc_reduce(&ca, &ca, ReduceOp::Sum).unwrap();
        assert!(s.header().check_compatible(ca.header()).is_ok());
        // and a homomorphic op on it works
        assert!(crate::homomorphic_sum(&s, &ca).is_ok());
    }

    #[test]
    fn reduce_in_place_parallel_matches_serial() {
        let a: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..10_000).map(|i| (i * 2) as f32).collect();
        let mut serial = a.clone();
        reduce_in_place(&mut serial, &b, ReduceOp::Sum, 1);
        let mut parallel = a.clone();
        reduce_in_place(&mut parallel, &b, ReduceOp::Sum, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 30.0);
    }

    #[test]
    #[should_panic(expected = "operand lengths")]
    fn reduce_in_place_length_mismatch_panics() {
        let mut a = vec![0f32; 4];
        let b = vec![0f32; 5];
        reduce_in_place(&mut a, &b, ReduceOp::Sum, 1);
    }
}
