//! Multi-stream homomorphic accumulation.
//!
//! Summing `k` streams with pairwise [`crate::homomorphic_sum`] costs `k`
//! decode+encode round trips over the growing partial sums. The
//! [`Accumulator`] instead keeps the running sum as raw integer deltas:
//! each pushed stream is decoded once (constant blocks are skipped
//! entirely — the same shortcut as dynamic pipeline ①), and the fixed-length
//! encoding happens a single time in [`Accumulator::finish`]. The result is
//! byte-identical to the pairwise chain (the codec is canonical and integer
//! addition is associative), just cheaper: `k` decodes + 1 encode instead of
//! `k` decodes + `k` encodes.
//!
//! ```
//! use fzlight::{compress, decompress, Config, ErrorBound};
//! use hzdyn::Accumulator;
//!
//! let cfg = Config::new(ErrorBound::Abs(1e-3));
//! let streams: Vec<_> = (0..4)
//!     .map(|k| {
//!         let field: Vec<f32> = (0..500).map(|i| (i + k) as f32 * 0.01).collect();
//!         compress(&field, &cfg).unwrap()
//!     })
//!     .collect();
//! let mut acc = Accumulator::new(&streams[0]).unwrap();
//! for s in &streams[1..] {
//!     acc.push(s).unwrap();
//! }
//! let total = acc.finish().unwrap();
//! assert_eq!(total.n(), 500);
//! # let _ = decompress(&total).unwrap();
//! ```

use fzlight::chunk::{chunk_spans, ChunkSpan};
use fzlight::codec;
use fzlight::config::MAX_BLOCK_LEN;
use fzlight::error::{Error, Result};
use fzlight::header::Header;
use fzlight::stream::CompressedStream;

/// Running homomorphic sum of compatible streams, held as integer deltas.
#[derive(Debug, Clone)]
pub struct Accumulator {
    header: Header,
    spans: Vec<ChunkSpan>,
    /// Chunk outliers of the running sum.
    outliers: Vec<i64>,
    /// All delta integers, in stream order (chunk-major).
    deltas: Vec<i64>,
    /// Number of streams accumulated so far.
    count: usize,
}

impl Accumulator {
    /// Start an accumulation with `first` as the initial value.
    pub fn new(first: &CompressedStream) -> Result<Accumulator> {
        let header = first.header().clone();
        let spans = chunk_spans(first.n(), first.nchunks());
        let mut acc = Accumulator {
            header,
            spans,
            outliers: vec![0i64; first.nchunks()],
            deltas: vec![0i64; first.n()],
            count: 0,
        };
        acc.push(first)?;
        Ok(acc)
    }

    /// Number of streams accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add a compatible stream to the running sum (one decode pass;
    /// constant blocks are skipped).
    pub fn push(&mut self, stream: &CompressedStream) -> Result<()> {
        self.header.check_compatible(stream.header())?;
        let block_len = self.header.block_len as usize;
        let mut scratch = [0i64; MAX_BLOCK_LEN];
        for (ci, span) in self.spans.iter().enumerate() {
            let payload = stream.chunk_payload(ci);
            if payload.len() < 4 {
                return Err(Error::Truncated { need: 4, have: payload.len() });
            }
            self.outliers[ci] += i32::from_le_bytes(payload[0..4].try_into().unwrap()) as i64;
            let mut pos = 4usize;
            let mut at = span.start;
            let mut remaining = span.len;
            while remaining > 0 {
                let len = remaining.min(block_len);
                remaining -= len;
                let c = codec::peek_code(&payload[pos..])?;
                if c == 0 {
                    // pipeline ①: nothing to add
                    pos += 1;
                } else {
                    pos += codec::decode_block(&payload[pos..], &mut scratch[..len])?;
                    for (d, &s) in self.deltas[at..at + len].iter_mut().zip(&scratch[..len]) {
                        *d += s;
                    }
                }
                at += len;
            }
            if pos != payload.len() {
                return Err(Error::Corrupt("chunk payload longer than its blocks"));
            }
        }
        self.count += 1;
        Ok(())
    }

    /// Encode the running sum into a compressed stream (single encode pass).
    ///
    /// The accumulator remains usable afterwards (more streams can be
    /// pushed and `finish` called again).
    pub fn finish(&self) -> Result<CompressedStream> {
        let block_len = self.header.block_len as usize;
        let nchunks = self.spans.len();
        let mut offsets = Vec::with_capacity(nchunks + 1);
        offsets.push(0u64);
        let mut body = Vec::with_capacity(self.deltas.len() / 2 + 16 * nchunks);
        for (ci, span) in self.spans.iter().enumerate() {
            let o32 = i32::try_from(self.outliers[ci])
                .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
            body.extend_from_slice(&o32.to_le_bytes());
            for block in self.deltas[span.start..span.start + span.len].chunks(block_len) {
                codec::encode_deltas(block, &mut body)
                    .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
            }
            offsets.push(body.len() as u64);
        }
        let header = Header { offsets, ..self.header.clone() };
        Ok(CompressedStream::from_parts(header, &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphic_sum;
    use fzlight::{compress, decompress, Config, ErrorBound};

    fn streams(k: usize, n: usize, threads: usize) -> Vec<CompressedStream> {
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(threads);
        (0..k)
            .map(|s| {
                let f: Vec<f32> =
                    (0..n).map(|i| ((i + 31 * s) as f32 * 0.011).sin() * 3.0).collect();
                compress(&f, &cfg).unwrap()
            })
            .collect()
    }

    #[test]
    fn accumulator_matches_pairwise_chain_byte_for_byte() {
        let ss = streams(5, 3000, 2);
        let mut acc = Accumulator::new(&ss[0]).unwrap();
        let mut chain = ss[0].clone();
        for s in &ss[1..] {
            acc.push(s).unwrap();
            chain = homomorphic_sum(&chain, s).unwrap();
        }
        assert_eq!(acc.count(), 5);
        let total = acc.finish().unwrap();
        assert_eq!(total.as_bytes(), chain.as_bytes());
    }

    #[test]
    fn finish_is_repeatable_and_incremental() {
        let ss = streams(3, 1000, 1);
        let mut acc = Accumulator::new(&ss[0]).unwrap();
        acc.push(&ss[1]).unwrap();
        let two = acc.finish().unwrap();
        acc.push(&ss[2]).unwrap();
        let three = acc.finish().unwrap();
        // two-stream prefix agrees with the pairwise sum
        assert_eq!(two.as_bytes(), homomorphic_sum(&ss[0], &ss[1]).unwrap().as_bytes());
        // three-stream total agrees with extending the chain
        assert_eq!(
            three.as_bytes(),
            homomorphic_sum(&homomorphic_sum(&ss[0], &ss[1]).unwrap(), &ss[2]).unwrap().as_bytes()
        );
    }

    #[test]
    fn incompatible_stream_rejected() {
        let ss = streams(1, 1000, 1);
        let other = streams(1, 999, 1);
        let mut acc = Accumulator::new(&ss[0]).unwrap();
        assert!(acc.push(&other[0]).is_err());
    }

    #[test]
    fn values_are_error_bounded() {
        let k = 8;
        let n = 2000;
        let ss = streams(k, n, 3);
        let mut acc = Accumulator::new(&ss[0]).unwrap();
        for s in &ss[1..] {
            acc.push(s).unwrap();
        }
        let total = decompress(&acc.finish().unwrap()).unwrap();
        // compare against summing the individually decompressed streams
        let mut expect = vec![0f64; n];
        for s in &ss {
            for (e, v) in expect.iter_mut().zip(decompress(s).unwrap()) {
                *e += v as f64;
            }
        }
        for (a, b) in total.iter().zip(&expect) {
            assert!(
                ((*a as f64) - b).abs() <= 1e-6 + b.abs() * 1e-6,
                "accumulated {a} vs exact-integer {b}"
            );
        }
    }
}
