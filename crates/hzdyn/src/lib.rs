//! # hZ-dynamic — homomorphic reduction directly on compressed streams
//!
//! This crate reproduces the `hZ-dynamic` homomorphic compressor from
//! *"hZCCL: Accelerating Collective Communication with Co-Designed
//! Homomorphic Compression"* (SC 2024), Sec. III-B.4 and Fig. 4.
//!
//! Given two [`fzlight`] streams compressed with identical parameters, the
//! reduction (`sum` by default) is applied **without decompressing**: the
//! chunk outliers are added, and each pair of corresponding small blocks is
//! dispatched through the *dynamic pipeline heuristic*:
//!
//! | # | condition (code lengths `x`, `y`) | action |
//! |---|---|---|
//! | ① | `x == 0 && y == 0` | write a single `0` code byte |
//! | ② | `x == 0 && y != 0` | copy block B's bytes verbatim |
//! | ③ | `x != 0 && y == 0` | copy block A's bytes verbatim |
//! | ④ | `x != 0 && y != 0` | inverse fixed-length decode both, add the integer deltas, re-encode |
//!
//! Only pipeline ④ touches the integer domain, and even it never
//! re-quantizes, so the homomorphic result is **exact on the quantization
//! integers**: `decompress(hz_sum(A, B))` reconstructs from exactly
//! `q_A[i] + q_B[i]`. No error beyond the original per-stream quantization is
//! introduced, and the operation is associative and commutative — summing
//! many streams in any order yields byte-identical outputs.
//!
//! The crate also provides, for the paper's comparisons:
//! * [`homomorphic_sum_static`] — the *static* pipeline (always ④) used as an
//!   ablation baseline;
//! * [`doc_reduce`] — the traditional decompression-operation-compression
//!   workflow (`fZ-light (DOC)` in Table VI).
//!
//! ```
//! use fzlight::{compress, decompress, Config, ErrorBound};
//! use hzdyn::homomorphic_sum;
//!
//! let cfg = Config::new(ErrorBound::Abs(1e-4));
//! let a: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
//! let b: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.02).cos()).collect();
//! let ca = compress(&a, &cfg).unwrap();
//! let cb = compress(&b, &cfg).unwrap();
//! let sum = homomorphic_sum(&ca, &cb).unwrap();
//! let restored = fzlight::decompress(&sum).unwrap();
//! for i in 0..1000 {
//!     assert!((restored[i] - (a[i] + b[i])).abs() <= 2.0 * 1e-4 + 1e-6);
//! }
//! ```

pub mod accumulate;
pub mod doc;
pub mod dynamic;
pub mod op;
pub mod reference;
pub mod static_pipeline;
pub mod stats;

pub use accumulate::Accumulator;
pub use doc::doc_reduce;
pub use dynamic::{
    homomorphic_axpby, homomorphic_op, homomorphic_scale, homomorphic_sum,
    homomorphic_sum_with_stats,
};
pub use op::ReduceOp;
pub use static_pipeline::homomorphic_sum_static;
pub use stats::PipelineStats;

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::{compress, decompress, Config, ErrorBound};

    fn cfg(threads: usize) -> Config {
        Config::new(ErrorBound::Abs(1e-4)).with_threads(threads)
    }

    fn wave(n: usize, f: f32, amp: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * f).sin() * amp).collect()
    }

    /// Recover the quantization integer from a reconstructed value.
    fn requant(v: f32, eb: f64) -> i64 {
        ((v as f64) / (2.0 * eb)).round() as i64
    }

    #[test]
    fn sum_is_exact_on_quantization_integers() {
        let eb = 1e-4;
        let a = wave(10_000, 0.013, 3.0);
        let b = wave(10_000, 0.029, 5.0);
        let ca = compress(&a, &cfg(2)).unwrap();
        let cb = compress(&b, &cfg(2)).unwrap();
        let hz = homomorphic_sum(&ca, &cb).unwrap();
        let da = decompress(&ca).unwrap();
        let db = decompress(&cb).unwrap();
        let ds = decompress(&hz).unwrap();
        for i in 0..a.len() {
            let expect = requant(da[i], eb) + requant(db[i], eb);
            assert_eq!(requant(ds[i], eb), expect, "at {i}");
        }
    }

    #[test]
    fn sum_is_associative_and_byte_identical() {
        let streams: Vec<_> = (0..4)
            .map(|k| {
                let d = wave(5_000, 0.01 + 0.005 * k as f32, 2.0 + k as f32);
                compress(&d, &cfg(3)).unwrap()
            })
            .collect();
        let left = homomorphic_sum(
            &homomorphic_sum(&homomorphic_sum(&streams[0], &streams[1]).unwrap(), &streams[2])
                .unwrap(),
            &streams[3],
        )
        .unwrap();
        let right = homomorphic_sum(
            &streams[0],
            &homomorphic_sum(&streams[1], &homomorphic_sum(&streams[2], &streams[3]).unwrap())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(left.as_bytes(), right.as_bytes());
    }

    #[test]
    fn sum_is_commutative_and_byte_identical() {
        let a = wave(3_000, 0.017, 1.0);
        let b = wave(3_000, 0.031, 4.0);
        let ca = compress(&a, &cfg(2)).unwrap();
        let cb = compress(&b, &cfg(2)).unwrap();
        let ab = homomorphic_sum(&ca, &cb).unwrap();
        let ba = homomorphic_sum(&cb, &ca).unwrap();
        assert_eq!(ab.as_bytes(), ba.as_bytes());
    }

    #[test]
    fn dynamic_static_and_doc_agree() {
        let eb = 1e-4;
        let a = wave(8_000, 0.011, 2.0);
        let b = wave(8_000, 0.023, 3.0);
        let ca = compress(&a, &cfg(2)).unwrap();
        let cb = compress(&b, &cfg(2)).unwrap();
        let dyn_s = homomorphic_sum(&ca, &cb).unwrap();
        let stat_s = homomorphic_sum_static(&ca, &cb).unwrap();
        // static pipeline must produce byte-identical output (canonical codec)
        assert_eq!(dyn_s.as_bytes(), stat_s.as_bytes());
        // DOC re-quantizes decompressed floats; integers may differ by the
        // extra rounding, but values stay within 2*eb of each other.
        let doc_s = doc_reduce(&ca, &cb, ReduceOp::Sum).unwrap();
        let dv = decompress(&dyn_s).unwrap();
        let cv = decompress(&doc_s).unwrap();
        for i in 0..dv.len() {
            assert!((dv[i] - cv[i]).abs() as f64 <= 2.0 * eb + 1e-9, "at {i}");
        }
    }

    #[test]
    fn diff_matches_integer_subtraction() {
        let eb = 1e-4;
        let a = wave(4_000, 0.019, 2.0);
        let b = wave(4_000, 0.007, 1.5);
        let ca = compress(&a, &cfg(2)).unwrap();
        let cb = compress(&b, &cfg(2)).unwrap();
        let hz = homomorphic_op(&ca, &cb, ReduceOp::Diff).unwrap();
        let da = decompress(&ca).unwrap();
        let db = decompress(&cb).unwrap();
        let dd = decompress(&hz).unwrap();
        for i in 0..a.len() {
            assert_eq!(requant(dd[i], eb), requant(da[i], eb) - requant(db[i], eb), "at {i}");
        }
    }

    #[test]
    fn scale_matches_integer_multiplication() {
        let eb = 1e-4;
        let a = wave(4_000, 0.019, 2.0);
        let ca = compress(&a, &cfg(3)).unwrap();
        let hz = homomorphic_scale(&ca, 3).unwrap();
        let da = decompress(&ca).unwrap();
        let ds = decompress(&hz).unwrap();
        for i in 0..a.len() {
            assert_eq!(requant(ds[i], eb), 3 * requant(da[i], eb), "at {i}");
        }
    }

    #[test]
    fn incompatible_streams_rejected() {
        let a = wave(1_000, 0.01, 1.0);
        let ca = compress(&a, &cfg(1)).unwrap();
        // different thread-chunk layout
        let cb = compress(&a, &cfg(2)).unwrap();
        assert!(homomorphic_sum(&ca, &cb).is_err());
        // different error bound
        let cc = compress(&a, &Config::new(ErrorBound::Abs(2e-4))).unwrap();
        assert!(homomorphic_sum(&ca, &cc).is_err());
        // different length
        let cd = compress(&a[..999], &cfg(1)).unwrap();
        assert!(homomorphic_sum(&ca, &cd).is_err());
    }

    #[test]
    fn empty_streams_sum_to_empty() {
        let ca = compress(&[], &cfg(1)).unwrap();
        let cb = compress(&[], &cfg(1)).unwrap();
        let s = homomorphic_sum(&ca, &cb).unwrap();
        assert_eq!(s.n(), 0);
        assert!(decompress(&s).unwrap().is_empty());
    }

    #[test]
    fn pipeline_stats_reflect_data_shape() {
        // a constant, b varying -> every block pair hits pipeline 2
        let a = vec![0.0f32; 32 * 64];
        let b = wave(32 * 64, 0.5, 100.0);
        let ca = compress(&a, &cfg(1)).unwrap();
        let cb = compress(&b, &cfg(1)).unwrap();
        let (_, st) = homomorphic_sum_with_stats(&ca, &cb).unwrap();
        assert_eq!(st.p1, 0);
        assert_eq!(st.p2, 64);
        assert_eq!(st.p3, 0);
        assert_eq!(st.p4, 0);
        // reversed roles -> pipeline 3
        let (_, st) = homomorphic_sum_with_stats(&cb, &ca).unwrap();
        assert_eq!(st.p3, 64);
        // both constant -> pipeline 1
        let (_, st) = homomorphic_sum_with_stats(&ca, &ca).unwrap();
        assert_eq!(st.p1, 64);
        // both varying -> pipeline 4
        let (_, st) = homomorphic_sum_with_stats(&cb, &cb).unwrap();
        assert_eq!(st.p4, 64);
    }

    #[test]
    fn summing_many_streams_stays_within_accumulated_bound() {
        let eb = 1e-3;
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let n = 2_048;
        let fields: Vec<Vec<f32>> = (0..8).map(|k| wave(n, 0.002 * (k + 1) as f32, 1.0)).collect();
        let mut acc = compress(&fields[0], &cfg).unwrap();
        for f in &fields[1..] {
            let c = compress(f, &cfg).unwrap();
            acc = homomorphic_sum(&acc, &c).unwrap();
        }
        let got = decompress(&acc).unwrap();
        for i in 0..n {
            let exact: f64 = fields.iter().map(|f| f[i] as f64).sum();
            assert!(
                (got[i] as f64 - exact).abs() <= 8.0 * eb + 1e-6,
                "at {i}: {} vs {exact}",
                got[i]
            );
        }
    }
}
