//! Pipeline-selection statistics (the percentages reported in Table V).

use std::fmt;
use std::ops::AddAssign;

/// Counts of block pairs dispatched to each of the four dynamic pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// ① both blocks constant — write one `0` byte.
    pub p1: u64,
    /// ② left constant — copy right block verbatim.
    pub p2: u64,
    /// ③ right constant — copy left block verbatim.
    pub p3: u64,
    /// ④ both non-constant — decode, operate, re-encode.
    pub p4: u64,
}

impl PipelineStats {
    /// Total block pairs processed.
    pub fn total(&self) -> u64 {
        self.p1 + self.p2 + self.p3 + self.p4
    }

    /// Percentage share of each pipeline (`[p1, p2, p3, p4]`); zeros when no
    /// blocks were processed.
    pub fn percentages(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.p1 as f64 * 100.0 / t,
            self.p2 as f64 * 100.0 / t,
            self.p3 as f64 * 100.0 / t,
            self.p4 as f64 * 100.0 / t,
        ]
    }
}

impl AddAssign for PipelineStats {
    fn add_assign(&mut self, rhs: Self) {
        self.p1 += rhs.p1;
        self.p2 += rhs.p2;
        self.p3 += rhs.p3;
        self.p4 += rhs.p4;
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.percentages();
        write!(f, "P1 {a:.2}% | P2 {b:.2}% | P3 {c:.2}% | P4 {d:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let s = PipelineStats { p1: 10, p2: 20, p3: 30, p4: 40 };
        let p = s.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[3] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PipelineStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.percentages(), [0.0; 4]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PipelineStats { p1: 1, p2: 2, p3: 3, p4: 4 };
        a += PipelineStats { p1: 10, p2: 20, p3: 30, p4: 40 };
        assert_eq!(a, PipelineStats { p1: 11, p2: 22, p3: 33, p4: 44 });
    }

    #[test]
    fn display_is_readable() {
        let s = PipelineStats { p1: 1, p2: 1, p3: 1, p4: 1 };
        assert!(s.to_string().contains("P4 25.00%"));
    }
}
