//! The dynamic homomorphic compression pipeline (Fig. 4, right side).
//!
//! Per chunk: add the outliers, then walk the two block sequences in
//! lockstep, dispatching each pair through the lightest applicable pipeline.
//! Work parallelizes over thread-chunks exactly like compression does, so the
//! multi-thread mode of the collectives gets homomorphic speedups too.

use crate::op::ReduceOp;
use crate::stats::PipelineStats;
use fzlight::chunk::chunk_spans;
use fzlight::codec;
use fzlight::config::MAX_BLOCK_LEN;
use fzlight::error::{Error, Result};
use fzlight::header::Header;
use fzlight::stream::CompressedStream;

/// Homomorphic element-wise sum of two compatible streams.
pub fn homomorphic_sum(a: &CompressedStream, b: &CompressedStream) -> Result<CompressedStream> {
    homomorphic_op(a, b, ReduceOp::Sum)
}

/// Homomorphic sum that also reports pipeline-selection statistics
/// (Table V).
pub fn homomorphic_sum_with_stats(
    a: &CompressedStream,
    b: &CompressedStream,
) -> Result<(CompressedStream, PipelineStats)> {
    op_impl(a, b, ReduceOp::Sum)
}

/// Homomorphic binary reduction of two compatible streams.
pub fn homomorphic_op(
    a: &CompressedStream,
    b: &CompressedStream,
    op: ReduceOp,
) -> Result<CompressedStream> {
    op_impl(a, b, op).map(|(s, _)| s)
}

fn op_impl(
    a: &CompressedStream,
    b: &CompressedStream,
    op: ReduceOp,
) -> Result<(CompressedStream, PipelineStats)> {
    a.header().check_compatible(b.header())?;
    let n = a.n();
    let nchunks = a.nchunks();
    let block_len = a.block_len();
    let spans = chunk_spans(n, nchunks);

    let parts: Vec<Result<(Vec<u8>, PipelineStats)>> = if nchunks <= 1 {
        spans
            .iter()
            .enumerate()
            .map(|(ci, span)| {
                hz_chunk(a.chunk_payload(ci), b.chunk_payload(ci), ci, span.len, block_len, op)
            })
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(ci, span)| {
                    let (pa, pb, len) = (a.chunk_payload(ci), b.chunk_payload(ci), span.len);
                    s.spawn(move || hz_chunk(pa, pb, ci, len, block_len, op))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("hz thread panicked")).collect()
        })
    };

    let mut stats = PipelineStats::default();
    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    for part in parts {
        let (bytes, st) = part?;
        stats += st;
        body.extend_from_slice(&bytes);
        offsets.push(body.len() as u64);
    }
    let header = Header {
        n: n as u64,
        eb: a.eb(),
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok((CompressedStream::from_parts(header, &body), stats))
}

/// Elements per pipeline-④ tile: a 16 KiB i64 arena, sized so the arena plus
/// the in-flight compressed bytes stay resident in a typical L1 data cache
/// while a run of decode → accumulate → encode passes over it.
const TILE_ELEMS: usize = 2048;

/// Pipeline-④ tile: consecutive both-non-constant block pairs are combined
/// into one contiguous `i64` arena (A's deltas decoded in, B's fused
/// decode-accumulated on top), then re-encoded block by block at flush.
/// Heap-allocated because collective fibers may run on small stacks.
struct Tile {
    ta: Vec<i64>,
    /// Block lengths pending re-encode, in tile order.
    pending: Vec<usize>,
    fill: usize,
}

impl Tile {
    fn new() -> Self {
        Tile { ta: vec![0i64; TILE_ELEMS], pending: Vec::with_capacity(TILE_ELEMS / 8), fill: 0 }
    }

    /// Re-encode the pending blocks into `out`.
    fn flush(&mut self, ci: usize, out: &mut Vec<u8>) -> Result<()> {
        if self.fill == 0 {
            return Ok(());
        }
        let mut off = 0usize;
        for &len in &self.pending {
            codec::encode_deltas(&self.ta[off..off + len], out)
                .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
            off += len;
        }
        self.pending.clear();
        self.fill = 0;
        Ok(())
    }
}

/// Process one chunk pair homomorphically (cache-blocked fast path; the
/// original block-at-a-time walk is retained in [`crate::reference`]).
fn hz_chunk(
    pa: &[u8],
    pb: &[u8],
    ci: usize,
    chunk_len: usize,
    block_len: usize,
    op: ReduceOp,
) -> Result<(Vec<u8>, PipelineStats)> {
    if pa.len() < 4 || pb.len() < 4 {
        return Err(Error::Truncated { need: 4, have: pa.len().min(pb.len()) });
    }
    let oa = i32::from_le_bytes(pa[0..4].try_into().unwrap()) as i64;
    let ob = i32::from_le_bytes(pb[0..4].try_into().unwrap()) as i64;
    let o = op.apply(oa, ob);
    let o32 = i32::try_from(o).map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;

    let mut out = Vec::with_capacity(pa.len().max(pb.len()) + 16);
    out.extend_from_slice(&o32.to_le_bytes());
    let mut stats = PipelineStats::default();

    let mut posa = 4usize;
    let mut posb = 4usize;
    let mut db = [0i64; MAX_BLOCK_LEN];
    let mut tile = Tile::new();
    let mut remaining = chunk_len;
    while remaining > 0 {
        let len = remaining.min(block_len);
        remaining -= len;
        let ca = codec::peek_code(&pa[posa..])?;
        let cb = codec::peek_code(&pb[posb..])?;
        match (ca, cb) {
            (0, 0) => {
                // ① both constant: result deltas are all zero for Sum/Diff.
                tile.flush(ci, &mut out)?;
                out.push(0);
                posa += 1;
                posb += 1;
                stats.p1 += 1;
            }
            (0, _) if op.left_identity_copies() => {
                // ② left constant: 0 + b = b, copy B verbatim.
                tile.flush(ci, &mut out)?;
                posa += 1;
                posb += codec::copy_block(&pb[posb..], len, &mut out)?;
                stats.p2 += 1;
            }
            (0, _) => {
                // ② for Diff: 0 - b needs a negation pass over B's deltas.
                tile.flush(ci, &mut out)?;
                posa += 1;
                posb += codec::decode_block(&pb[posb..], &mut db[..len])?;
                for d in &mut db[..len] {
                    *d = -*d;
                }
                codec::encode_deltas(&db[..len], &mut out)
                    .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
                stats.p2 += 1;
            }
            (_, 0) => {
                // ③ right constant: a ∘ 0 = a for both Sum and Diff.
                tile.flush(ci, &mut out)?;
                posb += 1;
                posa += codec::copy_block(&pa[posa..], len, &mut out)?;
                stats.p3 += 1;
            }
            (_, _) => {
                // ④ both non-constant: IFE A into the tile arena, fuse B's
                // decode with the integer op, and FE at flush over a
                // contiguous L1-resident run instead of one 64-element block
                // at a time.
                if tile.fill + len > TILE_ELEMS {
                    tile.flush(ci, &mut out)?;
                }
                let f = tile.fill;
                posa += codec::decode_block(&pa[posa..], &mut tile.ta[f..f + len])?;
                posb += match op {
                    ReduceOp::Sum => {
                        codec::decode_block_add(&pb[posb..], &mut tile.ta[f..f + len])?
                    }
                    ReduceOp::Diff => {
                        codec::decode_block_sub(&pb[posb..], &mut tile.ta[f..f + len])?
                    }
                };
                tile.pending.push(len);
                tile.fill += len;
                stats.p4 += 1;
            }
        }
    }
    tile.flush(ci, &mut out)?;
    if posa != pa.len() || posb != pb.len() {
        return Err(Error::Corrupt("chunk payload longer than its blocks"));
    }
    Ok((out, stats))
}

/// Homomorphic linear combination `alpha*A + beta*B` with integer
/// coefficients, computed directly on the compressed streams.
///
/// Generalizes [`homomorphic_sum`] (`1,1`), [`homomorphic_op`] with `Diff`
/// (`1,-1`) and [`homomorphic_scale`]: any operation linear on the
/// quantization integers composes with the delta encoding. The dynamic
/// pipeline heuristic still applies — a constant block contributes nothing,
/// so single-sided blocks reduce to a scale (or a copy when the coefficient
/// is 1).
pub fn homomorphic_axpby(
    a: &CompressedStream,
    alpha: i32,
    b: &CompressedStream,
    beta: i32,
) -> Result<CompressedStream> {
    a.header().check_compatible(b.header())?;
    let n = a.n();
    let nchunks = a.nchunks();
    let block_len = a.block_len();
    let spans = chunk_spans(n, nchunks);
    let (alpha, beta) = (alpha as i64, beta as i64);

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    let mut da = [0i64; MAX_BLOCK_LEN];
    let mut db = [0i64; MAX_BLOCK_LEN];
    for (ci, span) in spans.iter().enumerate() {
        let pa = a.chunk_payload(ci);
        let pb = b.chunk_payload(ci);
        if pa.len() < 4 || pb.len() < 4 {
            return Err(Error::Truncated { need: 4, have: pa.len().min(pb.len()) });
        }
        let oa = i32::from_le_bytes(pa[0..4].try_into().unwrap()) as i64;
        let ob = i32::from_le_bytes(pb[0..4].try_into().unwrap()) as i64;
        let o32 = i32::try_from(alpha * oa + beta * ob)
            .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
        body.extend_from_slice(&o32.to_le_bytes());

        let mut posa = 4usize;
        let mut posb = 4usize;
        let mut remaining = span.len;
        while remaining > 0 {
            let len = remaining.min(block_len);
            remaining -= len;
            let ca = codec::peek_code(&pa[posa..])?;
            let cb = codec::peek_code(&pb[posb..])?;
            match (ca, cb) {
                (0, 0) => {
                    body.push(0);
                    posa += 1;
                    posb += 1;
                }
                (0, _) if beta == 1 => {
                    posa += 1;
                    posb += codec::copy_block(&pb[posb..], len, &mut body)?;
                }
                (_, 0) if alpha == 1 => {
                    posb += 1;
                    posa += codec::copy_block(&pa[posa..], len, &mut body)?;
                }
                _ => {
                    posa += codec::decode_block(&pa[posa..], &mut da[..len])?;
                    posb += codec::decode_block(&pb[posb..], &mut db[..len])?;
                    for k in 0..len {
                        da[k] = alpha * da[k] + beta * db[k];
                    }
                    codec::encode_deltas(&da[..len], &mut body)
                        .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
                }
            }
        }
        if posa != pa.len() || posb != pb.len() {
            return Err(Error::Corrupt("chunk payload longer than its blocks"));
        }
        offsets.push(body.len() as u64);
    }
    let header = Header {
        n: n as u64,
        eb: a.eb(),
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok(CompressedStream::from_parts(header, &body))
}

/// Homomorphic integer scaling: multiply every reconstructed value by `k`
/// without decompressing (`decompress(scale(A, k)) == k * q_A` on the
/// quantization integers).
pub fn homomorphic_scale(a: &CompressedStream, k: i32) -> Result<CompressedStream> {
    let n = a.n();
    let nchunks = a.nchunks();
    let block_len = a.block_len();
    let spans = chunk_spans(n, nchunks);
    let k = k as i64;

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    for (ci, span) in spans.iter().enumerate() {
        let pa = a.chunk_payload(ci);
        if pa.len() < 4 {
            return Err(Error::Truncated { need: 4, have: pa.len() });
        }
        let oa = i32::from_le_bytes(pa[0..4].try_into().unwrap()) as i64;
        let o32 = i32::try_from(oa * k).map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
        body.extend_from_slice(&o32.to_le_bytes());

        let mut pos = 4usize;
        let mut deltas = [0i64; MAX_BLOCK_LEN];
        let mut remaining = span.len;
        while remaining > 0 {
            let len = remaining.min(block_len);
            remaining -= len;
            let c = codec::peek_code(&pa[pos..])?;
            if c == 0 || k == 0 {
                // constant stays constant; scaling by zero zeroes everything
                pos += codec::skip_block(&pa[pos..], len)?;
                body.push(0);
            } else if k == 1 {
                pos += codec::copy_block(&pa[pos..], len, &mut body)?;
            } else {
                pos += codec::decode_block(&pa[pos..], &mut deltas[..len])?;
                for d in &mut deltas[..len] {
                    *d *= k;
                }
                codec::encode_deltas(&deltas[..len], &mut body)
                    .map_err(|_| Error::HomomorphicOverflow { chunk: ci })?;
            }
        }
        if pos != pa.len() {
            return Err(Error::Corrupt("chunk payload longer than its blocks"));
        }
        offsets.push(body.len() as u64);
    }
    let header = Header {
        n: n as u64,
        eb: a.eb(),
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok(CompressedStream::from_parts(header, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::{compress, decompress, Config, ErrorBound};

    #[test]
    fn outlier_overflow_is_detected() {
        // Two large constant fields: outliers near i32 max each.
        let eb = 1e-4f64;
        let big = (i32::MAX as f64 * 2.0 * eb * 0.9) as f32;
        let data = vec![big; 64];
        let cfg = Config::new(ErrorBound::Abs(eb));
        let ca = compress(&data, &cfg).unwrap();
        let err = homomorphic_sum(&ca, &ca).unwrap_err();
        assert!(matches!(err, Error::HomomorphicOverflow { chunk: 0 }));
    }

    #[test]
    fn scale_by_zero_one_and_negative() {
        let data: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).sin()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let c = compress(&data, &cfg).unwrap();
        let z = decompress(&homomorphic_scale(&c, 0).unwrap()).unwrap();
        assert!(z.iter().all(|&v| v == 0.0));
        let one = homomorphic_scale(&c, 1).unwrap();
        assert_eq!(one.as_bytes(), c.as_bytes());
        let neg = decompress(&homomorphic_scale(&c, -2).unwrap()).unwrap();
        let base = decompress(&c).unwrap();
        for i in 0..base.len() {
            assert!((neg[i] + 2.0 * base[i]).abs() < 1e-5, "at {i}");
        }
    }

    #[test]
    fn axpby_matches_integer_combination() {
        let eb = 1e-4f64;
        let a: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.02).sin() * 4.0).collect();
        let b: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.05).cos() * 2.0).collect();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let q = |v: f32| ((v as f64) / (2.0 * eb)).round() as i64;
        let da = decompress(&ca).unwrap();
        let db = decompress(&cb).unwrap();
        for (alpha, beta) in [(2i32, 3i32), (1, -1), (-4, 1), (0, 5), (1, 1)] {
            let out = decompress(&homomorphic_axpby(&ca, alpha, &cb, beta).unwrap()).unwrap();
            for i in 0..a.len() {
                assert_eq!(
                    q(out[i]),
                    alpha as i64 * q(da[i]) + beta as i64 * q(db[i]),
                    "alpha={alpha} beta={beta} at {i}"
                );
            }
        }
    }

    #[test]
    fn axpby_one_one_equals_sum_bytes() {
        let a: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.03).sin()).collect();
        let b: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.07).cos()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(3);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let sum = homomorphic_sum(&ca, &cb).unwrap();
        let axpby = homomorphic_axpby(&ca, 1, &cb, 1).unwrap();
        assert_eq!(sum.as_bytes(), axpby.as_bytes());
    }

    #[test]
    fn payload_size_mismatch_detected() {
        // Craft incompatible bodies by concatenating a truncated chunk: the
        // simplest way is to corrupt a code byte so block walking desyncs.
        let data: Vec<f32> = (0..256).map(|i| (i as f32).sin() * 10.0).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let c = compress(&data, &cfg).unwrap();
        let mut bytes = c.as_bytes().to_vec();
        let body_start = fzlight::header::Header::serialized_len(1);
        bytes[body_start + 4] = 33; // invalid code length
        let bad = CompressedStream::from_bytes(bytes).unwrap();
        assert!(homomorphic_sum(&bad, &c).is_err());
    }
}
