//! Binary `.f32` field I/O (SDRBench layout: raw little-endian `f32`), plus a
//! PGM writer for the image-stacking visual comparison (Fig. 13).

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Load a raw little-endian `f32` field (the SDRBench dataset layout). If a
/// real SDRBench file is available it can be dropped in for any synthetic
/// generator.
pub fn load_f32(path: &Path) -> io::Result<Vec<f32>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a multiple of 4 bytes", path.display()),
        ));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Write a raw little-endian `f32` field.
pub fn save_f32(path: &Path, data: &[f32]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Write a grayscale image as a binary PGM (P5), normalizing values to the
/// full 8-bit range. Used for the Fig. 13 stacking-image visual comparison.
pub fn save_pgm(path: &Path, data: &[f32], width: usize, height: usize) -> io::Result<()> {
    assert_eq!(data.len(), width * height, "image dimensions must match data");
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{width} {height}\n255\n")?;
    for &v in data {
        w.write_all(&[((v - lo) * scale).round().clamp(0.0, 255.0) as u8])?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let dir = std::env::temp_dir().join("hzccl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("field.f32");
        let data = vec![1.5f32, -2.25, 0.0, 1e-20];
        save_f32(&p, &data).unwrap();
        assert_eq!(load_f32(&p).unwrap(), data);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn odd_sized_file_rejected() {
        let dir = std::env::temp_dir().join("hzccl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.f32");
        std::fs::write(&p, [0u8; 7]).unwrap();
        assert!(load_f32(&p).is_err());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn pgm_has_correct_header_and_size() {
        let dir = std::env::temp_dir().join("hzccl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("img.pgm");
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        save_pgm(&p, &data, 4, 3).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 3\n255\n".len() + 12);
        // max value maps to 255, min to 0
        assert_eq!(*bytes.last().unwrap(), 255);
        std::fs::remove_file(&p).unwrap();
    }
}
