//! # datasets — synthetic scientific fields + quality metrics
//!
//! Substrate crate of the hZCCL reproduction: seeded generators for the five
//! application datasets of Table I (two RTM seismic settings, NYX cosmology,
//! CESM-ATM climate, Hurricane Isabel), raw `.f32` I/O compatible with
//! SDRBench files, a PGM writer for the Fig. 13 visual comparison, and the
//! NRMSE/PSNR/max-error metrics the paper reports.
//!
//! ```
//! use datasets::{App, Quality};
//!
//! let field = App::Nyx.generate(10_000, 1);
//! let q = Quality::compare(&field, &field);
//! assert_eq!(q.max_abs_err, 0.0);
//! ```

pub mod apps;
pub mod io;
pub mod metrics;
pub mod noise;

pub use apps::App;
pub use io::{load_f32, save_f32, save_pgm};
pub use metrics::{mean_std, Quality};
