//! Synthetic generators for the five application datasets of Table I.
//!
//! The generators reproduce the *compression-relevant* structure of each
//! application (see DESIGN.md §1 for the substitution argument): the
//! fraction of constant/zero blocks, the smoothness at the 32-element block
//! scale, and the dynamic range — the three properties that drive every
//! compression-ratio, pipeline-selection and throughput result in the paper.
//!
//! All generators are deterministic in `(app, n, seed)` and size-invariant in
//! their block statistics (coordinates are normalized to the grid), so
//! benches can scale fields up or down without changing the shapes.

use crate::noise::{fbm2, fbm3, value_noise3};

/// The five applications of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// RTM Simulation Setting 1: early-time seismic snapshot — thin
    /// wavefront shells over a large exact-zero background.
    SimSet1,
    /// RTM Simulation Setting 2: late-time seismic snapshot — smooth
    /// wavefield filling the domain.
    SimSet2,
    /// NYX cosmology (baryon density): huge dynamic range, rare halo spikes
    /// over a near-uniform background.
    Nyx,
    /// CESM-ATM climate: rough multi-scale 2-D turbulence.
    CesmAtm,
    /// Hurricane Isabel: 3-D vortex flow plus turbulence.
    Hurricane,
}

impl App {
    /// All five applications, in Table I order.
    pub const ALL: [App; 5] = [App::SimSet1, App::SimSet2, App::Nyx, App::CesmAtm, App::Hurricane];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            App::SimSet1 => "Sim. Set. 1",
            App::SimSet2 => "Sim. Set. 2",
            App::Nyx => "NYX",
            App::CesmAtm => "CESM-ATM",
            App::Hurricane => "Hurricane",
        }
    }

    /// Generate a field of `n` values; `seed` selects the field/snapshot
    /// (Table I datasets have many fields — pass different seeds to emulate
    /// different fields of the same application).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f32> {
        let dims = cube_dims(n);
        let mut out = vec![0f32; n];
        let gen: &(dyn Fn(usize) -> f32 + Sync) = match self {
            App::SimSet1 => &|i| rtm_early(idx3(i, dims), dims, seed),
            App::SimSet2 => &|i| rtm_late(idx3(i, dims), dims, seed),
            App::Nyx => &|i| nyx(idx3(i, dims), dims, seed),
            App::CesmAtm => &|i| cesm(i, dims, seed),
            App::Hurricane => &|i| hurricane(idx3(i, dims), dims, seed),
        };
        fill_parallel(&mut out, gen);
        out
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Near-cubic dimensions for `n` elements (dx*dy*dz >= n, trimmed by the
/// caller via the flat index).
fn cube_dims(n: usize) -> (usize, usize, usize) {
    let side = (n as f64).cbrt().ceil().max(1.0) as usize;
    (side, side, side)
}

#[inline]
fn idx3(i: usize, dims: (usize, usize, usize)) -> (f32, f32, f32) {
    let (dx, dy, _) = dims;
    let x = i % dx;
    let y = (i / dx) % dy;
    let z = i / (dx * dy);
    (x as f32, y as f32, z as f32)
}

/// Parallel elementwise fill over all available cores.
fn fill_parallel(out: &mut [f32], f: &(dyn Fn(usize) -> f32 + Sync)) {
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    if threads <= 1 || out.len() < 1 << 14 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (t, part) in out.chunks_mut(chunk).enumerate() {
            let base = t * chunk;
            s.spawn(move || {
                for (k, o) in part.iter_mut().enumerate() {
                    *o = f(base + k);
                }
            });
        }
    });
}

/// Deterministic per-seed pseudo-random unit value in `[0, 1)`.
fn unit(seed: u64, k: u64) -> f32 {
    let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Ricker wavelet (second derivative of a Gaussian), the standard seismic
/// source signature.
#[inline]
fn ricker(t: f32) -> f32 {
    let a = t * t;
    (1.0 - 2.0 * a) * (-a).exp()
}

/// RTM Setting 1: 4 point sources fired at an early time — thin expanding
/// spherical shells; everything outside the shells is exactly zero, giving
/// the large zero-block population the paper notes for this dataset. The
/// shells carry fine scattering structure, so tight bounds must spend bits
/// on them (the paper's ratio drops steeply from 111 at 1e-1 to 10.8 at
/// 1e-4).
fn rtm_early(p: (f32, f32, f32), dims: (usize, usize, usize), seed: u64) -> f32 {
    let side = dims.0 as f32;
    let shell_width = side * 0.045;
    let mut v = 0.0f32;
    for srcidx in 0..4u64 {
        let sx = unit(seed, srcidx * 3) * side;
        let sy = unit(seed, srcidx * 3 + 1) * side;
        let sz = unit(seed, srcidx * 3 + 2) * side;
        let radius = side * (0.12 + 0.14 * unit(seed, 100 + srcidx));
        let dx = p.0 - sx;
        let dy = p.1 - sy;
        let dz = p.2 - sz;
        let r = (dx * dx + dy * dy + dz * dz).sqrt();
        let band = (r - radius) / shell_width;
        if band.abs() < 3.0 {
            // amplitude decays with distance; the wavelet rides on the shell
            // and is modulated by fine-grained scattering noise
            let s = 0.35;
            let scatter = 1.0 + 0.35 * fbm3(seed ^ 0xA5, p.0 * s, p.1 * s, p.2 * s, 3);
            v += ricker(band) * scatter * 50.0 / (1.0 + r * 0.05);
        }
    }
    v
}

/// RTM Setting 2: late-time wavefield — well-resolved wave packets over a
/// quiet background. Most of the domain sits below the quantization quantum
/// at range-relative bounds (constant blocks), reproducing the paper's very
/// high compression ratios for this dataset.
fn rtm_late(p: (f32, f32, f32), dims: (usize, usize, usize), seed: u64) -> f32 {
    let s = 1.0 / (dims.0 as f32 * 0.30);
    let (x, y, z) = (p.0 * s, p.1 * s, p.2 * s);
    // smooth packet envelope covering a few percent of the domain
    let e = fbm3(seed ^ 2, x * 0.6, y * 0.6, z * 0.6, 2);
    let env = (e - 0.9).max(0.0);
    // gentle residual wavefield everywhere: far below coarse quanta (mostly
    // constant blocks) but costing ~1-bit codes at the tightest bounds,
    // matching the paper's 129 -> 61 ratio decline for this dataset
    let residual = 0.008 * value_noise3(seed ^ 3, x * 0.12, y * 0.12, z * 0.12);
    if env == 0.0 {
        return residual;
    }
    // carrier resolved at ~50 grid points per wavelength
    let carrier = (x * 4.0 + y * 1.5).sin() * (y * 3.5 - z * 1.0).cos() * (z * 3.0 + x * 0.5).sin();
    120.0 * env * env * carrier + residual
}

/// NYX baryon density: log-normal background (huge dynamic range) with rare
/// halo spikes; at range-relative error bounds almost every block quantizes
/// to constant, driving the 99% pipeline-① share of Table V.
fn nyx(p: (f32, f32, f32), dims: (usize, usize, usize), seed: u64) -> f32 {
    let s = 1.0 / (dims.0 as f32 * 0.2);
    let (x, y, z) = (p.0 * s, p.1 * s, p.2 * s);
    // log-normal background with both large-scale clustering and small-scale
    // turbulence: huge dynamic range, but visible structure at tight bounds
    let log_density =
        3.5 * fbm3(seed, x, y, z, 3) + 1.2 * fbm3(seed ^ 0x11, x * 8.0, y * 8.0, z * 8.0, 2);
    let mut v = log_density.exp();
    // rare halos: sharp peaks several orders of magnitude above background
    let halo = value_noise3(seed ^ 0xBEEF, x * 2.0, y * 2.0, z * 2.0);
    if halo > 0.88 {
        let t = (halo - 0.88) / 0.12;
        v += 2.0e5 * t * t * t;
    }
    v
}

/// CESM-ATM: multi-scale 2-D turbulence, rough down to the block scale —
/// the pipeline-④-dominated, low-ratio dataset of Tables III/V.
fn cesm(i: usize, dims: (usize, usize, usize), seed: u64) -> f32 {
    // treat the field as 2-D rows (Table I: 1800x3600)
    let width = dims.0 * dims.1;
    let x = (i % width) as f32;
    let y = (i / width) as f32;
    // large-scale weather systems set the range; genuine small-amplitude
    // turbulence persists down to the block scale, so coarse bounds see
    // near-constant blocks (paper ratio ~58 at 1e-1) while tight bounds pay
    // for the fine structure (paper ratio ~6 at 1e-4)
    let synoptic = 80.0 * fbm2(seed, x * 0.004, y * 0.004, 3);
    let turb = 2.0 * fbm2(seed ^ 0x22, x * 0.15, y * 0.15, 3);
    260.0 + synoptic + turb
}

/// Hurricane Isabel: axial vortex (tangential wind profile `r * exp(-r/R)`)
/// plus moderate turbulence.
fn hurricane(p: (f32, f32, f32), dims: (usize, usize, usize), seed: u64) -> f32 {
    let side = dims.0 as f32;
    let cx = side * (0.45 + 0.1 * unit(seed, 0));
    let cy = side * (0.45 + 0.1 * unit(seed, 1));
    let dx = p.0 - cx;
    let dy = p.1 - cy;
    let r = (dx * dx + dy * dy).sqrt() / (side * 0.12);
    // concentrated eyewall: the peak sets the value range while most of the
    // domain stays quiet, as in the real Isabel wind fields
    let swirl = 120.0 * r * (-r * r).exp();
    // small-amplitude turbulence on top of the large-range vortex profile
    let s = 1.0 / (side * 0.12);
    let turb = 2.0 * fbm3(seed ^ 7, p.0 * s, p.1 * s, p.2 * s, 3);
    // altitude attenuation
    let alt = 1.0 - 0.5 * (p.2 / side);
    swirl * alt + turb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for app in App::ALL {
            let a = app.generate(10_000, 42);
            let b = app.generate(10_000, 42);
            assert_eq!(a, b, "{app}");
            let c = app.generate(10_000, 43);
            assert_ne!(a, c, "{app} must vary with seed");
        }
    }

    #[test]
    fn fields_are_finite() {
        for app in App::ALL {
            let f = app.generate(50_000, 7);
            assert_eq!(f.len(), 50_000);
            assert!(f.iter().all(|v| v.is_finite()), "{app}");
        }
    }

    #[test]
    fn sim1_has_large_zero_fraction() {
        let f = App::SimSet1.generate(1 << 18, 3);
        let zeros = f.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f64 > 0.5 * f.len() as f64, "only {zeros}/{} zeros", f.len());
    }

    #[test]
    fn nyx_has_huge_dynamic_range() {
        let f = App::Nyx.generate(1 << 18, 3);
        let max = f.iter().cloned().fold(f32::MIN, f32::max);
        let min = f.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max > 1e4, "max {max}");
        assert!((0.0..10.0).contains(&min), "min {min}");
    }

    #[test]
    fn cesm_is_least_compressible_sim2_most() {
        // Table III's ordering at the tightest bound: CESM-ATM compresses
        // far worse than the very smooth RTM Setting 2 field.
        let cfg = fzlight::Config::new(fzlight::ErrorBound::Rel(1e-4));
        let ratio = |app: App| {
            fzlight::compress(&app.generate(1 << 18, 5), &cfg).expect("compress").ratio()
        };
        let rough = ratio(App::CesmAtm);
        let smooth = ratio(App::SimSet2);
        assert!(smooth > 3.0 * rough, "Sim2 ratio {smooth:.1} vs CESM {rough:.1}");
    }

    #[test]
    fn block_statistics_match_each_apps_profile() {
        // the property the whole reproduction rests on: each dataset's
        // constant-block fraction at REL 1e-3 drives its Table V pipeline mix
        let cfg = fzlight::Config::new(fzlight::ErrorBound::Rel(1e-3));
        let frac = |app: App| {
            let s = fzlight::compress(&app.generate(1 << 17, 0), &cfg).unwrap();
            fzlight::StreamStats::inspect(&s).unwrap().constant_fraction()
        };
        // NYX and Sim2 nearly all constant (pipeline-1 regime)
        assert!(frac(App::Nyx) > 0.85, "NYX {}", frac(App::Nyx));
        assert!(frac(App::SimSet2) > 0.85, "Sim2 {}", frac(App::SimSet2));
        // CESM and Hurricane dominated by non-constant blocks (pipeline 4)
        assert!(frac(App::CesmAtm) < 0.15, "CESM {}", frac(App::CesmAtm));
        assert!(frac(App::Hurricane) < 0.15, "Hurricane {}", frac(App::Hurricane));
        // Sim1 in between (mixed pipelines)
        let s1 = frac(App::SimSet1);
        assert!((0.2..0.95).contains(&s1), "Sim1 {s1}");
    }

    #[test]
    fn generators_scale_without_changing_character() {
        // block statistics should be roughly size-invariant
        let cfg = fzlight::Config::new(fzlight::ErrorBound::Rel(1e-3));
        for app in [App::Nyx, App::CesmAtm] {
            let small = fzlight::StreamStats::inspect(
                &fzlight::compress(&app.generate(1 << 15, 0), &cfg).unwrap(),
            )
            .unwrap()
            .constant_fraction();
            let large = fzlight::StreamStats::inspect(
                &fzlight::compress(&app.generate(1 << 18, 0), &cfg).unwrap(),
            )
            .unwrap()
            .constant_fraction();
            assert!((small - large).abs() < 0.25, "{app}: {small} vs {large} constant fraction");
        }
    }

    #[test]
    fn hurricane_peaks_off_center() {
        let f = App::Hurricane.generate(1 << 15, 11);
        let max = f.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max > 10.0, "vortex winds should be tens of m/s, max {max}");
    }
}
