//! Compression-quality metrics as reported in the paper's evaluation:
//! NRMSE, PSNR, maximum absolute/relative error, and value range.

/// Quality metrics of a reconstruction against its original field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// `min(original)`.
    pub min: f64,
    /// `max(original)`.
    pub max: f64,
    /// Maximum absolute point-wise error.
    pub max_abs_err: f64,
    /// `max_abs_err / (max - min)` (range-relative).
    pub max_rel_err: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// `rmse / (max - min)`.
    pub nrmse: f64,
    /// `20 * log10(range / rmse)`.
    pub psnr: f64,
}

impl Quality {
    /// Compare a reconstruction against the original field.
    ///
    /// Panics if lengths differ; returns degenerate (zero-error) metrics for
    /// empty input.
    pub fn compare(original: &[f32], reconstructed: &[f32]) -> Quality {
        assert_eq!(original.len(), reconstructed.len(), "field lengths must match");
        if original.is_empty() {
            return Quality {
                min: 0.0,
                max: 0.0,
                max_abs_err: 0.0,
                max_rel_err: 0.0,
                rmse: 0.0,
                nrmse: 0.0,
                psnr: f64::INFINITY,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut max_abs = 0f64;
        let mut sq_sum = 0f64;
        for (&a, &b) in original.iter().zip(reconstructed) {
            let a = a as f64;
            let e = (a - b as f64).abs();
            min = min.min(a);
            max = max.max(a);
            max_abs = max_abs.max(e);
            sq_sum += e * e;
        }
        let rmse = (sq_sum / original.len() as f64).sqrt();
        let range = max - min;
        let (nrmse, max_rel, psnr) = if range > 0.0 {
            (
                rmse / range,
                max_abs / range,
                if rmse > 0.0 { 20.0 * (range / rmse).log10() } else { f64::INFINITY },
            )
        } else {
            (rmse, max_abs, if rmse > 0.0 { 0.0 } else { f64::INFINITY })
        };
        Quality { min, max, max_abs_err: max_abs, max_rel_err: max_rel, rmse, nrmse, psnr }
    }
}

/// Mean and (population) standard deviation of a sample — used to aggregate
/// per-field NRMSE into Table III's `NRMSE ± STD` columns.
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_fields_have_zero_error() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let q = Quality::compare(&a, &a);
        assert_eq!(q.max_abs_err, 0.0);
        assert_eq!(q.nrmse, 0.0);
        assert!(q.psnr.is_infinite());
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 99.0);
    }

    #[test]
    fn known_error_is_reported() {
        let a = vec![0.0f32, 10.0];
        let b = vec![1.0f32, 10.0];
        let q = Quality::compare(&a, &b);
        assert_eq!(q.max_abs_err, 1.0);
        assert!((q.max_rel_err - 0.1).abs() < 1e-12);
        // rmse = sqrt(1/2)
        assert!((q.rmse - (0.5f64).sqrt()).abs() < 1e-12);
        // psnr = 20 log10(10 / rmse)
        assert!((q.psnr - 20.0 * (10.0 / (0.5f64).sqrt()).log10()).abs() < 1e-9);
    }

    #[test]
    fn constant_field_uses_degenerate_range() {
        let a = vec![5.0f32; 4];
        let b = vec![5.5f32; 4];
        let q = Quality::compare(&a, &b);
        assert_eq!(q.max_abs_err, 0.5);
        assert_eq!(q.nrmse, 0.5); // falls back to rmse itself
    }

    #[test]
    fn empty_fields_are_ok() {
        let q = Quality::compare(&[], &[]);
        assert_eq!(q.rmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn length_mismatch_panics() {
        Quality::compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
