//! Seeded lattice value-noise / fBm substrate for the synthetic dataset
//! generators.
//!
//! A deterministic integer hash drives lattice values; octaves of trilinearly
//! interpolated noise compose into fractional Brownian motion. Everything is
//! reproducible from a `u64` seed — no external noise crates.

/// SplitMix64-style avalanche hash of lattice coordinates and seed.
#[inline]
fn hash3(seed: u64, x: i64, y: i64, z: i64) -> u64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (z as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Lattice value in `[-1, 1)`.
#[inline]
fn lattice(seed: u64, x: i64, y: i64, z: i64) -> f32 {
    // top 24 bits -> [0,1) -> [-1,1)
    let u = (hash3(seed, x, y, z) >> 40) as f32 / (1u64 << 24) as f32;
    2.0 * u - 1.0
}

#[inline]
fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Single-octave trilinear value noise at continuous coordinates, in
/// `[-1, 1]`.
pub fn value_noise3(seed: u64, x: f32, y: f32, z: f32) -> f32 {
    let xf = x.floor();
    let yf = y.floor();
    let zf = z.floor();
    let (xi, yi, zi) = (xf as i64, yf as i64, zf as i64);
    let (tx, ty, tz) = (smooth(x - xf), smooth(y - yf), smooth(z - zf));
    let mut acc = [0f32; 2];
    for (dz, a) in acc.iter_mut().enumerate() {
        let dz = dz as i64;
        let c00 = lattice(seed, xi, yi, zi + dz);
        let c10 = lattice(seed, xi + 1, yi, zi + dz);
        let c01 = lattice(seed, xi, yi + 1, zi + dz);
        let c11 = lattice(seed, xi + 1, yi + 1, zi + dz);
        let x0 = c00 + (c10 - c00) * tx;
        let x1 = c01 + (c11 - c01) * tx;
        *a = x0 + (x1 - x0) * ty;
    }
    acc[0] + (acc[1] - acc[0]) * tz
}

/// Fractional Brownian motion: `octaves` octaves of value noise with
/// per-octave frequency doubling and amplitude halving. Output roughly in
/// `[-2, 2]`.
pub fn fbm3(seed: u64, x: f32, y: f32, z: f32, octaves: u32) -> f32 {
    let mut amp = 1.0f32;
    let mut freq = 1.0f32;
    let mut acc = 0.0f32;
    for o in 0..octaves {
        acc += amp * value_noise3(seed.wrapping_add(o as u64), x * freq, y * freq, z * freq);
        amp *= 0.5;
        freq *= 2.0;
    }
    acc
}

/// Convenience 2-D wrappers (z fixed at a seed-derived offset).
pub fn value_noise2(seed: u64, x: f32, y: f32) -> f32 {
    value_noise3(seed, x, y, 0.137)
}

/// 2-D fBm.
pub fn fbm2(seed: u64, x: f32, y: f32, octaves: u32) -> f32 {
    fbm3(seed, x, y, 0.137, octaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(value_noise3(42, 1.3, 2.7, 0.5), value_noise3(42, 1.3, 2.7, 0.5));
        assert_eq!(fbm3(7, 0.1, 0.2, 0.3, 5), fbm3(7, 0.1, 0.2, 0.3, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = value_noise3(1, 1.5, 1.5, 1.5);
        let b = value_noise3(2, 1.5, 1.5, 1.5);
        assert_ne!(a, b);
    }

    #[test]
    fn range_is_bounded() {
        for i in 0..10_000 {
            let x = i as f32 * 0.173;
            let v = value_noise3(9, x, x * 0.7, x * 0.3);
            assert!((-1.0..=1.0).contains(&v), "{v}");
            let f = fbm3(9, x, x * 0.7, x * 0.3, 5);
            assert!((-2.0..=2.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn noise_is_continuous() {
        // neighbouring samples should differ by a small amount
        let eps = 1e-3f32;
        for i in 0..1000 {
            let x = i as f32 * 0.31;
            let a = value_noise3(5, x, 0.0, 0.0);
            let b = value_noise3(5, x + eps, 0.0, 0.0);
            assert!((a - b).abs() < 0.02, "jump at {x}: {a} vs {b}");
        }
    }

    #[test]
    fn lattice_matches_at_integer_points() {
        // at integer coordinates the interpolation collapses to the lattice
        let v = value_noise3(3, 4.0, 5.0, 6.0);
        assert!((-1.0..=1.0).contains(&v));
        // and moving by exactly 1 samples a different lattice point
        let w = value_noise3(3, 5.0, 5.0, 6.0);
        assert_ne!(v, w);
    }
}
