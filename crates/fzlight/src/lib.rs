//! # fZ-light — an ultra-fast error-bounded lossy compressor for `f32` data
//!
//! This crate reproduces the `fZ-light` compressor from *"hZCCL: Accelerating
//! Collective Communication with Co-Designed Homomorphic Compression"*
//! (SC 2024), Section III-B. It is the substrate on which the homomorphic
//! compressor (`hzdyn`) and the collective framework (`hzccl`) are built.
//!
//! ## Algorithm
//!
//! 1. **Multi-layer block partitioning** (Sec. III-B.2): the input is split
//!    into `nchunks` large contiguous *thread-chunks* (one per compression
//!    thread; the last chunk absorbs the remainder), and each chunk is
//!    subdivided into *small blocks* of `block_len` elements (default 32).
//!    Threads always work on contiguous memory, unlike the GPU-style
//!    block-cyclic assignment of `ompSZp`.
//! 2. **Fused quantization + prediction**: every value is quantized to an
//!    integer `q = round(v / (2*eb))` and immediately delta-predicted against
//!    the previous quantization integer (1-D Lorenzo). Only the *first*
//!    quantization integer of each thread-chunk is stored verbatim (the
//!    chunk's 4-byte *outlier*); everything else is a small signed delta.
//! 3. **Ultra-fast bit-shifting fixed-length encoding** (Sec. III-B.3): each
//!    small block stores a 1-byte code length `c` (the bit width of the
//!    largest delta magnitude; `c == 0` marks a *constant* block whose deltas
//!    are all zero), a sign bitmap, `c / 8` full byte planes, and a packed
//!    plane of the `c % 8` residual (high) bits.
//!
//! Quantization is the *only* lossy step: `|v - decompress(compress(v))| <= eb`
//! in exact arithmetic for every finite input value (storing the
//! reconstruction as `f32` adds at most half an ULP of the reconstructed
//! value on top). Every stage after quantization is bijective, which is what
//! makes the homomorphic reductions in `hzdyn` exact on the quantization
//! integers.
//!
//! ## Quick example
//!
//! ```
//! use fzlight::{compress, decompress, Config, ErrorBound};
//!
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.001).sin()).collect();
//! let cfg = Config::new(ErrorBound::Abs(1e-4));
//! let stream = compress(&data, &cfg).unwrap();
//! let restored = decompress(&stream).unwrap();
//! assert!(data.iter().zip(&restored).all(|(a, b)| (a - b).abs() <= 1.001e-4));
//! assert!(stream.compressed_size() < data.len() * 4);
//! ```

pub mod chunk;
pub mod codec;
pub mod compress;
pub mod config;
pub mod decompress;
pub mod error;
pub mod header;
pub mod quantize;
pub mod stats;
pub mod stream;
pub mod unfused;

pub use compress::{compress, compress_resolved};
pub use config::{Config, ErrorBound, DEFAULT_BLOCK_LEN};
pub use decompress::{decompress, decompress_into, decompress_range};
pub use error::{Error, Result};
pub use header::Header;
pub use quantize::{quantize_block, quantize_block_scalar};
pub use stats::StreamStats;
pub use stream::CompressedStream;
pub use unfused::compress_unfused;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], cfg: &Config) -> Vec<f32> {
        let s = compress(data, cfg).expect("compress");
        decompress(&s).expect("decompress")
    }

    #[test]
    fn empty_input_roundtrips() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let out = roundtrip(&[], &cfg);
        assert!(out.is_empty());
    }

    #[test]
    fn single_value_roundtrips() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let out = roundtrip(&[42.5], &cfg);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 42.5).abs() <= 1e-3);
    }

    #[test]
    fn error_bound_holds_on_sine_wave() {
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32 * 0.01).sin() * 100.0).collect();
        for &eb in &[1e-1, 1e-2, 1e-3, 1e-4] {
            let cfg = Config::new(ErrorBound::Abs(eb));
            let out = roundtrip(&data, &cfg);
            for (a, b) in data.iter().zip(&out) {
                // eb guaranteed in f64 arithmetic; storing as f32 adds at most
                // half an ULP of the reconstructed value.
                let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * (f32::EPSILON as f64);
                assert!(((a - b).abs() as f64) <= tol, "eb={eb}: |{a} - {b}| = {}", (a - b).abs());
            }
        }
    }

    #[test]
    fn relative_error_bound_resolves_against_range() {
        let data: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let cfg = Config::new(ErrorBound::Rel(1e-3));
        let s = compress(&data, &cfg).unwrap();
        // range = 4095, so the absolute bound baked into the stream is ~4.095
        let abs = s.header().eb;
        assert!((abs - 4.095).abs() < 1e-6, "abs={abs}");
    }

    #[test]
    fn constant_data_compresses_to_near_nothing() {
        let data = vec![3.75f32; 1 << 16];
        let cfg = Config::new(ErrorBound::Abs(1e-4));
        let s = compress(&data, &cfg).unwrap();
        // one outlier per chunk + one code byte per block; ratio should be large
        assert!(s.ratio() > 25.0, "ratio = {}", s.ratio());
        let out = decompress(&s).unwrap();
        for v in out {
            assert!((v - 3.75).abs() <= 1e-4);
        }
    }

    #[test]
    fn rejects_non_finite_input() {
        let cfg = Config::new(ErrorBound::Abs(1e-4));
        assert!(matches!(compress(&[1.0, f32::NAN], &cfg), Err(Error::NonFiniteInput { .. })));
        assert!(matches!(compress(&[f32::INFINITY], &cfg), Err(Error::NonFiniteInput { .. })));
    }

    #[test]
    fn rejects_quantization_overflow() {
        let cfg = Config::new(ErrorBound::Abs(1e-30));
        assert!(matches!(compress(&[1.0e9], &cfg), Err(Error::QuantizationOverflow { .. })));
    }

    #[test]
    fn thread_count_does_not_change_decompressed_values() {
        let data: Vec<f32> =
            (0..50_000).map(|i| ((i as f32) * 0.37).cos() * (i % 17) as f32).collect();
        let base = {
            let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(1);
            roundtrip(&data, &cfg)
        };
        for t in [2, 3, 7, 16] {
            let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(t);
            let out = roundtrip(&data, &cfg);
            assert_eq!(base, out, "threads={t} changed reconstruction");
        }
    }

    #[test]
    fn tail_shorter_than_block_roundtrips() {
        for n in [1usize, 5, 31, 32, 33, 63, 64, 65, 1000, 1023, 1025] {
            let data: Vec<f32> = (0..n).map(|i| (i as f32).sqrt()).collect();
            let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(3);
            let out = roundtrip(&data, &cfg);
            assert_eq!(out.len(), n);
            for (a, b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= 1e-3 + 1e-9);
            }
        }
    }

    #[test]
    fn huge_deltas_need_wide_codes() {
        // alternate +/- large values so deltas need close to 32 bits
        let data: Vec<f32> = (0..256).map(|i| if i % 2 == 0 { 1.0e5 } else { -1.0e5 }).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-4));
        let out = roundtrip(&data, &cfg);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + 1e-6));
        }
    }

    #[test]
    fn stream_survives_byte_serialization() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.02).sin()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-4)).with_threads(4);
        let s = compress(&data, &cfg).unwrap();
        let bytes = s.as_bytes().to_vec();
        let s2 = CompressedStream::from_bytes(bytes).unwrap();
        assert_eq!(decompress(&s).unwrap(), decompress(&s2).unwrap());
    }
}
