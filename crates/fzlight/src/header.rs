//! Stream header: parameters plus the per-chunk offset table that enables
//! parallel decompression and chunk-aligned homomorphic operation.

use crate::error::{Error, Result};

/// Stream magic bytes.
pub const MAGIC: [u8; 4] = *b"FZL1";
/// Stream format version.
pub const VERSION: u32 = 1;

/// Parsed fZ-light stream header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Element count of the original `f32` data.
    pub n: u64,
    /// Resolved *absolute* error bound baked into quantization.
    pub eb: f64,
    /// Small-block length.
    pub block_len: u32,
    /// Thread-chunk count.
    pub nchunks: u32,
    /// `nchunks + 1` byte offsets into the body; chunk `i` occupies
    /// `offsets[i]..offsets[i+1]`. Empty streams (`n == 0`) store `[0]`... no:
    /// they store a single `0` terminator only when `nchunks == 0`.
    pub offsets: Vec<u64>,
}

/// Fixed-size prefix before the offset table, in bytes.
const FIXED: usize = 4 + 4 + 8 + 8 + 4 + 4;

impl Header {
    /// Serialized header size for a given chunk count.
    pub fn serialized_len(nchunks: usize) -> usize {
        FIXED + (nchunks + 1) * 8
    }

    /// Total body (payload) length in bytes.
    pub fn body_len(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    /// Byte range of chunk `i` within the body.
    pub fn chunk_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Append the serialized header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.eb.to_le_bytes());
        out.extend_from_slice(&self.block_len.to_le_bytes());
        out.extend_from_slice(&self.nchunks.to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
    }

    /// Parse a header from the front of `bytes`; returns the header and the
    /// byte offset where the body starts.
    pub fn parse(bytes: &[u8]) -> Result<(Header, usize)> {
        if bytes.len() < FIXED {
            return Err(Error::Truncated { need: FIXED, have: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(Error::Corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(Error::Corrupt("unsupported version"));
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let eb = f64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let block_len = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let nchunks = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        if !(eb.is_finite() && eb > 0.0) {
            return Err(Error::Corrupt("non-positive error bound"));
        }
        if block_len == 0 || block_len as usize > crate::config::MAX_BLOCK_LEN {
            return Err(Error::Corrupt("invalid block length"));
        }
        if n > 0 && nchunks == 0 {
            return Err(Error::Corrupt("non-empty stream with zero chunks"));
        }
        if nchunks as u64 > n {
            return Err(Error::Corrupt("more chunks than elements"));
        }
        let table = (nchunks as usize + 1) * 8;
        let need = FIXED + table;
        if bytes.len() < need {
            return Err(Error::Truncated { need, have: bytes.len() });
        }
        let mut offsets = Vec::with_capacity(nchunks as usize + 1);
        let mut prev = 0u64;
        for k in 0..=nchunks as usize {
            let at = FIXED + k * 8;
            let o = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            if k == 0 {
                if o != 0 {
                    return Err(Error::Corrupt("first offset must be zero"));
                }
            } else if o < prev {
                return Err(Error::Corrupt("offsets not monotone"));
            }
            prev = o;
            offsets.push(o);
        }
        Ok((Header { n, eb, block_len, nchunks, offsets }, need))
    }

    /// Check that two headers describe homomorphically compatible streams:
    /// same element count, error bound, block length and chunk layout.
    pub fn check_compatible(&self, other: &Header) -> Result<()> {
        if self.n != other.n {
            return Err(Error::Mismatch("element counts differ"));
        }
        if self.eb.to_bits() != other.eb.to_bits() {
            return Err(Error::Mismatch("error bounds differ"));
        }
        if self.block_len != other.block_len {
            return Err(Error::Mismatch("block lengths differ"));
        }
        if self.nchunks != other.nchunks {
            return Err(Error::Mismatch("chunk counts differ"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header { n: 100, eb: 1e-4, block_len: 32, nchunks: 2, offsets: vec![0, 40, 77] }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), Header::serialized_len(2));
        let (h2, body) = Header::parse(&buf).unwrap();
        assert_eq!(h, h2);
        assert_eq!(body, buf.len());
        assert_eq!(h2.body_len(), 77);
        assert_eq!(h2.chunk_range(1), 40..77);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf);
        buf[0] = b'X';
        assert!(matches!(Header::parse(&buf), Err(Error::Corrupt("bad magic"))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf);
        buf[4] = 9;
        assert!(Header::parse(&buf).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf);
        for cut in 0..buf.len() {
            assert!(Header::parse(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        let mut h = sample();
        h.offsets = vec![0, 50, 40];
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert!(Header::parse(&buf).is_err());
    }

    #[test]
    fn nonzero_first_offset_rejected() {
        let mut h = sample();
        h.offsets = vec![1, 50, 60];
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert!(Header::parse(&buf).is_err());
    }

    #[test]
    fn compatibility_checks() {
        let a = sample();
        let mut b = sample();
        assert!(a.check_compatible(&b).is_ok());
        b.eb = 2e-4;
        assert!(a.check_compatible(&b).is_err());
        b = sample();
        b.nchunks = 3;
        assert!(a.check_compatible(&b).is_err());
        b = sample();
        b.n = 99;
        assert!(a.check_compatible(&b).is_err());
        b = sample();
        b.block_len = 16;
        assert!(a.check_compatible(&b).is_err());
    }

    #[test]
    fn more_chunks_than_elements_rejected() {
        let h = Header { n: 1, eb: 1e-4, block_len: 32, nchunks: 2, offsets: vec![0, 1, 2] };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        assert!(Header::parse(&buf).is_err());
    }
}
