//! Thread-chunk partitioning (the "multi-layered partitioning" of
//! Sec. III-B.2).
//!
//! The input of `n` elements is split into `nchunks` contiguous ranges of
//! `n / nchunks` elements each; the final chunk additionally absorbs the
//! `n % nchunks` remainder, exactly as the paper assigns the last `D % N`
//! points to thread `N-1`.

/// The element range a single thread-chunk covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Index of the first element.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

/// Compute the effective chunk count for `n` elements and a requested thread
/// count: never more chunks than elements, at least one chunk when `n > 0`,
/// and zero chunks for empty input.
pub fn effective_chunks(n: usize, threads: usize) -> usize {
    if n == 0 {
        0
    } else {
        threads.max(1).min(n)
    }
}

/// Enumerate the chunk spans for `n` elements split into `nchunks` chunks.
///
/// `nchunks` must come from [`effective_chunks`]; panics if a chunk would be
/// empty.
pub fn chunk_spans(n: usize, nchunks: usize) -> Vec<ChunkSpan> {
    if nchunks == 0 {
        assert_eq!(n, 0, "zero chunks only valid for empty input");
        return Vec::new();
    }
    let base = n / nchunks;
    assert!(base > 0, "more chunks than elements");
    let mut spans = Vec::with_capacity(nchunks);
    for t in 0..nchunks {
        let start = t * base;
        let len = if t == nchunks - 1 { n - start } else { base };
        spans.push(ChunkSpan { start, len });
    }
    spans
}

/// Split a mutable slice into sub-slices matching `spans` (which must tile the
/// slice exactly, in order).
pub fn split_mut<'a, T>(mut data: &'a mut [T], spans: &[ChunkSpan]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(spans.len());
    let mut consumed = 0usize;
    for span in spans {
        assert_eq!(span.start, consumed, "spans must be contiguous");
        let (head, tail) = data.split_at_mut(span.len);
        out.push(head);
        data = tail;
        consumed += span.len;
    }
    assert!(data.is_empty(), "spans must cover the whole slice");
    out
}

/// Number of small blocks needed to cover `len` elements with blocks of
/// `block_len`.
pub fn block_count(len: usize, block_len: usize) -> usize {
    len.div_ceil(block_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_the_input() {
        for n in [1usize, 2, 31, 32, 100, 101, 1024] {
            for t in [1usize, 2, 3, 7, 16] {
                let nchunks = effective_chunks(n, t);
                let spans = chunk_spans(n, nchunks);
                assert_eq!(spans.len(), nchunks);
                let mut next = 0;
                for s in &spans {
                    assert_eq!(s.start, next);
                    assert!(s.len > 0);
                    next += s.len;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn last_chunk_absorbs_remainder() {
        let spans = chunk_spans(10, 3);
        assert_eq!(spans[0].len, 3);
        assert_eq!(spans[1].len, 3);
        assert_eq!(spans[2].len, 4);
    }

    #[test]
    fn empty_input_has_no_chunks() {
        assert_eq!(effective_chunks(0, 8), 0);
        assert!(chunk_spans(0, 0).is_empty());
    }

    #[test]
    fn more_threads_than_elements_is_clamped() {
        assert_eq!(effective_chunks(3, 16), 3);
        let spans = chunk_spans(3, 3);
        assert!(spans.iter().all(|s| s.len == 1));
    }

    #[test]
    fn split_mut_matches_spans() {
        let mut v: Vec<u32> = (0..10).collect();
        let spans = chunk_spans(10, 3);
        let parts = split_mut(&mut v, &spans);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert_eq!(parts[2], &[6, 7, 8, 9]);
    }

    #[test]
    fn block_count_rounds_up() {
        assert_eq!(block_count(0, 32), 0);
        assert_eq!(block_count(1, 32), 1);
        assert_eq!(block_count(32, 32), 1);
        assert_eq!(block_count(33, 32), 2);
    }
}
