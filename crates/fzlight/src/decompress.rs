//! Parallel decompression: each thread-chunk decodes independently into its
//! disjoint output range, driven by the header's offset table.

use crate::chunk::{chunk_spans, split_mut};
use crate::codec;
use crate::config::MAX_BLOCK_LEN;
use crate::error::{Error, Result};
use crate::stream::CompressedStream;

/// Decompress a stream into a freshly allocated vector.
///
/// Parallelism matches the stream's chunk layout (one thread per chunk when
/// the stream has more than one chunk).
pub fn decompress(stream: &CompressedStream) -> Result<Vec<f32>> {
    let mut out = vec![0f32; stream.n()];
    decompress_into(stream, &mut out)?;
    Ok(out)
}

/// Decompress a stream into a caller-provided buffer of exactly `stream.n()`
/// elements.
pub fn decompress_into(stream: &CompressedStream, out: &mut [f32]) -> Result<()> {
    if out.len() != stream.n() {
        return Err(Error::Mismatch("output buffer length != stream element count"));
    }
    let n = stream.n();
    if n == 0 {
        return Ok(());
    }
    let nchunks = stream.nchunks();
    let block_len = stream.block_len();
    let two_eb = 2.0 * stream.eb();
    let spans = chunk_spans(n, nchunks);
    let parts = split_mut(out, &spans);

    if nchunks <= 1 {
        for (ci, part) in parts.into_iter().enumerate() {
            decompress_chunk(stream.chunk_payload(ci), block_len, two_eb, part)?;
        }
        Ok(())
    } else {
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .map(|(ci, part)| {
                    let payload = stream.chunk_payload(ci);
                    s.spawn(move || decompress_chunk(payload, block_len, two_eb, part))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("decompressor thread panicked")).collect()
        });
        results.into_iter().collect()
    }
}

/// Decompress only the elements in `range`, without touching the rest of the
/// stream.
///
/// Random access is chunk-granular (the delta chain restarts at every chunk
/// outlier), so the chunks overlapping `range` are decoded and sliced. Cost
/// is proportional to the covering chunks, not the stream — with `nchunks`
/// equal to the compression thread count, a range query on a large stream
/// touches `len(range) + O(n / nchunks)` elements.
pub fn decompress_range(
    stream: &CompressedStream,
    range: std::ops::Range<usize>,
) -> Result<Vec<f32>> {
    let n = stream.n();
    if range.start > range.end || range.end > n {
        return Err(Error::Mismatch("range out of bounds"));
    }
    if range.is_empty() {
        return Ok(Vec::new());
    }
    let spans = chunk_spans(n, stream.nchunks());
    let block_len = stream.block_len();
    let two_eb = 2.0 * stream.eb();
    let mut out = Vec::with_capacity(range.len());
    let mut scratch = Vec::new();
    for (ci, span) in spans.iter().enumerate() {
        let chunk_range = span.start..span.start + span.len;
        if chunk_range.end <= range.start || chunk_range.start >= range.end {
            continue;
        }
        scratch.clear();
        scratch.resize(span.len, 0f32);
        decompress_chunk(stream.chunk_payload(ci), block_len, two_eb, &mut scratch)?;
        let lo = range.start.max(chunk_range.start) - chunk_range.start;
        let hi = range.end.min(chunk_range.end) - chunk_range.start;
        out.extend_from_slice(&scratch[lo..hi]);
    }
    debug_assert_eq!(out.len(), range.len());
    Ok(out)
}

/// Decode one chunk payload (`[outlier i32][blocks...]`) into `out`.
pub(crate) fn decompress_chunk(
    payload: &[u8],
    block_len: usize,
    two_eb: f64,
    out: &mut [f32],
) -> Result<()> {
    if payload.len() < 4 {
        return Err(Error::Truncated { need: 4, have: payload.len() });
    }
    let outlier = i32::from_le_bytes(payload[0..4].try_into().unwrap()) as i64;
    let mut pos = 4usize;
    let mut q = outlier;
    let mut deltas = [0i64; MAX_BLOCK_LEN];
    for block_out in out.chunks_mut(block_len) {
        // Constant-block fast path: a zero code byte means every delta is
        // zero, so the whole block is one `fill` — this is what lets
        // decompression of smooth data run at near-STREAM speed (Table IV).
        if codec::peek_code(&payload[pos..])? == 0 {
            pos += 1;
            block_out.fill((q as f64 * two_eb) as f32);
            continue;
        }
        let used = codec::decode_block(&payload[pos..], &mut deltas[..block_out.len()])?;
        pos += used;
        // The chunk's first delta is zero by construction, so `q` starts at
        // the outlier; corrupt streams may violate this but stay memory-safe.
        for (k, o) in block_out.iter_mut().enumerate() {
            q += deltas[k];
            *o = (q as f64 * two_eb) as f32;
        }
    }
    if pos != payload.len() {
        return Err(Error::Corrupt("chunk payload longer than its blocks"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, Config, ErrorBound};

    #[test]
    fn wrong_output_length_rejected() {
        let data = vec![1.0f32; 100];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let mut out = vec![0f32; 99];
        assert!(matches!(decompress_into(&s, &mut out), Err(Error::Mismatch(_))));
    }

    #[test]
    fn corrupt_body_detected_not_panicking() {
        let data: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(2)).unwrap();
        let nchunks = s.nchunks();
        let mut bytes = s.into_bytes();
        // Stomp on the first block's code byte of chunk 0: it sits right
        // after the header and the chunk's 4-byte outlier. 33 is an invalid
        // code length, so decoding must fail cleanly, not panic or read OOB.
        let at = crate::header::Header::serialized_len(nchunks) + 4;
        bytes[at] = 33;
        let s2 = crate::stream::CompressedStream::from_bytes(bytes).unwrap();
        assert!(decompress(&s2).is_err());
    }

    #[test]
    fn trailing_payload_bytes_detected() {
        // Hand-build a chunk payload with an extra byte.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0i32.to_le_bytes());
        payload.push(0); // one constant block of len<=32
        payload.push(0); // spurious extra block byte
        let mut out = vec![0f32; 16];
        assert!(decompress_chunk(&payload, 32, 2e-3, &mut out).is_err());
    }

    #[test]
    fn range_decompression_matches_full() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.007).sin() * 5.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(4)).unwrap();
        let full = decompress(&s).unwrap();
        for range in [0..0, 0..1, 0..10_000, 5..7, 2400..2600, 9_990..10_000, 7_500..7_500] {
            let part = decompress_range(&s, range.clone()).unwrap();
            assert_eq!(part, full[range.clone()], "range {range:?}");
        }
    }

    #[test]
    fn range_out_of_bounds_rejected() {
        let data = vec![1.0f32; 100];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        assert!(decompress_range(&s, 50..101).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(decompress_range(&s, 60..50).is_err());
        }
    }

    #[test]
    fn decompresses_exactly_quantized_grid() {
        // values exactly on the quantization grid reconstruct bit-exactly
        let eb = 0.5f64;
        let data: Vec<f32> = (-50..50).map(|q| (q as f64 * 2.0 * eb) as f32).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(eb))).unwrap();
        assert_eq!(decompress(&s).unwrap(), data);
    }
}
