//! Stream inspection: walk a compressed stream's blocks and summarize the
//! code-length distribution — the statistic that decides which hZ-dynamic
//! pipeline a block pair will take and what the compression ratio will be.

use crate::chunk::chunk_spans;
use crate::codec;
use crate::error::{Error, Result};
use crate::stream::CompressedStream;

/// Aggregate statistics of one compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Total number of small blocks.
    pub blocks: u64,
    /// Blocks with code length 0 (all deltas zero).
    pub constant_blocks: u64,
    /// Histogram of code lengths: `code_hist[c]` counts blocks with code
    /// length `c` (0..=32).
    pub code_hist: [u64; 33],
    /// Per-chunk payload sizes in bytes.
    pub chunk_bytes: Vec<usize>,
    /// Compression ratio (original / compressed, incl. header).
    pub ratio: f64,
}

impl StreamStats {
    /// Walk `stream` and collect its statistics. Validates the whole body in
    /// the process (every block header and size is checked).
    pub fn inspect(stream: &CompressedStream) -> Result<StreamStats> {
        let n = stream.n();
        let block_len = stream.block_len();
        let spans = chunk_spans(n, stream.nchunks());
        let mut stats = StreamStats {
            blocks: 0,
            constant_blocks: 0,
            code_hist: [0; 33],
            chunk_bytes: Vec::with_capacity(spans.len()),
            ratio: stream.ratio(),
        };
        for (ci, span) in spans.iter().enumerate() {
            let payload = stream.chunk_payload(ci);
            if payload.len() < 4 {
                return Err(Error::Truncated { need: 4, have: payload.len() });
            }
            stats.chunk_bytes.push(payload.len());
            let mut pos = 4usize;
            let mut remaining = span.len;
            while remaining > 0 {
                let len = remaining.min(block_len);
                remaining -= len;
                let c = codec::peek_code(&payload[pos..])?;
                pos += codec::skip_block(&payload[pos..], len)?;
                stats.blocks += 1;
                stats.code_hist[c as usize] += 1;
                if c == 0 {
                    stats.constant_blocks += 1;
                }
            }
            if pos != payload.len() {
                return Err(Error::Corrupt("chunk payload longer than its blocks"));
            }
        }
        Ok(stats)
    }

    /// Fraction of constant blocks, in `[0, 1]`.
    pub fn constant_fraction(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        self.constant_blocks as f64 / self.blocks as f64
    }

    /// Mean code length over all blocks (bits).
    pub fn mean_code(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        let weighted: u64 = self.code_hist.iter().enumerate().map(|(c, &k)| c as u64 * k).sum();
        weighted as f64 / self.blocks as f64
    }
}

impl std::fmt::Display for StreamStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "blocks: {} ({:.2}% constant), mean code {:.2} bits, ratio {:.2}",
            self.blocks,
            self.constant_fraction() * 100.0,
            self.mean_code(),
            self.ratio
        )?;
        write!(f, "code hist:")?;
        for (c, &k) in self.code_hist.iter().enumerate() {
            if k > 0 {
                write!(f, " {c}:{k}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, Config, ErrorBound};

    #[test]
    fn constant_data_is_all_constant_blocks() {
        let data = vec![1.0f32; 32 * 10];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let st = StreamStats::inspect(&s).unwrap();
        assert_eq!(st.blocks, 10);
        assert_eq!(st.constant_blocks, 10);
        assert_eq!(st.constant_fraction(), 1.0);
        assert_eq!(st.mean_code(), 0.0);
    }

    #[test]
    fn histogram_counts_every_block_once() {
        let data: Vec<f32> = (0..32 * 64).map(|i| ((i / 100) as f32).sin() * 30.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-4)).with_threads(3)).unwrap();
        let st = StreamStats::inspect(&s).unwrap();
        assert_eq!(st.code_hist.iter().sum::<u64>(), st.blocks);
        assert_eq!(st.chunk_bytes.len(), 3);
        assert_eq!(st.chunk_bytes.iter().sum::<usize>(), s.header().body_len());
        assert!(st.mean_code() > 0.0);
    }

    #[test]
    fn inspect_validates_corrupt_streams() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let mut bytes = s.into_bytes();
        let at = crate::header::Header::serialized_len(1) + 4;
        bytes[at] = 33;
        let bad = CompressedStream::from_bytes(bytes).unwrap();
        assert!(StreamStats::inspect(&bad).is_err());
    }

    #[test]
    fn display_is_informative() {
        let data = vec![0.0f32; 64];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let st = StreamStats::inspect(&s).unwrap();
        let text = st.to_string();
        assert!(text.contains("100.00% constant"));
    }
}
