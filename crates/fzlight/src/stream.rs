//! Owned compressed stream: serialized header + body, ready to be sent over a
//! wire or operated on homomorphically.

use crate::error::{Error, Result};
use crate::header::Header;

/// An owned, self-describing fZ-light compressed stream.
///
/// The in-memory representation is exactly the wire representation
/// ([`CompressedStream::as_bytes`]), so sending a stream through a
/// communication layer and re-materializing it on the other side
/// ([`CompressedStream::from_bytes`]) costs one header parse and no copies of
/// the body.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedStream {
    bytes: Vec<u8>,
    header: Header,
    body_start: usize,
}

impl CompressedStream {
    /// Assemble a stream from a header and the concatenated chunk payloads.
    ///
    /// Used by the compressor and by homomorphic operators; the header's
    /// offset table must describe `body` exactly.
    pub fn from_parts(header: Header, body: &[u8]) -> Self {
        debug_assert_eq!(header.body_len(), body.len());
        let body_start = Header::serialized_len(header.nchunks as usize);
        let mut bytes = Vec::with_capacity(body_start + body.len());
        header.write_to(&mut bytes);
        debug_assert_eq!(bytes.len(), body_start);
        bytes.extend_from_slice(body);
        CompressedStream { bytes, header, body_start }
    }

    /// Parse a stream from raw bytes (e.g. received from the network).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let (header, body_start) = Header::parse(&bytes)?;
        let need = body_start + header.body_len();
        if bytes.len() < need {
            return Err(Error::Truncated { need, have: bytes.len() });
        }
        if bytes.len() > need {
            return Err(Error::Corrupt("trailing bytes after body"));
        }
        Ok(CompressedStream { bytes, header, body_start })
    }

    /// The full wire representation (header + body).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the stream, yielding the wire bytes without copying.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Element count of the original data.
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Resolved absolute error bound.
    pub fn eb(&self) -> f64 {
        self.header.eb
    }

    /// Thread-chunk count.
    pub fn nchunks(&self) -> usize {
        self.header.nchunks as usize
    }

    /// Small-block length.
    pub fn block_len(&self) -> usize {
        self.header.block_len as usize
    }

    /// Payload bytes of chunk `i`.
    pub fn chunk_payload(&self, i: usize) -> &[u8] {
        let r = self.header.chunk_range(i);
        &self.bytes[self.body_start + r.start..self.body_start + r.end]
    }

    /// Total compressed size in bytes (header + body), i.e. what travels on
    /// the wire.
    pub fn compressed_size(&self) -> usize {
        self.bytes.len()
    }

    /// Original (uncompressed) size in bytes.
    pub fn original_size(&self) -> usize {
        self.n() * std::mem::size_of::<f32>()
    }

    /// Compression ratio `original / compressed`.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        self.original_size() as f64 / self.compressed_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, Config, ErrorBound};

    fn sample_stream() -> CompressedStream {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).cos()).collect();
        compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(3)).unwrap()
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let s = sample_stream();
        let s2 = CompressedStream::from_bytes(s.as_bytes().to_vec()).unwrap();
        assert_eq!(s, s2);
        assert_eq!(s.header(), s2.header());
    }

    #[test]
    fn chunk_payloads_tile_the_body() {
        let s = sample_stream();
        let total: usize = (0..s.nchunks()).map(|i| s.chunk_payload(i).len()).sum();
        assert_eq!(total, s.header().body_len());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_stream().into_bytes();
        bytes.push(0);
        assert!(matches!(
            CompressedStream::from_bytes(bytes),
            Err(Error::Corrupt("trailing bytes after body"))
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = sample_stream().into_bytes();
        let cut = bytes.len() - 3;
        assert!(CompressedStream::from_bytes(bytes[..cut].to_vec()).is_err());
    }

    #[test]
    fn ratio_reports_sensible_value() {
        let s = sample_stream();
        assert!(s.ratio() > 1.0);
        assert_eq!(s.original_size(), 5000 * 4);
    }
}
