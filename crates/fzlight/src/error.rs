//! Error type shared by compression, decompression and stream parsing.

use std::fmt;

/// Result alias for fZ-light operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by fZ-light.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The input contained a NaN or infinity, which error-bounded quantization
    /// cannot represent.
    NonFiniteInput { index: usize },
    /// A value's quantization integer does not fit in `i32`
    /// (`|v| / (2*eb)` too large). Use a larger error bound.
    QuantizationOverflow { index: usize, value: f32 },
    /// The configured error bound is not a positive finite number, or a
    /// relative bound met an all-constant/non-finite range.
    InvalidErrorBound { eb: f64 },
    /// `block_len` must be in `1..=64`.
    InvalidBlockLen { block_len: usize },
    /// The byte stream is not a valid fZ-light stream.
    Corrupt(&'static str),
    /// Stream ends before its declared contents.
    Truncated { need: usize, have: usize },
    /// Two streams passed to a homomorphic operation have incompatible
    /// parameters (length, error bound, block length or chunk layout).
    Mismatch(&'static str),
    /// A delta magnitude exceeded the 32-bit encodable range. Compression
    /// itself never produces this; it can arise when homomorphically
    /// accumulating many streams whose quantization integers grow too large.
    DeltaOverflow,
    /// Adding two quantization deltas overflowed the representable range.
    HomomorphicOverflow { chunk: usize },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NonFiniteInput { index } => {
                write!(f, "non-finite input value at index {index}")
            }
            Error::QuantizationOverflow { index, value } => write!(
                f,
                "quantization overflow at index {index} (value {value}); increase the error bound"
            ),
            Error::InvalidErrorBound { eb } => {
                write!(f, "invalid error bound {eb}: must be positive and finite")
            }
            Error::InvalidBlockLen { block_len } => {
                write!(f, "invalid block length {block_len}: must be in 1..=64")
            }
            Error::Corrupt(what) => write!(f, "corrupt fZ-light stream: {what}"),
            Error::Truncated { need, have } => {
                write!(f, "truncated fZ-light stream: need {need} bytes, have {have}")
            }
            Error::Mismatch(what) => {
                write!(f, "incompatible streams for homomorphic operation: {what}")
            }
            Error::DeltaOverflow => {
                write!(f, "delta magnitude exceeds the 32-bit encodable range")
            }
            Error::HomomorphicOverflow { chunk } => {
                write!(f, "homomorphic delta overflow in chunk {chunk}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::QuantizationOverflow { index: 7, value: 1.0e9 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("error bound"));
        assert!(Error::Corrupt("bad magic").to_string().contains("bad magic"));
        assert!(Error::Truncated { need: 10, have: 3 }.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Corrupt("x"));
    }
}
