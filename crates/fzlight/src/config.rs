//! Compressor configuration: error bound, block length and thread count.

use crate::error::{Error, Result};

/// Default small-block length (elements per fixed-length-encoded block).
///
/// 32 matches the paper's cuSZp/fZ-light block size and keeps the residual-bit
/// plane byte-aligned (`32 * r` bits is always a whole number of bytes).
pub const DEFAULT_BLOCK_LEN: usize = 32;

/// Maximum supported small-block length. Sign bitmaps are stored in a `u64`.
pub const MAX_BLOCK_LEN: usize = 64;

/// User-specified error bound.
///
/// The paper evaluates both absolute bounds (collectives, default `1e-4`) and
/// *relative* bounds (compression tables, `1e-1..=1e-4`), where a relative
/// bound is resolved to `rel * (max - min)` of the input field before
/// quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute point-wise bound: `|v - v'| <= eb`.
    Abs(f64),
    /// Range-relative bound: `|v - v'| <= rel * (max(data) - min(data))`.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to the absolute bound used for quantization.
    ///
    /// For [`ErrorBound::Rel`] this scans the data once for its value range;
    /// a zero range (constant data) falls back to `rel * max(|v|)` and, if the
    /// data is all zero, to `rel` itself so quantization stays well defined.
    pub fn resolve(&self, data: &[f32]) -> Result<f64> {
        let raw = match *self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(rel) => {
                if !(rel.is_finite() && rel > 0.0) {
                    return Err(Error::InvalidErrorBound { eb: rel });
                }
                if data.is_empty() {
                    return Ok(rel);
                }
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for &v in data {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(Error::NonFiniteInput { index: 0 });
                }
                let range = (hi - lo) as f64;
                if range > 0.0 {
                    rel * range
                } else {
                    let amp = lo.abs().max(hi.abs()) as f64;
                    if amp > 0.0 {
                        rel * amp
                    } else {
                        rel
                    }
                }
            }
        };
        if raw.is_finite() && raw > 0.0 {
            Ok(raw)
        } else {
            Err(Error::InvalidErrorBound { eb: raw })
        }
    }
}

/// Compression configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Error bound applied during quantization.
    pub eb: ErrorBound,
    /// Small-block length (elements per fixed-length-encoded block).
    pub block_len: usize,
    /// Number of compression threads, which is also the number of
    /// thread-chunks in the stream layout. `1` = single-thread mode.
    pub threads: usize,
}

impl Config {
    /// Create a configuration with the given error bound, the default block
    /// length and single-threaded operation.
    pub fn new(eb: ErrorBound) -> Self {
        Config { eb, block_len: DEFAULT_BLOCK_LEN, threads: 1 }
    }

    /// Set the number of compression threads (and thread-chunks).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the small-block length.
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        self.block_len = block_len;
        self
    }

    /// Validate structural parameters (the error bound is validated when it
    /// is resolved against the data).
    pub fn validate(&self) -> Result<()> {
        if self.block_len == 0 || self.block_len > MAX_BLOCK_LEN {
            return Err(Error::InvalidBlockLen { block_len: self.block_len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_bound_resolves_verbatim() {
        assert_eq!(ErrorBound::Abs(1e-3).resolve(&[1.0, 2.0]).unwrap(), 1e-3);
    }

    #[test]
    fn rel_bound_scales_with_range() {
        let data = [0.0f32, 10.0, -10.0];
        let eb = ErrorBound::Rel(1e-2).resolve(&data).unwrap();
        assert!((eb - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rel_bound_on_constant_data_uses_amplitude() {
        let data = [5.0f32; 8];
        let eb = ErrorBound::Rel(1e-2).resolve(&data).unwrap();
        assert!((eb - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rel_bound_on_zero_data_falls_back_to_rel() {
        let data = [0.0f32; 8];
        let eb = ErrorBound::Rel(1e-2).resolve(&data).unwrap();
        assert_eq!(eb, 1e-2);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(ErrorBound::Abs(0.0).resolve(&[1.0]).is_err());
        assert!(ErrorBound::Abs(-1.0).resolve(&[1.0]).is_err());
        assert!(ErrorBound::Abs(f64::NAN).resolve(&[1.0]).is_err());
        assert!(ErrorBound::Rel(0.0).resolve(&[1.0]).is_err());
    }

    #[test]
    fn block_len_validation() {
        let mut cfg = Config::new(ErrorBound::Abs(1e-3));
        assert!(cfg.validate().is_ok());
        cfg.block_len = 0;
        assert!(cfg.validate().is_err());
        cfg.block_len = 65;
        assert!(cfg.validate().is_err());
        cfg.block_len = 64;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn threads_clamped_to_at_least_one() {
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(0);
        assert_eq!(cfg.threads, 1);
    }
}
