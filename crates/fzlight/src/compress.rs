//! Parallel fused compression (quantization + prediction + encoding in one
//! pass over contiguous memory, Sec. III-B.2).

use crate::chunk::{chunk_spans, effective_chunks, ChunkSpan};
use crate::codec;
use crate::config::{Config, MAX_BLOCK_LEN};
use crate::error::Result;
use crate::header::Header;
use crate::quantize::quantize_block;
use crate::stream::CompressedStream;

/// Compress `data` with the given configuration.
///
/// Relative error bounds are resolved against the data range first; see
/// [`compress_resolved`] when the absolute bound is already known (e.g. in
/// collectives, where every rank must bake the *same* bound into its stream).
pub fn compress(data: &[f32], cfg: &Config) -> Result<CompressedStream> {
    cfg.validate()?;
    let eb = cfg.eb.resolve(data)?;
    compress_resolved(data, eb, cfg.block_len, cfg.threads)
}

/// Compress with an already-resolved absolute error bound.
///
/// `threads` is both the parallelism degree and the number of thread-chunks
/// in the stream layout (clamped to the element count).
pub fn compress_resolved(
    data: &[f32],
    eb_abs: f64,
    block_len: usize,
    threads: usize,
) -> Result<CompressedStream> {
    let n = data.len();
    let nchunks = effective_chunks(n, threads);
    let spans = chunk_spans(n, nchunks);
    let inv_2eb = 1.0 / (2.0 * eb_abs);

    let parts: Vec<Result<Vec<u8>>> = if nchunks <= 1 {
        spans
            .iter()
            .map(|span| {
                let mut out = chunk_buffer(span.len, block_len);
                compress_chunk(slice_of(data, span), span.start, block_len, inv_2eb, &mut out)
                    .map(|()| out)
            })
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .map(|span| {
                    let span = *span;
                    s.spawn(move || {
                        let mut out = chunk_buffer(span.len, block_len);
                        compress_chunk(
                            slice_of(data, &span),
                            span.start,
                            block_len,
                            inv_2eb,
                            &mut out,
                        )
                        .map(|()| out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("compressor thread panicked")).collect()
        })
    };

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body_len = 0usize;
    let mut chunks = Vec::with_capacity(nchunks);
    for part in parts {
        let part = part?;
        body_len += part.len();
        offsets.push(body_len as u64);
        chunks.push(part);
    }

    let mut body = Vec::with_capacity(body_len);
    for c in &chunks {
        body.extend_from_slice(c);
    }

    let header = Header {
        n: n as u64,
        eb: eb_abs,
        block_len: block_len as u32,
        nchunks: nchunks as u32,
        offsets,
    };
    Ok(CompressedStream::from_parts(header, &body))
}

fn slice_of<'a>(data: &'a [f32], span: &ChunkSpan) -> &'a [f32] {
    &data[span.start..span.start + span.len]
}

/// Initial capacity guess for a chunk's compressed bytes: outlier + one code
/// byte per block + a quarter of the raw size (ratio 4 heuristic; `Vec` growth
/// handles low-compressibility data).
fn chunk_buffer(len: usize, block_len: usize) -> Vec<u8> {
    Vec::with_capacity(4 + len.div_ceil(block_len) + len)
}

/// Fused quantization + prediction + encoding of one thread-chunk.
///
/// Emits `[outlier i32][block records...]` into `out`. The first delta of the
/// chunk is always zero (the first quantization integer lives in the
/// outlier), which the homomorphic sum preserves.
pub(crate) fn compress_chunk(
    chunk: &[f32],
    base: usize,
    block_len: usize,
    inv_2eb: f64,
    out: &mut Vec<u8>,
) -> Result<()> {
    debug_assert!(!chunk.is_empty());
    debug_assert!(block_len <= MAX_BLOCK_LEN);
    let mut qbuf = [0i32; MAX_BLOCK_LEN];
    let mut mags = [0u32; MAX_BLOCK_LEN];
    let mut q_prev = 0i64;
    let mut index = base;
    for block in chunk.chunks(block_len) {
        let qb = &mut qbuf[..block.len()];
        quantize_block(block, inv_2eb, index, qb)?;
        if index == base {
            // chunk outlier: the first quantization integer, stored verbatim
            out.extend_from_slice(&qb[0].to_le_bytes());
            q_prev = qb[0] as i64;
        }
        let mut signs = 0u64;
        for (k, &qi) in qb.iter().enumerate() {
            let q = qi as i64;
            let d = q - q_prev;
            q_prev = q;
            // |d| <= 2^32 - 2 because both integers fit in i32.
            mags[k] = d.unsigned_abs() as u32;
            signs |= u64::from(d < 0) << k;
        }
        index += block.len();
        codec::encode_block(&mags[..block.len()], signs, out);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;

    #[test]
    fn chunk_layout_matches_thread_count() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-2)).with_threads(4)).unwrap();
        assert_eq!(s.nchunks(), 4);
        let s1 = compress(&data, &Config::new(ErrorBound::Abs(1e-2))).unwrap();
        assert_eq!(s1.nchunks(), 1);
    }

    #[test]
    fn first_delta_of_every_chunk_is_zero() {
        // The first block of each chunk must decode with delta[0] == 0.
        let data: Vec<f32> = (0..256).map(|i| (i as f32).sin() * 10.0).collect();
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(4)).unwrap();
        for ci in 0..s.nchunks() {
            let payload = s.chunk_payload(ci);
            let mut deltas = [0i64; 32];
            codec::decode_block(&payload[4..], &mut deltas).unwrap();
            assert_eq!(deltas[0], 0, "chunk {ci}");
        }
    }

    #[test]
    fn compressed_size_accounts_header_and_body() {
        let data = vec![0.0f32; 4096];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(2)).unwrap();
        // all-zero data: per chunk 4-byte outlier + 64 one-byte constant blocks
        let expected_body = 2 * (4 + 64);
        assert_eq!(s.header().body_len(), expected_body);
        assert_eq!(s.compressed_size(), crate::header::Header::serialized_len(2) + expected_body);
    }

    #[test]
    fn error_reported_with_global_index() {
        let mut data: Vec<f32> = vec![1.0; 100];
        data[73] = f32::NAN;
        let err = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(3))
            .expect_err("should fail");
        assert_eq!(err, crate::error::Error::NonFiniteInput { index: 73 });
    }
}
