//! Ultra-fast bit-shifting fixed-length block codec (Sec. III-B.3).
//!
//! A *block* is up to [`crate::config::MAX_BLOCK_LEN`] signed quantization
//! deltas. Deltas are differences of `i32` quantization integers, so a single
//! delta can span 33 bits signed; they are therefore handled as `i64` with a
//! sign bitmap plus a `u32` magnitude (magnitudes above `u32::MAX` are a
//! [`DeltaOverflow`](crate::error::Error::DeltaOverflow), which can only arise
//! from homomorphic accumulation, never from compression itself).
//!
//! On the wire a block is:
//!
//! ```text
//! [ code: u8 ]                      bit width c of the largest |delta|
//! if c > 0:
//!   [ signs: ceil(L/8) bytes ]      LSB-first sign bitmap (1 = negative)
//!   [ planes: (c/8) * L bytes ]     full byte planes, plane p = bits 8p..8p+8
//!   [ resid: ceil(L*r/8) bytes ]    r = c%8 high residual bits, LSB-first
//! ```
//!
//! `c == 0` marks a **constant block** (all deltas zero) — a single byte on
//! the wire. This is the representation the `hZ-dynamic` pipeline heuristic
//! dispatches on: constant+constant blocks need no work at all, and
//! constant+non-constant blocks are verbatim byte copies.
//!
//! The byte-plane layout is the CPU analogue of the paper's
//! `ultra_fast_bit_shifting_x` scheme: full bytes of every element are stored
//! with plain shifts (no bit-granular work), and only the final `r < 8`
//! residual bits per element go through a packed bit writer.

use crate::error::{Error, Result};

/// Number of sign-bitmap bytes for a block of `len` deltas.
#[inline]
pub const fn sign_bytes(len: usize) -> usize {
    len.div_ceil(8)
}

/// Bit width needed to store `max_mag` (0 for 0).
#[inline]
pub fn code_for_max(max_mag: u32) -> u8 {
    (32 - max_mag.leading_zeros()) as u8
}

/// Payload size in bytes (excluding the 1-byte code) for a block of `len`
/// deltas encoded with code length `c`.
#[inline]
pub const fn payload_size(c: u8, len: usize) -> usize {
    if c == 0 {
        return 0;
    }
    let byte_count = (c / 8) as usize;
    let r = (c % 8) as usize;
    sign_bytes(len) + byte_count * len + (len * r).div_ceil(8)
}

/// Total on-wire size (code byte + payload).
#[inline]
pub const fn block_size(c: u8, len: usize) -> usize {
    1 + payload_size(c, len)
}

/// Read the code byte of the block starting at `input[0]`.
#[inline]
pub fn peek_code(input: &[u8]) -> Result<u8> {
    match input.first() {
        Some(&c) if c <= 32 => Ok(c),
        Some(_) => Err(Error::Corrupt("code length > 32")),
        None => Err(Error::Truncated { need: 1, have: 0 }),
    }
}

/// Encode a block given `u32` magnitudes and a sign bitmap; appends to `out`
/// and returns the code length used.
///
/// `signs` bit `i` set means delta `i` is negative. Magnitude 0 must carry
/// sign bit 0 so the encoding is canonical (the homomorphic sum relies on
/// byte-identical copies for pipelines ② and ③).
pub fn encode_block(mags: &[u32], signs: u64, out: &mut Vec<u8>) -> u8 {
    debug_assert!(mags.len() <= crate::config::MAX_BLOCK_LEN);
    let len = mags.len();
    let mut max = 0u32;
    for &m in mags {
        max |= m;
    }
    let c = code_for_max(max);
    out.push(c);
    if c == 0 {
        return 0;
    }
    // sign bitmap
    let sb = sign_bytes(len);
    for b in 0..sb {
        out.push(((signs >> (8 * b)) & 0xFF) as u8);
    }
    // full byte planes
    let byte_count = (c / 8) as usize;
    for p in 0..byte_count {
        let shift = 8 * p as u32;
        for &m in mags {
            out.push((m >> shift) as u8);
        }
    }
    // residual (high) bits, LSB-first packed
    let r = (c % 8) as u32;
    if r > 0 {
        let base = 8 * byte_count as u32;
        let mask = (1u32 << r) - 1;
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &m in mags {
            acc |= (((m >> base) & mask) as u64) << nbits;
            nbits += r;
            while nbits >= 8 {
                out.push((acc & 0xFF) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xFF) as u8);
        }
    }
    c
}

/// Encode a block of signed `i64` deltas (computes magnitudes + sign bitmap
/// first). Appends to `out`, returns the code length used.
///
/// Fails with [`Error::DeltaOverflow`] if any `|delta| > u32::MAX`.
pub fn encode_deltas(deltas: &[i64], out: &mut Vec<u8>) -> Result<u8> {
    debug_assert!(deltas.len() <= crate::config::MAX_BLOCK_LEN);
    let mut mags = [0u32; crate::config::MAX_BLOCK_LEN];
    let mut signs = 0u64;
    for (i, &d) in deltas.iter().enumerate() {
        let mag = d.unsigned_abs();
        if mag > u32::MAX as u64 {
            return Err(Error::DeltaOverflow);
        }
        mags[i] = mag as u32;
        signs |= u64::from(d < 0) << i;
    }
    Ok(encode_block(&mags[..deltas.len()], signs, out))
}

/// Decode the block starting at `input[0]` into `deltas` (whose length is the
/// block length). Returns the number of bytes consumed.
pub fn decode_block(input: &[u8], deltas: &mut [i64]) -> Result<usize> {
    let len = deltas.len();
    debug_assert!(len <= crate::config::MAX_BLOCK_LEN);
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    if c == 0 {
        deltas.fill(0);
        return Ok(1);
    }
    let mut pos = 1usize;
    // sign bitmap
    let sb = sign_bytes(len);
    let mut signs = 0u64;
    for b in 0..sb {
        signs |= (input[pos + b] as u64) << (8 * b);
    }
    pos += sb;
    // full byte planes
    let byte_count = (c / 8) as usize;
    let mut mags = [0u32; crate::config::MAX_BLOCK_LEN];
    for p in 0..byte_count {
        let shift = 8 * p as u32;
        let plane = &input[pos..pos + len];
        for (i, &byte) in plane.iter().enumerate() {
            mags[i] |= (byte as u32) << shift;
        }
        pos += len;
    }
    // residual bits
    let r = (c % 8) as u32;
    if r > 0 {
        let base = 8 * byte_count as u32;
        let mask = (1u64 << r) - 1;
        let mut acc = 0u64;
        let mut nbits = 0u32;
        let mut src = pos;
        for m in mags.iter_mut().take(len) {
            while nbits < r {
                acc |= (input[src] as u64) << nbits;
                src += 1;
                nbits += 8;
            }
            *m |= ((acc & mask) as u32) << base;
            acc >>= r;
            nbits -= r;
        }
    }
    // apply signs
    for (i, d) in deltas.iter_mut().enumerate() {
        let m = mags[i] as i64;
        *d = if (signs >> i) & 1 == 1 { -m } else { m };
    }
    Ok(total)
}

/// Copy a whole encoded block (code byte + payload) from `input` to `out`.
/// Returns the number of bytes copied. Used by hZ-dynamic pipelines ② and ③.
pub fn copy_block(input: &[u8], len: usize, out: &mut Vec<u8>) -> Result<usize> {
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    out.extend_from_slice(&input[..total]);
    Ok(total)
}

/// Skip over an encoded block, returning its on-wire size.
pub fn skip_block(input: &[u8], len: usize) -> Result<usize> {
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(deltas: &[i64]) -> Vec<i64> {
        let mut buf = Vec::new();
        encode_deltas(deltas, &mut buf).unwrap();
        let mut out = vec![0i64; deltas.len()];
        let used = decode_block(&buf, &mut out).unwrap();
        assert_eq!(used, buf.len(), "decoder must consume exactly what encoder wrote");
        out
    }

    #[test]
    fn zero_block_is_one_byte() {
        let deltas = [0i64; 32];
        let mut buf = Vec::new();
        let c = encode_deltas(&deltas, &mut buf).unwrap();
        assert_eq!(c, 0);
        assert_eq!(buf, vec![0u8]);
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn small_values_roundtrip() {
        let deltas: Vec<i64> = (0..32).map(|i| (i % 7) - 3).collect();
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn every_code_length_roundtrips() {
        for c in 1..=32u32 {
            let hi = (1u64 << c) - 1;
            let deltas: Vec<i64> = (0..32)
                .map(|i| {
                    let v = (hi * (i as u64 + 1) / 32) as i64;
                    if i % 2 == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            assert_eq!(roundtrip(&deltas), deltas, "code length {c}");
        }
    }

    #[test]
    fn extreme_deltas_roundtrip() {
        let max = u32::MAX as i64;
        let deltas = [max, -max, 0, -1, 1, max - 1, 0, 0];
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn delta_overflow_detected() {
        let deltas = [u32::MAX as i64 + 1];
        let mut buf = Vec::new();
        assert!(matches!(encode_deltas(&deltas, &mut buf), Err(Error::DeltaOverflow)));
        let deltas = [-(u32::MAX as i64) - 1];
        assert!(matches!(encode_deltas(&deltas, &mut buf), Err(Error::DeltaOverflow)));
    }

    #[test]
    fn partial_blocks_roundtrip() {
        for len in 1..=33usize {
            let len = len.min(crate::config::MAX_BLOCK_LEN);
            let deltas: Vec<i64> = (0..len).map(|i| (i as i64 - 5) * 1000).collect();
            assert_eq!(roundtrip(&deltas), deltas, "len {len}");
        }
    }

    #[test]
    fn sixty_four_element_blocks_roundtrip() {
        let deltas: Vec<i64> = (0..64).map(|i| (i as i64 - 32) * 77777).collect();
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn block_size_matches_encoded_size() {
        for c_target in [0u32, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32] {
            let v: i64 = if c_target == 0 { 0 } else { 1i64 << (c_target - 1) };
            let deltas = vec![v; 32];
            let mut buf = Vec::new();
            let c = encode_deltas(&deltas, &mut buf).unwrap();
            assert_eq!(c as u32, c_target);
            assert_eq!(buf.len(), block_size(c, 32));
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let deltas = [12345i64; 32];
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        let mut out = [0i64; 32];
        for cut in 0..buf.len() {
            assert!(decode_block(&buf[..cut], &mut out).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn invalid_code_is_rejected() {
        let buf = [40u8, 0, 0];
        let mut out = [0i64; 4];
        assert!(matches!(decode_block(&buf, &mut out), Err(Error::Corrupt(_))));
    }

    #[test]
    fn copy_and_skip_agree_with_decode() {
        let deltas: Vec<i64> = (0..32).map(|i| i * 37 - 400).collect();
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        buf.extend_from_slice(&[0xAA; 5]); // trailing noise
        let mut copied = Vec::new();
        let n1 = copy_block(&buf, 32, &mut copied).unwrap();
        let n2 = skip_block(&buf, 32).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(&buf[..n1], copied.as_slice());
    }

    #[test]
    fn canonical_zero_sign_for_zero_magnitude() {
        let deltas = [0i64, -5, 0, 5];
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        // signs byte: only bit 1 set
        assert_eq!(buf[1], 0b0000_0010);
    }

    #[test]
    fn encoding_is_deterministic() {
        let deltas: Vec<i64> = (0..32).map(|i| i * i - 200).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_deltas(&deltas, &mut a).unwrap();
        encode_deltas(&deltas, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
