//! Ultra-fast bit-shifting fixed-length block codec (Sec. III-B.3).
//!
//! A *block* is up to [`crate::config::MAX_BLOCK_LEN`] signed quantization
//! deltas. Deltas are differences of `i32` quantization integers, so a single
//! delta can span 33 bits signed; they are therefore handled as `i64` with a
//! sign bitmap plus a `u32` magnitude (magnitudes above `u32::MAX` are a
//! [`DeltaOverflow`](crate::error::Error::DeltaOverflow), which can only arise
//! from homomorphic accumulation, never from compression itself).
//!
//! On the wire a block is:
//!
//! ```text
//! [ code: u8 ]                      bit width c of the largest |delta|
//! if c > 0:
//!   [ signs: ceil(L/8) bytes ]      LSB-first sign bitmap (1 = negative)
//!   [ planes: (c/8) * L bytes ]     full byte planes, plane p = bits 8p..8p+8
//!   [ resid: ceil(L*r/8) bytes ]    r = c%8 high residual bits, LSB-first
//! ```
//!
//! `c == 0` marks a **constant block** (all deltas zero) — a single byte on
//! the wire. This is the representation the `hZ-dynamic` pipeline heuristic
//! dispatches on: constant+constant blocks need no work at all, and
//! constant+non-constant blocks are verbatim byte copies.
//!
//! The byte-plane layout is the CPU analogue of the paper's
//! `ultra_fast_bit_shifting_x` scheme: full bytes of every element are stored
//! with plain shifts (no bit-granular work), and only the final `r < 8`
//! residual bits per element go through a packed bit writer.
//!
//! ## Word-parallel hot paths
//!
//! The production [`encode_block`]/[`decode_block`] pair is word-parallel:
//! output is written once via `resize` + slice stores (no per-byte `Vec`
//! growth checks), the sign bitmap moves as one `u64`, byte planes are plain
//! vectorizable gather/scatter loops, and the residual plane exploits that
//! **8 elements × r bits is always exactly `r` whole bytes** — each group of
//! eight elements packs into one `u64` with shifts and moves with a single
//! bounded copy, no carry state between groups. Sign application on decode is
//! branchless (`(m ^ -s) + s`). The original byte-at-a-time/bit-buffered
//! loops are retained as [`encode_block_scalar`]/[`decode_block_scalar`]: the
//! verified reference the fast path is property-tested against byte-for-byte,
//! and the baseline the `hzc kernels` harness reports speedup over.

use crate::config::MAX_BLOCK_LEN;
use crate::error::{Error, Result};

/// Number of sign-bitmap bytes for a block of `len` deltas.
#[inline]
pub const fn sign_bytes(len: usize) -> usize {
    len.div_ceil(8)
}

/// Bit width needed to store `max_mag` (0 for 0).
#[inline]
pub fn code_for_max(max_mag: u32) -> u8 {
    (32 - max_mag.leading_zeros()) as u8
}

/// Payload size in bytes (excluding the 1-byte code) for a block of `len`
/// deltas encoded with code length `c`.
#[inline]
pub const fn payload_size(c: u8, len: usize) -> usize {
    if c == 0 {
        return 0;
    }
    let byte_count = (c / 8) as usize;
    let r = (c % 8) as usize;
    sign_bytes(len) + byte_count * len + (len * r).div_ceil(8)
}

/// Total on-wire size (code byte + payload).
#[inline]
pub const fn block_size(c: u8, len: usize) -> usize {
    1 + payload_size(c, len)
}

/// Read the code byte of the block starting at `input[0]`.
#[inline]
pub fn peek_code(input: &[u8]) -> Result<u8> {
    match input.first() {
        Some(&c) if c <= 32 => Ok(c),
        Some(_) => Err(Error::Corrupt("code length > 32")),
        None => Err(Error::Truncated { need: 1, have: 0 }),
    }
}

/// Encode a block given `u32` magnitudes and a sign bitmap; appends to `out`
/// and returns the code length used.
///
/// `signs` bit `i` set means delta `i` is negative. Magnitude 0 must carry
/// sign bit 0 so the encoding is canonical (the homomorphic sum relies on
/// byte-identical copies for pipelines ② and ③).
///
/// Word-parallel fast path, byte-identical to [`encode_block_scalar`].
pub fn encode_block(mags: &[u32], signs: u64, out: &mut Vec<u8>) -> u8 {
    debug_assert!(mags.len() <= MAX_BLOCK_LEN);
    let len = mags.len();
    let mut max = 0u32;
    for &m in mags {
        max |= m;
    }
    let c = code_for_max(max);
    let start = out.len();
    out.resize(start + block_size(c, len), 0);
    let buf = &mut out[start..];
    buf[0] = c;
    if c == 0 {
        return 0;
    }
    // sign bitmap: one u64 store, clipped
    let sb = sign_bytes(len);
    buf[1..1 + sb].copy_from_slice(&signs.to_le_bytes()[..sb]);
    let mut pos = 1 + sb;
    // full byte planes: contiguous scatter, vectorizable
    let byte_count = (c / 8) as usize;
    for p in 0..byte_count {
        let shift = 8 * p as u32;
        for (o, &m) in buf[pos..pos + len].iter_mut().zip(mags) {
            *o = (m >> shift) as u8;
        }
        pos += len;
    }
    // residual (high) bits: 8 elements * r bits == r whole bytes per group.
    // Dispatch to a monomorphized packer so the group loop fully unrolls
    // with constant shifts (a runtime `j * r` shift defeats unrolling).
    let r = (c % 8) as u32;
    let base = 8 * byte_count as u32;
    match r {
        0 => {}
        1 => pack_resid::<1>(mags, base, &mut buf[pos..]),
        2 => pack_resid::<2>(mags, base, &mut buf[pos..]),
        3 => pack_resid::<3>(mags, base, &mut buf[pos..]),
        4 => pack_resid::<4>(mags, base, &mut buf[pos..]),
        5 => pack_resid::<5>(mags, base, &mut buf[pos..]),
        6 => pack_resid::<6>(mags, base, &mut buf[pos..]),
        _ => pack_resid::<7>(mags, base, &mut buf[pos..]),
    }
    c
}

/// Pack the `R`-bit residual plane of every magnitude (bits `base..base+R`)
/// into `buf`: each full 8-element group is built in one `u64` and stored as
/// exactly `R` bytes; the tail group stores `ceil(tail*R/8)` bytes.
#[inline]
fn pack_resid<const R: usize>(mags: &[u32], base: u32, buf: &mut [u8]) {
    let mask = (1u32 << R) - 1;
    let len = mags.len();
    let full_groups = len / 8;
    let mut pos = 0usize;
    for g in 0..full_groups {
        let mut w = 0u64;
        for (j, &m) in mags[8 * g..8 * g + 8].iter().enumerate() {
            w |= (((m >> base) & mask) as u64) << (j * R);
        }
        buf[pos..pos + R].copy_from_slice(&w.to_le_bytes()[..R]);
        pos += R;
    }
    let tail = len % 8;
    if tail > 0 {
        let mut w = 0u64;
        for (j, &m) in mags[8 * full_groups..].iter().enumerate() {
            w |= (((m >> base) & mask) as u64) << (j * R);
        }
        let nb = (tail * R).div_ceil(8);
        buf[pos..pos + nb].copy_from_slice(&w.to_le_bytes()[..nb]);
    }
}

/// Scalar reference encoder: per-byte `Vec::push` and a carried bit
/// accumulator, exactly the original element-at-a-time loop. Retained as the
/// verified baseline for differential tests and the kernel harness.
pub fn encode_block_scalar(mags: &[u32], signs: u64, out: &mut Vec<u8>) -> u8 {
    debug_assert!(mags.len() <= MAX_BLOCK_LEN);
    let len = mags.len();
    let mut max = 0u32;
    for &m in mags {
        max |= m;
    }
    let c = code_for_max(max);
    out.push(c);
    if c == 0 {
        return 0;
    }
    let sb = sign_bytes(len);
    for b in 0..sb {
        out.push(((signs >> (8 * b)) & 0xFF) as u8);
    }
    let byte_count = (c / 8) as usize;
    for p in 0..byte_count {
        let shift = 8 * p as u32;
        for &m in mags {
            out.push((m >> shift) as u8);
        }
    }
    let r = (c % 8) as u32;
    if r > 0 {
        let base = 8 * byte_count as u32;
        let mask = (1u32 << r) - 1;
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &m in mags {
            acc |= (((m >> base) & mask) as u64) << nbits;
            nbits += r;
            while nbits >= 8 {
                out.push((acc & 0xFF) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xFF) as u8);
        }
    }
    c
}

/// Encode a block of signed `i64` deltas (computes magnitudes + sign bitmap
/// first). Appends to `out`, returns the code length used.
///
/// Fails with [`Error::DeltaOverflow`] if any `|delta| > u32::MAX`.
pub fn encode_deltas(deltas: &[i64], out: &mut Vec<u8>) -> Result<u8> {
    debug_assert!(deltas.len() <= MAX_BLOCK_LEN);
    let mut mags = [0u32; MAX_BLOCK_LEN];
    let mut signs = 0u64;
    let mut wide = 0u64;
    for (i, (o, &d)) in mags.iter_mut().zip(deltas).enumerate() {
        let mag = d.unsigned_abs();
        wide |= mag;
        *o = mag as u32;
        signs |= u64::from(d < 0) << i;
    }
    if wide > u32::MAX as u64 {
        return Err(Error::DeltaOverflow);
    }
    Ok(encode_block(&mags[..deltas.len()], signs, out))
}

/// Reference counterpart of [`encode_deltas`] built on the scalar encoder.
pub fn encode_deltas_scalar(deltas: &[i64], out: &mut Vec<u8>) -> Result<u8> {
    debug_assert!(deltas.len() <= MAX_BLOCK_LEN);
    let mut mags = [0u32; MAX_BLOCK_LEN];
    let mut signs = 0u64;
    for (i, &d) in deltas.iter().enumerate() {
        let mag = d.unsigned_abs();
        if mag > u32::MAX as u64 {
            return Err(Error::DeltaOverflow);
        }
        mags[i] = mag as u32;
        signs |= u64::from(d < 0) << i;
    }
    Ok(encode_block_scalar(&mags[..deltas.len()], signs, out))
}

/// Decode the magnitude planes + sign bitmap of a non-constant block body
/// (`input` starts right after the code byte). Shared by the delta and
/// parts decoders; the caller has already validated the total length.
fn decode_body(input: &[u8], c: u8, len: usize, mags: &mut [u32], signs: &mut u64) {
    // sign bitmap as one u64 load, clipped
    let sb = sign_bytes(len);
    let mut sbuf = [0u8; 8];
    sbuf[..sb].copy_from_slice(&input[..sb]);
    *signs = u64::from_le_bytes(sbuf);
    let mut pos = sb;
    // full byte planes: contiguous gather, vectorizable. The first plane
    // stores (no prior fill needed); later planes OR.
    let byte_count = (c / 8) as usize;
    let r = (c % 8) as u32;
    if byte_count == 0 {
        // residual-only block (c < 8, the dominant case on smooth fields):
        // magnitudes come wholly from the packed residual plane.
        match r {
            1 => unpack_resid::<1, false>(&input[pos..], 0, &mut mags[..len]),
            2 => unpack_resid::<2, false>(&input[pos..], 0, &mut mags[..len]),
            3 => unpack_resid::<3, false>(&input[pos..], 0, &mut mags[..len]),
            4 => unpack_resid::<4, false>(&input[pos..], 0, &mut mags[..len]),
            5 => unpack_resid::<5, false>(&input[pos..], 0, &mut mags[..len]),
            6 => unpack_resid::<6, false>(&input[pos..], 0, &mut mags[..len]),
            _ => unpack_resid::<7, false>(&input[pos..], 0, &mut mags[..len]),
        }
        return;
    }
    for (m, &byte) in mags[..len].iter_mut().zip(&input[pos..pos + len]) {
        *m = byte as u32;
    }
    pos += len;
    for p in 1..byte_count {
        let shift = 8 * p as u32;
        for (m, &byte) in mags[..len].iter_mut().zip(&input[pos..pos + len]) {
            *m |= (byte as u32) << shift;
        }
        pos += len;
    }
    let base = 8 * byte_count as u32;
    match r {
        0 => {}
        1 => unpack_resid::<1, true>(&input[pos..], base, &mut mags[..len]),
        2 => unpack_resid::<2, true>(&input[pos..], base, &mut mags[..len]),
        3 => unpack_resid::<3, true>(&input[pos..], base, &mut mags[..len]),
        4 => unpack_resid::<4, true>(&input[pos..], base, &mut mags[..len]),
        5 => unpack_resid::<5, true>(&input[pos..], base, &mut mags[..len]),
        6 => unpack_resid::<6, true>(&input[pos..], base, &mut mags[..len]),
        _ => unpack_resid::<7, true>(&input[pos..], base, &mut mags[..len]),
    }
}

/// Unpack the `R`-bit residual plane into `mags` (bits `base..base+R`): one
/// bounded `u64` load per 8-element group, fully unrolled for constant `R`.
/// `OR` selects accumulate (after byte planes) vs plain store (c < 8).
#[inline]
fn unpack_resid<const R: usize, const OR: bool>(input: &[u8], base: u32, mags: &mut [u32]) {
    let mask = (1u64 << R) - 1;
    let len = mags.len();
    let full_groups = len / 8;
    let mut pos = 0usize;
    for g in 0..full_groups {
        let mut wbuf = [0u8; 8];
        wbuf[..R].copy_from_slice(&input[pos..pos + R]);
        let w = u64::from_le_bytes(wbuf);
        for (j, m) in mags[8 * g..8 * g + 8].iter_mut().enumerate() {
            let bits = (((w >> (j * R)) & mask) as u32) << base;
            if OR {
                *m |= bits;
            } else {
                *m = bits;
            }
        }
        pos += R;
    }
    let tail = len % 8;
    if tail > 0 {
        let nb = (tail * R).div_ceil(8);
        let mut wbuf = [0u8; 8];
        wbuf[..nb].copy_from_slice(&input[pos..pos + nb]);
        let w = u64::from_le_bytes(wbuf);
        for (j, m) in mags[8 * full_groups..len].iter_mut().enumerate() {
            let bits = (((w >> (j * R)) & mask) as u32) << base;
            if OR {
                *m |= bits;
            } else {
                *m = bits;
            }
        }
    }
}

/// Store (`MODE == 0`), add (`MODE == 1`), or subtract (`MODE == 2`) the
/// decoded deltas into `deltas`. One body serves all three so the bit
/// unpacking stays identical; `MODE` is const, so the sink folds to a single
/// instruction per element.
#[inline]
fn decode_block_with<const MODE: u8>(input: &[u8], deltas: &mut [i64]) -> Result<usize> {
    let len = deltas.len();
    debug_assert!(len <= MAX_BLOCK_LEN);
    let sink = |slot: &mut i64, d: i64| match MODE {
        0 => *slot = d,
        1 => *slot += d,
        _ => *slot -= d,
    };
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    if c == 0 {
        // all deltas are zero: nothing to accumulate in add/sub mode
        if MODE == 0 {
            deltas.fill(0);
        }
        return Ok(1);
    }
    if c < 8 {
        // residual-only block: skip the magnitude staging array entirely and
        // apply signs while unpacking (one pass, branchless).
        let sb = sign_bytes(len);
        let mut sbuf = [0u8; 8];
        sbuf[..sb].copy_from_slice(&input[1..1 + sb]);
        let signs = u64::from_le_bytes(sbuf);
        let resid = &input[1 + sb..total];
        match c {
            1 => unpack_signed::<1>(resid, signs, deltas, sink),
            2 => unpack_signed::<2>(resid, signs, deltas, sink),
            3 => unpack_signed::<3>(resid, signs, deltas, sink),
            4 => unpack_signed::<4>(resid, signs, deltas, sink),
            5 => unpack_signed::<5>(resid, signs, deltas, sink),
            6 => unpack_signed::<6>(resid, signs, deltas, sink),
            _ => unpack_signed::<7>(resid, signs, deltas, sink),
        }
        return Ok(total);
    }
    let mut mags = [0u32; MAX_BLOCK_LEN];
    let mut signs = 0u64;
    decode_body(&input[1..], c, len, &mut mags, &mut signs);
    // branchless sign application: (m ^ -s) + s negates when s == 1
    for (i, d) in deltas.iter_mut().enumerate() {
        let m = mags[i] as i64;
        let s = ((signs >> i) & 1) as i64;
        sink(d, (m ^ -s) + s);
    }
    Ok(total)
}

/// Decode the block starting at `input[0]` into `deltas` (whose length is the
/// block length). Returns the number of bytes consumed.
///
/// Word-parallel fast path; result-identical to [`decode_block_scalar`].
pub fn decode_block(input: &[u8], deltas: &mut [i64]) -> Result<usize> {
    decode_block_with::<0>(input, deltas)
}

/// Decode the block starting at `input[0]` and **add** its deltas into `acc`
/// (fused decode-accumulate: no staging buffer, one pass over the tile).
/// Returns the number of bytes consumed.
pub fn decode_block_add(input: &[u8], acc: &mut [i64]) -> Result<usize> {
    decode_block_with::<1>(input, acc)
}

/// Like [`decode_block_add`] but **subtracts** the decoded deltas from `acc`.
pub fn decode_block_sub(input: &[u8], acc: &mut [i64]) -> Result<usize> {
    decode_block_with::<2>(input, acc)
}

/// Decode a residual-only block body (c < 8) straight into signed deltas:
/// per 8-element group, one bounded `u64` load, constant-`R` unrolled bit
/// extraction, and branchless sign application fused into the same pass.
/// `sink` stores/accumulates the decoded delta into the output slot — it
/// monomorphizes per call site, so store/add/sub variants stay branch-free.
#[inline]
fn unpack_signed<const R: usize>(
    input: &[u8],
    signs: u64,
    deltas: &mut [i64],
    sink: impl Fn(&mut i64, i64) + Copy,
) {
    let mask = (1u64 << R) - 1;
    let len = deltas.len();
    let full_groups = len / 8;
    let mut pos = 0usize;
    for g in 0..full_groups {
        let mut wbuf = [0u8; 8];
        wbuf[..R].copy_from_slice(&input[pos..pos + R]);
        let w = u64::from_le_bytes(wbuf);
        for (j, d) in deltas[8 * g..8 * g + 8].iter_mut().enumerate() {
            let m = ((w >> (j * R)) & mask) as i64;
            let s = ((signs >> (8 * g + j)) & 1) as i64;
            sink(d, (m ^ -s) + s);
        }
        pos += R;
    }
    let tail = len % 8;
    if tail > 0 {
        let nb = (tail * R).div_ceil(8);
        let mut wbuf = [0u8; 8];
        wbuf[..nb].copy_from_slice(&input[pos..pos + nb]);
        let w = u64::from_le_bytes(wbuf);
        for (j, d) in deltas[8 * full_groups..len].iter_mut().enumerate() {
            let m = ((w >> (j * R)) & mask) as i64;
            let s = ((signs >> (8 * full_groups + j)) & 1) as i64;
            sink(d, (m ^ -s) + s);
        }
    }
}

/// Decode a block into its wire-native parts: `u32` magnitudes plus the sign
/// bitmap, skipping the signed-integer conversion. `mags.len()` is the block
/// length. Returns bytes consumed; a constant block yields all-zero
/// magnitudes and an empty bitmap.
///
/// This is the entry point for homomorphic kernels that re-encode
/// immediately (the magnitudes+signs form is exactly what
/// [`encode_block`] consumes).
pub fn decode_block_parts(input: &[u8], mags: &mut [u32], signs: &mut u64) -> Result<usize> {
    let len = mags.len();
    debug_assert!(len <= MAX_BLOCK_LEN);
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    if c == 0 {
        mags.fill(0);
        *signs = 0;
        return Ok(1);
    }
    decode_body(&input[1..], c, len, mags, signs);
    Ok(total)
}

/// Scalar reference decoder: bit-buffered residual reads and branchy sign
/// application, exactly the original loop. Retained as the verified baseline
/// for differential tests and the kernel harness.
pub fn decode_block_scalar(input: &[u8], deltas: &mut [i64]) -> Result<usize> {
    let len = deltas.len();
    debug_assert!(len <= MAX_BLOCK_LEN);
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    if c == 0 {
        deltas.fill(0);
        return Ok(1);
    }
    let mut pos = 1usize;
    let sb = sign_bytes(len);
    let mut signs = 0u64;
    for b in 0..sb {
        signs |= (input[pos + b] as u64) << (8 * b);
    }
    pos += sb;
    let byte_count = (c / 8) as usize;
    let mut mags = [0u32; MAX_BLOCK_LEN];
    for p in 0..byte_count {
        let shift = 8 * p as u32;
        let plane = &input[pos..pos + len];
        for (i, &byte) in plane.iter().enumerate() {
            mags[i] |= (byte as u32) << shift;
        }
        pos += len;
    }
    let r = (c % 8) as u32;
    if r > 0 {
        let base = 8 * byte_count as u32;
        let mask = (1u64 << r) - 1;
        let mut acc = 0u64;
        let mut nbits = 0u32;
        let mut src = pos;
        for m in mags.iter_mut().take(len) {
            while nbits < r {
                acc |= (input[src] as u64) << nbits;
                src += 1;
                nbits += 8;
            }
            *m |= ((acc & mask) as u32) << base;
            acc >>= r;
            nbits -= r;
        }
    }
    for (i, d) in deltas.iter_mut().enumerate() {
        let m = mags[i] as i64;
        *d = if (signs >> i) & 1 == 1 { -m } else { m };
    }
    Ok(total)
}

/// Copy a whole encoded block (code byte + payload) from `input` to `out`.
/// Returns the number of bytes copied. Used by hZ-dynamic pipelines ② and ③.
pub fn copy_block(input: &[u8], len: usize, out: &mut Vec<u8>) -> Result<usize> {
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    out.extend_from_slice(&input[..total]);
    Ok(total)
}

/// Skip over an encoded block, returning its on-wire size.
pub fn skip_block(input: &[u8], len: usize) -> Result<usize> {
    let c = peek_code(input)?;
    let total = block_size(c, len);
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(deltas: &[i64]) -> Vec<i64> {
        let mut buf = Vec::new();
        encode_deltas(deltas, &mut buf).unwrap();
        let mut out = vec![0i64; deltas.len()];
        let used = decode_block(&buf, &mut out).unwrap();
        assert_eq!(used, buf.len(), "decoder must consume exactly what encoder wrote");
        // the scalar reference must agree byte-for-byte and value-for-value
        let mut sbuf = Vec::new();
        encode_deltas_scalar(deltas, &mut sbuf).unwrap();
        assert_eq!(buf, sbuf, "fast encoder diverged from the scalar reference");
        let mut sout = vec![0i64; deltas.len()];
        assert_eq!(decode_block_scalar(&buf, &mut sout).unwrap(), used);
        assert_eq!(out, sout, "fast decoder diverged from the scalar reference");
        out
    }

    #[test]
    fn zero_block_is_one_byte() {
        let deltas = [0i64; 32];
        let mut buf = Vec::new();
        let c = encode_deltas(&deltas, &mut buf).unwrap();
        assert_eq!(c, 0);
        assert_eq!(buf, vec![0u8]);
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn small_values_roundtrip() {
        let deltas: Vec<i64> = (0..32).map(|i| (i % 7) - 3).collect();
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn every_code_length_roundtrips() {
        for c in 1..=32u32 {
            let hi = (1u64 << c) - 1;
            let deltas: Vec<i64> = (0..32)
                .map(|i| {
                    let v = (hi * (i as u64 + 1) / 32) as i64;
                    if i % 2 == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            assert_eq!(roundtrip(&deltas), deltas, "code length {c}");
        }
    }

    #[test]
    fn extreme_deltas_roundtrip() {
        let max = u32::MAX as i64;
        let deltas = [max, -max, 0, -1, 1, max - 1, 0, 0];
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn delta_overflow_detected() {
        let deltas = [u32::MAX as i64 + 1];
        let mut buf = Vec::new();
        assert!(matches!(encode_deltas(&deltas, &mut buf), Err(Error::DeltaOverflow)));
        assert!(matches!(encode_deltas_scalar(&deltas, &mut buf), Err(Error::DeltaOverflow)));
        let deltas = [-(u32::MAX as i64) - 1];
        assert!(matches!(encode_deltas(&deltas, &mut buf), Err(Error::DeltaOverflow)));
        assert!(matches!(encode_deltas_scalar(&deltas, &mut buf), Err(Error::DeltaOverflow)));
    }

    #[test]
    fn partial_blocks_roundtrip() {
        for len in 1..=33usize {
            let len = len.min(MAX_BLOCK_LEN);
            let deltas: Vec<i64> = (0..len).map(|i| (i as i64 - 5) * 1000).collect();
            assert_eq!(roundtrip(&deltas), deltas, "len {len}");
        }
    }

    #[test]
    fn sixty_four_element_blocks_roundtrip() {
        let deltas: Vec<i64> = (0..64).map(|i| (i as i64 - 32) * 77777).collect();
        assert_eq!(roundtrip(&deltas), deltas);
    }

    #[test]
    fn block_size_matches_encoded_size() {
        for c_target in [0u32, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32] {
            let v: i64 = if c_target == 0 { 0 } else { 1i64 << (c_target - 1) };
            let deltas = vec![v; 32];
            let mut buf = Vec::new();
            let c = encode_deltas(&deltas, &mut buf).unwrap();
            assert_eq!(c as u32, c_target);
            assert_eq!(buf.len(), block_size(c, 32));
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let deltas = [12345i64; 32];
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        let mut out = [0i64; 32];
        let mut mags = [0u32; 32];
        let mut signs = 0u64;
        for cut in 0..buf.len() {
            assert!(decode_block(&buf[..cut], &mut out).is_err(), "cut at {cut} should fail");
            assert!(decode_block_scalar(&buf[..cut], &mut out).is_err(), "cut at {cut}");
            assert!(decode_block_parts(&buf[..cut], &mut mags, &mut signs).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_code_is_rejected() {
        let buf = [40u8, 0, 0];
        let mut out = [0i64; 4];
        assert!(matches!(decode_block(&buf, &mut out), Err(Error::Corrupt(_))));
    }

    #[test]
    fn copy_and_skip_agree_with_decode() {
        let deltas: Vec<i64> = (0..32).map(|i| i * 37 - 400).collect();
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        buf.extend_from_slice(&[0xAA; 5]); // trailing noise
        let mut copied = Vec::new();
        let n1 = copy_block(&buf, 32, &mut copied).unwrap();
        let n2 = skip_block(&buf, 32).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(&buf[..n1], copied.as_slice());
    }

    #[test]
    fn canonical_zero_sign_for_zero_magnitude() {
        let deltas = [0i64, -5, 0, 5];
        let mut buf = Vec::new();
        encode_deltas(&deltas, &mut buf).unwrap();
        // signs byte: only bit 1 set
        assert_eq!(buf[1], 0b0000_0010);
    }

    #[test]
    fn encoding_is_deterministic() {
        let deltas: Vec<i64> = (0..32).map(|i| i * i - 200).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_deltas(&deltas, &mut a).unwrap();
        encode_deltas(&deltas, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parts_decode_matches_delta_decode() {
        for len in [1usize, 7, 8, 31, 32, 63, 64] {
            let deltas: Vec<i64> =
                (0..len).map(|i| ((i as i64 * 97) % 5000 - 2500) * (i as i64 % 3 + 1)).collect();
            let mut buf = Vec::new();
            encode_deltas(&deltas, &mut buf).unwrap();
            let mut mags = vec![0u32; len];
            let mut signs = 0u64;
            let used = decode_block_parts(&buf, &mut mags, &mut signs).unwrap();
            assert_eq!(used, buf.len());
            for (i, &d) in deltas.iter().enumerate() {
                assert_eq!(mags[i] as u64, d.unsigned_abs(), "len={len} at {i}");
                assert_eq!((signs >> i) & 1 == 1, d < 0, "len={len} at {i}");
            }
            // and re-encoding the parts reproduces the exact bytes
            let mut rebuf = Vec::new();
            encode_block(&mags, signs, &mut rebuf);
            assert_eq!(rebuf, buf, "len={len}");
        }
    }
}
