//! Ablation variant: *unfused* quantization → prediction → encoding.
//!
//! Sec. III-B.2 argues that fusing quantization and prediction "reduces the
//! number of memory accesses compared to the unfused version". This module
//! implements the unfused version — three separate passes with a full-size
//! intermediate integer array, as in cuSZp's staged GPU pipeline — producing
//! **byte-identical streams** to [`crate::compress`], so the ablation bench
//! isolates exactly the memory-traffic effect.

use crate::chunk::{chunk_spans, effective_chunks};
use crate::codec;
use crate::config::Config;
use crate::error::Result;
use crate::header::Header;
use crate::quantize::quantize_block;
use crate::stream::CompressedStream;

/// Compress with separate quantize / predict / encode passes.
///
/// The output is byte-identical to [`crate::compress`] with the same
/// configuration; only the memory-access pattern (and therefore throughput)
/// differs.
pub fn compress_unfused(data: &[f32], cfg: &Config) -> Result<CompressedStream> {
    cfg.validate()?;
    let eb = cfg.eb.resolve(data)?;
    let n = data.len();
    let nchunks = effective_chunks(n, cfg.threads);
    let spans = chunk_spans(n, nchunks);
    let inv_2eb = 1.0 / (2.0 * eb);
    let block_len = cfg.block_len;

    let run_chunk = |start: usize, len: usize| -> Result<Vec<u8>> {
        let chunk = &data[start..start + len];
        // Pass 1: quantize everything into an intermediate array.
        let mut qi = vec![0i32; len];
        quantize_block(chunk, inv_2eb, start, &mut qi)?;
        let mut q: Vec<i64> = qi.iter().map(|&x| x as i64).collect();
        // Pass 2: delta-predict in place (reverse order keeps predecessors).
        let outlier = q[0] as i32;
        for k in (1..len).rev() {
            q[k] -= q[k - 1];
        }
        q[0] = 0;
        // Pass 3: fixed-length encode block by block.
        let mut out = Vec::with_capacity(4 + len.div_ceil(block_len) + len);
        out.extend_from_slice(&outlier.to_le_bytes());
        for block in q.chunks(block_len) {
            codec::encode_deltas(block, &mut out)?;
        }
        Ok(out)
    };

    let parts: Vec<Result<Vec<u8>>> = if nchunks <= 1 {
        spans.iter().map(|s| run_chunk(s.start, s.len)).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .map(|span| {
                    let (start, len) = (span.start, span.len);
                    scope.spawn(move || run_chunk(start, len))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("unfused thread panicked")).collect()
        })
    };

    let mut offsets = Vec::with_capacity(nchunks + 1);
    offsets.push(0u64);
    let mut body = Vec::new();
    for part in parts {
        body.extend_from_slice(&part?);
        offsets.push(body.len() as u64);
    }
    let header =
        Header { n: n as u64, eb, block_len: block_len as u32, nchunks: nchunks as u32, offsets };
    Ok(CompressedStream::from_parts(header, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;

    #[test]
    fn unfused_output_is_byte_identical_to_fused() {
        let data: Vec<f32> =
            (0..20_000).map(|i| ((i as f32) * 0.013).sin() * ((i % 100) as f32)).collect();
        for threads in [1usize, 2, 5] {
            let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(threads);
            let fused = crate::compress(&data, &cfg).unwrap();
            let unfused = compress_unfused(&data, &cfg).unwrap();
            assert_eq!(fused.as_bytes(), unfused.as_bytes(), "threads={threads}");
        }
    }

    #[test]
    fn unfused_detects_non_finite_with_global_index() {
        let mut data = vec![0.5f32; 64];
        data[40] = f32::INFINITY;
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let err = compress_unfused(&data, &cfg).unwrap_err();
        assert_eq!(err, crate::error::Error::NonFiniteInput { index: 40 });
    }
}
