//! Scalar quantization helpers.
//!
//! Quantization is the single lossy step of the whole pipeline:
//! `q = round(v / (2*eb))`, reconstructed as `v' = q * 2*eb`, which bounds the
//! point-wise error by `eb`. All downstream stages (prediction, encoding,
//! homomorphic reduction) operate on the integers `q` exactly.

use crate::error::{Error, Result};

/// Quantize one value with the precomputed reciprocal `inv_2eb = 1 / (2*eb)`.
///
/// Rejects non-finite inputs and quantization integers outside `i32` range
/// (the stream stores 4-byte outliers and 32-bit delta magnitudes).
#[inline]
pub fn quantize(v: f32, inv_2eb: f64, index: usize) -> Result<i32> {
    if !v.is_finite() {
        return Err(Error::NonFiniteInput { index });
    }
    let q = (v as f64 * inv_2eb).round();
    if q > i32::MAX as f64 || q < i32::MIN as f64 {
        return Err(Error::QuantizationOverflow { index, value: v });
    }
    Ok(q as i32)
}

/// Reconstruct a value from its quantization integer.
#[inline]
pub fn dequantize(q: i32, two_eb: f64) -> f32 {
    (q as f64 * two_eb) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_respects_bound() {
        let eb = 1e-3f64;
        let inv = 1.0 / (2.0 * eb);
        for i in 0..10_000 {
            let v = (i as f32 * 0.01).sin() * 50.0;
            let q = quantize(v, inv, i).unwrap();
            let v2 = dequantize(q, 2.0 * eb);
            assert!(((v - v2).abs() as f64) <= eb * (1.0 + 1e-9), "{v} -> {q} -> {v2}");
        }
    }

    #[test]
    fn rounds_to_nearest() {
        let inv = 1.0 / 2.0; // eb = 1, bucket width 2
        assert_eq!(quantize(0.9, inv, 0).unwrap(), 0);
        assert_eq!(quantize(1.1, inv, 0).unwrap(), 1);
        assert_eq!(quantize(-1.1, inv, 0).unwrap(), -1);
    }

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(quantize(0.0, 5000.0, 0).unwrap(), 0);
        assert_eq!(quantize(-0.0, 5000.0, 0).unwrap(), 0);
        assert_eq!(dequantize(0, 2e-4), 0.0);
    }

    #[test]
    fn overflow_detected() {
        let inv = 1.0 / (2.0 * 1e-30);
        assert!(matches!(
            quantize(1.0e9, inv, 3),
            Err(Error::QuantizationOverflow { index: 3, .. })
        ));
    }

    #[test]
    fn non_finite_detected() {
        assert!(quantize(f32::NAN, 1.0, 0).is_err());
        assert!(quantize(f32::NEG_INFINITY, 1.0, 1).is_err());
    }
}
