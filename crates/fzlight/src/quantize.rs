//! Scalar quantization helpers.
//!
//! Quantization is the single lossy step of the whole pipeline:
//! `q = round(v / (2*eb))`, reconstructed as `v' = q * 2*eb`, which bounds the
//! point-wise error by `eb`. All downstream stages (prediction, encoding,
//! homomorphic reduction) operate on the integers `q` exactly.
//!
//! The hot-path entry point is the slice-level [`quantize_block`]: one tight
//! pass with the finite/overflow checks hoisted out of the loop body into an
//! accumulated flag, so the compiler can vectorize the multiply+round. Only
//! when the flag trips does a cold rescan attribute the exact failing index —
//! the error values and ordering are identical to the per-element path, which
//! is retained as [`quantize_block_scalar`] (the differential-test reference).

use crate::error::{Error, Result};

/// Quantize one value with the precomputed reciprocal `inv_2eb = 1 / (2*eb)`.
///
/// Rejects non-finite inputs and quantization integers outside `i32` range
/// (the stream stores 4-byte outliers and 32-bit delta magnitudes).
#[deprecated(
    since = "0.9.0",
    note = "use the slice-level `quantize_block` — it hoists the error checks \
            out of the hot loop and drops the per-call index plumbing"
)]
#[inline]
pub fn quantize(v: f32, inv_2eb: f64, index: usize) -> Result<i32> {
    quantize_one(v, inv_2eb, index)
}

/// Internal per-element quantizer shared by the deprecated [`quantize`] shim
/// and the cold rescan path.
#[inline]
fn quantize_one(v: f32, inv_2eb: f64, index: usize) -> Result<i32> {
    if !v.is_finite() {
        return Err(Error::NonFiniteInput { index });
    }
    let q = (v as f64 * inv_2eb).round();
    if q > i32::MAX as f64 || q < i32::MIN as f64 {
        return Err(Error::QuantizationOverflow { index, value: v });
    }
    Ok(q as i32)
}

/// Quantize a slice in one pass, writing the integers into `out`
/// (`out.len() == values.len()`).
///
/// Global element indices for error reporting start at `base` (the slice's
/// offset within the full field). The fast pass accumulates a single validity
/// flag instead of branching per element; on failure, a cold rescan reports
/// exactly the error the per-element reference would have raised first.
pub fn quantize_block(values: &[f32], inv_2eb: f64, base: usize, out: &mut [i32]) -> Result<()> {
    debug_assert_eq!(values.len(), out.len());
    let mut ok = true;
    for (o, &v) in out.iter_mut().zip(values) {
        let q = (v as f64 * inv_2eb).round();
        // NaN fails both comparisons, infinities fail the range check after
        // the multiply, so one accumulated flag covers every error class.
        ok &= v.is_finite() & (q <= i32::MAX as f64) & (q >= i32::MIN as f64);
        *o = q as i32;
    }
    if ok {
        return Ok(());
    }
    // Cold path: rescan in element order so the reported index and error
    // variant match the scalar reference exactly.
    for (k, &v) in values.iter().enumerate() {
        quantize_one(v, inv_2eb, base + k)?;
    }
    unreachable!("accumulated quantization error flag without an offending element")
}

/// Per-element reference implementation of [`quantize_block`]: calls the
/// original scalar quantizer with full per-call error plumbing. Retained for
/// differential property tests and the `hzc kernels` baseline.
pub fn quantize_block_scalar(
    values: &[f32],
    inv_2eb: f64,
    base: usize,
    out: &mut [i32],
) -> Result<()> {
    debug_assert_eq!(values.len(), out.len());
    for (k, (o, &v)) in out.iter_mut().zip(values).enumerate() {
        *o = quantize_one(v, inv_2eb, base + k)?;
    }
    Ok(())
}

/// Reconstruct a value from its quantization integer.
#[inline]
pub fn dequantize(q: i32, two_eb: f64) -> f32 {
    (q as f64 * two_eb) as f32
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_respects_bound() {
        let eb = 1e-3f64;
        let inv = 1.0 / (2.0 * eb);
        for i in 0..10_000 {
            let v = (i as f32 * 0.01).sin() * 50.0;
            let q = quantize(v, inv, i).unwrap();
            let v2 = dequantize(q, 2.0 * eb);
            assert!(((v - v2).abs() as f64) <= eb * (1.0 + 1e-9), "{v} -> {q} -> {v2}");
        }
    }

    #[test]
    fn rounds_to_nearest() {
        let inv = 1.0 / 2.0; // eb = 1, bucket width 2
        assert_eq!(quantize(0.9, inv, 0).unwrap(), 0);
        assert_eq!(quantize(1.1, inv, 0).unwrap(), 1);
        assert_eq!(quantize(-1.1, inv, 0).unwrap(), -1);
    }

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(quantize(0.0, 5000.0, 0).unwrap(), 0);
        assert_eq!(quantize(-0.0, 5000.0, 0).unwrap(), 0);
        assert_eq!(dequantize(0, 2e-4), 0.0);
    }

    #[test]
    fn overflow_detected() {
        let inv = 1.0 / (2.0 * 1e-30);
        assert!(matches!(
            quantize(1.0e9, inv, 3),
            Err(Error::QuantizationOverflow { index: 3, .. })
        ));
    }

    #[test]
    fn non_finite_detected() {
        assert!(quantize(f32::NAN, 1.0, 0).is_err());
        assert!(quantize(f32::NEG_INFINITY, 1.0, 1).is_err());
    }

    #[test]
    fn block_matches_scalar_on_clean_data() {
        let inv = 1.0 / (2.0 * 1e-3);
        let values: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.013).sin() * 40.0).collect();
        let mut fast = vec![0i32; values.len()];
        let mut slow = vec![0i32; values.len()];
        quantize_block(&values, inv, 100, &mut fast).unwrap();
        quantize_block_scalar(&values, inv, 100, &mut slow).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn block_reports_first_error_with_global_index() {
        let inv = 1.0 / (2.0 * 1e-3);
        let mut values: Vec<f32> = vec![1.0; 64];
        values[41] = f32::NAN;
        values[50] = f32::INFINITY;
        let mut out = vec![0i32; 64];
        let err = quantize_block(&values, inv, 1000, &mut out).unwrap_err();
        assert_eq!(err, Error::NonFiniteInput { index: 1041 });
        let err_ref = quantize_block_scalar(&values, inv, 1000, &mut out).unwrap_err();
        assert_eq!(err, err_ref);
    }

    #[test]
    fn block_reports_overflow_like_scalar() {
        let inv = 1.0 / (2.0 * 1e-30);
        let values = [0.0f32, 1.0e9, f32::NAN];
        let mut out = [0i32; 3];
        let err = quantize_block(&values, inv, 7, &mut out).unwrap_err();
        assert!(matches!(err, Error::QuantizationOverflow { index: 8, .. }));
        let err_ref = quantize_block_scalar(&values, inv, 7, &mut out).unwrap_err();
        assert_eq!(err, err_ref);
    }

    #[test]
    fn empty_block_is_ok() {
        quantize_block(&[], 1.0, 0, &mut []).unwrap();
    }
}
