//! # ompSZp — CPU port of cuSZp's parallelism strategy (baseline)
//!
//! The paper's primary compressor baseline (Table II): *"CPU version of
//! cuSZp's parallelism strategy"*. This crate deliberately keeps cuSZp's
//! GPU-idiomatic design decisions so the comparison against `fzlight`
//! isolates exactly what Sec. III-B.2/III-B.3 optimize:
//!
//! * **Single-layer block partitioning** — the input is one flat sequence of
//!   small blocks; threads own blocks *block-cyclically* (thread `t` owns
//!   blocks `t, t+T, t+2T, …`), hopping between distant memory regions
//!   instead of working on contiguous chunks.
//! * **One outlier per small block** — every non-elided block stores its
//!   first quantization integer (4 bytes per 32 values), which is where
//!   `fZ-light`'s per-chunk outlier wins its compression-ratio edge.
//! * **Zero-block elision** — blocks whose values all quantize to zero are
//!   stored as a single marker byte (the design that lets ompSZp edge out
//!   fZ-light on datasets dominated by zero regions, cf. Table III Sim. 1).
//! * **Unfused, globally-synchronized passes** — quantization+prediction
//!   writes a full-size intermediate delta array, a synchronization computes
//!   output offsets (the GPU global sync), and a second sweep encodes.
//! * **Bit-shuffle encoding** — magnitudes are stored as `c` one-bit planes
//!   (bit-granular shuffles), versus fZ-light's byte-plane + residual scheme.
//!
//! Quantization itself uses the same round-to-nearest rule as fZ-light, so
//! reconstructed values are identical and quality comparisons isolate the
//! format. (The paper's Table III reports a small NRMSE edge for fZ-light
//! that stems from cuSZp implementation details; here the NRMSE columns come
//! out equal, which EXPERIMENTS.md records as a deviation.)
//!
//! The public API mirrors `fzlight`: [`compress`], [`decompress`],
//! [`OszpStream`].

pub mod bitshuffle;
pub mod compress;
pub mod decompress;
pub mod format;

pub use compress::compress;
pub use decompress::{decompress, decompress_into};
pub use format::{OszpHeader, OszpStream};

// Shared error taxonomy with fzlight keeps call sites uniform.
pub use fzlight::error::{Error, Result};
pub use fzlight::{Config, ErrorBound};

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], cfg: &Config) -> Vec<f32> {
        let s = compress(data, cfg).expect("compress");
        decompress(&s).expect("decompress")
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        assert!(roundtrip(&[], &cfg).is_empty());
        for n in [1usize, 2, 31, 32, 33, 65] {
            let data: Vec<f32> = (0..n).map(|i| (i as f32).sqrt() - 3.0).collect();
            let out = roundtrip(&data, &cfg);
            assert_eq!(out.len(), n);
            for (a, b) in data.iter().zip(&out) {
                let tol = 1e-3 + (b.abs() as f64) * f32::EPSILON as f64;
                assert!(((a - b).abs() as f64) <= tol, "n={n}: |{a}-{b}|");
            }
        }
    }

    #[test]
    fn error_bounded_on_mixed_signs() {
        let data: Vec<f32> = (0..50_000).map(|i| ((i as f32) * 0.0137).sin() * 42.0).collect();
        for &eb in &[1e-1, 1e-2, 1e-3] {
            let cfg = Config::new(ErrorBound::Abs(eb));
            let out = roundtrip(&data, &cfg);
            for (a, b) in data.iter().zip(&out) {
                let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
                assert!(((a - b).abs() as f64) <= tol, "eb={eb}: |{a}-{b}|");
            }
        }
    }

    #[test]
    fn zero_blocks_are_elided() {
        // half zeros, half signal: the zero half must cost ~1 byte per block
        let mut data = vec![0.0f32; 32 * 100];
        for (i, v) in data.iter_mut().enumerate().skip(32 * 50) {
            *v = (i as f32 * 0.1).sin() * 10.0;
        }
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let s = compress(&data, &cfg).unwrap();
        let all_signal: Vec<f32> = (0..32 * 100).map(|i| (i as f32 * 0.1).sin() * 10.0).collect();
        let s2 = compress(&all_signal, &cfg).unwrap();
        assert!(s.compressed_size() < s2.compressed_size() / 2 + 200);
        let out = decompress(&s).unwrap();
        assert!(out[..32 * 50].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn thread_count_does_not_change_values() {
        let data: Vec<f32> = (0..40_000).map(|i| ((i % 251) as f32).ln_1p()).collect();
        let base = roundtrip(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(1));
        for t in [2usize, 3, 8] {
            let out = roundtrip(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(t));
            assert_eq!(base, out, "threads={t}");
        }
    }

    #[test]
    fn stream_survives_byte_serialization() {
        let data: Vec<f32> = (0..9999).map(|i| (i as f32 * 0.01).cos()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-4)).with_threads(3);
        let s = compress(&data, &cfg).unwrap();
        let s2 = OszpStream::from_bytes(s.as_bytes().to_vec()).unwrap();
        assert_eq!(decompress(&s).unwrap(), decompress(&s2).unwrap());
    }

    #[test]
    fn rejects_non_finite() {
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        assert!(compress(&[0.0, f32::NAN], &cfg).is_err());
    }

    #[test]
    fn per_block_outliers_cost_ratio_vs_fzlight() {
        // On smooth non-zero data, fZ-light's per-chunk outlier must beat
        // ompSZp's per-block outlier on compression ratio (Table III shape).
        let data: Vec<f32> = (0..1 << 16).map(|i| 5.0 + (i as f32 * 1e-4).sin()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let o = compress(&data, &cfg).unwrap();
        let f = fzlight::compress(&data, &cfg).unwrap();
        assert!(
            f.ratio() > o.ratio(),
            "fzlight {:.2} should beat ompszp {:.2}",
            f.ratio(),
            o.ratio()
        );
    }
}
