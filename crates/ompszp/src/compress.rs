//! Unfused, globally-synchronized compression with block-cyclic thread
//! ownership — cuSZp's GPU pipeline transplanted onto CPU threads.
//!
//! Pass 1 quantizes and delta-predicts every owned block into a full-size
//! intermediate array (threads hop between distant blocks). A global
//! synchronization then derives per-group output offsets from the per-block
//! record sizes (the GPU prefix-sum/sync stage). Pass 2 sweeps the blocks
//! again to bit-shuffle-encode them.

use crate::bitshuffle;
use crate::format::{OszpHeader, OszpStream, ZERO_BLOCK};
use fzlight::config::{Config, MAX_BLOCK_LEN};
use fzlight::error::Result;

/// Compress `data` with cuSZp's parallelism strategy.
pub fn compress(data: &[f32], cfg: &Config) -> Result<OszpStream> {
    cfg.validate()?;
    let eb = cfg.eb.resolve(data)?;
    let n = data.len();
    let block_len = cfg.block_len;
    if n == 0 {
        let header =
            OszpHeader { n: 0, eb, block_len: block_len as u32, ngroups: 0, offsets: vec![0] };
        return Ok(OszpStream::from_parts(header, &[]));
    }
    let nblocks = n.div_ceil(block_len);
    let ngroups = cfg.threads.max(1).min(nblocks);
    let inv_2eb = 1.0 / (2.0 * eb);

    // ---- Pass 1: block-wise quantization + prediction (strided ownership).
    // Full-size intermediate arrays, exactly the memory cost the fused
    // fZ-light pipeline avoids.
    let mut deltas = vec![0i64; n];
    let mut outliers = vec![0i32; nblocks];
    let mut codes = vec![0u8; nblocks];

    {
        // Threads own disjoint block-cyclic index sets; hand each thread raw
        // access to the shared scratch arrays.
        let deltas_ptr = SendPtr(deltas.as_mut_ptr());
        let outliers_ptr = SendPtr(outliers.as_mut_ptr());
        let codes_ptr = SendPtr(codes.as_mut_ptr());
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..ngroups)
                .map(|t| {
                    let (dp, op, cp) = (deltas_ptr, outliers_ptr, codes_ptr);
                    s.spawn(move || -> Result<()> {
                        let mut bi = t;
                        while bi < nblocks {
                            let start = bi * block_len;
                            let len = block_len.min(n - start);
                            let block = &data[start..start + len];
                            // SAFETY: block `bi` is owned by exactly one
                            // thread (block-cyclic partition), so these
                            // writes target disjoint ranges/cells.
                            unsafe {
                                quantize_predict_block(
                                    block,
                                    start,
                                    inv_2eb,
                                    dp.get().add(start),
                                    op.get().add(bi),
                                    cp.get().add(bi),
                                )?;
                            }
                            bi += ngroups;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ompszp pass-1 panicked")).collect()
        });
        for r in results {
            r?;
        }
    }

    // ---- Global synchronization: record sizes -> group offsets.
    let record_size = |bi: usize| -> usize {
        let c = codes[bi];
        if c == ZERO_BLOCK {
            1
        } else {
            let start = bi * block_len;
            let len = block_len.min(n - start);
            let body = if c == 0 {
                0
            } else {
                bitshuffle::plane_bytes(len) + bitshuffle::planes_size(c, len)
            };
            1 + 4 + body
        }
    };
    let mut group_sizes = vec![0usize; ngroups];
    for bi in 0..nblocks {
        group_sizes[bi % ngroups] += record_size(bi);
    }
    let mut offsets = Vec::with_capacity(ngroups + 1);
    offsets.push(0u64);
    let mut acc = 0u64;
    for &gs in &group_sizes {
        acc += gs as u64;
        offsets.push(acc);
    }

    // ---- Pass 2: encode owned blocks into per-group buffers.
    let groups: Vec<Vec<u8>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ngroups)
            .map(|t| {
                let deltas = &deltas;
                let outliers = &outliers;
                let codes = &codes;
                let size = group_sizes[t];
                s.spawn(move || {
                    let mut out = Vec::with_capacity(size);
                    let mut mags = [0u32; MAX_BLOCK_LEN];
                    let mut bi = t;
                    while bi < nblocks {
                        let start = bi * block_len;
                        let len = block_len.min(n - start);
                        let c = codes[bi];
                        out.push(c);
                        if c != ZERO_BLOCK {
                            out.extend_from_slice(&outliers[bi].to_le_bytes());
                            if c > 0 {
                                let mut signs = 0u64;
                                for (k, &d) in deltas[start..start + len].iter().enumerate() {
                                    mags[k] = d.unsigned_abs() as u32;
                                    signs |= u64::from(d < 0) << k;
                                }
                                for b in 0..bitshuffle::plane_bytes(len) {
                                    out.push(((signs >> (8 * b)) & 0xFF) as u8);
                                }
                                bitshuffle::encode_planes(&mags[..len], c, &mut out);
                            }
                        }
                        bi += ngroups;
                    }
                    debug_assert_eq!(out.len(), size);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("ompszp pass-2 panicked")).collect()
    });

    let mut body = Vec::with_capacity(acc as usize);
    for g in &groups {
        body.extend_from_slice(g);
    }
    let header = OszpHeader {
        n: n as u64,
        eb,
        block_len: block_len as u32,
        ngroups: ngroups as u32,
        offsets,
    };
    Ok(OszpStream::from_parts(header, &body))
}

/// Quantize one block (round-to-nearest, same rule as fZ-light so the
/// quality comparison isolates the format, not the quantizer) and
/// delta-predict it; writes the block's deltas, outlier and code byte
/// through raw pointers.
///
/// # Safety
/// `deltas_out` must be valid for `block.len()` writes and `outlier_out` /
/// `code_out` for one write each, with no other thread touching those cells.
unsafe fn quantize_predict_block(
    block: &[f32],
    base: usize,
    inv_2eb: f64,
    deltas_out: *mut i64,
    outlier_out: *mut i32,
    code_out: *mut u8,
) -> Result<()> {
    let mut qbuf = [0i32; MAX_BLOCK_LEN];
    let qb = &mut qbuf[..block.len()];
    fzlight::quantize::quantize_block(block, inv_2eb, base, qb)?;
    let mut q_prev = 0i64;
    let mut all_zero = true;
    let mut max_mag = 0u64;
    for (k, &qi) in qb.iter().enumerate() {
        let q = qi as i64;
        all_zero &= q == 0;
        if k == 0 {
            unsafe { outlier_out.write(qi) };
            unsafe { deltas_out.write(0) };
        } else {
            let d = q - q_prev;
            unsafe { deltas_out.add(k).write(d) };
            max_mag = max_mag.max(d.unsigned_abs());
        }
        q_prev = q;
    }
    let code = if all_zero {
        ZERO_BLOCK
    } else {
        debug_assert!(max_mag <= u32::MAX as u64);
        (64 - max_mag.leading_zeros()) as u8
    };
    unsafe { code_out.write(code) };
    Ok(())
}

/// A raw pointer that may cross thread boundaries; safety is argued at each
/// use site (disjoint block-cyclic ownership).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// Fetch the pointer (method call forces whole-struct closure capture,
    /// keeping the `Send`/`Sync` impls in effect).
    fn get(self) -> *mut T {
        self.0
    }
}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::ErrorBound;

    #[test]
    fn quantization_matches_fzlight_reconstruction() {
        // Same round-to-nearest rule as fZ-light: decompressed values must be
        // identical, so Table III quality comparisons isolate the format.
        let data: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.7).sin() * 9.0).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3));
        let o = crate::decompress(&compress(&data, &cfg).unwrap()).unwrap();
        let f = fzlight::decompress(&fzlight::compress(&data, &cfg).unwrap()).unwrap();
        assert_eq!(o, f);
    }

    #[test]
    fn group_count_clamped_to_blocks() {
        let data = vec![1.0f32; 40]; // 2 blocks of 32
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3)).with_threads(8)).unwrap();
        assert_eq!(s.header().ngroups, 2);
    }

    #[test]
    fn all_zero_data_is_one_marker_per_block() {
        let data = vec![0.0f32; 32 * 10];
        let s = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        assert_eq!(s.header().body_len(), 10);
    }
}
