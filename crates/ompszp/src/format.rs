//! ompSZp stream format.
//!
//! ```text
//! Header (little-endian):
//!   magic   "OSZP"          4 B
//!   version u32             = 1
//!   n       u64             element count (f32)
//!   eb      f64             absolute error bound
//!   blk     u32             block length (default 32)
//!   ngroups u32             thread-group count (block-cyclic ownership)
//!   offs    (ngroups+1)*u64 byte offsets of group payloads in body
//! Body: per group, the records of blocks t, t+T, t+2T, … in order:
//!   marker  u8              0xFF = zero block elided; else code length c
//!   if marker != 0xFF:
//!     outlier i32           first quantization integer of the block
//!     if c > 0:
//!       signs  ceil(L/8) B  LSB-first sign bitmap of the deltas
//!       planes c*ceil(L/8)  bit-shuffled magnitude planes
//! ```

use fzlight::error::{Error, Result};

/// Marker byte for an elided all-zero block.
pub const ZERO_BLOCK: u8 = 0xFF;
/// Stream magic bytes.
pub const MAGIC: [u8; 4] = *b"OSZP";
/// Stream format version.
pub const VERSION: u32 = 1;

const FIXED: usize = 4 + 4 + 8 + 8 + 4 + 4;

/// Parsed ompSZp header.
#[derive(Debug, Clone, PartialEq)]
pub struct OszpHeader {
    /// Element count of the original data.
    pub n: u64,
    /// Absolute error bound.
    pub eb: f64,
    /// Block length.
    pub block_len: u32,
    /// Thread-group count.
    pub ngroups: u32,
    /// `ngroups + 1` byte offsets into the body.
    pub offsets: Vec<u64>,
}

impl OszpHeader {
    /// Serialized header size for a given group count.
    pub fn serialized_len(ngroups: usize) -> usize {
        FIXED + (ngroups + 1) * 8
    }

    /// Total body length in bytes.
    pub fn body_len(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    /// Append the serialized header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.eb.to_le_bytes());
        out.extend_from_slice(&self.block_len.to_le_bytes());
        out.extend_from_slice(&self.ngroups.to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
    }

    /// Parse a header from the front of `bytes`; returns the header and the
    /// body start offset.
    pub fn parse(bytes: &[u8]) -> Result<(OszpHeader, usize)> {
        if bytes.len() < FIXED {
            return Err(Error::Truncated { need: FIXED, have: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(Error::Corrupt("bad magic"));
        }
        if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
            return Err(Error::Corrupt("unsupported version"));
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let eb = f64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let block_len = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let ngroups = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        if !(eb.is_finite() && eb > 0.0) {
            return Err(Error::Corrupt("non-positive error bound"));
        }
        if block_len == 0 || block_len as usize > fzlight::config::MAX_BLOCK_LEN {
            return Err(Error::Corrupt("invalid block length"));
        }
        if n > 0 && ngroups == 0 {
            return Err(Error::Corrupt("non-empty stream with zero groups"));
        }
        let need = FIXED + (ngroups as usize + 1) * 8;
        if bytes.len() < need {
            return Err(Error::Truncated { need, have: bytes.len() });
        }
        let mut offsets = Vec::with_capacity(ngroups as usize + 1);
        let mut prev = 0u64;
        for k in 0..=ngroups as usize {
            let at = FIXED + k * 8;
            let o = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            if (k == 0 && o != 0) || o < prev {
                return Err(Error::Corrupt("bad offset table"));
            }
            prev = o;
            offsets.push(o);
        }
        Ok((OszpHeader { n, eb, block_len, ngroups, offsets }, need))
    }
}

/// An owned ompSZp compressed stream (wire representation in memory).
#[derive(Debug, Clone, PartialEq)]
pub struct OszpStream {
    bytes: Vec<u8>,
    header: OszpHeader,
    body_start: usize,
}

impl OszpStream {
    /// Assemble a stream from a header and its body.
    pub fn from_parts(header: OszpHeader, body: &[u8]) -> Self {
        debug_assert_eq!(header.body_len(), body.len());
        let body_start = OszpHeader::serialized_len(header.ngroups as usize);
        let mut bytes = Vec::with_capacity(body_start + body.len());
        header.write_to(&mut bytes);
        bytes.extend_from_slice(body);
        OszpStream { bytes, header, body_start }
    }

    /// Parse a stream from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let (header, body_start) = OszpHeader::parse(&bytes)?;
        let need = body_start + header.body_len();
        if bytes.len() < need {
            return Err(Error::Truncated { need, have: bytes.len() });
        }
        if bytes.len() > need {
            return Err(Error::Corrupt("trailing bytes after body"));
        }
        Ok(OszpStream { bytes, header, body_start })
    }

    /// Full wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parsed header.
    pub fn header(&self) -> &OszpHeader {
        &self.header
    }

    /// Element count.
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Payload of thread group `g`.
    pub fn group_payload(&self, g: usize) -> &[u8] {
        let r = self.header.offsets[g] as usize..self.header.offsets[g + 1] as usize;
        &self.bytes[self.body_start + r.start..self.body_start + r.end]
    }

    /// Total compressed size (header + body).
    pub fn compressed_size(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio `original / compressed`.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        (self.n() * 4) as f64 / self.compressed_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_rejections() {
        let h = OszpHeader { n: 64, eb: 1e-4, block_len: 32, ngroups: 2, offsets: vec![0, 9, 20] };
        let mut buf = Vec::new();
        h.write_to(&mut buf);
        let (h2, start) = OszpHeader::parse(&buf).unwrap();
        assert_eq!(h, h2);
        assert_eq!(start, OszpHeader::serialized_len(2));

        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(OszpHeader::parse(&bad).is_err());
        for cut in 0..buf.len() {
            assert!(OszpHeader::parse(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn stream_rejects_trailing_and_truncated() {
        let h = OszpHeader { n: 0, eb: 1e-4, block_len: 32, ngroups: 0, offsets: vec![0] };
        let s = OszpStream::from_parts(h, &[]);
        let mut b = s.as_bytes().to_vec();
        b.push(7);
        assert!(OszpStream::from_bytes(b).is_err());
    }
}
