//! Bit-shuffle (one-bit-plane) encoding, as cuSZp stores fixed-length
//! integers on the GPU.
//!
//! For a block of `L` magnitudes with code length `c`, plane `b`
//! (`0 <= b < c`) stores one bit per element: bit `i % 8` of plane byte
//! `i / 8` is bit `b` of `mag[i]`.
//!
//! The production [`encode_planes`]/[`decode_planes`] pair is *bit-parallel*:
//! instead of shifting one bit per iteration, eight elements' bytes of a
//! byte-plane are packed into one `u64` and an 8x8 bit-matrix transpose
//! ([`transpose8`]) yields eight plane bytes at once (the symmetric transpose
//! scatters them back on decode). The original bit-granular loops are
//! retained as [`encode_planes_scalar`]/[`decode_planes_scalar`] — the
//! verified reference the fast path is property-tested against, and the
//! baseline the `hzc kernels` harness measures speedup over.

use fzlight::error::{Error, Result};

/// Bytes per one-bit plane for a block of `len` elements.
#[inline]
pub const fn plane_bytes(len: usize) -> usize {
    len.div_ceil(8)
}

/// Total payload bytes for `c` planes over `len` elements.
#[inline]
pub const fn planes_size(c: u8, len: usize) -> usize {
    plane_bytes(len) * c as usize
}

/// Transpose a u64 viewed as an 8x8 bit matrix (row `j` = byte `j`, column
/// `b` = bit `b` of each byte): output byte `b` bit `j` = input byte `j` bit
/// `b`. The classic three-step block swap; an involution, so the same
/// function serves encode and decode.
#[inline]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Append `c` bit planes of `mags[..len]` to `out`.
///
/// Bit-parallel fast path: byte-identical to [`encode_planes_scalar`], which
/// the unit and workspace property tests assert across code lengths, partial
/// blocks and adversarial patterns.
pub fn encode_planes(mags: &[u32], c: u8, out: &mut Vec<u8>) {
    let len = mags.len();
    if c == 0 || len == 0 {
        return;
    }
    let pb = plane_bytes(len);
    let base = out.len();
    out.resize(base + planes_size(c, len), 0);
    let planes = &mut out[base..];
    let full_groups = len / 8;
    if c < 8 {
        // Few planes (the dominant case on smooth fields): the full 8x8
        // transpose doesn't amortize, so gather each plane byte with the
        // LSB-column multiply trick instead (see [`gather_column`]).
        match c {
            1 => encode_low::<1>(mags, pb, planes),
            2 => encode_low::<2>(mags, pb, planes),
            3 => encode_low::<3>(mags, pb, planes),
            4 => encode_low::<4>(mags, pb, planes),
            5 => encode_low::<5>(mags, pb, planes),
            6 => encode_low::<6>(mags, pb, planes),
            _ => encode_low::<7>(mags, pb, planes),
        }
        return;
    }
    // One byte-plane (8 bit planes) at a time: pack 8 elements' bytes into a
    // u64, transpose, scatter the resulting plane bytes.
    for p in 0..(c as usize).div_ceil(8) {
        let bits = (c as usize - 8 * p).min(8);
        let shift = (8 * p) as u32;
        for g in 0..full_groups {
            let e = &mags[8 * g..8 * g + 8];
            let mut x = 0u64;
            for (j, &m) in e.iter().enumerate() {
                x |= (((m >> shift) & 0xFF) as u64) << (8 * j);
            }
            let t = transpose8(x);
            for b in 0..bits {
                planes[(8 * p + b) * pb + g] = (t >> (8 * b)) as u8;
            }
        }
        if !len.is_multiple_of(8) {
            // tail group: fewer than 8 elements, bit-granular
            let g = full_groups;
            for b in 0..bits {
                let mut byte = 0u8;
                for (bit, &m) in mags[8 * g..].iter().enumerate() {
                    byte |= (((m >> (shift + b as u32)) & 1) as u8) << bit;
                }
                planes[(8 * p + b) * pb + g] = byte;
            }
        }
    }
}

/// Gather the LSB of each byte of `x` into one byte: bit `j` of the result is
/// bit `0` of byte `j`. The multiply sums each lane's bit into the top byte
/// (lane `j` lands at weight `2^j` because the multiplier's byte `7-j` is
/// `2^j`), which works because the masked lanes cannot carry into each other.
#[inline]
fn gather_column(x: u64) -> u8 {
    ((x & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u8
}

/// Encode `C < 8` planes: per 8-element group, pack the low bytes into one
/// `u64` once, then extract each plane byte with [`gather_column`] — constant
/// `C` keeps the plane loop fully unrolled.
#[inline]
fn encode_low<const C: usize>(mags: &[u32], pb: usize, planes: &mut [u8]) {
    let len = mags.len();
    let full_groups = len / 8;
    for g in 0..full_groups {
        let mut x = 0u64;
        for (j, &m) in mags[8 * g..8 * g + 8].iter().enumerate() {
            x |= ((m & 0xFF) as u64) << (8 * j);
        }
        for b in 0..C {
            planes[b * pb + g] = gather_column(x >> b);
        }
    }
    let tail = len % 8;
    if tail > 0 {
        let g = full_groups;
        let mut x = 0u64;
        for (j, &m) in mags[8 * g..].iter().enumerate() {
            x |= ((m & 0xFF) as u64) << (8 * j);
        }
        for b in 0..C {
            planes[b * pb + g] = gather_column(x >> b);
        }
    }
}

/// Decode `c` bit planes from `input` into `mags` (length = block length).
/// Returns bytes consumed.
///
/// Validates that `input` actually holds all `c` planes and returns a typed
/// [`Error::Truncated`] otherwise (the scalar loop used to panic on short
/// input). Bit-parallel inverse of [`encode_planes`].
pub fn decode_planes(input: &[u8], c: u8, mags: &mut [u32]) -> Result<usize> {
    let len = mags.len();
    let need = planes_size(c, len);
    if input.len() < need {
        return Err(Error::Truncated { need, have: input.len() });
    }
    let pb = plane_bytes(len);
    if c < 8 && c > 0 {
        // Few planes: direct constant-C bit extraction beats the flat cost
        // of the 8x8 transpose.
        match c {
            1 => decode_low::<1>(input, pb, mags),
            2 => decode_low::<2>(input, pb, mags),
            3 => decode_low::<3>(input, pb, mags),
            4 => decode_low::<4>(input, pb, mags),
            5 => decode_low::<5>(input, pb, mags),
            6 => decode_low::<6>(input, pb, mags),
            _ => decode_low::<7>(input, pb, mags),
        }
        return Ok(need);
    }
    mags.fill(0);
    let full_groups = len / 8;
    for p in 0..(c as usize).div_ceil(8) {
        let bits = (c as usize - 8 * p).min(8);
        let shift = (8 * p) as u32;
        for g in 0..full_groups {
            let mut y = 0u64;
            for b in 0..bits {
                y |= (input[(8 * p + b) * pb + g] as u64) << (8 * b);
            }
            let t = transpose8(y);
            for (j, m) in mags[8 * g..8 * g + 8].iter_mut().enumerate() {
                *m |= (((t >> (8 * j)) & 0xFF) as u32) << shift;
            }
        }
        if !len.is_multiple_of(8) {
            let g = full_groups;
            for b in 0..bits {
                let byte = input[(8 * p + b) * pb + g];
                for (bit, m) in mags[8 * g..].iter_mut().enumerate() {
                    *m |= (((byte >> bit) & 1) as u32) << (shift + b as u32);
                }
            }
        }
    }
    Ok(need)
}

/// Decode `C < 8` planes: per 8-element group, load the `C` plane bytes once
/// and rebuild each magnitude with a fully unrolled constant-`C` bit gather
/// (stores, no prior `fill`).
#[inline]
fn decode_low<const C: usize>(input: &[u8], pb: usize, mags: &mut [u32]) {
    let len = mags.len();
    let full_groups = len / 8;
    for g in 0..full_groups {
        let mut bytes = [0u8; C];
        for (b, byte) in bytes.iter_mut().enumerate() {
            *byte = input[b * pb + g];
        }
        for (j, m) in mags[8 * g..8 * g + 8].iter_mut().enumerate() {
            let mut v = 0u32;
            for (b, &byte) in bytes.iter().enumerate() {
                v |= (((byte >> j) & 1) as u32) << b;
            }
            *m = v;
        }
    }
    let tail = len % 8;
    if tail > 0 {
        let g = full_groups;
        let mut bytes = [0u8; C];
        for (b, byte) in bytes.iter_mut().enumerate() {
            *byte = input[b * pb + g];
        }
        for (j, m) in mags[8 * g..len].iter_mut().enumerate() {
            let mut v = 0u32;
            for (b, &byte) in bytes.iter().enumerate() {
                v |= (((byte >> j) & 1) as u32) << b;
            }
            *m = v;
        }
    }
}

/// Scalar reference encoder: one bit per iteration, exactly the original
/// CPU-unfriendly pattern the paper contrasts against. Kept as the verified
/// baseline for the fast path.
pub fn encode_planes_scalar(mags: &[u32], c: u8, out: &mut Vec<u8>) {
    let len = mags.len();
    let pb = plane_bytes(len);
    for b in 0..c as u32 {
        for byte_idx in 0..pb {
            let mut byte = 0u8;
            let start = byte_idx * 8;
            let end = (start + 8).min(len);
            for (bit, &m) in mags[start..end].iter().enumerate() {
                byte |= (((m >> b) & 1) as u8) << bit;
            }
            out.push(byte);
        }
    }
}

/// Scalar reference decoder (bit-at-a-time), with the same length validation
/// as [`decode_planes`].
pub fn decode_planes_scalar(input: &[u8], c: u8, mags: &mut [u32]) -> Result<usize> {
    let len = mags.len();
    let need = planes_size(c, len);
    if input.len() < need {
        return Err(Error::Truncated { need, have: input.len() });
    }
    let pb = plane_bytes(len);
    mags.fill(0);
    for b in 0..c as u32 {
        let plane = &input[b as usize * pb..(b as usize + 1) * pb];
        for (i, m) in mags.iter_mut().enumerate() {
            let bit = (plane[i / 8] >> (i % 8)) & 1;
            *m |= (bit as u32) << b;
        }
    }
    Ok(need)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_roundtrip_all_code_lengths() {
        for c in 0..=32u8 {
            let mags: Vec<u32> = (0..32u32)
                .map(|i| {
                    if c == 0 {
                        0
                    } else {
                        i.wrapping_mul(0x9E37_79B9) & ((1u64 << c) - 1) as u32
                    }
                })
                .collect();
            let mut buf = Vec::new();
            encode_planes(&mags, c, &mut buf);
            assert_eq!(buf.len(), planes_size(c, 32));
            let mut out = vec![0u32; 32];
            let used = decode_planes(&buf, c, &mut out).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(out, mags, "c={c}");
        }
    }

    #[test]
    fn partial_block_roundtrips() {
        for len in [1usize, 7, 8, 9, 17, 31] {
            let mags: Vec<u32> = (0..len as u32).map(|i| i * 3 + 1).collect();
            let c = 8u8;
            let mut buf = Vec::new();
            encode_planes(&mags, c, &mut buf);
            let mut out = vec![0u32; len];
            decode_planes(&buf, c, &mut out).unwrap();
            assert_eq!(out, mags, "len={len}");
        }
    }

    #[test]
    fn zero_planes_cost_nothing() {
        let mags = [0u32; 32];
        let mut buf = Vec::new();
        encode_planes(&mags, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn transpose8_is_an_involution_and_transposes() {
        let x = 0x8040_2010_0804_0201u64; // identity matrix
        assert_eq!(transpose8(x), x);
        // single bit: input byte 3 bit 5 -> output byte 5 bit 3
        let x = 1u64 << (8 * 3 + 5);
        assert_eq!(transpose8(x), 1u64 << (8 * 5 + 3));
        for seed in [0x1234_5678_9ABC_DEF0u64, 0xFFFF_0000_AAAA_5555, 1, u64::MAX] {
            assert_eq!(transpose8(transpose8(seed)), seed);
        }
    }

    #[test]
    fn fast_encode_matches_scalar_reference() {
        for len in [1usize, 7, 8, 9, 16, 31, 32, 63, 64] {
            for c in 0..=32u8 {
                let mags: Vec<u32> = (0..len as u32)
                    .map(|i| {
                        let full = i.wrapping_mul(0x9E37_79B9) ^ (i << 13);
                        if c == 0 {
                            0
                        } else {
                            full & ((1u64 << c) - 1) as u32
                        }
                    })
                    .collect();
                let mut fast = Vec::new();
                encode_planes(&mags, c, &mut fast);
                let mut scalar = Vec::new();
                encode_planes_scalar(&mags, c, &mut scalar);
                assert_eq!(fast, scalar, "len={len} c={c}");
                let mut df = vec![0u32; len];
                let mut ds = vec![0u32; len];
                assert_eq!(
                    decode_planes(&fast, c, &mut df).unwrap(),
                    decode_planes_scalar(&fast, c, &mut ds).unwrap()
                );
                assert_eq!(df, ds, "len={len} c={c}");
                assert_eq!(df, mags, "len={len} c={c}");
            }
        }
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mags: Vec<u32> = (0..32u32).map(|i| i * 7 + 1).collect();
        let mut buf = Vec::new();
        encode_planes(&mags, 12, &mut buf);
        let mut out = vec![0u32; 32];
        for cut in 0..buf.len() {
            for decode in
                [decode_planes as fn(&[u8], u8, &mut [u32]) -> Result<usize>, decode_planes_scalar]
            {
                match decode(&buf[..cut], 12, &mut out) {
                    Err(Error::Truncated { need, have }) => {
                        assert_eq!(need, buf.len());
                        assert_eq!(have, cut);
                    }
                    other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
                }
            }
        }
    }
}
