//! Bit-shuffle (one-bit-plane) encoding, as cuSZp stores fixed-length
//! integers on the GPU.
//!
//! For a block of `L` magnitudes with code length `c`, plane `b`
//! (`0 <= b < c`) stores one bit per element: bit `i % 8` of plane byte
//! `i / 8` is bit `b` of `mag[i]`. This is deliberately bit-granular — the
//! CPU-unfriendly pattern fZ-light's byte-plane scheme replaces.

/// Bytes per one-bit plane for a block of `len` elements.
#[inline]
pub const fn plane_bytes(len: usize) -> usize {
    len.div_ceil(8)
}

/// Total payload bytes for `c` planes over `len` elements.
#[inline]
pub const fn planes_size(c: u8, len: usize) -> usize {
    plane_bytes(len) * c as usize
}

/// Append `c` bit planes of `mags[..len]` to `out`.
pub fn encode_planes(mags: &[u32], c: u8, out: &mut Vec<u8>) {
    let len = mags.len();
    let pb = plane_bytes(len);
    for b in 0..c as u32 {
        for byte_idx in 0..pb {
            let mut byte = 0u8;
            let start = byte_idx * 8;
            let end = (start + 8).min(len);
            for (bit, &m) in mags[start..end].iter().enumerate() {
                byte |= (((m >> b) & 1) as u8) << bit;
            }
            out.push(byte);
        }
    }
}

/// Decode `c` bit planes from `input` into `mags` (length = block length).
/// Returns bytes consumed.
pub fn decode_planes(input: &[u8], c: u8, mags: &mut [u32]) -> usize {
    let len = mags.len();
    let pb = plane_bytes(len);
    mags.fill(0);
    for b in 0..c as u32 {
        let plane = &input[b as usize * pb..(b as usize + 1) * pb];
        for (i, m) in mags.iter_mut().enumerate() {
            let bit = (plane[i / 8] >> (i % 8)) & 1;
            *m |= (bit as u32) << b;
        }
    }
    planes_size(c, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_roundtrip_all_code_lengths() {
        for c in 0..=32u8 {
            let mags: Vec<u32> = (0..32u32)
                .map(|i| {
                    if c == 0 {
                        0
                    } else {
                        i.wrapping_mul(0x9E37_79B9) & ((1u64 << c) - 1) as u32
                    }
                })
                .collect();
            let mut buf = Vec::new();
            encode_planes(&mags, c, &mut buf);
            assert_eq!(buf.len(), planes_size(c, 32));
            let mut out = vec![0u32; 32];
            let used = decode_planes(&buf, c, &mut out);
            assert_eq!(used, buf.len());
            assert_eq!(out, mags, "c={c}");
        }
    }

    #[test]
    fn partial_block_roundtrips() {
        for len in [1usize, 7, 8, 9, 17, 31] {
            let mags: Vec<u32> = (0..len as u32).map(|i| i * 3 + 1).collect();
            let c = 8u8;
            let mut buf = Vec::new();
            encode_planes(&mags, c, &mut buf);
            let mut out = vec![0u32; len];
            decode_planes(&buf, c, &mut out);
            assert_eq!(out, mags, "len={len}");
        }
    }

    #[test]
    fn zero_planes_cost_nothing() {
        let mags = [0u32; 32];
        let mut buf = Vec::new();
        encode_planes(&mags, 0, &mut buf);
        assert!(buf.is_empty());
    }
}
