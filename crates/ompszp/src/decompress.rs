//! Parallel ompSZp decompression: each thread group walks its own record
//! sequence and scatters values into its block-cyclically owned output
//! blocks.

use crate::bitshuffle;
use crate::format::{OszpStream, ZERO_BLOCK};
use fzlight::config::MAX_BLOCK_LEN;
use fzlight::error::{Error, Result};

/// Decompress a stream into a freshly allocated vector.
pub fn decompress(stream: &OszpStream) -> Result<Vec<f32>> {
    let mut out = vec![0f32; stream.n()];
    decompress_into(stream, &mut out)?;
    Ok(out)
}

/// Decompress into a caller-provided buffer of exactly `stream.n()` elements.
pub fn decompress_into(stream: &OszpStream, out: &mut [f32]) -> Result<()> {
    if out.len() != stream.n() {
        return Err(Error::Mismatch("output buffer length != stream element count"));
    }
    let n = stream.n();
    if n == 0 {
        return Ok(());
    }
    let h = stream.header();
    let block_len = h.block_len as usize;
    let ngroups = h.ngroups as usize;
    let nblocks = n.div_ceil(block_len);
    let two_eb = 2.0 * h.eb;

    let out_ptr = SendPtr(out.as_mut_ptr());
    let results: Vec<Result<()>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ngroups)
            .map(|t| {
                let payload = stream.group_payload(t);
                let p = out_ptr;
                s.spawn(move || -> Result<()> {
                    let mut pos = 0usize;
                    let mut mags = [0u32; MAX_BLOCK_LEN];
                    let mut bi = t;
                    while bi < nblocks {
                        let start = bi * block_len;
                        let len = block_len.min(n - start);
                        // SAFETY: block `bi` is owned by exactly one thread;
                        // writes target the disjoint range [start, start+len).
                        let dst =
                            unsafe { std::slice::from_raw_parts_mut(p.get().add(start), len) };
                        pos += decode_record(&payload[pos..], len, two_eb, &mut mags, dst)?;
                        bi += ngroups;
                    }
                    if pos != payload.len() {
                        return Err(Error::Corrupt("group payload longer than its blocks"));
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("ompszp decode panicked")).collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Decode one block record into `dst`; returns bytes consumed.
fn decode_record(
    input: &[u8],
    len: usize,
    two_eb: f64,
    mags: &mut [u32; MAX_BLOCK_LEN],
    dst: &mut [f32],
) -> Result<usize> {
    let Some(&marker) = input.first() else {
        return Err(Error::Truncated { need: 1, have: 0 });
    };
    if marker == ZERO_BLOCK {
        dst.fill(0.0);
        return Ok(1);
    }
    let c = marker;
    if c > 32 {
        return Err(Error::Corrupt("code length > 32"));
    }
    let sb = bitshuffle::plane_bytes(len);
    let body = if c == 0 { 0 } else { sb + bitshuffle::planes_size(c, len) };
    let total = 1 + 4 + body;
    if input.len() < total {
        return Err(Error::Truncated { need: total, have: input.len() });
    }
    let outlier = i32::from_le_bytes(input[1..5].try_into().unwrap()) as i64;
    let mut q = outlier;
    if c == 0 {
        // constant (but non-zero) block: every delta is zero
        let v = (q as f64 * two_eb) as f32;
        dst.fill(v);
        return Ok(total);
    }
    let mut pos = 5usize;
    let mut signs = 0u64;
    for b in 0..sb {
        signs |= (input[pos + b] as u64) << (8 * b);
    }
    pos += sb;
    bitshuffle::decode_planes(&input[pos..], c, &mut mags[..len])?;
    for (k, o) in dst.iter_mut().enumerate() {
        if k > 0 {
            let m = mags[k] as i64;
            q += if (signs >> k) & 1 == 1 { -m } else { m };
        }
        *o = (q as f64 * two_eb) as f32;
    }
    Ok(total)
}

/// Raw pointer wrapper for disjoint strided writes; see use-site safety
/// comments.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// Fetch the pointer (method call forces whole-struct closure capture,
    /// keeping the `Send`/`Sync` impls in effect).
    fn get(self) -> *mut T {
        self.0
    }
}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use fzlight::{Config, ErrorBound};

    #[test]
    fn wrong_output_length_rejected() {
        let data = vec![1.0f32; 64];
        let s = crate::compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let mut out = vec![0f32; 63];
        assert!(decompress_into(&s, &mut out).is_err());
    }

    #[test]
    fn constant_nonzero_block_roundtrips() {
        let data = vec![7.25f32; 96];
        let s = crate::compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let out = decompress(&s).unwrap();
        for v in out {
            assert!((v - 7.25).abs() <= 2e-3);
        }
    }

    #[test]
    fn corrupt_marker_detected() {
        let data: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
        let s = crate::compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
        let ngroups = s.header().ngroups as usize;
        let mut bytes = s.as_bytes().to_vec();
        let body_start = crate::format::OszpHeader::serialized_len(ngroups);
        bytes[body_start] = 40; // invalid code length (not 0xFF, > 32)
        let bad = OszpStream::from_bytes(bytes).unwrap();
        assert!(decompress(&bad).is_err());
    }
}
