//! # streambench — the STREAM memory-bandwidth benchmark
//!
//! Rust port of McCalpin's STREAM kernels (Copy, Scale, Add, Triad) used by
//! the paper to determine the peak memory throughput against which
//! compressor *memory-bandwidth efficiency* (Table IV) is computed. As in
//! the paper, the highest of the four kernel throughputs is taken as the
//! system peak.
//!
//! ```
//! let r = streambench::run(1 << 20, 1, 3);
//! assert!(r.peak() > 0.0);
//! ```

use std::time::Instant;

/// Best-of-trials throughput of the four STREAM kernels, in GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// `c[i] = a[i]` — 16 bytes/element of traffic.
    pub copy: f64,
    /// `b[i] = s * c[i]` — 16 bytes/element.
    pub scale: f64,
    /// `c[i] = a[i] + b[i]` — 24 bytes/element.
    pub add: f64,
    /// `a[i] = b[i] + s * c[i]` — 24 bytes/element.
    pub triad: f64,
}

impl StreamResult {
    /// The system peak: the highest of the four kernel throughputs (the
    /// paper's Table IV convention).
    pub fn peak(&self) -> f64 {
        self.copy.max(self.scale).max(self.add).max(self.triad)
    }
}

/// Run STREAM with arrays of `n` `f64` elements on `threads` threads,
/// keeping the best of `trials` repetitions per kernel.
///
/// `n` should comfortably exceed the last-level cache (the classic guidance
/// is 4x) for the numbers to reflect memory rather than cache bandwidth.
pub fn run(n: usize, threads: usize, trials: usize) -> StreamResult {
    assert!(n > 0 && trials > 0);
    let threads = threads.max(1);
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let s = 3.0f64;

    let mut copy = 0f64;
    let mut scale = 0f64;
    let mut add = 0f64;
    let mut triad = 0f64;
    for _ in 0..trials {
        copy = copy.max(timed(n, 16, || {
            par_zip2(&a, &mut c, threads, |x, o| *o = *x);
        }));
        scale = scale.max(timed(n, 16, || {
            par_zip2(&c, &mut b, threads, |x, o| *o = s * *x);
        }));
        add = add.max(timed(n, 24, || {
            par_zip3(&a, &b, &mut c, threads, |x, y, o| *o = *x + *y);
        }));
        triad = triad.max(timed(n, 24, || {
            par_zip3(&b, &c, &mut a, threads, |x, y, o| *o = *x + s * *y);
        }));
    }
    // keep the arrays observable so the kernels cannot be optimized away
    std::hint::black_box((&a[n / 2], &b[n / 2], &c[n / 2]));
    StreamResult { copy, scale, add, triad }
}

fn timed(n: usize, bytes_per_elem: usize, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    let dt = t0.elapsed().as_secs_f64();
    (n * bytes_per_elem) as f64 / dt / 1e9
}

fn par_zip2(src: &[f64], dst: &mut [f64], threads: usize, f: impl Fn(&f64, &mut f64) + Sync) {
    let chunk = src.len().div_ceil(threads);
    if threads == 1 {
        for (x, o) in src.iter().zip(dst.iter_mut()) {
            f(x, o);
        }
        return;
    }
    std::thread::scope(|sc| {
        for (xs, os) in src.chunks(chunk).zip(dst.chunks_mut(chunk)) {
            let f = &f;
            sc.spawn(move || {
                for (x, o) in xs.iter().zip(os.iter_mut()) {
                    f(x, o);
                }
            });
        }
    });
}

fn par_zip3(
    s1: &[f64],
    s2: &[f64],
    dst: &mut [f64],
    threads: usize,
    f: impl Fn(&f64, &f64, &mut f64) + Sync,
) {
    let chunk = s1.len().div_ceil(threads);
    if threads == 1 {
        for ((x, y), o) in s1.iter().zip(s2).zip(dst.iter_mut()) {
            f(x, y, o);
        }
        return;
    }
    std::thread::scope(|sc| {
        for ((xs, ys), os) in s1.chunks(chunk).zip(s2.chunks(chunk)).zip(dst.chunks_mut(chunk)) {
            let f = &f;
            sc.spawn(move || {
                for ((x, y), o) in xs.iter().zip(ys).zip(os.iter_mut()) {
                    f(x, y, o);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_produce_positive_throughput() {
        let r = run(1 << 18, 2, 2);
        assert!(r.copy > 0.0 && r.scale > 0.0 && r.add > 0.0 && r.triad > 0.0);
        assert!(r.peak() >= r.copy);
        assert!(r.peak() >= r.triad);
    }

    #[test]
    fn single_thread_path_works() {
        let r = run(1 << 16, 1, 1);
        assert!(r.peak() > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_n_panics() {
        run(0, 1, 1);
    }

    #[test]
    fn kernel_results_are_numerically_correct() {
        // run the kernels once by hand at tiny size to validate semantics
        let n = 1000;
        let a = vec![1.0f64; n];
        let mut b = vec![2.0f64; n];
        let mut c = vec![0.0f64; n];
        par_zip2(&a, &mut c, 3, |x, o| *o = *x);
        assert!(c.iter().all(|&v| v == 1.0));
        par_zip2(&c, &mut b, 3, |x, o| *o = 3.0 * *x);
        assert!(b.iter().all(|&v| v == 3.0));
        let mut d = vec![0.0f64; n];
        par_zip3(&a, &b, &mut d, 3, |x, y, o| *o = *x + *y);
        assert!(d.iter().all(|&v| v == 4.0));
    }
}
