//! Versioned perf snapshots (`BENCH_results.json`) and their regression
//! diff.
//!
//! A snapshot is the serialized outcome of one suite run
//! ([`crate::suite::run_suite`]): per-case virtual seconds, wire/logical
//! traffic, cost-bucket breakdown, critical-path composition, and latency
//! quantiles, under a `schema_version` field so future format changes can
//! refuse (rather than misread) old files. Rendering goes through
//! [`netsim::Json`], whose object order is insertion order and whose float
//! writer is shortest-round-trip — two runs of the same deterministic suite
//! therefore produce byte-identical files, and `hzc bench --against` can
//! treat any difference as signal.

use crate::suite::{CaseResult, SuiteConfig};
use netsim::{Json, NetConfig};

/// The snapshot format version this build writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// One serialized case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSnap {
    /// Stable diff key ([`crate::suite::CaseSpec::id`]).
    pub id: String,
    /// End-to-end virtual seconds.
    pub virtual_secs: f64,
    /// Bytes across the virtual wire.
    pub wire_bytes: u64,
    /// Uncompressed bytes those messages represented.
    pub logical_bytes: u64,
    /// Aggregated `(bucket, seconds)` cost breakdown.
    pub breakdown: Vec<(String, f64)>,
    /// Critical-path length followed by its `(bucket, seconds)` composition.
    pub critical_path_length: f64,
    /// Critical-path composition (sums to `critical_path_length`).
    pub critical_path: Vec<(String, f64)>,
    /// Median per-rank latency.
    pub latency_p50: f64,
    /// 99th-percentile per-rank latency.
    pub latency_p99: f64,
}

/// A full suite snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Suite name (`canonical`, `quick`, or `custom`).
    pub suite: String,
    /// Field/fault seed of the run.
    pub seed: u64,
    /// Absolute error bound of the compressed flavours.
    pub eb: f64,
    /// Synthetic app name.
    pub app: String,
    /// Network model of the run.
    pub net: NetConfig,
    /// Per-case results, in suite order.
    pub cases: Vec<CaseSnap>,
}

impl Snapshot {
    /// Build a snapshot from a suite run.
    pub fn from_results(suite: &str, cfg: &SuiteConfig, results: &[CaseResult]) -> Snapshot {
        let cases = results
            .iter()
            .map(|r| {
                let b = &r.breakdown;
                CaseSnap {
                    id: r.spec.id(),
                    virtual_secs: r.virtual_secs,
                    wire_bytes: r.wire_bytes,
                    logical_bytes: r.logical_bytes,
                    breakdown: [
                        ("cpr", b.cpr),
                        ("dpr", b.dpr),
                        ("hpr", b.hpr),
                        ("cpt", b.cpt),
                        ("mpi", b.mpi),
                        ("other", b.other),
                    ]
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect(),
                    critical_path_length: r.critpath.length,
                    critical_path: r
                        .critpath
                        .buckets
                        .entries()
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    latency_p50: r.latency_p50,
                    latency_p99: r.latency_p99,
                }
            })
            .collect();
        Snapshot {
            suite: suite.to_string(),
            seed: cfg.seed,
            eb: cfg.eb,
            app: cfg.app.name().to_string(),
            net: cfg.net,
            cases,
        }
    }

    /// Render to the canonical JSON text (one line per case for reviewable
    /// diffs, deterministic byte-for-byte).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let head = Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("suite", Json::Str(self.suite.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("eb", Json::Num(self.eb)),
            ("app", Json::Str(self.app.clone())),
            (
                "net",
                Json::obj(vec![
                    ("latency_s", Json::Num(self.net.latency_s)),
                    ("bandwidth_gbps", Json::Num(self.net.bandwidth_gbps)),
                    ("congestion", Json::Num(self.net.congestion)),
                ]),
            ),
        ]);
        // splice the header fields then the cases array, one case per line
        let head = head.render();
        out.push_str(&head[1..head.len() - 1]);
        out.push_str(",\n\"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&case_json(c).render());
            out.push_str(if i + 1 < self.cases.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a snapshot file, refusing unknown schema versions.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text)?;
        let version = num(&doc, "schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema version {version} is not supported (this build reads {SCHEMA_VERSION})"
            ));
        }
        let net_doc = doc.get("net").ok_or("missing net")?;
        let net = NetConfig {
            latency_s: num(net_doc, "latency_s")?,
            bandwidth_gbps: num(net_doc, "bandwidth_gbps")?,
            congestion: num(net_doc, "congestion")?,
        };
        let cases = doc
            .get("cases")
            .and_then(Json::as_arr)
            .ok_or("missing cases array")?
            .iter()
            .map(parse_case)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot {
            suite: text_field(&doc, "suite")?,
            seed: num(&doc, "seed")? as u64,
            eb: num(&doc, "eb")?,
            app: text_field(&doc, "app")?,
            net,
            cases,
        })
    }
}

fn case_json(c: &CaseSnap) -> Json {
    let pairs = |kv: &[(String, f64)]| {
        Json::Obj(kv.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
    };
    let mut cp: Vec<(String, Json)> =
        vec![("length".to_string(), Json::Num(c.critical_path_length))];
    cp.extend(c.critical_path.iter().map(|(k, v)| (k.clone(), Json::Num(*v))));
    Json::obj(vec![
        ("id", Json::Str(c.id.clone())),
        ("virtual_secs", Json::Num(c.virtual_secs)),
        ("wire_bytes", Json::Num(c.wire_bytes as f64)),
        ("logical_bytes", Json::Num(c.logical_bytes as f64)),
        ("breakdown", pairs(&c.breakdown)),
        ("critical_path", Json::Obj(cp)),
        ("latency_p50", Json::Num(c.latency_p50)),
        ("latency_p99", Json::Num(c.latency_p99)),
    ])
}

fn parse_case(doc: &Json) -> Result<CaseSnap, String> {
    let kv = |j: &Json| -> Vec<(String, f64)> {
        j.as_obj()
            .map(|pairs| {
                pairs.iter().filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v))).collect()
            })
            .unwrap_or_default()
    };
    let cp = doc.get("critical_path").ok_or("case missing critical_path")?;
    Ok(CaseSnap {
        id: text_field(doc, "id")?,
        virtual_secs: num(doc, "virtual_secs")?,
        wire_bytes: num(doc, "wire_bytes")? as u64,
        logical_bytes: num(doc, "logical_bytes")? as u64,
        breakdown: kv(doc.get("breakdown").ok_or("case missing breakdown")?),
        critical_path_length: num(cp, "length")?,
        critical_path: kv(cp).into_iter().filter(|(k, _)| k != "length").collect(),
        latency_p50: num(doc, "latency_p50")?,
        latency_p99: num(doc, "latency_p99")?,
    })
}

fn num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number '{key}'"))
}

fn text_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

/// One per-case comparison against a baseline.
#[derive(Debug, Clone)]
pub struct CaseDiff {
    /// Case id.
    pub id: String,
    /// Baseline / current virtual seconds.
    pub old_secs: f64,
    /// Current virtual seconds.
    pub new_secs: f64,
    /// Baseline wire bytes.
    pub old_wire: u64,
    /// Current wire bytes.
    pub new_wire: u64,
    /// Current time exceeds baseline by more than the tolerance.
    pub time_regressed: bool,
    /// Current wire traffic exceeds baseline by more than the tolerance.
    pub bytes_regressed: bool,
}

impl CaseDiff {
    /// Relative time change (`+0.10` = 10% slower).
    pub fn time_delta(&self) -> f64 {
        if self.old_secs > 0.0 {
            self.new_secs / self.old_secs - 1.0
        } else {
            0.0
        }
    }
}

/// The outcome of diffing a run against a baseline snapshot.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every case present in both snapshots, in current-run order.
    pub compared: Vec<CaseDiff>,
    /// Case ids only in the current run (new coverage, not a failure).
    pub only_new: Vec<String>,
    /// Case ids only in the baseline (skipped here, not a failure).
    pub only_old: Vec<String>,
}

impl DiffReport {
    /// The regressed subset of [`DiffReport::compared`].
    pub fn regressions(&self) -> Vec<&CaseDiff> {
        self.compared.iter().filter(|d| d.time_regressed || d.bytes_regressed).collect()
    }
}

/// Compare `new` against the `old` baseline over the intersection of case
/// ids. A case regresses when its virtual time grows by more than
/// `tol_time` (relative) or its wire traffic by more than `tol_bytes`.
pub fn diff(old: &Snapshot, new: &Snapshot, tol_time: f64, tol_bytes: f64) -> DiffReport {
    use std::collections::BTreeMap;
    let old_by_id: BTreeMap<&str, &CaseSnap> =
        old.cases.iter().map(|c| (c.id.as_str(), c)).collect();
    let new_ids: std::collections::BTreeSet<&str> =
        new.cases.iter().map(|c| c.id.as_str()).collect();

    let mut compared = Vec::new();
    let mut only_new = Vec::new();
    for c in &new.cases {
        let Some(o) = old_by_id.get(c.id.as_str()) else {
            only_new.push(c.id.clone());
            continue;
        };
        compared.push(CaseDiff {
            id: c.id.clone(),
            old_secs: o.virtual_secs,
            new_secs: c.virtual_secs,
            old_wire: o.wire_bytes,
            new_wire: c.wire_bytes,
            time_regressed: c.virtual_secs > o.virtual_secs * (1.0 + tol_time),
            bytes_regressed: c.wire_bytes as f64 > o.wire_bytes as f64 * (1.0 + tol_bytes),
        });
    }
    let only_old = old
        .cases
        .iter()
        .filter(|c| !new_ids.contains(c.id.as_str()))
        .map(|c| c.id.clone())
        .collect();
    DiffReport { compared, only_new, only_old }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_suite, CaseSpec, SuiteConfig};
    use crate::CollOp;
    use hzccl::Variant;

    fn tiny_results() -> (SuiteConfig, Vec<crate::suite::CaseResult>) {
        let cfg = SuiteConfig::default();
        let cases = vec![
            CaseSpec {
                op: CollOp::Allreduce,
                variant: Variant::Mpi,
                ranks: 4,
                kb: 4,
                segments: 1,
                faulted: false,
                topology: None,
            },
            CaseSpec {
                op: CollOp::ReduceScatter,
                variant: Variant::Hzccl,
                ranks: 4,
                kb: 4,
                segments: 2,
                faulted: false,
                topology: None,
            },
        ];
        let results = run_suite(&cases, &cfg, |_| {});
        (cfg, results)
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let (cfg, results) = tiny_results();
        let snap = Snapshot::from_results("custom", &cfg, &results);
        let text = snap.render();
        let back = Snapshot::parse(&text).expect("parse back");
        assert_eq!(back, snap);
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn self_diff_is_clean_and_doctored_baseline_regresses() {
        let (cfg, results) = tiny_results();
        let snap = Snapshot::from_results("custom", &cfg, &results);
        let report = diff(&snap, &snap, 0.05, 0.01);
        assert_eq!(report.compared.len(), snap.cases.len());
        assert!(report.regressions().is_empty());
        assert!(report.only_new.is_empty() && report.only_old.is_empty());

        // halve the baseline's first-case time: the current run regresses
        let mut old = snap.clone();
        old.cases[0].virtual_secs /= 2.0;
        let report = diff(&old, &snap, 0.05, 0.01);
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, snap.cases[0].id);
        assert!(regs[0].time_regressed && !regs[0].bytes_regressed);
        assert!((regs[0].time_delta() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_schema_version_is_refused() {
        let (cfg, results) = tiny_results();
        let text = Snapshot::from_results("custom", &cfg, &results).render().replacen(
            "\"schema_version\":1",
            "\"schema_version\":999",
            1,
        );
        let err = Snapshot::parse(&text).expect_err("must refuse");
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn disjoint_cases_are_reported_not_failed() {
        let (cfg, results) = tiny_results();
        let snap = Snapshot::from_results("custom", &cfg, &results);
        let mut old = snap.clone();
        old.cases.remove(0);
        let report = diff(&old, &snap, 0.05, 0.01);
        assert_eq!(report.only_new, vec![snap.cases[0].id.clone()]);
        assert!(report.regressions().is_empty());
    }
}
