//! Kernel micro-benchmark harness behind `hzc kernels`: Table IV-style
//! memory-bandwidth efficiency for the three overhauled hot kernels.
//!
//! Each kernel is timed twice on paper-like data ([`datasets::App`] fields) —
//! once through the production bit-parallel path, once through the retained
//! scalar reference — and both are normalized two ways:
//!
//! * **speedup** = scalar time / fast time (the overhaul's acceptance gate is
//!   ≥1.5× for bitshuffle encode+decode and the homomorphic sum, release
//!   builds);
//! * **efficiency** = fast-path throughput / STREAM peak ([`streambench`]),
//!   the paper's memory-roofline metric.
//!
//! Throughput follows the Table IV convention: logical (uncompressed) `f32`
//! bytes divided by wall time, so kernels with different wire footprints stay
//! comparable.
//!
//! Before any timing, every fast kernel's output is asserted byte-identical
//! to its scalar reference on the benchmark data — the harness refuses to
//! report a speedup for a kernel that diverged.
//!
//! ## The bit-stable snapshot (`BENCH_kernels.json`)
//!
//! [`canonical_snapshot`] renders a committed, versioned snapshot holding
//! only bit-stable fields — element counts, byte counts, and FNV-1a
//! checksums of each kernel's output on a fixed canonical input. Wall-clock
//! never enters the file, so it is byte-identical across machines and CI
//! runs; any diff means the kernels' *outputs* changed, which the bit-identity
//! contract forbids.

use crate::{gbps, time_best};
use datasets::App;
use fzlight::codec;
use fzlight::quantize::{quantize_block, quantize_block_scalar};
use fzlight::{Config, ErrorBound};
use netsim::Json;
use ompszp::bitshuffle;
use std::hint::black_box;

/// Snapshot format version written into `BENCH_kernels.json`.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;
/// Canonical input size (elements) for the bit-stable snapshot.
pub const CANONICAL_ELEMS: usize = 1 << 16;
/// Canonical field seed for the bit-stable snapshot.
pub const CANONICAL_SEED: u64 = 42;
/// Canonical absolute error bound for the bit-stable snapshot.
pub const CANONICAL_EB: f64 = 1e-3;

/// Block length used for the shuffle/codec kernels (the fZ-light default).
const BLOCK: usize = 32;

/// Timing configuration for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct KernelBenchConfig {
    /// Field size in `f32` elements.
    pub elems: usize,
    /// Best-of-`trials` timing repetitions per kernel.
    pub trials: usize,
    /// Threads for the STREAM roofline and the homomorphic-sum streams.
    pub threads: usize,
}

impl KernelBenchConfig {
    /// Smoke configuration (`hzc kernels --quick`): small field, few trials.
    pub fn quick() -> KernelBenchConfig {
        KernelBenchConfig { elems: 1 << 20, trials: 3, threads: 1 }
    }

    /// Default configuration: a 16 MiB field, best of 5.
    pub fn full() -> KernelBenchConfig {
        KernelBenchConfig { elems: 1 << 22, trials: 5, threads: 1 }
    }
}

/// One kernel's measured result.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (snapshot/diff key).
    pub name: &'static str,
    /// Logical `f32` bytes processed per timed run.
    pub bytes: usize,
    /// Best fast-path wall time, seconds.
    pub fast_secs: f64,
    /// Best scalar-reference wall time, seconds.
    pub scalar_secs: f64,
    /// Whether the ≥1.5× acceptance gate applies to this kernel.
    pub gated: bool,
}

impl KernelResult {
    /// Fast-path throughput in GB/s (logical bytes).
    pub fn fast_gbps(&self) -> f64 {
        gbps(self.bytes, self.fast_secs)
    }

    /// Scalar-reference throughput in GB/s (logical bytes).
    pub fn scalar_gbps(&self) -> f64 {
        gbps(self.bytes, self.scalar_secs)
    }

    /// Speedup of the fast path over the scalar reference.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.fast_secs
    }

    /// Memory-bandwidth efficiency against a STREAM peak, in percent.
    pub fn efficiency_pct(&self, stream_peak_gbps: f64) -> f64 {
        100.0 * self.fast_gbps() / stream_peak_gbps
    }
}

/// A full harness run: the STREAM roofline plus every kernel row.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// STREAM results on this host (peak = roofline denominator).
    pub stream: streambench::StreamResult,
    /// Per-kernel measurements, in report order.
    pub kernels: Vec<KernelResult>,
}

/// Per-block magnitudes + code lengths derived from a field exactly the way
/// the compressor produces them (quantize → Lorenzo delta → |mag|).
struct ShuffleInput {
    mags: Vec<u32>,
    codes: Vec<u8>,
    nblocks: usize,
}

fn shuffle_input(field: &[f32], eb: f64) -> ShuffleInput {
    let inv_2eb = 1.0 / (2.0 * eb);
    let mut q = vec![0i32; field.len()];
    quantize_block(field, inv_2eb, 0, &mut q).expect("finite bench field");
    let nblocks = field.len().div_ceil(BLOCK);
    let mut mags = vec![0u32; field.len()];
    let mut codes = vec![0u8; nblocks];
    for (bi, block) in q.chunks(BLOCK).enumerate() {
        let mut q_prev = block[0] as i64;
        let mut max = 0u32;
        for (k, &qi) in block.iter().enumerate() {
            let d = qi as i64 - q_prev;
            q_prev = qi as i64;
            let m = d.unsigned_abs() as u32;
            mags[bi * BLOCK + k] = m;
            max |= m;
        }
        codes[bi] = codec::code_for_max(max);
    }
    ShuffleInput { mags, codes, nblocks }
}

/// Run the full harness: verify bit-identity, measure the STREAM roofline,
/// then time each kernel fast vs scalar.
pub fn run_kernel_bench(cfg: &KernelBenchConfig) -> KernelReport {
    let field = App::SimSet2.generate(cfg.elems, 0);
    let field_b: Vec<f32> = field.iter().map(|&v| v * 1.001 + 0.5).collect();
    let bytes = cfg.elems * 4;

    // roofline: STREAM arrays at least 16 MiB each so cache reuse does not
    // inflate the denominator
    let stream_n = cfg.elems.max(1 << 21);
    let stream = streambench::run(stream_n, cfg.threads, cfg.trials);

    let mut kernels = Vec::new();

    // --- bitshuffle encode/decode ---------------------------------------
    let sh = shuffle_input(&field, CANONICAL_EB);
    let block_len = |bi: usize| BLOCK.min(sh.mags.len() - bi * BLOCK);
    // bit-identity before timing
    let mut fast_buf = Vec::new();
    let mut scalar_buf = Vec::new();
    for bi in 0..sh.nblocks {
        let m = &sh.mags[bi * BLOCK..bi * BLOCK + block_len(bi)];
        bitshuffle::encode_planes(m, sh.codes[bi], &mut fast_buf);
        bitshuffle::encode_planes_scalar(m, sh.codes[bi], &mut scalar_buf);
    }
    assert_eq!(fast_buf, scalar_buf, "bitshuffle encode diverged from the scalar reference");

    let mut buf = Vec::with_capacity(fast_buf.len());
    type EncodeFn = dyn Fn(&[u32], u8, &mut Vec<u8>);
    let enc = |encode: &EncodeFn, buf: &mut Vec<u8>| {
        buf.clear();
        for bi in 0..sh.nblocks {
            let m = &sh.mags[bi * BLOCK..bi * BLOCK + block_len(bi)];
            encode(black_box(m), sh.codes[bi], buf);
        }
    };
    let t_fast = time_best(cfg.trials, || enc(&bitshuffle::encode_planes, &mut buf));
    let t_scalar = time_best(cfg.trials, || enc(&bitshuffle::encode_planes_scalar, &mut buf));
    kernels.push(KernelResult {
        name: "bitshuffle_encode",
        bytes,
        fast_secs: t_fast,
        scalar_secs: t_scalar,
        gated: true,
    });

    // decode: offsets into the encoded buffer, one slice per block
    let mut offs = Vec::with_capacity(sh.nblocks + 1);
    offs.push(0usize);
    for bi in 0..sh.nblocks {
        offs.push(offs[bi] + bitshuffle::planes_size(sh.codes[bi], block_len(bi)));
    }
    let mut out_mags = vec![0u32; sh.mags.len()];
    let mut dec_ok = vec![0u32; sh.mags.len()];
    for bi in 0..sh.nblocks {
        let len = block_len(bi);
        bitshuffle::decode_planes(
            &fast_buf[offs[bi]..offs[bi + 1]],
            sh.codes[bi],
            &mut dec_ok[bi * BLOCK..bi * BLOCK + len],
        )
        .expect("decode bench blocks");
    }
    assert_eq!(dec_ok, sh.mags, "bitshuffle decode diverged from the encoded input");
    type DecodeFn = fn(&[u8], u8, &mut [u32]) -> fzlight::Result<usize>;
    let dec = |decode: DecodeFn, out: &mut [u32]| {
        for bi in 0..sh.nblocks {
            let len = block_len(bi);
            decode(
                black_box(&fast_buf[offs[bi]..offs[bi + 1]]),
                sh.codes[bi],
                &mut out[bi * BLOCK..bi * BLOCK + len],
            )
            .expect("decode bench blocks");
        }
    };
    let t_fast = time_best(cfg.trials, || dec(bitshuffle::decode_planes, &mut out_mags));
    let t_scalar = time_best(cfg.trials, || dec(bitshuffle::decode_planes_scalar, &mut out_mags));
    kernels.push(KernelResult {
        name: "bitshuffle_decode",
        bytes,
        fast_secs: t_fast,
        scalar_secs: t_scalar,
        gated: true,
    });

    // --- quantize_block ---------------------------------------------------
    let inv_2eb = 1.0 / (2.0 * CANONICAL_EB);
    let mut q_fast = vec![0i32; cfg.elems];
    let mut q_scalar = vec![0i32; cfg.elems];
    quantize_block(&field, inv_2eb, 0, &mut q_fast).expect("bench field is finite");
    quantize_block_scalar(&field, inv_2eb, 0, &mut q_scalar).expect("bench field is finite");
    assert_eq!(q_fast, q_scalar, "quantize_block diverged from the scalar reference");
    let t_fast = time_best(cfg.trials, || {
        quantize_block(black_box(&field), inv_2eb, 0, &mut q_fast).expect("quantize");
    });
    let t_scalar = time_best(cfg.trials, || {
        quantize_block_scalar(black_box(&field), inv_2eb, 0, &mut q_scalar).expect("quantize");
    });
    kernels.push(KernelResult {
        name: "quantize_block",
        bytes: cfg.elems * 8, // 4 bytes read + 4 bytes written per element
        fast_secs: t_fast,
        scalar_secs: t_scalar,
        gated: false,
    });

    // --- homomorphic_sum --------------------------------------------------
    let fz = Config::new(ErrorBound::Abs(CANONICAL_EB)).with_threads(cfg.threads);
    let ca = fzlight::compress(&field, &fz).expect("compress a");
    let cb = fzlight::compress(&field_b, &fz).expect("compress b");
    let fast_sum = hzdyn::homomorphic_sum(&ca, &cb).expect("hz sum");
    let scalar_sum = hzdyn::reference::homomorphic_sum_scalar(&ca, &cb).expect("hz sum scalar");
    assert_eq!(
        fast_sum.as_bytes(),
        scalar_sum.as_bytes(),
        "homomorphic_sum diverged from the scalar reference"
    );
    let t_fast = time_best(cfg.trials, || {
        black_box(hzdyn::homomorphic_sum(black_box(&ca), black_box(&cb)).expect("hz sum"));
    });
    let t_scalar = time_best(cfg.trials, || {
        black_box(
            hzdyn::reference::homomorphic_sum_scalar(black_box(&ca), black_box(&cb))
                .expect("hz sum scalar"),
        );
    });
    kernels.push(KernelResult {
        name: "homomorphic_sum",
        bytes,
        fast_secs: t_fast,
        scalar_secs: t_scalar,
        gated: true,
    });

    KernelReport { stream, kernels }
}

/// FNV-1a 64-bit over a byte slice (bit-stable across platforms).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn u32s_as_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn i32s_as_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Render the bit-stable `BENCH_kernels.json` content: kernel outputs on the
/// canonical input, reduced to sizes and checksums. Asserts fast == scalar on
/// every kernel along the way, so a successful render re-proves bit-identity.
pub fn canonical_snapshot() -> String {
    let field = App::SimSet2.generate(CANONICAL_ELEMS, CANONICAL_SEED);
    let field_b: Vec<f32> = field.iter().map(|&v| v * 1.001 + 0.5).collect();
    let mut kernels: Vec<Json> = Vec::new();
    let entry = |name: &str, input_bytes: usize, output_bytes: usize, checksum: u64| {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("input_bytes", Json::Num(input_bytes as f64)),
            ("output_bytes", Json::Num(output_bytes as f64)),
            ("checksum", Json::Str(format!("{checksum:#018x}"))),
        ])
    };

    // quantize_block
    let inv_2eb = 1.0 / (2.0 * CANONICAL_EB);
    let mut q_fast = vec![0i32; CANONICAL_ELEMS];
    let mut q_scalar = vec![0i32; CANONICAL_ELEMS];
    quantize_block(&field, inv_2eb, 0, &mut q_fast).expect("canonical field is finite");
    quantize_block_scalar(&field, inv_2eb, 0, &mut q_scalar).expect("canonical field is finite");
    assert_eq!(q_fast, q_scalar, "quantize_block diverged on the canonical input");
    let q_bytes = i32s_as_bytes(&q_fast);
    kernels.push(entry("quantize_block", CANONICAL_ELEMS * 4, q_bytes.len(), fnv1a64(&q_bytes)));

    // bitshuffle encode + decode
    let sh = shuffle_input(&field, CANONICAL_EB);
    let mut fast_buf = Vec::new();
    let mut scalar_buf = Vec::new();
    for bi in 0..sh.nblocks {
        let len = BLOCK.min(sh.mags.len() - bi * BLOCK);
        let m = &sh.mags[bi * BLOCK..bi * BLOCK + len];
        bitshuffle::encode_planes(m, sh.codes[bi], &mut fast_buf);
        bitshuffle::encode_planes_scalar(m, sh.codes[bi], &mut scalar_buf);
    }
    assert_eq!(fast_buf, scalar_buf, "bitshuffle encode diverged on the canonical input");
    kernels.push(entry("bitshuffle_encode", sh.mags.len() * 4, fast_buf.len(), fnv1a64(&fast_buf)));
    let mut decoded = vec![0u32; sh.mags.len()];
    let mut decoded_scalar = vec![0u32; sh.mags.len()];
    let mut pos = 0usize;
    for bi in 0..sh.nblocks {
        let len = BLOCK.min(sh.mags.len() - bi * BLOCK);
        let dst = bi * BLOCK..bi * BLOCK + len;
        let used =
            bitshuffle::decode_planes(&fast_buf[pos..], sh.codes[bi], &mut decoded[dst.clone()])
                .expect("canonical decode");
        let used_s = bitshuffle::decode_planes_scalar(
            &fast_buf[pos..],
            sh.codes[bi],
            &mut decoded_scalar[dst],
        )
        .expect("canonical decode");
        assert_eq!(used, used_s);
        pos += used;
    }
    assert_eq!(decoded, decoded_scalar, "bitshuffle decode diverged on the canonical input");
    assert_eq!(decoded, sh.mags, "bitshuffle roundtrip broke on the canonical input");
    let dec_bytes = u32s_as_bytes(&decoded);
    kernels.push(entry("bitshuffle_decode", fast_buf.len(), dec_bytes.len(), fnv1a64(&dec_bytes)));

    // homomorphic_sum (two chunks so the walk crosses a chunk boundary)
    let fz = Config::new(ErrorBound::Abs(CANONICAL_EB)).with_threads(2);
    let ca = fzlight::compress(&field, &fz).expect("canonical compress a");
    let cb = fzlight::compress(&field_b, &fz).expect("canonical compress b");
    let fast_sum = hzdyn::homomorphic_sum(&ca, &cb).expect("canonical hz sum");
    let scalar_sum =
        hzdyn::reference::homomorphic_sum_scalar(&ca, &cb).expect("canonical hz sum scalar");
    assert_eq!(
        fast_sum.as_bytes(),
        scalar_sum.as_bytes(),
        "homomorphic_sum diverged on the canonical input"
    );
    kernels.push(entry(
        "homomorphic_sum",
        ca.as_bytes().len() + cb.as_bytes().len(),
        fast_sum.as_bytes().len(),
        fnv1a64(fast_sum.as_bytes()),
    ));

    let doc = Json::obj(vec![
        ("schema_version", Json::Num(SNAPSHOT_SCHEMA_VERSION as f64)),
        ("canonical_elems", Json::Num(CANONICAL_ELEMS as f64)),
        ("canonical_seed", Json::Num(CANONICAL_SEED as f64)),
        ("eb", Json::Num(CANONICAL_EB)),
        ("block_len", Json::Num(BLOCK as f64)),
        ("app", Json::Str(App::SimSet2.name().to_string())),
        ("kernels", Json::Arr(kernels)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

/// Check a committed snapshot file against a fresh canonical render.
pub fn verify_snapshot(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("snapshot does not parse: {e}"))?;
    let version =
        doc.get("schema_version").and_then(Json::as_f64).ok_or("snapshot missing schema_version")?
            as u64;
    if version != SNAPSHOT_SCHEMA_VERSION {
        return Err(format!(
            "snapshot schema version {version} is not supported (this build writes {SNAPSHOT_SCHEMA_VERSION})"
        ));
    }
    let fresh = canonical_snapshot();
    if text == fresh {
        return Ok(());
    }
    // pinpoint which kernel moved, for an actionable failure message
    let fresh_doc = Json::parse(&fresh).expect("fresh snapshot parses");
    let names = |d: &Json| -> Vec<(String, String)> {
        d.get("kernels")
            .and_then(Json::as_arr)
            .map(|ks| {
                ks.iter()
                    .filter_map(|k| {
                        let name = k.get("name")?.as_str()?.to_string();
                        let sum = k.get("checksum")?.as_str()?.to_string();
                        Some((name, sum))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let old = names(&doc);
    let new = names(&fresh_doc);
    for (name, sum) in &new {
        match old.iter().find(|(n, _)| n == name) {
            Some((_, old_sum)) if old_sum != sum => {
                return Err(format!(
                    "kernel '{name}' output changed: checksum {old_sum} -> {sum} \
                     (bit-identity contract violated; regenerate with hzc kernels --out)"
                ));
            }
            None => return Err(format!("kernel '{name}' missing from the committed snapshot")),
            _ => {}
        }
    }
    Err("snapshot text differs from a fresh render (metadata drift); regenerate with hzc kernels --out".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_snapshot_is_deterministic_and_verifies() {
        let a = canonical_snapshot();
        let b = canonical_snapshot();
        assert_eq!(a, b, "snapshot must be bit-stable");
        verify_snapshot(&a).expect("fresh snapshot verifies against itself");
    }

    #[test]
    fn verify_rejects_doctored_checksum() {
        let snap = canonical_snapshot();
        let pos = snap.find("0x").expect("has a checksum");
        let mut bad = snap.clone();
        // flip one hex digit of the first checksum
        let digit = bad.as_bytes()[pos + 2];
        let flipped = if digit == b'0' { '1' } else { '0' };
        bad.replace_range(pos + 2..pos + 3, &flipped.to_string());
        let err = verify_snapshot(&bad).expect_err("must detect the changed checksum");
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn verify_rejects_unknown_schema() {
        let snap = canonical_snapshot().replacen("\"schema_version\":1", "\"schema_version\":9", 1);
        let err = verify_snapshot(&snap).expect_err("must refuse");
        assert!(err.contains('9'), "{err}");
    }

    #[test]
    fn quick_bench_runs_and_reports_sane_numbers() {
        let cfg = KernelBenchConfig { elems: 1 << 14, trials: 1, threads: 1 };
        let report = run_kernel_bench(&cfg);
        assert!(report.stream.peak() > 0.0);
        assert_eq!(report.kernels.len(), 4);
        for k in &report.kernels {
            assert!(k.fast_secs > 0.0 && k.scalar_secs > 0.0, "{}", k.name);
            assert!(k.fast_gbps() > 0.0, "{}", k.name);
        }
        // debug builds give no meaningful speedup, so only check the ratio is finite
        assert!(report.kernels.iter().all(|k| k.speedup().is_finite()));
    }

    #[test]
    fn shuffle_input_matches_compressor_codes() {
        let field = App::SimSet2.generate(4096, 7);
        let sh = shuffle_input(&field, CANONICAL_EB);
        assert_eq!(sh.nblocks, 4096 / BLOCK);
        // every first-of-block delta is zero by construction, mags bounded by code
        for bi in 0..sh.nblocks {
            assert_eq!(sh.mags[bi * BLOCK], 0, "block {bi} leads with its anchor");
            for k in 0..BLOCK {
                let m = sh.mags[bi * BLOCK + k];
                if sh.codes[bi] < 32 {
                    assert!(m < 1u32.wrapping_shl(sh.codes[bi] as u32), "block {bi} elem {k}");
                }
            }
        }
    }

    #[test]
    fn max_block_len_is_at_least_bench_block() {
        const { assert!(BLOCK <= fzlight::config::MAX_BLOCK_LEN) }
    }
}
